//! Property-based cross-validation of the execution layers (proptest).
//!
//! Random proteins, references and thresholds; every layer of the stack
//! must agree with the golden model, and structural invariants must hold.

use fabp::bio::alphabet::{AminoAcid, Nucleotide};
use fabp::bio::backtranslate::BackTranslatedQuery;
use fabp::bio::seq::{PackedSeq, ProteinSeq, RnaSeq};
use fabp::core::aligner::{Engine, FabpAligner, Threshold};
use fabp::encoding::encoder::EncodedQuery;
use fabp::encoding::packing::{axi_beats, ELEMENTS_PER_BEAT};
use fabp::fpga::engine::EngineConfig;
use proptest::prelude::*;

fn arb_protein(max_len: usize) -> impl Strategy<Value = ProteinSeq> {
    prop::collection::vec(0usize..21, 1..=max_len).prop_map(|indices| {
        indices
            .into_iter()
            .map(|i| AminoAcid::ALL[i])
            .collect::<ProteinSeq>()
    })
}

fn arb_rna(min_len: usize, max_len: usize) -> impl Strategy<Value = RnaSeq> {
    prop::collection::vec(0u8..4, min_len..=max_len).prop_map(|codes| {
        codes
            .into_iter()
            .map(Nucleotide::from_code2)
            .collect::<RnaSeq>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The software, bit-parallel and cycle-accurate engines report
    /// identical hits for any query, reference and threshold fraction.
    #[test]
    fn engines_agree(
        protein in arb_protein(12),
        reference in arb_rna(40, 700),
        fraction in 0.0f64..=1.0,
    ) {
        let software = FabpAligner::builder()
            .protein_query(&protein)
            .threshold(Threshold::Fraction(fraction))
            .engine(Engine::Software { threads: 2 })
            .build()
            .unwrap();
        let cycle = FabpAligner::builder()
            .protein_query(&protein)
            .threshold(Threshold::Fraction(fraction))
            .engine(Engine::CycleAccurate(Box::new(EngineConfig::kintex7(0))))
            .build()
            .unwrap();
        let soft_hits = software.search(&reference).hits;
        prop_assert_eq!(&soft_hits, &cycle.search(&reference).hits);

        let query = fabp::encoding::encoder::EncodedQuery::from_protein(&protein);
        let threshold = Threshold::Fraction(fraction).resolve(query.len());
        let bitparallel = fabp::core::bitparallel::BitParallelEngine::new(&query).unwrap();
        prop_assert_eq!(&soft_hits, &bitparallel.search(reference.as_slice(), threshold));
    }

    /// Encoded queries decode back to their source pattern stream.
    #[test]
    fn encode_decode_round_trip(protein in arb_protein(64)) {
        let bt = BackTranslatedQuery::from_protein(&protein);
        let encoded = EncodedQuery::from_back_translated(&bt);
        prop_assert_eq!(encoded.decode(), bt);
    }

    /// Every coding sequence of a protein scores at least
    /// `2 × residues` under the paper's patterns (the third codon position
    /// may miss only for Ser's AGY codons; positions 1–2 can mismatch only
    /// for Ser too).
    #[test]
    fn coding_sequences_score_high(protein in arb_protein(24)) {
        use fabp::bio::codon::codons_of;
        // Worst-case coding sequence: always pick the last codon in the
        // table (hits Ser's AGC).
        let coding: RnaSeq = protein
            .iter()
            .flat_map(|&aa| codons_of(aa).last().unwrap().0)
            .collect();
        let bt = BackTranslatedQuery::from_protein(&protein);
        let score = bt.score_window(coding.as_slice());
        let ser_count = protein.iter().filter(|&&aa| aa == AminoAcid::Ser).count();
        prop_assert!(score >= bt.len() - 2 * ser_count);
        if ser_count == 0 {
            prop_assert_eq!(score, bt.len());
        }
    }

    /// Scores are bounded by the query length and the number of scored
    /// positions is exactly `L_r − L_q + 1`.
    #[test]
    fn score_bounds_and_instance_count(
        protein in arb_protein(10),
        reference in arb_rna(30, 400),
    ) {
        let bt = BackTranslatedQuery::from_protein(&protein);
        let scores = bt.score_all_positions(reference.as_slice());
        if reference.len() >= bt.len() {
            prop_assert_eq!(scores.len(), reference.len() - bt.len() + 1);
        } else {
            prop_assert!(scores.is_empty());
        }
        for s in scores {
            prop_assert!(s <= bt.len());
        }
    }

    /// Packing into AXI beats and unpacking is the identity, and beats are
    /// full except possibly the last.
    #[test]
    fn axi_beat_round_trip(reference in arb_rna(0, 1500)) {
        let packed = PackedSeq::from_rna(&reference);
        let beats = axi_beats(&packed);
        let unpacked: RnaSeq = beats.iter().flat_map(|b| b.iter()).collect();
        prop_assert_eq!(&unpacked, &reference);
        for (i, beat) in beats.iter().enumerate() {
            if i + 1 < beats.len() {
                prop_assert_eq!(beat.valid, ELEMENTS_PER_BEAT);
            }
        }
    }

    /// Merged hit regions partition the hit set and are disjoint.
    #[test]
    fn regions_partition_hits(
        protein in arb_protein(6),
        reference in arb_rna(30, 300),
        fraction in 0.0f64..=0.8,
    ) {
        let aligner = FabpAligner::builder()
            .protein_query(&protein)
            .threshold(Threshold::Fraction(fraction))
            .build()
            .unwrap();
        let outcome = aligner.search(&reference);
        let regions = outcome.regions();
        let total: usize = regions.iter().map(|r| r.hit_count).sum();
        prop_assert_eq!(total, outcome.hits.len());
        for pair in regions.windows(2) {
            prop_assert!(pair[0].end <= pair[1].start);
        }
    }

    /// Translation of any coding RNA built from a protein recovers the
    /// protein (inverse property across bio layers).
    #[test]
    fn translation_inverts_coding(
        protein in arb_protein(40),
        seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let coding = fabp::bio::generate::coding_rna_for(&protein, &mut rng);
        prop_assert_eq!(
            fabp::bio::translate::translate_frame(&coding, 0),
            protein
        );
    }
}
