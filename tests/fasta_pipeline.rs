//! File-backed pipeline: write a synthetic database and query set as
//! FASTA, read them back, and run the search — the workflow a downstream
//! user runs against real NCBI extracts.

use fabp::bio::fasta::{read_dna, read_proteins, write_records, Record};
use fabp::bio::generate::{PlantedDatabase, PlantedDatabaseConfig};
use fabp::core::aligner::{FabpAligner, Threshold};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::path::PathBuf;

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("fabp_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn fasta_round_trip_search() {
    let mut rng = StdRng::seed_from_u64(404);
    let db = PlantedDatabase::generate(
        &PlantedDatabaseConfig {
            reference_len: 12_000,
            num_queries: 4,
            query_len: 25,
            paper_codons_only: true,
            ..PlantedDatabaseConfig::default()
        },
        &mut rng,
    );

    // Write the reference as DNA (the NCBI `nt` flavour) and the queries
    // as protein FASTA.
    let ref_path = temp_path("ref.fna");
    let query_path = temp_path("queries.faa");
    {
        let records = vec![Record::new(
            "synthetic_db",
            db.reference.to_dna().to_string(),
        )];
        let mut file = fs::File::create(&ref_path).unwrap();
        write_records(&mut file, &records, 70).unwrap();

        let records: Vec<Record> = db
            .queries
            .iter()
            .enumerate()
            .map(|(i, q)| Record::new(format!("q{i}"), q.to_string()))
            .collect();
        let mut file = fs::File::create(&query_path).unwrap();
        write_records(&mut file, &records, 60).unwrap();
    }

    // Read back and search.
    let references = read_dna(fs::File::open(&ref_path).unwrap()).unwrap();
    assert_eq!(references.len(), 1);
    let reference = references[0].1.to_rna();
    let queries = read_proteins(fs::File::open(&query_path).unwrap()).unwrap();
    assert_eq!(queries.len(), 4);

    for (i, (id, query)) in queries.iter().enumerate() {
        assert_eq!(id, &format!("q{i}"));
        let aligner = FabpAligner::builder()
            .protein_query(query)
            .threshold(Threshold::Fraction(1.0))
            .build()
            .unwrap();
        let outcome = aligner.search(&reference);
        let planted = &db.regions[i];
        assert!(
            outcome.hits.iter().any(|h| h.position == planted.position),
            "query {i}: planted hit at {} not found after FASTA round trip",
            planted.position
        );
    }

    fs::remove_file(ref_path).ok();
    fs::remove_file(query_path).ok();
}

#[test]
fn fasta_errors_surface() {
    // Sequence data before a header is a structural error.
    let err = fabp::bio::fasta::read_records("ACGT\n".as_bytes()).unwrap_err();
    assert!(err.to_string().contains("header"));
    // A protein file read as DNA fails on the first bad symbol.
    assert!(read_dna(">p\nMKWVF\n".as_bytes()).is_err());
}
