//! End-to-end test of the `fabp_search` command-line binary.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn temp_file(name: &str, contents: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("fabp_cli_{}_{name}", std::process::id()));
    fs::write(&p, contents).unwrap();
    p
}

#[test]
fn cli_finds_planted_hit() {
    let query = temp_file("q.faa", ">q1 demo\nMFSR\n");
    // DNA spelling of AUG UUC UCA AGA planted at offset 4.
    let reference = temp_file("db.fna", ">db1\nGGGGATGTTCTCAAGAGGGG\n");

    let output = Command::new(env!("CARGO_BIN_EXE_fabp_search"))
        .args([
            "--query",
            query.to_str().unwrap(),
            "--reference",
            reference.to_str().unwrap(),
            "--threshold",
            "1.0",
        ])
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).unwrap();
    let hit_line = stdout
        .lines()
        .find(|l| l.starts_with("q1\t"))
        .unwrap_or_else(|| panic!("no hit line in output:\n{stdout}"));
    let fields: Vec<&str> = hit_line.split('\t').collect();
    assert_eq!(fields[1], "db1");
    assert_eq!(fields[4], "4", "best position");
    assert_eq!(fields[5], "12", "score");
    assert_eq!(fields[6], "12", "max score");

    fs::remove_file(query).ok();
    fs::remove_file(reference).ok();
}

#[test]
fn cli_cycle_engine_reports_stats() {
    let query = temp_file("q2.faa", ">q\nMF\n");
    let reference = temp_file("db2.fna", ">r\nAAATGTTTAAA\n");
    let output = Command::new(env!("CARGO_BIN_EXE_fabp_search"))
        .args([
            "--query",
            query.to_str().unwrap(),
            "--reference",
            reference.to_str().unwrap(),
            "--engine",
            "cycle",
            "--stats",
        ])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("cycles"), "stats missing: {stderr}");

    fs::remove_file(query).ok();
    fs::remove_file(reference).ok();
}

#[test]
fn cli_rejects_missing_files_and_bad_engine() {
    let status = Command::new(env!("CARGO_BIN_EXE_fabp_search"))
        .args([
            "--query",
            "/nonexistent.faa",
            "--reference",
            "/nonexistent.fna",
        ])
        .output()
        .expect("binary runs");
    assert!(!status.status.success());

    let query = temp_file("q3.faa", ">q\nMF\n");
    let reference = temp_file("db3.fna", ">r\nACGT\n");
    let output = Command::new(env!("CARGO_BIN_EXE_fabp_search"))
        .args([
            "--query",
            query.to_str().unwrap(),
            "--reference",
            reference.to_str().unwrap(),
            "--engine",
            "quantum",
        ])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown engine"));

    fs::remove_file(query).ok();
    fs::remove_file(reference).ok();
}

#[test]
fn cli_usage_on_no_args() {
    let output = Command::new(env!("CARGO_BIN_EXE_fabp_search"))
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("usage:"));
}
