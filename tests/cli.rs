//! End-to-end test of the `fabp_search` command-line binary.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn temp_file(name: &str, contents: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("fabp_cli_{}_{name}", std::process::id()));
    fs::write(&p, contents).unwrap();
    p
}

#[test]
fn cli_finds_planted_hit() {
    let query = temp_file("q.faa", ">q1 demo\nMFSR\n");
    // DNA spelling of AUG UUC UCA AGA planted at offset 4.
    let reference = temp_file("db.fna", ">db1\nGGGGATGTTCTCAAGAGGGG\n");

    let output = Command::new(env!("CARGO_BIN_EXE_fabp_search"))
        .args([
            "--query",
            query.to_str().unwrap(),
            "--reference",
            reference.to_str().unwrap(),
            "--threshold",
            "1.0",
        ])
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).unwrap();
    let hit_line = stdout
        .lines()
        .find(|l| l.starts_with("q1\t"))
        .unwrap_or_else(|| panic!("no hit line in output:\n{stdout}"));
    let fields: Vec<&str> = hit_line.split('\t').collect();
    assert_eq!(fields[1], "db1");
    assert_eq!(fields[4], "4", "best position");
    assert_eq!(fields[5], "12", "score");
    assert_eq!(fields[6], "12", "max score");

    fs::remove_file(query).ok();
    fs::remove_file(reference).ok();
}

#[test]
fn cli_cycle_engine_reports_stats() {
    let query = temp_file("q2.faa", ">q\nMF\n");
    let reference = temp_file("db2.fna", ">r\nAAATGTTTAAA\n");
    let output = Command::new(env!("CARGO_BIN_EXE_fabp_search"))
        .args([
            "--query",
            query.to_str().unwrap(),
            "--reference",
            reference.to_str().unwrap(),
            "--engine",
            "cycle",
            "--stats",
        ])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert!(stderr.contains("cycles"), "stats missing: {stderr}");

    fs::remove_file(query).ok();
    fs::remove_file(reference).ok();
}

#[test]
fn cli_rejects_missing_files_and_bad_engine() {
    let status = Command::new(env!("CARGO_BIN_EXE_fabp_search"))
        .args([
            "--query",
            "/nonexistent.faa",
            "--reference",
            "/nonexistent.fna",
        ])
        .output()
        .expect("binary runs");
    assert!(!status.status.success());

    let query = temp_file("q3.faa", ">q\nMF\n");
    let reference = temp_file("db3.fna", ">r\nACGT\n");
    let output = Command::new(env!("CARGO_BIN_EXE_fabp_search"))
        .args([
            "--query",
            query.to_str().unwrap(),
            "--reference",
            reference.to_str().unwrap(),
            "--engine",
            "quantum",
        ])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("unknown engine"));

    fs::remove_file(query).ok();
    fs::remove_file(reference).ok();
}

#[test]
fn cli_usage_on_no_args() {
    let output = Command::new(env!("CARGO_BIN_EXE_fabp_search"))
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("usage:"));
}

#[test]
fn cli_metrics_and_trace_outputs_are_parseable() {
    let query = temp_file("q4.faa", ">q\nMFSRMFSR\n");
    let reference = temp_file(
        "db4.fna",
        ">r\nGGGGATGTTCTCAAGAATGTTCTCAAGAGGGGACGTACGTACGTACGTACGT\n",
    );
    let metrics = temp_file("m.prom", "");
    let trace = temp_file("t.json", "");

    let output = Command::new(env!("CARGO_BIN_EXE_fabp_search"))
        .args([
            "--query",
            query.to_str().unwrap(),
            "--reference",
            reference.to_str().unwrap(),
            "--engine",
            "cycle",
            "--threshold",
            "0.5",
            "--quiet",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    // --quiet suppresses all informational stderr.
    assert!(
        output.stderr.is_empty(),
        "quiet run wrote stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    // Prometheus exposition: >= 10 distinct metric names, including the
    // headline engine/host series, and every sample line parses.
    let prom = fs::read_to_string(&metrics).unwrap();
    let mut names = std::collections::BTreeSet::new();
    for line in prom.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            names.insert(rest.split(' ').next().unwrap().to_string());
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let value = line.rsplit(' ').next().unwrap();
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample line: {line}"
        );
    }
    assert!(
        names.len() >= 10,
        "expected >= 10 distinct metrics, got {}: {names:?}",
        names.len()
    );
    for required in [
        "fabp_axi_stall_cycles_total",
        "fabp_engine_beats_total",
        "fabp_hits_total",
        "fabp_host_stage_seconds",
    ] {
        assert!(names.contains(required), "missing {required} in {names:?}");
    }

    // Chrome trace: structurally valid JSON with the modelled host
    // pipeline stages present as complete events.
    let trace_text = fs::read_to_string(&trace).unwrap();
    assert!(trace_text.starts_with("{\"traceEvents\": ["));
    assert_eq!(
        trace_text.matches('{').count(),
        trace_text.matches('}').count()
    );
    for stage in [
        "end_to_end",
        "encode",
        "query_transfer",
        "kernel",
        "readback",
    ] {
        assert!(
            trace_text.contains(&format!("\"name\": \"{stage}\"")),
            "trace missing stage {stage}"
        );
    }

    fs::remove_file(query).ok();
    fs::remove_file(reference).ok();
    fs::remove_file(metrics).ok();
    fs::remove_file(trace).ok();
}

#[test]
fn cli_names_flag_on_missing_or_bad_value() {
    // Missing value: the error names the flag left dangling.
    let output = Command::new(env!("CARGO_BIN_EXE_fabp_search"))
        .args(["--query", "q.faa", "--reference", "db.fna", "--threshold"])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("missing value for --threshold"),
        "stderr: {stderr}"
    );

    // Unparseable value: the error names both the flag and the value.
    let output = Command::new(env!("CARGO_BIN_EXE_fabp_search"))
        .args(["--query", "q.faa", "--reference", "db.fna", "--top", "many"])
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("invalid value \"many\" for --top"),
        "stderr: {stderr}"
    );
}
