//! End-to-end integration: the full Fig. 1 flow exercised across all
//! crates, with every execution layer (golden model, bit-level encoder,
//! gate-level comparator, cycle-level engine, fast software engine)
//! agreeing on the same data.

use fabp::bio::backtranslate::BackTranslatedQuery;
use fabp::bio::generate::{coding_rna_for_paper_patterns, random_protein, random_rna};
use fabp::bio::seq::{PackedSeq, ProteinSeq, RnaSeq};
use fabp::core::aligner::{Engine, FabpAligner, Threshold};
use fabp::core::software::SoftwareEngine;
use fabp::encoding::encoder::EncodedQuery;
use fabp::fpga::comparator::ComparatorCell;
use fabp::fpga::engine::{EngineConfig, FabpEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn five_layers_agree_on_scores() {
    let mut rng = StdRng::seed_from_u64(100);
    let protein = random_protein(18, &mut rng);
    let reference = random_rna(800, &mut rng);

    let golden = BackTranslatedQuery::from_protein(&protein);
    let encoded = EncodedQuery::from_protein(&protein);
    let cell = ComparatorCell::new();
    let software = SoftwareEngine::new(&encoded);

    let golden_scores = golden.score_all_positions(reference.as_slice());
    let encoded_scores = encoded.score_all_positions(reference.as_slice());
    let software_scores = software.score_all(reference.as_slice());

    assert_eq!(golden_scores.len(), encoded_scores.len());
    assert_eq!(golden_scores.len(), software_scores.len());
    for (k, &g) in golden_scores.iter().enumerate() {
        assert_eq!(g, encoded_scores[k], "bit-level encoder at {k}");
        assert_eq!(g as u32, software_scores[k], "fused software at {k}");
        let lut = cell.score_window(encoded.instructions(), &reference.as_slice()[k..]);
        assert_eq!(g, lut, "gate-level comparator at {k}");
    }

    // Cycle engine hits = thresholded golden scores.
    let threshold = (golden.len() as u32 * 3) / 4;
    let engine = FabpEngine::new(encoded, EngineConfig::kintex7(threshold)).unwrap();
    let run = engine.run(&PackedSeq::from_rna(&reference));
    let expected: Vec<usize> = golden_scores
        .iter()
        .enumerate()
        .filter(|&(_, &s)| s as u32 >= threshold)
        .map(|(k, _)| k)
        .collect();
    let got: Vec<usize> = run.hits.iter().map(|h| h.position).collect();
    assert_eq!(got, expected, "cycle engine hit positions");
}

#[test]
fn planted_homology_found_through_the_public_api() {
    let mut rng = StdRng::seed_from_u64(101);
    let protein = random_protein(30, &mut rng);
    let coding = coding_rna_for_paper_patterns(&protein, &mut rng);
    let mut bases = random_rna(5_000, &mut rng).into_inner();
    bases.splice(2_345..2_345 + coding.len(), coding.iter().copied());
    let reference = RnaSeq::from(bases);

    for engine in [
        Engine::Software { threads: 2 },
        Engine::CycleAccurate(Box::new(EngineConfig::kintex7(0))),
    ] {
        let aligner = FabpAligner::builder()
            .protein_query(&protein)
            .threshold(Threshold::Fraction(1.0))
            .engine(engine)
            .build()
            .unwrap();
        let outcome = aligner.search(&reference);
        assert!(
            outcome
                .hits
                .iter()
                .any(|h| h.position == 2_345 && h.score as usize == outcome.query_len),
            "planted hit missing"
        );
    }
}

#[test]
fn dna_reference_is_searched_via_t_to_u() {
    // DNA database input: the paper aligns against DNA or RNA references.
    let protein: ProteinSeq = "MKW".parse().unwrap();
    let coding = "ATGAAATGG"; // DNA spelling of AUG AAA UGG
    let reference_dna: fabp::bio::seq::DnaSeq = format!("CCCC{coding}CCCC").parse().unwrap();
    let aligner = FabpAligner::builder()
        .protein_query(&protein)
        .threshold(Threshold::Fraction(1.0))
        .build()
        .unwrap();
    let outcome = aligner.search(&reference_dna.to_rna());
    assert_eq!(outcome.hits.len(), 1);
    assert_eq!(outcome.hits[0].position, 4);
}

#[test]
fn cycle_engine_statistics_are_self_consistent() {
    let mut rng = StdRng::seed_from_u64(102);
    let protein = random_protein(40, &mut rng);
    let reference = random_rna(100_000, &mut rng);
    let encoded = EncodedQuery::from_protein(&protein);
    let qlen = encoded.len();
    let engine = FabpEngine::new(encoded, EngineConfig::kintex7(1_000)).unwrap();
    let run = engine.run(&PackedSeq::from_rna(&reference));

    let stats = run.stats;
    assert_eq!(stats.beats as usize, reference.len().div_ceil(256));
    assert_eq!(stats.bytes_read, stats.beats * 64);
    assert_eq!(
        stats.instances_evaluated as usize,
        reference.len() - qlen + 1
    );
    assert!(stats.cycles >= stats.beats, "at least one cycle per beat");
    assert!(stats.kernel_seconds > 0.0);
    assert!(stats.achieved_bandwidth <= 12.8e9 * 1.001);
}

#[test]
fn search_outcome_regions_cover_all_hits() {
    let mut rng = StdRng::seed_from_u64(103);
    let protein = random_protein(10, &mut rng);
    let reference = random_rna(3_000, &mut rng);
    let aligner = FabpAligner::builder()
        .protein_query(&protein)
        .threshold(Threshold::Fraction(0.6))
        .build()
        .unwrap();
    let outcome = aligner.search(&reference);
    let regions = outcome.regions();
    let covered: usize = regions.iter().map(|r| r.hit_count).sum();
    assert_eq!(covered, outcome.hits.len());
    for window in regions.windows(2) {
        assert!(window[0].end <= window[1].start, "regions must be disjoint");
    }
}
