//! The paper's quantitative claims, encoded as integration tests against
//! the models (ranges are the reproduction tolerances documented in
//! EXPERIMENTS.md).

use fabp::bio::alphabet::AminoAcid;
use fabp::bio::backtranslate::back_translate;
use fabp::bio::codon::codons_of;
use fabp::fpga::comparator::build_comparator_netlist;
use fabp::fpga::device::FpgaDevice;
use fabp::fpga::popcount::{popcounter_cost, PopStyle};
use fabp::fpga::resources::{crossover_query_len, plan, ArchParams, Bottleneck};
use fabp::platforms::models::GpuModel;
use fabp::platforms::power;
use fabp::platforms::workload::Workload;

/// §III-D: "FabP uses only two Lookup Tables" per comparator.
#[test]
fn claim_two_lut_comparator() {
    let (netlist, _) = build_comparator_netlist();
    assert_eq!(netlist.resources().luts, 2);
}

/// §III-B: the 6-bit instruction encodes 21 symbols' patterns; degenerate
/// codon patterns accept exactly the codon sets (Ser excepted).
#[test]
fn claim_encoding_preserves_back_translation() {
    for aa in AminoAcid::ALL {
        let accepted = back_translate(aa).accepted_codons();
        let expected: Vec<_> = codons_of(aa)
            .iter()
            .copied()
            .filter(|c| aa != AminoAcid::Ser || c.0[0] == fabp::bio::alphabet::Nucleotide::U)
            .collect();
        assert_eq!(accepted.len(), expected.len(), "{aa:?}");
        for c in expected {
            assert!(accepted.contains(&c), "{aa:?} missing {c}");
        }
    }
}

/// Table I: FabP-50 utilisation shape — LUT-heavy, one DSP per instance,
/// full bandwidth.
#[test]
fn claim_table1_fabp50() {
    let p = plan(&FpgaDevice::kintex7(), 150, 1, &ArchParams::default()).unwrap();
    assert_eq!(p.segments, 1);
    assert_eq!(p.bottleneck, Bottleneck::Bandwidth);
    // Paper: 58% LUT, 16% FF, 31% DSP. Tolerance ±8 points.
    assert!(
        (p.utilization.lut - 0.58).abs() < 0.08,
        "LUT {}",
        p.utilization.lut
    );
    assert!(
        (p.utilization.ff - 0.16).abs() < 0.08,
        "FF {}",
        p.utilization.ff
    );
    assert!(
        (p.utilization.dsp - 0.31).abs() < 0.05,
        "DSP {}",
        p.utilization.dsp
    );
}

/// Table I: FabP-250 — segmented, near-full LUTs, reduced bandwidth.
#[test]
fn claim_table1_fabp250() {
    let p = plan(&FpgaDevice::kintex7(), 750, 1, &ArchParams::default()).unwrap();
    assert!(p.segments >= 3, "segments {}", p.segments);
    assert_eq!(p.bottleneck, Bottleneck::Resources);
    // Paper: 98% LUT, 40% FF, 68% DSP; BW 3.4 of 12.8 (factor ~3.8).
    assert!(p.utilization.lut > 0.85, "LUT {}", p.utilization.lut);
    assert!(
        (p.utilization.ff - 0.40).abs() < 0.10,
        "FF {}",
        p.utilization.ff
    );
    assert!(
        (p.utilization.dsp - 0.68).abs() < 0.12,
        "DSP {}",
        p.utilization.dsp
    );
    let bw = 12.8 / p.segments as f64;
    assert!((2.0..=5.0).contains(&bw), "effective bandwidth {bw}");
}

/// §IV-B: crossover from bandwidth-bound to resource-bound "for sequences
/// longer than ~70" amino acids. Model tolerance: 60–100 aa.
#[test]
fn claim_crossover_band() {
    let cross = crossover_query_len(&FpgaDevice::kintex7(), &ArchParams::default());
    let aa = cross / 3;
    assert!((60..=100).contains(&aa), "crossover at {aa} aa");
}

/// §III-D: the hand-crafted Pop-Counter is smaller than the tree-adder
/// baseline (paper: 20% smaller; our binary-tree baseline yields more —
/// direction must hold at every deployed width).
#[test]
fn claim_popcounter_reduction() {
    for width in [150usize, 450, 750] {
        let hc = popcounter_cost(width, PopStyle::HandCrafted).luts;
        let tree = popcounter_cost(width, PopStyle::TreeAdder).luts;
        let reduction = 1.0 - hc as f64 / tree as f64;
        assert!(
            reduction >= 0.15,
            "width {width}: reduction {reduction:.2} below the paper's direction"
        );
    }
}

/// §III-C: nominal bandwidth BW = 512 bits × Freq; one beat carries 256
/// reference elements.
#[test]
fn claim_bandwidth_formula() {
    let dev = FpgaDevice::kintex7();
    assert!((dev.channel_bandwidth - 512.0 / 8.0 * dev.clock_hz).abs() < 1.0);
    assert_eq!(fabp::encoding::ELEMENTS_PER_BEAT, 256);
}

/// §IV headline energy ratios are reproducible from the power constants
/// and timing ratios.
#[test]
fn claim_energy_ratios() {
    // FabP vs GPU: paper 23.2x at an 8.1% speed edge.
    let gpu_ratio = power::GPU_W / power::FPGA_W * 1.081;
    assert!(
        (gpu_ratio - 23.2).abs() < 1.0,
        "gpu energy ratio {gpu_ratio}"
    );
    // FabP vs CPU-12t: paper 266.8x at 24.8x speed.
    let cpu_ratio = power::CPU_TWELVE_THREAD_W / power::FPGA_W * 24.8;
    assert!(
        (cpu_ratio - 266.8).abs() < 10.0,
        "cpu energy ratio {cpu_ratio}"
    );
}

/// Fig. 6(a) shape: the GPU model and the FabP model cross — GPU ahead on
/// short queries, FabP ahead on long ones, ~8% apart on average.
#[test]
fn claim_fig6_gpu_fabp_shape() {
    use fabp::encoding::encoder::EncodedQuery;
    use fabp::fpga::engine::{EngineConfig, FabpEngine};

    let gpu = GpuModel::default();
    let mut ratios = Vec::new();
    for aa in Workload::PAPER_QUERY_SWEEP {
        let workload = Workload::paper_scale(aa);
        let protein: fabp::bio::seq::ProteinSeq = "M".repeat(aa).parse().unwrap();
        let query = EncodedQuery::from_protein(&protein);
        let engine = FabpEngine::new(query, EngineConfig::kintex7(100)).unwrap();
        let fabp = engine.model_kernel_seconds(workload.packed_reference_bytes());
        ratios.push(gpu.seconds(&workload) / fabp);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        (0.95..=1.25).contains(&mean),
        "mean GPU/FabP ratio {mean:.3} (paper 1.081)"
    );
    assert!(
        ratios.last().unwrap() > ratios.first().unwrap(),
        "FabP's edge must grow with query length: {ratios:?}"
    );
}

/// §IV-A: the empirical indel model's mean matches the cited statistics
/// (0.09 indels per kilobase).
#[test]
fn claim_indel_statistics() {
    let model = fabp::bio::mutate::IndelModel::empirical();
    assert!((model.mean_events_per_kb() - 0.09).abs() < 1e-9);
}

/// §IV-B: "an FPGA with more LUTs can outperform the GPU-based
/// implementation" — the Virtex-class part stays unsegmented at 250 aa and
/// beats the GPU model.
#[test]
fn claim_bigger_fpga_beats_gpu() {
    use fabp::encoding::encoder::EncodedQuery;
    use fabp::fpga::engine::{EngineConfig, FabpEngine};

    let workload = Workload::paper_scale(250);
    let protein: fabp::bio::seq::ProteinSeq = "M".repeat(250).parse().unwrap();
    let query = EncodedQuery::from_protein(&protein);
    let mut config = EngineConfig::kintex7(100);
    config.device = FpgaDevice::virtex7();
    let engine = FabpEngine::new(query, config).unwrap();
    assert_eq!(engine.plan().segments, 1);
    let fabp = engine.model_kernel_seconds(workload.packed_reference_bytes());
    let gpu = GpuModel::default().seconds(&workload);
    assert!(fabp < gpu, "virtex {fabp} vs gpu {gpu}");
}
