//! Database search scenario: the workload the paper's introduction
//! motivates — characterising an unknown protein by searching a nucleotide
//! database for regions that could encode it.
//!
//! Builds a synthetic database with planted (mutated) homologies, searches
//! it with FabP and with the TBLASTN-like CPU baseline, and compares what
//! each finds.
//!
//! Run with: `cargo run --release --example protein_search`

use fabp::baselines::tblastn::{tblastn_search, TblastnConfig};
use fabp::bio::generate::{PlantedDatabase, PlantedDatabaseConfig};
use fabp::bio::mutate::SubstitutionModel;
use fabp::core::aligner::{FabpAligner, Threshold};
use fabp::core::batch;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2021);

    // A 200 kbase "database" with eight planted homologies, each carrying
    // 3% nucleotide substitutions relative to the query's coding sequence.
    let config = PlantedDatabaseConfig {
        reference_len: 200_000,
        num_queries: 8,
        query_len: 60,
        substitutions: SubstitutionModel::new(0.03),
        ..PlantedDatabaseConfig::default()
    };
    let db = PlantedDatabase::generate(&config, &mut rng);
    println!(
        "database: {} bases, {} planted homologies of {} aa (3% substitutions)",
        db.reference.len(),
        db.queries.len(),
        config.query_len
    );

    // --- FabP batch search at a 90% threshold -------------------------
    let outcomes = batch::search_all(&db.queries, &db.reference, Threshold::Fraction(0.9), 4)?;
    println!("\nFabP (90% threshold):");
    let mut fabp_found = 0;
    for (region, outcome) in db.regions.iter().zip(&outcomes) {
        let found = outcome
            .regions()
            .iter()
            .any(|r| r.start.abs_diff(region.position) < outcome.query_len);
        fabp_found += usize::from(found);
        let best = fabp::core::hits::best_hit(&outcome.hits);
        println!(
            "  query {:>2}: planted @{:>6} ({} subs) -> {}",
            region.query_index,
            region.position,
            region.mutations.substitutions,
            match best {
                Some(h) => format!(
                    "best hit @{} score {}/{}",
                    h.position, h.score, outcome.query_len
                ),
                None => "no hit".to_string(),
            }
        );
    }
    println!("  recall: {fabp_found}/{}", db.regions.len());

    // --- TBLASTN baseline ----------------------------------------------
    println!("\nTBLASTN-like baseline:");
    let mut blast_found = 0;
    for (i, query) in db.queries.iter().enumerate() {
        let result = tblastn_search(query, &db.reference, &TblastnConfig::default());
        let planted = &db.regions[i];
        let found = result
            .hsps
            .iter()
            .any(|h| h.nucleotide_pos.abs_diff(planted.position) < 3 * config.query_len);
        blast_found += usize::from(found);
        let best = result.hsps.iter().map(|h| h.score).max();
        println!(
            "  query {:>2}: {} HSPs, best score {:?}, planted region {}",
            i,
            result.hsps.len(),
            best,
            if found { "found" } else { "MISSED" }
        );
    }
    println!("  recall: {blast_found}/{}", db.queries.len());

    // --- Single deep-dive: region detail -------------------------------
    let aligner = FabpAligner::builder()
        .protein_query(&db.queries[0])
        .threshold(Threshold::Fraction(0.85))
        .build()?;
    let outcome = aligner.search(&db.reference);
    println!("\nquery 0 at a relaxed 85% threshold:");
    for region in outcome.regions() {
        println!(
            "  region [{}, {}): {} hits, best score {}/{} at {}",
            region.start,
            region.end,
            region.hit_count,
            region.best.score,
            outcome.query_len,
            region.best.position
        );
    }

    Ok(())
}
