//! Hardware-engineer's tour: the EDA toolchain around the FabP netlists.
//!
//! Builds a complete gate-level alignment instance for a small query, then
//! exercises every tool a hardware engineer would reach for: the query
//! disassembler, structural Verilog emission, static timing analysis, VCD
//! waveform capture of the pipelined Pop-Counter, and stuck-at fault
//! simulation of the comparator.
//!
//! Run with: `cargo run --release --example hardware_debug`
//! (writes `artifacts/instance.v` and `artifacts/pop36.vcd`)

use fabp::bio::seq::ProteinSeq;
use fabp::encoding::encoder::EncodedQuery;
use fabp::fpga::fault::{enumerate_faults, simulate_faults};
use fabp::fpga::instance::AlignmentInstance;
use fabp::fpga::pipeline::PipelinedPopCounter;
use fabp::fpga::popcount::PopStyle;
use fabp::fpga::sta::{analyze, DelayModel};
use fabp::fpga::vcd::VcdTracer;
use fabp::fpga::verilog::emit_verilog;
use std::fs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    fs::create_dir_all("artifacts")?;
    let protein: ProteinSeq = "MFSR*".parse()?;
    let query = EncodedQuery::from_protein(&protein);

    // 1. Disassemble the instruction stream (the paper's §III-B example).
    println!("== query disassembly (6-bit FabP instructions) ==");
    print!("{}", query.disassemble());

    // 2. Build the gate-level alignment instance and report resources.
    let threshold = 13u32;
    let instance = AlignmentInstance::build(&query, threshold);
    println!("\n== gate-level alignment instance ==");
    println!("threshold: {threshold}/{}", query.len());
    println!("resources: {}", instance.resources());

    // 3. Static timing.
    let report = analyze(instance.netlist(), &DelayModel::default());
    println!(
        "critical path: {:.2} ns ({} LUT levels) -> fmax {:.0} MHz; meets 200 MHz: {}",
        report.critical_path_ns,
        report.levels,
        report.fmax_hz / 1e6,
        report.meets(200.0e6)
    );

    // 4. Verilog emission.
    let verilog = emit_verilog(instance.netlist(), "fabp_instance");
    fs::write("artifacts/instance.v", &verilog)?;
    println!(
        "wrote artifacts/instance.v ({} lines, {} LUT6 instantiations)",
        verilog.lines().count(),
        verilog.matches("LUT6 #(").count()
    );

    // 5. VCD waveform of the pipelined Pop-Counter filling up.
    let mut pc = PipelinedPopCounter::build(36, PopStyle::HandCrafted);
    let mut tracer = VcdTracer::for_outputs("pop36", pc.netlist());
    let stimulus: Vec<Vec<bool>> = (0..=36).map(|k| (0..36).map(|i| i < k).collect()).collect();
    for bits in &stimulus {
        let _ = pc.cycle(bits);
        tracer.sample(pc.netlist());
    }
    fs::write("artifacts/pop36.vcd", tracer.render())?;
    println!(
        "wrote artifacts/pop36.vcd ({} cycles, latency {} cycles)",
        tracer.cycles(),
        pc.latency()
    );

    // 6. Fault simulation of the comparator with exhaustive vectors.
    let (comparator, _) = fabp::fpga::comparator::build_comparator_netlist();
    let faults = enumerate_faults(&comparator);
    let vectors: Vec<Vec<bool>> = (0u32..(1 << 11))
        .map(|v| (0..11).map(|b| (v >> b) & 1 == 1).collect())
        .collect();
    let fault_report = simulate_faults(&comparator, &faults, &vectors, 1);
    println!(
        "comparator fault simulation: {}/{} stuck-at faults detected ({:.0}% coverage)",
        fault_report.detected.len(),
        faults.len(),
        fault_report.coverage() * 100.0
    );

    Ok(())
}
