//! Resource explorer: how FabP maps onto different FPGAs (paper §IV-B).
//!
//! Sweeps query lengths over three device classes and prints the planned
//! architecture: segmentation, utilisation, bottleneck and the modelled
//! kernel time for a 1 Gbase search — including the paper's observation
//! that "an FPGA with more LUTs can outperform the GPU-based
//! implementation".
//!
//! Run with: `cargo run --release --example resource_explorer`

use fabp::bio::generate::random_protein;
use fabp::encoding::encoder::EncodedQuery;
use fabp::fpga::device::FpgaDevice;
use fabp::fpga::engine::{EngineConfig, FabpEngine};
use fabp::fpga::resources::{crossover_query_len, plan, ArchParams};
use fabp::platforms::models::GpuModel;
use fabp::platforms::workload::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let params = ArchParams::default();
    let mut rng = StdRng::seed_from_u64(7);

    for device in [
        FpgaDevice::artix7(),
        FpgaDevice::kintex7(),
        FpgaDevice::virtex7(),
    ] {
        println!("== {device}");
        println!(
            "{:>9} {:>9} {:>7} {:>7} {:>12} {:>18}",
            "query aa", "segments", "LUT %", "DSP %", "1Gb kernel", "bottleneck"
        );
        for aa in [50usize, 100, 150, 200, 250] {
            let elements = aa * 3;
            match plan(&device, elements, 1, &params) {
                Ok(p) => {
                    let query = EncodedQuery::from_protein(&random_protein(aa, &mut rng));
                    let mut config = EngineConfig::kintex7((query.len() as u32).saturating_sub(2));
                    config.device = device.clone();
                    let engine = FabpEngine::new(query, config).expect("plan succeeded");
                    let kernel = engine
                        .model_kernel_seconds(Workload::paper_scale(aa).packed_reference_bytes());
                    println!(
                        "{:>9} {:>9} {:>6.0}% {:>6.0}% {:>9.1} ms {:>18}",
                        aa,
                        p.segments,
                        p.utilization.lut * 100.0,
                        p.utilization.dsp * 100.0,
                        kernel * 1e3,
                        p.bottleneck.to_string()
                    );
                }
                Err(e) => println!("{aa:>9}  {e}"),
            }
        }
        let cross = crossover_query_len(&device, &params);
        println!(
            "   crossover (largest unsegmented query): {} aa\n",
            cross / 3
        );
    }

    // The §IV-B projection: a bigger FPGA vs the GPU on long queries.
    let gpu = GpuModel::default();
    println!("GPU model vs FPGA kernels on a 250-aa query, 1 Gbase:");
    println!(
        "  GTX 1080Ti (model):   {:.1} ms",
        gpu.seconds(&Workload::paper_scale(250)) * 1e3
    );
    for device in [FpgaDevice::kintex7(), FpgaDevice::virtex7()] {
        let query = EncodedQuery::from_protein(&random_protein(250, &mut rng));
        let mut config = EngineConfig::kintex7((query.len() as u32).saturating_sub(2));
        config.device = device.clone();
        if let Ok(engine) = FabpEngine::new(query, config) {
            println!(
                "  {:<22} {:.1} ms  ({} segment(s))",
                format!("{}:", device.name),
                engine.model_kernel_seconds(Workload::paper_scale(250).packed_reference_bytes())
                    * 1e3,
                engine.plan().segments
            );
        }
    }
}
