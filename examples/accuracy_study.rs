//! Accuracy study: what does skipping indels cost? (paper §IV-A)
//!
//! FabP only supports substitutions; the paper argues this is fine because
//! indels are rare in protein-coding regions. This example mutates planted
//! coding sequences with increasing indel pressure and measures FabP's
//! recall against an indel-tolerant Smith–Waterman ground truth.
//!
//! Run with: `cargo run --release --example accuracy_study`

use fabp::baselines::sw::{sw_nucleotide, GapPenalties, NucScoring};
use fabp::bio::generate::{coding_rna_for, random_protein, random_rna};
use fabp::bio::mutate::IndelModel;
use fabp::bio::seq::RnaSeq;
use fabp::core::aligner::{FabpAligner, Threshold};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let queries = 400usize;
    let query_aa = 50usize;
    println!("{queries} queries x {query_aa} aa; FabP threshold 90%, SW cutoff 85% of max\n");
    println!(
        "{:>22} {:>10} {:>12} {:>12} {:>12}",
        "indel model", "affected", "FabP recall", "SW recall", "drop"
    );

    for (label, model) in [
        ("none", IndelModel::none()),
        ("empirical (0.09/kb)", IndelModel::empirical()),
        (
            "10x empirical",
            IndelModel {
                burst_per_kb: 0.8,
                burst_mean_events: 1.125,
                mean_length: 3.0,
            },
        ),
        (
            "every region",
            IndelModel {
                burst_per_kb: 1000.0,
                burst_mean_events: 1.0,
                mean_length: 3.0,
            },
        ),
    ] {
        let mut rng = StdRng::seed_from_u64(0xACC0);
        let mut affected = 0usize;
        let mut fabp_found = 0usize;
        let mut sw_found = 0usize;

        for _ in 0..queries {
            let query = random_protein(query_aa, &mut rng);
            let coding = coding_rna_for(&query, &mut rng);
            let (mutated, summary) = model.mutate_rna(&coding, &mut rng);
            affected += usize::from(summary.involved_indels());

            let mut bases = random_rna(120, &mut rng).into_inner();
            bases.extend(mutated.iter().copied());
            bases.extend(random_rna(120, &mut rng).into_inner());
            let reference = RnaSeq::from(bases);

            let aligner = FabpAligner::builder()
                .protein_query(&query)
                .threshold(Threshold::Fraction(0.9))
                .build()?;
            fabp_found += usize::from(!aligner.search(&reference).hits.is_empty());

            let sw = sw_nucleotide(
                coding.as_slice(),
                reference.as_slice(),
                NucScoring::default(),
                GapPenalties::default(),
                false,
            );
            sw_found += usize::from(sw.score >= (coding.len() as i32 * 2) * 85 / 100);
        }

        let pct = |x: usize| 100.0 * x as f64 / queries as f64;
        println!(
            "{:>22} {:>9.1}% {:>11.1}% {:>11.1}% {:>11.1}%",
            label,
            pct(affected),
            pct(fabp_found),
            pct(sw_found),
            pct(sw_found.saturating_sub(fabp_found)),
        );
    }

    println!(
        "\nReading: with realistic indel rates almost no query is affected, so\n\
         FabP's substitution-only alignment loses almost nothing (the paper's\n\
         argument); only under artificially heavy indel pressure does the gap\n\
         to the DP ground truth open up."
    );
    Ok(())
}
