//! Quickstart: the paper's Fig. 1 flow on a toy example.
//!
//! Back-translate a protein query, encode it, and find where an RNA
//! reference could encode it — first with the fast software engine, then
//! bit-exactly on the cycle-level FPGA model.
//!
//! Run with: `cargo run --example quickstart`

use fabp::bio::backtranslate::BackTranslatedQuery;
use fabp::bio::seq::{ProteinSeq, RnaSeq};
use fabp::core::aligner::{Engine, FabpAligner, Threshold};
use fabp::encoding::encoder::EncodedQuery;
use fabp::fpga::engine::EngineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The worked example of paper §III-B: Met-Phe-Ser-Arg-Stop.
    let protein: ProteinSeq = "MFSR*".parse()?;
    println!("query protein:       {protein}");

    // Back-translation produces the degenerate consensus sequence.
    let bt = BackTranslatedQuery::from_protein(&protein);
    println!("back-translated:     {bt}");
    println!("element types (I/II/III): {:?}", bt.type_histogram());

    // The 6-bit instruction stream the FPGA stores in flip-flops.
    let encoded = EncodedQuery::from_protein(&protein);
    println!("encoded query:       {encoded}");
    println!("encoded size:        {} bits", encoded.size_bits());

    // A reference with one exact coding occurrence (AUG UUC UCA AGA UAA —
    // note AGA: one of the Arg codons only the dependent function F:10
    // accepts) and one near miss.
    let reference: RnaSeq = "GGAUGUUCUCAAGAUAAGGGAUGUUGUCAAGAUAAGG".parse()?;
    println!("\nreference:           {reference}");

    // Software engine at a 100% threshold: only the exact region.
    let aligner = FabpAligner::builder()
        .protein_query(&protein)
        .threshold(Threshold::Fraction(1.0))
        .build()?;
    let outcome = aligner.search(&reference);
    println!("\nperfect-match hits (software engine):");
    for hit in &outcome.hits {
        println!(
            "  position {} score {}/{}",
            hit.position, hit.score, outcome.query_len
        );
    }

    // The cycle-accurate engine returns the same hits plus hardware
    // statistics.
    let cycle = FabpAligner::builder()
        .protein_query(&protein)
        .threshold(Threshold::Fraction(0.9))
        .engine(Engine::CycleAccurate(Box::new(EngineConfig::kintex7(0))))
        .build()?;
    let outcome = cycle.search(&reference);
    println!("\n90%-threshold hits (cycle-accurate engine):");
    for hit in &outcome.hits {
        println!(
            "  position {} score {}/{}",
            hit.position, hit.score, outcome.query_len
        );
    }
    let stats = outcome.stats.expect("cycle engine reports stats");
    println!("\nhardware execution:");
    println!(
        "  plan: {} segment(s), {}",
        cycle.plan().unwrap().segments,
        cycle.plan().unwrap().bottleneck
    );
    println!("  cycles: {}, beats: {}", stats.cycles, stats.beats);
    println!(
        "  kernel time at 200 MHz: {:.2} µs",
        stats.kernel_seconds * 1e6
    );

    Ok(())
}
