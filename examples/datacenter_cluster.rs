//! Data-center scale-out: sharding a database across FPGA boards.
//!
//! The paper's introduction motivates FabP with cloud FPGA deployments.
//! This example shards a database across 1–8 modelled Kintex-7 boards,
//! shows query latency/throughput/energy scaling, and then runs a real
//! sharded search (with boundary overlap) to demonstrate hit-exactness,
//! cross-checking hits against the genes (ORFs) present in the reference.
//!
//! Run with: `cargo run --release --example datacenter_cluster`

use fabp::bio::generate::{coding_rna_for_paper_patterns, random_protein, random_rna};
use fabp::bio::orf::find_orfs;
use fabp::bio::seq::RnaSeq;
use fabp::core::cluster::{shard_with_overlap, FpgaCluster};
use fabp::encoding::encoder::EncodedQuery;
use fabp::fpga::engine::EngineConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(0xDC);

    // --- Scaling model: 1 Gbase database, 50-aa query ------------------
    let protein = random_protein(50, &mut rng);
    let query = EncodedQuery::from_protein(&protein);
    let config = EngineConfig::kintex7((query.len() as u32 * 9).div_ceil(10));

    println!("1 Gbase database, 50-aa query, Kintex-7 boards:\n");
    println!(
        "{:>7} {:>14} {:>16} {:>14}",
        "boards", "latency", "queries/sec", "J per query"
    );
    for nodes in [1usize, 2, 4, 8] {
        let cluster = FpgaCluster::homogeneous(&query, &config, nodes, 1_000_000_000)?;
        let t = cluster.timing();
        println!(
            "{:>7} {:>11.2} ms {:>16.1} {:>14.3}",
            nodes,
            t.latency_seconds * 1e3,
            t.queries_per_second,
            t.joules_per_query
        );
    }

    // --- Real sharded search with gene cross-check ---------------------
    println!("\nSharded search demo (4 boards, 40 kbase synthetic genome):");
    let gene_protein = {
        let mut p: fabp::bio::seq::ProteinSeq = "M".parse()?;
        p.extend(random_protein(29, &mut rng).iter().copied());
        p
    };
    let mut coding = coding_rna_for_paper_patterns(&gene_protein, &mut rng);
    coding.extend("UAA".parse::<RnaSeq>()?.iter().copied());

    let mut bases = random_rna(40_000, &mut rng).into_inner();
    for &at in &[9_999usize, 25_002] {
        bases.splice(at..at + coding.len(), coding.iter().copied());
    }
    let reference = RnaSeq::from(bases);

    let gene_query = EncodedQuery::from_protein(&gene_protein);
    let qlen = gene_query.len();
    let cluster = FpgaCluster::homogeneous(
        &gene_query,
        &EngineConfig::kintex7(qlen as u32),
        4,
        reference.len() as u64,
    )?;
    let (shards, offsets) = shard_with_overlap(&reference, 4, qlen - 1);
    let hits = cluster.search(&shards, &offsets)?;
    println!(
        "  hits: {:?}",
        hits.iter().map(|h| h.position).collect::<Vec<_>>()
    );

    // ORFs of at least 25 residues in the genome.
    let orfs = find_orfs(&reference, 25);
    println!("  ORFs ≥ 25 aa in the genome: {}", orfs.len());
    for hit in &hits {
        let inside = orfs
            .iter()
            .find(|o| o.start <= hit.position && hit.position + qlen <= o.end);
        match inside {
            Some(orf) => println!(
                "  hit @{} lies in the ORF [{}, {}) frame {} — translated: {}…",
                hit.position,
                orf.start,
                orf.end,
                orf.frame,
                &orf.translate(&reference).to_string()[..12.min(orf.protein_len())]
            ),
            None => println!("  hit @{} is outside every long ORF", hit.position),
        }
    }

    Ok(())
}
