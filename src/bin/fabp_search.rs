//! `fabp-search` — command-line protein-vs-nucleotide search.
//!
//! The downstream-user entry point: protein queries (FASTA) against a
//! DNA/RNA database (FASTA), reporting hit regions per query.
//!
//! ```text
//! fabp-search --query queries.faa --reference db.fna [options]
//!
//! Options:
//!   --threshold <0..1>   fraction of matching elements (default 0.9)
//!   --engine <software|bitparallel|cycle>   execution engine (default software)
//!   --threads <n>        software engine workers (default 4)
//!   --top <k>            print at most k regions per query (default 10)
//!   --stats              print cycle statistics (cycle engine)
//!   --disasm             print each query's instruction listing
//! ```

use fabp::bio::fasta::{read_proteins, read_records};
use fabp::bio::seq::RnaSeq;
use fabp::core::aligner::{Engine, FabpAligner, Threshold};
use fabp::fpga::engine::EngineConfig;
use std::fs::File;
use std::process::ExitCode;

struct Args {
    query_path: String,
    reference_path: String,
    threshold: f64,
    engine: String,
    threads: usize,
    top: usize,
    stats: bool,
    disasm: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: fabp-search --query <queries.faa> --reference <db.fna> \
         [--threshold 0.9] [--engine software|cycle] [--threads 4] \
         [--top 10] [--stats]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        query_path: String::new(),
        reference_path: String::new(),
        threshold: 0.9,
        engine: "software".to_string(),
        threads: 4,
        top: 10,
        stats: false,
        disasm: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--query" => args.query_path = it.next().unwrap_or_else(|| usage()),
            "--reference" => args.reference_path = it.next().unwrap_or_else(|| usage()),
            "--threshold" => {
                args.threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--engine" => args.engine = it.next().unwrap_or_else(|| usage()),
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--top" => {
                args.top = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--stats" => args.stats = true,
            "--disasm" => args.disasm = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    if args.query_path.is_empty() || args.reference_path.is_empty() {
        usage();
    }
    args
}

fn run() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let args = parse_args();

    let queries = read_proteins(File::open(&args.query_path)?)?;
    if queries.is_empty() {
        return Err("query file contains no records".into());
    }

    // References may be DNA or RNA; parse leniently via the RNA alphabet
    // (T is accepted as U).
    let reference_records = read_records(File::open(&args.reference_path)?)?;
    if reference_records.is_empty() {
        return Err("reference file contains no records".into());
    }

    eprintln!(
        "{} quer{} vs {} reference record(s), threshold {:.0}%, engine {}",
        queries.len(),
        if queries.len() == 1 { "y" } else { "ies" },
        reference_records.len(),
        args.threshold * 100.0,
        args.engine
    );

    println!("# query\treference\tregion_start\tregion_end\tbest_pos\tscore\tmax_score\thits");
    for (query_id, protein) in &queries {
        let encoded = fabp::encoding::encoder::EncodedQuery::from_protein(protein);
        if args.disasm {
            eprintln!("# disassembly of {query_id}:");
            for line in encoded.disassemble().lines() {
                eprintln!("#   {line}");
            }
        }
        let threshold_abs = Threshold::Fraction(args.threshold).resolve(encoded.len());
        let bitparallel = match args.engine.as_str() {
            "bitparallel" => Some(fabp::core::bitparallel::BitParallelEngine::new(&encoded)?),
            _ => None,
        };
        let engine = match args.engine.as_str() {
            "software" | "bitparallel" => Engine::Software {
                threads: args.threads,
            },
            "cycle" => Engine::CycleAccurate(Box::new(EngineConfig::kintex7(0))),
            other => return Err(format!("unknown engine {other:?}").into()),
        };
        let aligner = FabpAligner::builder()
            .protein_query(protein)
            .threshold(Threshold::Fraction(args.threshold))
            .engine(engine)
            .build()?;

        for record in &reference_records {
            let reference: RnaSeq = record.sequence.parse()?;
            let outcome = match &bitparallel {
                Some(engine) => fabp::core::aligner::SearchOutcome {
                    hits: engine.search(reference.as_slice(), threshold_abs),
                    threshold: threshold_abs,
                    query_len: encoded.len(),
                    stats: None,
                },
                None => aligner.search(&reference),
            };
            let mut regions = outcome.regions();
            regions.sort_by(|a, b| b.best.score.cmp(&a.best.score));
            for region in regions.iter().take(args.top) {
                println!(
                    "{query_id}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                    record.id,
                    region.start,
                    region.end,
                    region.best.position,
                    region.best.score,
                    outcome.query_len,
                    region.hit_count
                );
            }
            if args.stats {
                if let Some(stats) = outcome.stats {
                    eprintln!(
                        "# {query_id} vs {}: {} cycles, {:.2} GB/s, {:.3} ms kernel",
                        record.id,
                        stats.cycles,
                        stats.achieved_bandwidth / 1e9,
                        stats.kernel_seconds * 1e3
                    );
                }
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fabp-search: {e}");
            ExitCode::FAILURE
        }
    }
}
