//! `fabp-search` — command-line protein-vs-nucleotide search.
//!
//! The downstream-user entry point: protein queries (FASTA) against a
//! DNA/RNA database (FASTA), reporting hit regions per query.
//!
//! ```text
//! fabp-search --query queries.faa --reference db.fna [options]
//!
//! Options:
//!   --threshold <0..1>   fraction of matching elements (default 0.9)
//!   --engine <software|bitparallel|cycle>   execution engine (default software)
//!   --threads <n>        software engine workers (default 4)
//!   --top <k>            print at most k regions per query (default 10)
//!   --stats              print telemetry counters after the run
//!   --metrics-out <path> write Prometheus text exposition to <path>
//!   --trace-out <path>   write a Chrome trace-event JSON to <path>
//!   --flight-out <path>  write the flight recorder's request-scoped
//!                        spans (per-query trace ids; retry spans on the
//!                        cycle engine) as Chrome trace-event JSON
//!   --quiet              suppress informational stderr output
//!   --disasm             print each query's instruction listing
//!   --resilience <off|detect|recover>   fault handling level (cycle engine)
//!   --inject-faults <spec>              seeded fault schedule, e.g.
//!                        `seed:0xBEEF` or `beatflip@3:1:7,stall@40:2000`
//! ```
//!
//! `--resilience` and `--inject-faults` drive the cycle-accurate engine
//! through the `fabp-resilience` harness: faults from the spec are
//! injected on the modelled AXI/config/query paths, and the detection/
//! recovery machinery (CRC framing, configuration scrubbing, stream
//! watchdog, retry with backoff) runs at the requested level. A per-run
//! overhead line reports the throughput cost of detection against the
//! unprotected cycle count.

use fabp::bio::fasta::{read_proteins, read_records};
use fabp::bio::seq::{PackedSeq, RnaSeq};
use fabp::core::aligner::{Engine, FabpAligner, SearchOutcome, Threshold};
use fabp::core::host::HostConfig;
use fabp::core::index::{
    search_index, IndexBuildOptions, PrefilterMode, ReferenceIndex, SeedParams,
};
use fabp::fpga::engine::{EngineConfig, FabpEngine};
use fabp::resilience::{FaultSchedule, ResilienceLevel, ResilientRunner};
use fabp_telemetry::{chrome_trace_for_events, MetricValue, Registry, TraceContext, TraceEvent};
use std::fs::File;
use std::process::ExitCode;

struct Args {
    query_path: String,
    reference_path: String,
    threshold: f64,
    engine: String,
    threads: usize,
    top: usize,
    stats: bool,
    disasm: bool,
    quiet: bool,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    flight_out: Option<String>,
    resilience: ResilienceLevel,
    inject_faults: Option<String>,
    build_index: Option<String>,
    index_path: Option<String>,
    prefilter: PrefilterMode,
    index_overlap: usize,
    index_shard_bases: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: fabp-search --query <queries.faa> --reference <db.fna> \
         [--threshold 0.9] [--engine software|bitparallel|cycle] [--threads 4] \
         [--top 10] [--stats] [--metrics-out m.prom] [--trace-out t.json] \
         [--flight-out f.json] [--quiet] [--disasm] \
         [--resilience off|detect|recover] [--inject-faults <spec>]\n\
         \n\
         persistent index:\n\
           fabp-search --reference <db.fna> --build-index <out.fabpidx> \
         [--index-overlap 384] [--index-shard-bases 4194304]\n\
           fabp-search --query <queries.faa> --index <db.fabpidx> \
         [--prefilter off|seeded] [--threshold 0.9] [--threads 4] [--top 10]"
    );
    std::process::exit(2);
}

/// Fetches a flag's value, naming the flag in the error when it is
/// missing.
fn value_for(flag: &str, it: &mut impl Iterator<Item = String>) -> String {
    it.next().unwrap_or_else(|| {
        eprintln!("missing value for {flag}");
        usage()
    })
}

/// Parses a flag's value, naming the flag and the bad value on failure.
fn parse_for<T: std::str::FromStr>(flag: &str, it: &mut impl Iterator<Item = String>) -> T {
    let raw = value_for(flag, it);
    raw.parse().unwrap_or_else(|_| {
        eprintln!("invalid value {raw:?} for {flag}");
        usage()
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        query_path: String::new(),
        reference_path: String::new(),
        threshold: 0.9,
        engine: "software".to_string(),
        threads: 4,
        top: 10,
        stats: false,
        disasm: false,
        quiet: false,
        metrics_out: None,
        trace_out: None,
        flight_out: None,
        resilience: ResilienceLevel::Off,
        inject_faults: None,
        build_index: None,
        index_path: None,
        prefilter: PrefilterMode::Seeded,
        index_overlap: IndexBuildOptions::default().overlap,
        index_shard_bases: IndexBuildOptions::default().target_shard_bases,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--query" => args.query_path = value_for("--query", &mut it),
            "--reference" => args.reference_path = value_for("--reference", &mut it),
            "--build-index" => args.build_index = Some(value_for("--build-index", &mut it)),
            "--index" => args.index_path = Some(value_for("--index", &mut it)),
            "--prefilter" => args.prefilter = parse_for("--prefilter", &mut it),
            "--index-overlap" => args.index_overlap = parse_for("--index-overlap", &mut it),
            "--index-shard-bases" => {
                args.index_shard_bases = parse_for("--index-shard-bases", &mut it)
            }
            "--threshold" => args.threshold = parse_for("--threshold", &mut it),
            "--engine" => args.engine = value_for("--engine", &mut it),
            "--threads" => args.threads = parse_for("--threads", &mut it),
            "--top" => args.top = parse_for("--top", &mut it),
            "--stats" => args.stats = true,
            "--disasm" => args.disasm = true,
            "--quiet" => args.quiet = true,
            "--metrics-out" => args.metrics_out = Some(value_for("--metrics-out", &mut it)),
            "--trace-out" => args.trace_out = Some(value_for("--trace-out", &mut it)),
            "--flight-out" => args.flight_out = Some(value_for("--flight-out", &mut it)),
            "--resilience" => args.resilience = parse_for("--resilience", &mut it),
            "--inject-faults" => args.inject_faults = Some(value_for("--inject-faults", &mut it)),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    if args.build_index.is_some() {
        // Build mode: only the reference is needed.
        if args.reference_path.is_empty() {
            usage();
        }
    } else if args.index_path.is_some() {
        // Index search mode: queries come from FASTA, the reference from
        // the persistent index.
        if args.query_path.is_empty() || !args.reference_path.is_empty() {
            usage();
        }
    } else if args.query_path.is_empty() || args.reference_path.is_empty() {
        usage();
    }
    args
}

/// `--build-index`: pack the reference FASTA (records concatenated in
/// file order) into the persistent shard format and exit.
fn run_build_index(args: &Args, out: &str) -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let reference_records = read_records(File::open(&args.reference_path)?)?;
    if reference_records.is_empty() {
        return Err("reference file contains no records".into());
    }
    let mut bases = Vec::new();
    for record in &reference_records {
        let seq: RnaSeq = record.sequence.parse()?;
        bases.extend_from_slice(seq.as_slice());
    }
    let reference = RnaSeq::from(bases);
    let started = std::time::Instant::now();
    let index = ReferenceIndex::build_from_rna(
        &reference,
        IndexBuildOptions {
            overlap: args.index_overlap,
            target_shard_bases: args.index_shard_bases,
        },
    )?;
    index.write_to(out)?;
    let build_ms = started.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "# index: {} bases in {} shard(s), overlap {}, fingerprint {:016x}, \
         built+written in {build_ms:.1} ms -> {out}",
        index.total_bases(),
        index.shards().len(),
        index.overlap(),
        index.fingerprint(),
    );
    Ok(())
}

/// `--index`: search the persistent index (exhaustive or seeded) and
/// print the same region TSV as the FASTA-reference path.
fn run_index_search(
    args: &Args,
    index_path: &str,
    telemetry: &Registry,
) -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    if args.engine != "software" {
        return Err("--index implies the software engine; drop --engine".into());
    }
    let queries = read_proteins(File::open(&args.query_path)?)?;
    if queries.is_empty() {
        return Err("query file contains no records".into());
    }
    let started = std::time::Instant::now();
    let index = ReferenceIndex::load(index_path)?;
    let load_ms = started.elapsed().as_secs_f64() * 1e3;
    if !args.quiet {
        eprintln!(
            "# index: loaded {} bases ({} shard(s), fingerprint {:016x}) in {load_ms:.1} ms, \
             prefilter {}",
            index.total_bases(),
            index.shards().len(),
            index.fingerprint(),
            args.prefilter.label(),
        );
    }
    let proteins: Vec<_> = queries.iter().map(|(_, p)| p.clone()).collect();
    let searched = std::time::Instant::now();
    let (all_hits, istats) = search_index(
        &index,
        &proteins,
        Threshold::Fraction(args.threshold),
        args.prefilter,
        SeedParams::default(),
        args.threads,
    )?;
    let search_ms = searched.elapsed().as_secs_f64() * 1e3;
    println!("# query\treference\tregion_start\tregion_end\tbest_pos\tscore\tmax_score\thits");
    for ((query_id, protein), hits) in queries.iter().zip(all_hits) {
        let query_len = 3 * protein.len();
        let outcome = SearchOutcome {
            hits,
            threshold: Threshold::Fraction(args.threshold).resolve(query_len),
            query_len,
            stats: None,
        };
        let mut regions = outcome.regions();
        regions.sort_by_key(|r| std::cmp::Reverse(r.best.score));
        for region in regions.iter().take(args.top) {
            println!(
                "{query_id}\t{index_path}\t{}\t{}\t{}\t{}\t{}\t{}",
                region.start,
                region.end,
                region.best.position,
                region.best.score,
                outcome.query_len,
                region.hit_count
            );
        }
    }
    if !args.quiet {
        eprintln!(
            "# index: search {search_ms:.1} ms, seed_hits={} candidate_windows={} \
             scanned_fraction={:.4}",
            istats.seed_hits,
            istats.candidate_windows,
            istats.scanned_fraction(),
        );
    }
    if args.stats {
        print_stats_report(telemetry);
    }
    let snapshot = telemetry.snapshot();
    if let Some(path) = &args.metrics_out {
        std::fs::write(path, snapshot.to_prometheus())?;
        if !args.quiet {
            eprintln!("# metrics written to {path}");
        }
    }
    if let Some(path) = &args.trace_out {
        std::fs::write(path, snapshot.to_chrome_trace())?;
        if !args.quiet {
            eprintln!("# trace written to {path}");
        }
    }
    Ok(())
}

/// Prints the telemetry-backed `--stats` report to stderr.
fn print_stats_report(registry: &Registry) {
    let snap = registry.snapshot();
    eprintln!("# telemetry:");
    for m in &snap.metrics {
        let labels = if m.labels.is_empty() {
            String::new()
        } else {
            let pairs: Vec<String> = m.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{{{}}}", pairs.join(","))
        };
        match &m.value {
            MetricValue::Counter(v) => eprintln!("#   {}{} = {}", m.name, labels, v),
            MetricValue::Gauge(v) => eprintln!("#   {}{} = {}", m.name, labels, v),
            MetricValue::FloatCounter(v) => {
                eprintln!("#   {}{} = {:.6}", m.name, labels, v)
            }
            MetricValue::Histogram(h) => eprintln!(
                "#   {}{} = {} observations, sum {}",
                m.name, labels, h.count, h.sum
            ),
        }
    }
    eprintln!("#   spans recorded = {}", snap.spans.len());
}

fn run() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let args = parse_args();
    let telemetry = Registry::global();
    if let Some(out) = args.build_index.clone() {
        return run_build_index(&args, &out);
    }
    if let Some(index_path) = args.index_path.clone() {
        if args.resilience != ResilienceLevel::Off || args.inject_faults.is_some() {
            return Err("--resilience/--inject-faults are not supported with --index".into());
        }
        return run_index_search(&args, &index_path, telemetry);
    }
    let flight = telemetry.flight_recorder();
    // One trace id per (query, reference) search; spans share a
    // deterministic synthetic timeline so dumps replay identically.
    let mut flight_ordinal = 0u64;
    let mut flight_start_us = 0.0f64;

    let queries = read_proteins(File::open(&args.query_path)?)?;
    if queries.is_empty() {
        return Err("query file contains no records".into());
    }

    // References may be DNA or RNA; parse leniently via the RNA alphabet
    // (T is accepted as U).
    let reference_records = read_records(File::open(&args.reference_path)?)?;
    if reference_records.is_empty() {
        return Err("reference file contains no records".into());
    }

    // Fault injection / resilience only makes sense on the modelled
    // hardware path: the software engines have no AXI stream, LUT
    // configuration or DMA to corrupt.
    let resilience_active = args.resilience != ResilienceLevel::Off || args.inject_faults.is_some();
    if resilience_active && args.engine != "cycle" {
        return Err("--resilience/--inject-faults require --engine cycle".into());
    }
    let fault_schedule = match &args.inject_faults {
        Some(spec) => FaultSchedule::parse(spec)?,
        None => FaultSchedule::new(),
    };

    if !args.quiet {
        eprintln!(
            "{} quer{} vs {} reference record(s), threshold {:.0}%, engine {}",
            queries.len(),
            if queries.len() == 1 { "y" } else { "ies" },
            reference_records.len(),
            args.threshold * 100.0,
            args.engine
        );
    }

    println!("# query\treference\tregion_start\tregion_end\tbest_pos\tscore\tmax_score\thits");
    for (query_id, protein) in &queries {
        let _query_span = telemetry.span("query");
        let encoded = {
            let _encode_span = telemetry.span("encode_query");
            fabp::encoding::encoder::EncodedQuery::from_protein(protein)
        };
        if args.disasm && !args.quiet {
            eprintln!("# disassembly of {query_id}:");
            for line in encoded.disassemble().lines() {
                eprintln!("#   {line}");
            }
        }
        let threshold_abs = Threshold::Fraction(args.threshold).resolve(encoded.len());
        let bitparallel = match args.engine.as_str() {
            "bitparallel" => Some(fabp::core::bitparallel::BitParallelEngine::new(&encoded)?),
            _ => None,
        };
        // Resilience harness: wraps the cycle-accurate engine so faults
        // can be injected and detection/recovery overhead measured.
        let resilient_engine = if resilience_active {
            Some(FabpEngine::new(
                encoded.clone(),
                EngineConfig::kintex7(threshold_abs),
            )?)
        } else {
            None
        };
        let engine = match args.engine.as_str() {
            "software" | "bitparallel" => Engine::Software {
                threads: args.threads,
            },
            "cycle" => Engine::CycleAccurate(Box::new(EngineConfig::kintex7(0))),
            other => return Err(format!("unknown engine {other:?}").into()),
        };
        let aligner = FabpAligner::builder()
            .protein_query(protein)
            .threshold(Threshold::Fraction(args.threshold))
            .engine(engine)
            .build()?;

        for record in &reference_records {
            let reference: RnaSeq = record.sequence.parse()?;
            let outcome = {
                let _search_span = telemetry.span("search");
                match (&bitparallel, &resilient_engine) {
                    (Some(engine), _) => SearchOutcome {
                        hits: engine.search(reference.as_slice(), threshold_abs),
                        threshold: threshold_abs,
                        query_len: encoded.len(),
                        stats: None,
                    },
                    (None, Some(engine)) => {
                        let packed = PackedSeq::from_rna(&reference);
                        let trace = TraceContext::mint(0xFAB6_5EA7, flight_ordinal);
                        let start_us = flight_start_us;
                        let runner =
                            ResilientRunner::new(engine, args.resilience, fault_schedule.clone())
                                .with_trace(flight.clone(), trace, start_us);
                        let resilient = runner.run(&packed, telemetry)?;
                        let dur_us = (resilient.run.stats.kernel_seconds * 1e6).max(1.0);
                        flight.record(
                            TraceEvent::new(trace, "search", start_us, dur_us)
                                .with_arg(flight_ordinal),
                        );
                        flight_ordinal += 1;
                        flight_start_us += dur_us + 1.0;
                        if !args.quiet {
                            let r = &resilient.report;
                            let cycles = resilient.run.stats.cycles;
                            let pct = if cycles > 0 {
                                100.0 * r.overhead_cycles as f64 / cycles as f64
                            } else {
                                0.0
                            };
                            eprintln!(
                                "# resilience[{}] {query_id} vs {}: injected={} detected={} \
                                 recovered={} retries={} scrubs={} replayed_beats={} \
                                 overhead={} cycles ({pct:.3}% of {cycles})",
                                args.resilience,
                                record.id,
                                r.injected,
                                r.detected,
                                r.recovered,
                                r.retries,
                                r.scrubs,
                                r.replayed_beats,
                                r.overhead_cycles,
                            );
                        }
                        SearchOutcome {
                            hits: resilient.run.hits,
                            threshold: threshold_abs,
                            query_len: encoded.len(),
                            stats: Some(resilient.run.stats),
                        }
                    }
                    (None, None) => aligner.search(&reference),
                }
            };
            // Cycle engine: assemble the modelled host pipeline so the
            // encode → transfer → kernel → readback breakdown lands in
            // the span ring and the per-stage counters.
            if let Some(stats) = &outcome.stats {
                let _ = fabp::core::host::end_to_end(
                    &HostConfig::default(),
                    encoded.len(),
                    outcome.hits.len(),
                    stats.kernel_seconds,
                );
            }
            let mut regions = outcome.regions();
            regions.sort_by_key(|r| std::cmp::Reverse(r.best.score));
            for region in regions.iter().take(args.top) {
                println!(
                    "{query_id}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                    record.id,
                    region.start,
                    region.end,
                    region.best.position,
                    region.best.score,
                    outcome.query_len,
                    region.hit_count
                );
            }
            if args.stats && !args.quiet {
                if let Some(stats) = outcome.stats {
                    eprintln!(
                        "# {query_id} vs {}: {} cycles, {:.2} GB/s, {:.3} ms kernel",
                        record.id,
                        stats.cycles,
                        stats.achieved_bandwidth / 1e9,
                        stats.kernel_seconds * 1e3
                    );
                }
            }
        }
    }

    if args.stats {
        print_stats_report(telemetry);
    }
    let snapshot = telemetry.snapshot();
    if let Some(path) = &args.metrics_out {
        std::fs::write(path, snapshot.to_prometheus())?;
        if !args.quiet {
            eprintln!("# metrics written to {path}");
        }
    }
    if let Some(path) = &args.trace_out {
        std::fs::write(path, snapshot.to_chrome_trace())?;
        if !args.quiet {
            eprintln!("# trace written to {path}");
        }
    }
    if let Some(path) = &args.flight_out {
        let events = flight.events();
        std::fs::write(path, chrome_trace_for_events(&events))?;
        if !args.quiet {
            eprintln!(
                "# flight recorder written to {path} ({} spans retained, {} dropped)",
                events.len(),
                flight.dropped()
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fabp-search: {e}");
            ExitCode::FAILURE
        }
    }
}
