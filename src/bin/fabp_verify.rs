//! `fabp_verify` — static equivalence & dataflow verification CLI.
//!
//! Runs the `fabp-verify` engines — symbolic bit-parallel equivalence
//! against the golden software semantics, X-propagation/reset analysis,
//! and configuration-stream dataflow — over the shipped module corpus,
//! prints per-module reports, and exits non-zero when any finding
//! reaches the `--deny` threshold. This is the CI verify gate:
//! `fabp_verify --all-modules --deny warn` must exit 0 on every commit.
//!
//! ```text
//! fabp_verify --all-modules --deny warn --json /tmp/verify-report.json
//! fabp_verify --module comparator-cell --module align-mfsrw-t10
//! fabp_verify --list-modules
//! ```

use fabp_lint::{record_reports_as, render_json_reports_as, Report, Severity};
use fabp_telemetry::Registry;
use fabp_verify::{
    check_config_program, find_target, shipped_config_programs, verify_all, verify_module,
    verify_targets, VerifyConfig,
};
use std::process::ExitCode;

struct Options {
    all_modules: bool,
    modules: Vec<String>,
    list_modules: bool,
    deny: Severity,
    json: Option<String>,
    metrics_out: Option<String>,
    quiet: bool,
    cone_bound: Option<usize>,
    random_rounds: Option<usize>,
    xprop_cycles: Option<usize>,
}

const USAGE: &str = "\
fabp_verify — equivalence & dataflow verification of the FabP hardware model

USAGE:
    fabp_verify [OPTIONS]

OPTIONS:
    --all-modules          Verify every shipped netlist against its golden
                           oracle and every canonical configuration program
                           (default when no --module is given)
    --module NAME          Verify one shipped module or config program
                           (repeatable)
    --list-modules         Print the verifiable module and program names
    --deny LEVEL           Exit non-zero when any finding is at or above
                           LEVEL: info | warn | error  [default: error]
    --cone-bound N         Exhaustive-enumeration support bound [default: 12]
    --random-rounds N      Random pattern rounds for wide cones [default: 16]
    --xprop-cycles N       Power-on settle window in clock edges [default: 16]
    --json PATH            Write the machine-readable report to PATH
                           ('-' for stdout)
    --metrics-out PATH     Write Prometheus-format verify counters to PATH
    --quiet                Suppress per-module text output
    -h, --help             Show this help
";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        all_modules: false,
        modules: Vec::new(),
        list_modules: false,
        deny: Severity::Error,
        json: None,
        metrics_out: None,
        quiet: false,
        cone_bound: None,
        random_rounds: None,
        xprop_cycles: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_for = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        let parse_usize = |flag: &str, value: String| {
            value
                .parse::<usize>()
                .map_err(|_| format!("bad {flag} {value:?}"))
        };
        match arg.as_str() {
            "--all-modules" => opts.all_modules = true,
            "--module" => opts.modules.push(value_for("--module")?),
            "--list-modules" => opts.list_modules = true,
            "--deny" => {
                let level = value_for("--deny")?;
                opts.deny = Severity::parse(&level)
                    .ok_or_else(|| format!("unknown --deny level {level:?}"))?;
            }
            "--cone-bound" => {
                opts.cone_bound = Some(parse_usize("--cone-bound", value_for("--cone-bound")?)?)
            }
            "--random-rounds" => {
                opts.random_rounds = Some(parse_usize(
                    "--random-rounds",
                    value_for("--random-rounds")?,
                )?)
            }
            "--xprop-cycles" => {
                opts.xprop_cycles =
                    Some(parse_usize("--xprop-cycles", value_for("--xprop-cycles")?)?)
            }
            "--json" => opts.json = Some(value_for("--json")?),
            "--metrics-out" => opts.metrics_out = Some(value_for("--metrics-out")?),
            "--quiet" => opts.quiet = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<ExitCode, String> {
    if opts.list_modules {
        for target in verify_targets() {
            println!("{}", target.name);
        }
        for (program, _) in shipped_config_programs() {
            println!("{}", program.name);
        }
        return Ok(ExitCode::SUCCESS);
    }

    let mut config = VerifyConfig::default();
    if let Some(bound) = opts.cone_bound {
        config.cone_bound = bound;
    }
    if let Some(rounds) = opts.random_rounds {
        config.random_rounds = rounds;
    }
    if let Some(cycles) = opts.xprop_cycles {
        config.xprop_cycles = cycles;
    }

    let reports: Vec<Report> = if !opts.modules.is_empty() {
        let mut reports = Vec::new();
        for name in &opts.modules {
            if let Some(target) = find_target(name) {
                reports.push(verify_module(&target, &config));
                continue;
            }
            let program = shipped_config_programs()
                .into_iter()
                .find(|(p, _)| &p.name == name)
                .ok_or_else(|| format!("no verifiable module {name:?} (try --list-modules)"))?;
            reports.push(check_config_program(&program.0, &program.1));
        }
        reports
    } else {
        // --all-modules, also the default action.
        verify_all(&config)
    };

    // Telemetry counters (also exported with --metrics-out).
    let registry = Registry::new();
    record_reports_as("fabp_verify", &registry, &reports);

    if !opts.quiet {
        for report in &reports {
            print!("{}", report.render_text());
        }
    }
    let errors: usize = reports.iter().map(|r| r.count(Severity::Error)).sum();
    let warnings: usize = reports.iter().map(|r| r.count(Severity::Warn)).sum();
    let infos: usize = reports.iter().map(|r| r.count(Severity::Info)).sum();
    if !opts.quiet {
        println!(
            "fabp_verify: {} module(s), {errors} error(s), {warnings} warning(s), {infos} info(s)",
            reports.len()
        );
    }

    if let Some(path) = &opts.json {
        let json = render_json_reports_as("fabp_verify", &reports);
        if path == "-" {
            println!("{json}");
        } else {
            std::fs::write(path, json).map_err(|e| format!("cannot write {path:?}: {e}"))?;
        }
    }
    if let Some(path) = &opts.metrics_out {
        std::fs::write(path, registry.snapshot().to_prometheus())
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
    }

    let denied = reports.iter().any(|r| !r.passes(opts.deny));
    Ok(if denied {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("fabp_verify: {msg}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("fabp_verify: {msg}");
            ExitCode::FAILURE
        }
    }
}
