//! `fabp_lint` — netlist & instruction-stream static analysis CLI.
//!
//! Runs the `fabp-lint` rule set over the shipped module generators and
//! packed-stream corpus, prints per-module reports, and exits non-zero
//! when any finding reaches the `--deny` threshold. This is the CI
//! gate: `fabp_lint --all-modules --deny warn` must exit 0 on every
//! commit.
//!
//! ```text
//! fabp_lint --all-modules --deny warn --json /tmp/lint-report.json
//! fabp_lint --module pop750-pipelined --module comparator-cell
//! fabp_lint --list-modules
//! ```

use fabp_lint::{
    check_instruction_set, check_netlist, check_packed, find_module, record_reports,
    render_json_reports, shipped_modules, shipped_streams, LintConfig, Report, Severity,
};
use fabp_telemetry::Registry;
use std::process::ExitCode;

struct Options {
    all_modules: bool,
    modules: Vec<String>,
    list_modules: bool,
    deny: Severity,
    json: Option<String>,
    metrics_out: Option<String>,
    quiet: bool,
    fanout_limit: Option<usize>,
}

const USAGE: &str = "\
fabp_lint — hardware DRC over the FabP software model

USAGE:
    fabp_lint [OPTIONS]

OPTIONS:
    --all-modules          Lint every shipped module generator and packed
                           stream (default when no --module is given)
    --module NAME          Lint one shipped module (repeatable)
    --list-modules         Print the shipped module and stream names
    --deny LEVEL           Exit non-zero when any finding is at or above
                           LEVEL: info | warn | error  [default: error]
    --fanout-limit N       Override the high-fanout warning threshold
    --json PATH            Write the machine-readable report to PATH
                           ('-' for stdout)
    --metrics-out PATH     Write Prometheus-format lint counters to PATH
    --quiet                Suppress per-module text output
    -h, --help             Show this help
";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        all_modules: false,
        modules: Vec::new(),
        list_modules: false,
        deny: Severity::Error,
        json: None,
        metrics_out: None,
        quiet: false,
        fanout_limit: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_for = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--all-modules" => opts.all_modules = true,
            "--module" => opts.modules.push(value_for("--module")?),
            "--list-modules" => opts.list_modules = true,
            "--deny" => {
                let level = value_for("--deny")?;
                opts.deny = Severity::parse(&level)
                    .ok_or_else(|| format!("unknown --deny level {level:?}"))?;
            }
            "--fanout-limit" => {
                let n = value_for("--fanout-limit")?;
                opts.fanout_limit =
                    Some(n.parse().map_err(|_| format!("bad --fanout-limit {n:?}"))?);
            }
            "--json" => opts.json = Some(value_for("--json")?),
            "--metrics-out" => opts.metrics_out = Some(value_for("--metrics-out")?),
            "--quiet" => opts.quiet = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<ExitCode, String> {
    if opts.list_modules {
        for module in shipped_modules() {
            println!("{}", module.name);
        }
        for (name, _) in shipped_streams() {
            println!("{name}");
        }
        println!("instruction-set");
        return Ok(ExitCode::SUCCESS);
    }

    let mut config = LintConfig::default();
    if let Some(limit) = opts.fanout_limit {
        config.fanout_warn_limit = limit;
    }

    let reports: Vec<Report> = if !opts.modules.is_empty() {
        let mut reports = Vec::new();
        for name in &opts.modules {
            if name == "instruction-set" {
                reports.push(check_instruction_set());
                continue;
            }
            if let Some((_, packed)) = shipped_streams().into_iter().find(|(n, _)| n == name) {
                reports.push(check_packed(name, &packed));
                continue;
            }
            let module = find_module(name)
                .ok_or_else(|| format!("no shipped module {name:?} (try --list-modules)"))?;
            reports.push(check_netlist(module.name, &module.build(), &config));
        }
        reports
    } else {
        // --all-modules, also the default action.
        fabp_lint::check_all(&config)
    };

    // Telemetry counters (also exported with --metrics-out).
    let registry = Registry::new();
    record_reports(&registry, &reports);

    if !opts.quiet {
        for report in &reports {
            print!("{}", report.render_text());
        }
    }
    let errors: usize = reports.iter().map(|r| r.count(Severity::Error)).sum();
    let warnings: usize = reports.iter().map(|r| r.count(Severity::Warn)).sum();
    let infos: usize = reports.iter().map(|r| r.count(Severity::Info)).sum();
    if !opts.quiet {
        println!(
            "fabp_lint: {} module(s), {errors} error(s), {warnings} warning(s), {infos} info(s)",
            reports.len()
        );
    }

    if let Some(path) = &opts.json {
        let json = render_json_reports(&reports);
        if path == "-" {
            println!("{json}");
        } else {
            std::fs::write(path, json).map_err(|e| format!("cannot write {path:?}: {e}"))?;
        }
    }
    if let Some(path) = &opts.metrics_out {
        std::fs::write(path, registry.snapshot().to_prometheus())
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
    }

    let denied = reports.iter().any(|r| !r.passes(opts.deny));
    Ok(if denied {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("fabp_lint: {msg}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("fabp_lint: {msg}");
            ExitCode::FAILURE
        }
    }
}
