//! `fabp-serve` — drive the production query-serving layer from the
//! command line.
//!
//! Feeds a protein query stream (FASTA or synthetic) through
//! [`fabp_serve::FabpServer`]: bounded admission with per-tenant
//! round-robin fairness, adaptive micro-batching, content-hash caches
//! and deadline shedding, over the software batch engine or the
//! modelled FPGA cluster.
//!
//! ```text
//! fabp-serve --reference db.fna --queries q.faa [options]
//! fabp-serve --index db.fabpidx --queries q.faa [--prefilter seeded] [options]
//! fabp-serve --synthetic-bases 200000 --synthetic-queries 64 [options]
//!
//! Options:
//!   --queries <faa>          protein queries (FASTA)
//!   --reference <fna>        reference database (FASTA, first record)
//!   --index <fabpidx>        persistent packed index (see fabp-search
//!                            --build-index); cold + warm load timings
//!                            are reported on the `# index:` line
//!   --prefilter <off|seeded> exhaustive scan or k-mer seeded
//!                            seed-and-verify (requires --index,
//!                            software backend; default off)
//!   --synthetic-bases <n>    generate a random reference of n bases
//!   --synthetic-queries <n>  generate n random queries (planted in the
//!                            synthetic reference so they hit)
//!   --query-len <aa>         synthetic query length (default 12)
//!   --seed <u64>             synthetic workload seed (default 1)
//!   --tenants <n>            spread queries across n tenants (default 2)
//!   --repeat <n>             submit the stream n times (default 1;
//!                            repeats exercise the query cache)
//!   --backend <software|cluster|fleet>  execution backend (default software)
//!   --threads <n>            software batch workers (default 4)
//!   --nodes <n>              cluster/fleet nodes (default 4)
//!   --replication <n>        fleet replicas per shard (default 2;
//!                            anti-affinity requires n <= nodes)
//!   --threshold <0..1>       match fraction (default 0.9)
//!   --queue-capacity <n>     admission-queue bound (default 1024)
//!   --max-batch <n>          micro-batch cap (default 64)
//!   --slo-us <n>             batch latency SLO, µs (default 50000)
//!   --deadline-us <n>        per-request deadline budget, µs
//!   --query-cache <n>        built-aligner/cluster cache entries (default 256)
//!   --max-query-aa <n>       longest admissible query (default 128)
//!   --resilience <off|detect|recover>  cluster fault handling
//!   --inject-faults <spec>   fault schedule, e.g. kill@1:50 (cluster:
//!                            injected per dispatch; fleet: kill@ nodes
//!                            are marked dead in the failure detector)
//!   --stats                  print telemetry counters to stderr
//!   --slo                    print the SLO burn-rate report to stderr
//!   --metrics-out <path>     write Prometheus text exposition
//!   --trace-out <path>       write Chrome trace-event JSON (span tree)
//!   --flight-out <path>      write the flight recorder's retained
//!                            request spans as Chrome trace-event JSON
//!   --anomaly-out <path>     write the first captured anomaly dump
//!                            (SLO/deadline/fault-recovery span tree)
//!   --quiet                  suppress informational stderr output
//! ```

use fabp::bio::fasta::{read_proteins, read_records};
use fabp::bio::generate::{coding_rna_for_paper_patterns, random_protein, random_rna};
use fabp::bio::seq::{ProteinSeq, RnaSeq};
use fabp::core::aligner::Threshold;
use fabp::core::index::PrefilterMode;
use fabp::resilience::ResilienceLevel;
use fabp::serve::{BatchPolicy, FabpServer, IndexStore, Response, ServeBackend, ServeConfig};
use fabp_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs::File;
use std::process::ExitCode;

struct Args {
    query_path: Option<String>,
    reference_path: Option<String>,
    index_path: Option<String>,
    prefilter: PrefilterMode,
    synthetic_bases: usize,
    synthetic_queries: usize,
    query_len: usize,
    seed: u64,
    tenants: usize,
    repeat: usize,
    backend: String,
    threads: usize,
    nodes: usize,
    replication: usize,
    threshold: f64,
    queue_capacity: usize,
    max_batch: usize,
    slo_us: u64,
    deadline_us: Option<u64>,
    query_cache: usize,
    max_query_aa: usize,
    resilience: ResilienceLevel,
    inject_faults: Option<String>,
    stats: bool,
    slo: bool,
    quiet: bool,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    flight_out: Option<String>,
    anomaly_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: fabp-serve (--queries <q.faa> --reference <db.fna> | \
         --queries <q.faa> --index <db.fabpidx> [--prefilter off|seeded] | \
         --synthetic-bases <n> --synthetic-queries <n>) [--query-len 12] \
         [--seed 1] [--tenants 2] [--repeat 1] \
         [--backend software|cluster|fleet] [--threads 4] [--nodes 4] \
         [--replication 2] [--threshold 0.9] [--queue-capacity 1024] \
         [--max-batch 64] [--slo-us 50000] [--deadline-us <n>] \
         [--query-cache 256] [--max-query-aa 128] \
         [--resilience off|detect|recover] [--inject-faults <spec>] \
         [--stats] [--slo] [--metrics-out m.prom] [--trace-out t.json] \
         [--flight-out f.json] [--anomaly-out a.json] [--quiet]"
    );
    std::process::exit(2);
}

fn value_for(flag: &str, it: &mut impl Iterator<Item = String>) -> String {
    it.next().unwrap_or_else(|| {
        eprintln!("missing value for {flag}");
        usage()
    })
}

fn parse_for<T: std::str::FromStr>(flag: &str, it: &mut impl Iterator<Item = String>) -> T {
    let raw = value_for(flag, it);
    raw.parse().unwrap_or_else(|_| {
        eprintln!("invalid value {raw:?} for {flag}");
        usage()
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        query_path: None,
        reference_path: None,
        index_path: None,
        prefilter: PrefilterMode::Off,
        synthetic_bases: 0,
        synthetic_queries: 0,
        query_len: 12,
        seed: 1,
        tenants: 2,
        repeat: 1,
        backend: "software".to_string(),
        threads: 4,
        nodes: 4,
        replication: 2,
        threshold: 0.9,
        queue_capacity: 1_024,
        max_batch: 64,
        slo_us: 50_000,
        deadline_us: None,
        query_cache: 256,
        max_query_aa: 128,
        resilience: ResilienceLevel::Off,
        inject_faults: None,
        stats: false,
        slo: false,
        quiet: false,
        metrics_out: None,
        trace_out: None,
        flight_out: None,
        anomaly_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--queries" => args.query_path = Some(value_for("--queries", &mut it)),
            "--reference" => args.reference_path = Some(value_for("--reference", &mut it)),
            "--index" => args.index_path = Some(value_for("--index", &mut it)),
            "--prefilter" => args.prefilter = parse_for("--prefilter", &mut it),
            "--synthetic-bases" => args.synthetic_bases = parse_for("--synthetic-bases", &mut it),
            "--synthetic-queries" => {
                args.synthetic_queries = parse_for("--synthetic-queries", &mut it)
            }
            "--query-len" => args.query_len = parse_for("--query-len", &mut it),
            "--seed" => args.seed = parse_for("--seed", &mut it),
            "--tenants" => args.tenants = parse_for("--tenants", &mut it),
            "--repeat" => args.repeat = parse_for("--repeat", &mut it),
            "--backend" => args.backend = value_for("--backend", &mut it),
            "--threads" => args.threads = parse_for("--threads", &mut it),
            "--nodes" => args.nodes = parse_for("--nodes", &mut it),
            "--replication" => args.replication = parse_for("--replication", &mut it),
            "--threshold" => args.threshold = parse_for("--threshold", &mut it),
            "--queue-capacity" => args.queue_capacity = parse_for("--queue-capacity", &mut it),
            "--max-batch" => args.max_batch = parse_for("--max-batch", &mut it),
            "--slo-us" => args.slo_us = parse_for("--slo-us", &mut it),
            "--deadline-us" => args.deadline_us = Some(parse_for("--deadline-us", &mut it)),
            "--query-cache" => args.query_cache = parse_for("--query-cache", &mut it),
            "--max-query-aa" => args.max_query_aa = parse_for("--max-query-aa", &mut it),
            "--resilience" => args.resilience = parse_for("--resilience", &mut it),
            "--inject-faults" => args.inject_faults = Some(value_for("--inject-faults", &mut it)),
            "--stats" => args.stats = true,
            "--slo" => args.slo = true,
            "--quiet" => args.quiet = true,
            "--metrics-out" => args.metrics_out = Some(value_for("--metrics-out", &mut it)),
            "--trace-out" => args.trace_out = Some(value_for("--trace-out", &mut it)),
            "--flight-out" => args.flight_out = Some(value_for("--flight-out", &mut it)),
            "--anomaly-out" => args.anomaly_out = Some(value_for("--anomaly-out", &mut it)),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    let file_mode = args.query_path.is_some() && args.reference_path.is_some();
    let synth_mode = args.synthetic_bases > 0 && args.synthetic_queries > 0;
    let index_mode = args.index_path.is_some() && args.query_path.is_some();
    if !(file_mode || synth_mode || index_mode) {
        usage();
    }
    if args.prefilter == PrefilterMode::Seeded && args.index_path.is_none() {
        eprintln!("--prefilter seeded requires --index");
        usage();
    }
    args
}

/// A reference sequence plus named queries — the serving workload.
type Workload = (RnaSeq, Vec<(String, ProteinSeq)>);

/// Builds the workload: either from FASTA files or a synthetic
/// planted-homology database (every query is guaranteed to hit).
fn load_workload(args: &Args) -> Result<Workload, Box<dyn std::error::Error + Send + Sync>> {
    if let (Some(qp), Some(rp)) = (&args.query_path, &args.reference_path) {
        let queries = read_proteins(File::open(qp)?)?;
        if queries.is_empty() {
            return Err("query file contains no records".into());
        }
        let records = read_records(File::open(rp)?)?;
        let first = records
            .first()
            .ok_or("reference file contains no records")?;
        let reference: RnaSeq = first.sequence.parse()?;
        return Ok((reference, queries));
    }
    let mut rng = StdRng::seed_from_u64(args.seed);
    let queries: Vec<(String, ProteinSeq)> = (0..args.synthetic_queries)
        .map(|i| {
            (
                format!("synthetic-{i}"),
                random_protein(args.query_len, &mut rng),
            )
        })
        .collect();
    let mut bases = random_rna(args.synthetic_bases, &mut rng).into_inner();
    // Plant each query's coding RNA at an evenly spaced position so every
    // request returns at least one hit region.
    let stride = (args.synthetic_bases / queries.len().max(1)).max(1);
    for (i, (_, protein)) in queries.iter().enumerate() {
        let coding = coding_rna_for_paper_patterns(protein, &mut rng);
        let at = (i * stride) % args.synthetic_bases.saturating_sub(coding.len()).max(1);
        if at + coding.len() <= bases.len() {
            bases.splice(at..at + coding.len(), coding.iter().copied());
        }
    }
    Ok((RnaSeq::from(bases), queries))
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

fn error_label(response: &Response) -> &'static str {
    match &response.result {
        Ok(_) => "ok",
        Err(e) => e.kind_label(),
    }
}

fn run() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let args = parse_args();
    let registry = Registry::global();
    if args.prefilter == PrefilterMode::Seeded && args.backend != "software" {
        return Err("--prefilter seeded runs on the software backend only".into());
    }

    let backend = match args.backend.as_str() {
        "software" => ServeBackend::Software {
            threads: args.threads,
        },
        "cluster" => ServeBackend::Cluster {
            nodes: args.nodes,
            resilience: args.resilience,
            fault_spec: args.inject_faults.clone(),
        },
        "fleet" => ServeBackend::Fleet {
            nodes: args.nodes,
            replication: args.replication,
            fault_spec: args.inject_faults.clone(),
        },
        other => return Err(format!("unknown backend {other:?}").into()),
    };
    let config = ServeConfig {
        threshold: Threshold::Fraction(args.threshold),
        queue_capacity: args.queue_capacity,
        policy: BatchPolicy {
            max_batch: args.max_batch,
            slo_us: args.slo_us,
            ..BatchPolicy::default()
        },
        backend,
        query_cache: args.query_cache,
        reference_cache: 8,
        default_deadline_us: args.deadline_us,
        max_query_aa: args.max_query_aa,
        prefilter: args.prefilter,
    };

    // Workload + server: FASTA/synthetic reference, or a persistent
    // packed index (cold load timed, then a warm re-load for the
    // resident-store comparison the CI smoke greps for).
    let (mut server, queries, resident_bases) = if let Some(index_path) = &args.index_path {
        let query_path = args
            .query_path
            .as_ref()
            .ok_or("--index requires --queries")?;
        let queries = read_proteins(File::open(query_path)?)?;
        if queries.is_empty() {
            return Err("query file contains no records".into());
        }
        let mut store = IndexStore::new();
        let cold = store.load(index_path, false)?;
        let warm = store.load(index_path, false)?;
        eprintln!(
            "# index: cold_load_ms={:.3} warm_reload_ms={:.3} bases={} shards={} \
             fingerprint={:016x} prefilter={}",
            cold.load_us as f64 / 1e3,
            warm.load_us as f64 / 1e3,
            cold.index.total_bases(),
            cold.index.shards().len(),
            cold.index.fingerprint(),
            args.prefilter.label(),
        );
        let bases = cold.index.total_bases();
        let server = FabpServer::with_index(cold.index, config, registry)?;
        (server, queries, bases)
    } else {
        let (reference, queries) = load_workload(&args)?;
        let bases = reference.len();
        let server = FabpServer::new(reference, config, registry)?;
        (server, queries, bases)
    };
    if !args.quiet {
        eprintln!(
            "serving {} quer{} × {} repeat(s) over {} tenant(s), {} bases resident, backend {}",
            queries.len(),
            if queries.len() == 1 { "y" } else { "ies" },
            args.repeat,
            args.tenants,
            resident_bases,
            args.backend,
        );
    }

    // Closed-loop driver: submit the stream; on backpressure, pump the
    // server to drain a batch and retry the same request.
    let started = std::time::Instant::now();
    let mut responses: Vec<Response> = Vec::new();
    let mut names: Vec<(u64, String)> = Vec::new();
    let mut hard_rejects = 0u64;
    for round in 0..args.repeat {
        for (i, (query_id, protein)) in queries.iter().enumerate() {
            let tenant = format!("tenant-{}", i % args.tenants.max(1));
            loop {
                match server.submit(&tenant, protein) {
                    Ok(ticket) => {
                        names.push((ticket, format!("{query_id}#r{round}")));
                        break;
                    }
                    Err(fabp::serve::FabpError::Overloaded { .. }) => {
                        responses.extend(server.pump());
                    }
                    Err(e) => {
                        eprintln!("# rejected {query_id}: {e}");
                        hard_rejects += 1;
                        break;
                    }
                }
            }
        }
    }
    responses.extend(server.run_to_completion());
    let wall_seconds = started.elapsed().as_secs_f64();

    println!(
        "# ticket\tquery\ttenant\tstatus\thits\tbest_pos\tbest_score\tlatency_us\tbatch\tcached"
    );
    responses.sort_by_key(|r| r.id);
    for response in &responses {
        let name = names
            .iter()
            .find(|(t, _)| *t == response.id)
            .map(|(_, n)| n.as_str())
            .unwrap_or("?");
        let (hits, best_pos, best_score) = match &response.result {
            Ok(hits) => {
                let best = hits.iter().max_by_key(|h| h.score);
                (
                    hits.len() as i64,
                    best.map(|h| h.position as i64).unwrap_or(-1),
                    best.map(|h| i64::from(h.score)).unwrap_or(-1),
                )
            }
            Err(_) => (-1, -1, -1),
        };
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            response.id,
            name,
            response.tenant,
            error_label(response),
            hits,
            best_pos,
            best_score,
            response.latency_us,
            response.batch_size,
            response.cached_query,
        );
    }

    let stats = server.stats();
    let mut latencies: Vec<u64> = responses
        .iter()
        .filter(|r| r.result.is_ok())
        .map(|r| r.latency_us)
        .collect();
    latencies.sort_unstable();
    let qps = if wall_seconds > 0.0 {
        stats.served_ok as f64 / wall_seconds
    } else {
        0.0
    };
    eprintln!(
        "# served_ok={} served_err={} shed={} rejected={} (hard {}) batches={} peak_batch={}",
        stats.served_ok,
        stats.served_err,
        stats.shed,
        stats.rejected,
        hard_rejects,
        stats.batches,
        stats.peak_batch,
    );
    eprintln!(
        "# qps={qps:.1} p50_us={} p99_us={} query_cache_hit_rate={:.3} reference_cache_hit_rate={:.3}",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
        stats.query_cache.hit_rate(),
        stats.reference_cache.hit_rate(),
    );
    if args.backend == "fleet" {
        eprintln!(
            "# fleet: routable={}/{} hedges={} hedge_wins={} cancels={} failovers={} brownout_shed={}",
            server.routable_nodes().unwrap_or(args.nodes),
            args.nodes,
            stats.hedges,
            stats.hedge_wins,
            stats.cancels,
            stats.failovers,
            stats.brownout_shed,
        );
    }

    if args.stats {
        let snap = registry.snapshot();
        eprintln!(
            "# telemetry: {} series, {} spans",
            snap.metrics.len(),
            snap.spans.len()
        );
    }
    // Evaluate the SLO monitor before snapshotting so the burn-rate
    // and alert gauges (published by `report()`) land in the scrape.
    let slo_report = server.slo_report();
    if args.slo {
        eprint!("{}", slo_report.render_text());
    }
    let snapshot = registry.snapshot();
    if let Some(path) = &args.metrics_out {
        std::fs::write(path, snapshot.to_prometheus())?;
        if !args.quiet {
            eprintln!("# metrics written to {path}");
        }
    }
    if let Some(path) = &args.trace_out {
        std::fs::write(path, snapshot.to_chrome_trace())?;
        if !args.quiet {
            eprintln!("# trace written to {path}");
        }
    }
    if let Some(path) = &args.flight_out {
        let events = server.flight_recorder().events();
        std::fs::write(path, fabp_telemetry::chrome_trace_for_events(&events))?;
        if !args.quiet {
            eprintln!(
                "# flight recorder ({} retained spans, {} dropped) written to {path}",
                events.len(),
                server.flight_recorder().dropped()
            );
        }
    }
    if let Some(path) = &args.anomaly_out {
        match server.anomaly_dumps().first() {
            Some(dump) => {
                std::fs::write(path, &dump.chrome_trace)?;
                if !args.quiet {
                    eprintln!(
                        "# anomaly dump ({}, ticket {}, trace {:016x}) written to {path}",
                        dump.reason, dump.id, dump.trace_id
                    );
                }
            }
            None => {
                if !args.quiet {
                    eprintln!("# no anomalies captured; {path} not written");
                }
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fabp-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
