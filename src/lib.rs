//! # fabp — FPGA acceleration of protein back-translation and alignment
//!
//! Facade crate for the FabP reproduction (DATE 2021). Re-exports the
//! workspace crates under one roof:
//!
//! * [`bio`] — alphabets, sequences, codon table, back-translation (golden
//!   model), FASTA, mutation models, workload generators.
//! * [`encoding`] — the 6-bit query instruction encoding and 2-bit
//!   reference packing (paper §III-B).
//! * [`fpga`] — LUT6/FF primitive netlists of the comparator and
//!   Pop-Counter, device models, AXI/DRAM model and the cycle-level engine
//!   (paper §III-C/D).
//! * [`core`] — the `FabpAligner` public API (paper §III).
//! * [`baselines`] — Smith–Waterman and the TBLASTN-like CPU baseline plus
//!   the GPU-style brute-force comparator (paper §IV).
//! * [`platforms`] — performance/energy models used to regenerate Fig. 6
//!   and Table I.
//! * [`resilience`] — fault injection, detection (CRC framing, config
//!   scrubbing, stream watchdog) and recovery (retry, replay, shard
//!   re-dispatch) for the modelled stack, plus the [`resilience::FabpError`]
//!   taxonomy used across the workspace.
//! * [`serve`] — the production query-serving layer: bounded admission
//!   with per-tenant fairness, adaptive micro-batching, content-hash
//!   caches and deadline shedding over the core engines, plus the
//!   replicated fault-tolerant fleet backend (health-driven routing,
//!   hedged scatter/gather, drain and brownout — see
//!   `docs/SERVING.md` and `docs/RESILIENCE.md`).
//! * [`verify`] — static verification of the generated hardware: symbolic
//!   bit-parallel equivalence against the golden semantics, X-propagation
//!   reset proofs, and configuration-stream dataflow analysis on top of
//!   `fabp-lint`'s diagnostics model (see `docs/VERIFICATION.md`).
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system
//! inventory and experiment index, and `docs/RESILIENCE.md` for the
//! fault-handling architecture.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub use fabp_baselines as baselines;
pub use fabp_bio as bio;
pub use fabp_core as core;
pub use fabp_encoding as encoding;
pub use fabp_fpga as fpga;
pub use fabp_platforms as platforms;
pub use fabp_resilience as resilience;
pub use fabp_serve as serve;
pub use fabp_verify as verify;

pub use fabp_bio::prelude;
