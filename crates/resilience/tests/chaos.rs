//! The chaos suite: seeded end-to-end fault-injection tests.
//!
//! Every test that draws a random schedule prints its seed in the
//! assertion message; re-run with
//! `FABP_CHAOS_SEED=<seed> cargo test -p fabp-resilience --test chaos`
//! (or `RANDOM_SEED=...`, honoured for CI's run-id smoke run) to replay
//! an exact failing schedule.

use fabp_bio::generate::{coding_rna_for_paper_patterns, random_protein, random_rna};
use fabp_bio::seq::{PackedSeq, RnaSeq};
use fabp_encoding::encoder::EncodedQuery;
use fabp_fpga::engine::{EngineConfig, FabpEngine, Hit};
use fabp_resilience::inject::FaultMix;
use fabp_resilience::{
    FabpError, FaultKind, FaultSchedule, ResilienceLevel, ResilientRunner, RetryPolicy,
};
use fabp_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The fixed seed matrix run on every CI invocation; the env seed (if
/// any) is appended so `RANDOM_SEED=$GITHUB_RUN_ID` smokes new ground.
const SEED_MATRIX: [u64; 6] = [0x1, 0xBEEF, 0xC0FFEE, 0xDEAD_BEEF, 0xFAB9_0001, 42];

fn env_seed() -> Option<u64> {
    for var in ["FABP_CHAOS_SEED", "RANDOM_SEED"] {
        if let Ok(v) = std::env::var(var) {
            let v = v.trim().to_string();
            if v.is_empty() {
                continue;
            }
            if let Some(hex) = v.strip_prefix("0x") {
                if let Ok(seed) = u64::from_str_radix(hex, 16) {
                    return Some(seed);
                }
            }
            if let Ok(seed) = v.parse::<u64>() {
                return Some(seed);
            }
            // Non-numeric seeds are hashed (FNV-1a) so any string works.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in v.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            return Some(h);
        }
    }
    None
}

fn all_seeds() -> Vec<u64> {
    let mut seeds = SEED_MATRIX.to_vec();
    if let Some(s) = env_seed() {
        seeds.push(s);
    }
    seeds
}

/// A fixture: planted-hit query + reference, engine, fault-free hits.
struct Fixture {
    engine: FabpEngine,
    reference: PackedSeq,
    baseline: Vec<Hit>,
    baseline_cycles: u64,
}

fn fixture(seed: u64, reference_len: usize) -> Fixture {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF1C7_0000);
    let protein = random_protein(18, &mut rng);
    let coding = coding_rna_for_paper_patterns(&protein, &mut rng);
    let mut bases: Vec<_> = random_rna(reference_len, &mut rng).as_slice().to_vec();
    let at = reference_len / 3;
    bases.splice(at..at + coding.len(), coding.iter().copied());
    let reference = PackedSeq::from_rna(&RnaSeq::from(bases));
    let query = EncodedQuery::from_protein(&protein);
    let threshold = (query.len() as u32).saturating_sub(4);
    let engine = FabpEngine::new(query, EngineConfig::kintex7(threshold)).expect("fixture plans");
    let run = engine.run(&reference);
    Fixture {
        baseline: run.hits.clone(),
        baseline_cycles: run.stats.cycles,
        engine,
        reference,
    }
}

/// THE tentpole property: under every seeded schedule of detectable
/// faults, the recovered hits are bit-identical to the fault-free run.
#[test]
fn recovered_hits_bit_identical_under_seed_matrix() {
    for seed in all_seeds() {
        let fx = fixture(seed, 4000);
        let schedule = FaultSchedule::parse(&format!("seed:{seed:#x}")).expect("seed spec");
        let runner = ResilientRunner::new(&fx.engine, ResilienceLevel::Recover, schedule)
            .with_scrub(8, 32)
            .with_watchdog(256);
        let registry = Registry::new();
        let resolved = runner.resolved_schedule(&fx.reference);
        let out = runner.run(&fx.reference, &registry).unwrap_or_else(|e| {
            panic!("seed {seed:#x} (schedule `{resolved}`): recovery failed: {e}")
        });
        assert_eq!(
            out.run.hits, fx.baseline,
            "seed {seed:#x} (schedule `{resolved}`): hits diverged from fault-free run — \
             reproduce with FABP_CHAOS_SEED={seed:#x}"
        );
        assert_eq!(
            out.report.injected,
            resolved.events().len() as u64,
            "seed {seed:#x}: every scheduled fault must be injected"
        );
        assert!(
            out.report.detected >= out.report.recovered && out.report.recovered > 0,
            "seed {seed:#x}: expected recoveries, report: {:?}",
            out.report
        );
        // Recovery costs cycles: the run is never faster than baseline.
        assert!(
            out.run.stats.cycles >= fx.baseline_cycles,
            "seed {seed:#x}: recovery cannot be free"
        );
    }
}

/// Heavier mixes (more upsets and flips per run) still recover exactly.
#[test]
fn recovered_hits_bit_identical_under_heavy_mix() {
    for seed in all_seeds() {
        let fx = fixture(seed.wrapping_mul(31), 3000);
        let beats = 12; // ~3000/256
        let mix = FaultMix {
            beat_flips: 5,
            query_flips: 2,
            config_upsets: 3,
            stalls: 3,
        };
        let schedule = FaultSchedule::seeded(seed, beats, 8, mix);
        let runner = ResilientRunner::new(&fx.engine, ResilienceLevel::Recover, schedule.clone())
            .with_scrub(4, 16);
        let registry = Registry::disabled();
        let out = runner
            .run(&fx.reference, &registry)
            .unwrap_or_else(|e| panic!("seed {seed:#x} (schedule `{schedule}`): {e}"));
        assert_eq!(
            out.run.hits, fx.baseline,
            "seed {seed:#x} (schedule `{schedule}`) — reproduce with FABP_CHAOS_SEED={seed:#x}"
        );
    }
}

/// Detect-only runs fail fast with the matching typed error.
#[test]
fn detect_level_fails_fast_with_typed_errors() {
    let fx = fixture(7, 2000);
    type ErrPredicate = fn(&FabpError) -> bool;
    let cases: Vec<(&str, ErrPredicate)> = vec![
        ("beatflip@2:3:17", |e| {
            matches!(e, FabpError::CrcMismatch { .. })
        }),
        ("queryflip@0:5", |e| {
            matches!(
                e,
                FabpError::CrcMismatch {
                    stream: fabp_resilience::StreamKind::PackedQuery,
                    ..
                }
            )
        }),
        ("config@1:mux:9", |e| {
            matches!(e, FabpError::ConfigUpset { .. })
        }),
        ("stall@3:2000", |e| {
            matches!(e, FabpError::StreamStall { .. })
        }),
    ];
    for (spec, matches_kind) in cases {
        let schedule = FaultSchedule::parse(spec).expect("spec parses");
        let runner = ResilientRunner::new(&fx.engine, ResilienceLevel::Detect, schedule)
            .with_scrub(4, 16)
            .with_watchdog(256);
        let err = runner
            .run(&fx.reference, &Registry::disabled())
            .expect_err("detect level must fail fast");
        assert!(matches_kind(&err), "`{spec}` produced wrong error: {err}");
    }
}

/// Off-level runs let faults corrupt silently: a compare-LUT upset that
/// breaks matching must lose the planted hit.
#[test]
fn off_level_faults_corrupt_silently() {
    let fx = fixture(11, 2000);
    assert!(
        !fx.baseline.is_empty(),
        "fixture must plant a detectable hit"
    );
    // Stuck the compare LUT hard: flip many table bits via repeated
    // upsets at beat 0 (each flips one INIT bit).
    let mut schedule = FaultSchedule::new();
    for bit in 0..32 {
        schedule.push(FaultKind::ConfigUpset {
            beat: 0,
            lut: fabp_resilience::ConfigLut::Compare,
            bit,
        });
    }
    let runner = ResilientRunner::new(&fx.engine, ResilienceLevel::Off, schedule);
    let out = runner
        .run(&fx.reference, &Registry::disabled())
        .expect("off level runs to completion");
    assert_ne!(
        out.run.hits, fx.baseline,
        "a half-destroyed compare LUT must corrupt the hit list"
    );
    assert_eq!(out.report.detected, 0, "off level must not detect");
}

/// The same corruption is repaired under Recover — directly showing the
/// detect layer is what buys back correctness.
#[test]
fn recover_repairs_what_off_corrupts() {
    let fx = fixture(11, 2000);
    let mut schedule = FaultSchedule::new();
    for bit in 0..32 {
        schedule.push(FaultKind::ConfigUpset {
            beat: 0,
            lut: fabp_resilience::ConfigLut::Compare,
            bit,
        });
    }
    let runner =
        ResilientRunner::new(&fx.engine, ResilienceLevel::Recover, schedule).with_scrub(2, 16);
    let out = runner
        .run(&fx.reference, &Registry::disabled())
        .expect("recover level succeeds");
    assert_eq!(out.run.hits, fx.baseline);
    assert!(out.report.scrub_upsets >= 1);
    assert!(out.report.replayed_beats >= 1);
    assert!(out.report.max_detection_latency_cycles > 0);
}

/// Detection overhead on a fault-free run stays under 2% of cycles —
/// the CLI's advertised budget. The reference is long enough (> 4096
/// beats) that the default periodic configuration scrub actually fires,
/// so the budget is measured with real readback pauses charged, not on
/// a run too short to scrub.
#[test]
fn fault_free_detection_overhead_under_two_percent() {
    let fx = fixture(99, 1_200_000);
    assert!(
        fx.baseline_cycles > 4096,
        "fixture must span at least one default scrub interval"
    );
    for level in [ResilienceLevel::Detect, ResilienceLevel::Recover] {
        let runner = ResilientRunner::new(&fx.engine, level, FaultSchedule::new());
        let out = runner
            .run(&fx.reference, &Registry::disabled())
            .expect("fault-free run succeeds");
        assert_eq!(out.run.hits, fx.baseline, "{level}: no faults, same hits");
        let overhead = out.run.stats.cycles.saturating_sub(fx.baseline_cycles);
        let pct = overhead as f64 / fx.baseline_cycles as f64 * 100.0;
        assert!(
            pct < 2.0,
            "{level}: detection overhead {pct:.3}% (cycles {} vs {})",
            out.run.stats.cycles,
            fx.baseline_cycles
        );
        assert_eq!(out.report.injected, 0);
        assert_eq!(out.report.detected, 0);
        assert!(
            out.report.scrubs > 0,
            "{level}: periodic scrub must fire on a {}-cycle run",
            out.run.stats.cycles
        );
    }
}

/// Stall recovery caps the damage: a huge stall costs ~deadline +
/// backoff instead of the full stall.
#[test]
fn stall_recovery_caps_latency() {
    let fx = fixture(5, 2000);
    let stall = 100_000u64;
    let schedule = FaultSchedule::parse(&format!("stall@1:{stall}")).expect("spec");
    let policy = RetryPolicy::default();
    // Unprotected run pays the full stall.
    let off = ResilientRunner::new(&fx.engine, ResilienceLevel::Off, schedule.clone())
        .run(&fx.reference, &Registry::disabled())
        .expect("off run");
    // Recovered run pays deadline + backoff.
    let rec = ResilientRunner::new(&fx.engine, ResilienceLevel::Recover, schedule)
        .with_watchdog(256)
        .with_retry(policy)
        .run(&fx.reference, &Registry::disabled())
        .expect("recover run");
    assert_eq!(rec.run.hits, fx.baseline);
    assert_eq!(rec.report.stalls_detected, 1);
    assert!(
        rec.run.stats.cycles + stall / 2 < off.run.stats.cycles,
        "recovery must shed most of the stall: {} vs {}",
        rec.run.stats.cycles,
        off.run.stats.cycles
    );
}

/// All resilience events flow into telemetry: counters and histograms
/// appear in the Prometheus export with the documented names.
#[test]
fn resilience_events_reach_prometheus_export() {
    let fx = fixture(3, 3000);
    let schedule = FaultSchedule::parse("beatflip@1:2:3,config@2:cmp:7,stall@4:2000,queryflip@0:1")
        .expect("spec");
    let registry = Registry::new();
    let runner = ResilientRunner::new(&fx.engine, ResilienceLevel::Recover, schedule)
        .with_scrub(4, 16)
        .with_watchdog(256);
    let out = runner.run(&fx.reference, &registry).expect("recovers");
    assert_eq!(out.run.hits, fx.baseline);
    let prom = registry.snapshot().to_prometheus();
    for needle in [
        "# TYPE fabp_resilience_faults_injected_total counter",
        "fabp_resilience_faults_injected_total{kind=\"axi_beat_flip\"} 1",
        "fabp_resilience_faults_injected_total{kind=\"config_upset\"} 1",
        "fabp_resilience_faults_injected_total{kind=\"stream_stall\"} 1",
        "fabp_resilience_faults_injected_total{kind=\"query_word_flip\"} 1",
        "fabp_resilience_faults_detected_total{kind=\"axi_beat_flip\"} 1",
        "fabp_resilience_faults_recovered_total{kind=\"config_upset\"} 1",
        "fabp_resilience_retries_total",
        "# TYPE fabp_resilience_retry_delay_cycles histogram",
        "fabp_resilience_retry_delay_cycles_count",
        "# TYPE fabp_resilience_detection_latency_cycles histogram",
        "fabp_resilience_scrubs_total{outcome=\"upset\"} 1",
        "fabp_resilience_replayed_beats_total",
        "fabp_resilience_watchdog_stalls_total 1",
        "# TYPE fabp_resilience_recovery_overhead_cycles histogram",
    ] {
        assert!(
            prom.contains(needle),
            "Prometheus export missing `{needle}`:\n{prom}"
        );
    }
}

/// A resilient run with an empty schedule is bit- and cycle-identical
/// to `FabpEngine::run` when detection is off.
#[test]
fn off_level_fault_free_is_identical_to_plain_run() {
    let fx = fixture(21, 3000);
    let runner = ResilientRunner::new(&fx.engine, ResilienceLevel::Off, FaultSchedule::new());
    let out = runner
        .run(&fx.reference, &Registry::disabled())
        .expect("runs");
    assert_eq!(out.run.hits, fx.baseline);
    assert_eq!(out.run.stats.cycles, fx.baseline_cycles);
    assert_eq!(out.report, Default::default());
}

/// Fault injection must force the engine's exact per-beat datapath, never
/// the fused fast-forward tables (which model the *golden* netlist).
///
/// Three-way pin:
/// 1. fault-free fast-forward (`run_beats`) == exact per-beat
///    (`run_beats_exact`), bit- and cycle-identical;
/// 2. an Off-level `ConfigUpset` campaign produces hits that *differ*
///    from the golden baseline — i.e. the corrupted netlist was really
///    evaluated, not shortcut through the pristine fused tables;
/// 3. the same upset injected directly into a session makes
///    `push_beats_fast` reproduce the corrupted per-beat hits exactly.
#[test]
fn config_upsets_force_the_exact_datapath() {
    let fx = fixture(33, 2500);
    let beats = fabp_encoding::packing::axi_beats(&fx.reference);

    // (1) Fast-forward and per-beat agree while the configuration is
    // pristine.
    let fast = fx.engine.run_beats(&beats, &Registry::disabled());
    let exact = fx.engine.run_beats_exact(&beats, &Registry::disabled());
    assert_eq!(fast.hits, exact.hits);
    assert_eq!(fast.stats, exact.stats);
    assert_eq!(fast.hits, fx.baseline);

    // (2) An uncorrected upset campaign corrupts results relative to the
    // golden fast-forward baseline.
    let mut schedule = FaultSchedule::new();
    for bit in 0..32 {
        schedule.push(FaultKind::ConfigUpset {
            beat: 0,
            lut: fabp_resilience::ConfigLut::Compare,
            bit,
        });
    }
    let runner = ResilientRunner::new(&fx.engine, ResilienceLevel::Off, schedule);
    let corrupted = runner
        .run(&fx.reference, &Registry::disabled())
        .expect("off level runs to completion");
    assert_ne!(
        corrupted.run.hits, fast.hits,
        "upset campaign must visibly diverge from the golden fast path"
    );

    // (3) With the live cell upset, push_beats_fast must take the slow
    // path and match a hand-rolled per-beat loop on the same upset.
    let golden = fx.engine.session().cell();
    let upset = fabp_fpga::comparator::ComparatorCell::from_luts(
        golden.mux(),
        fabp_fpga::primitives::Lut6::from_init(golden.cmp().init() ^ 0xFFFF_FFFF),
    );
    let mut fast_session = fx.engine.session();
    fast_session.set_cell(upset);
    fast_session.push_beats_fast(&beats);
    let fast_corrupted = fast_session.finish_with_registry(&Registry::disabled());
    let mut exact_session = fx.engine.session();
    exact_session.set_cell(upset);
    for beat in &beats {
        exact_session.push_beat(beat);
    }
    let exact_corrupted = exact_session.finish_with_registry(&Registry::disabled());
    assert_eq!(fast_corrupted.hits, exact_corrupted.hits);
    assert_eq!(fast_corrupted.stats, exact_corrupted.stats);
}
