//! Property tests: randomized schedules (beyond the fixed seed matrix)
//! always recover bit-identically.
//!
//! The proptest shim is deterministic per test name; failures print the
//! generated seed/mix, which maps straight onto
//! `FaultSchedule::seeded(seed, beats, words, mix)`.

use fabp_bio::generate::{coding_rna_for_paper_patterns, random_protein, random_rna};
use fabp_bio::seq::{PackedSeq, RnaSeq};
use fabp_encoding::encoder::EncodedQuery;
use fabp_fpga::engine::{EngineConfig, FabpEngine};
use fabp_resilience::inject::FaultMix;
use fabp_resilience::{FaultSchedule, ResilienceLevel, ResilientRunner};
use fabp_telemetry::Registry;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_fixture(seed: u64) -> (FabpEngine, PackedSeq, Vec<fabp_fpga::engine::Hit>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let protein = random_protein(16, &mut rng);
    let coding = coding_rna_for_paper_patterns(&protein, &mut rng);
    let mut bases: Vec<_> = random_rna(2600, &mut rng).as_slice().to_vec();
    bases.splice(900..900 + coding.len(), coding.iter().copied());
    let reference = PackedSeq::from_rna(&RnaSeq::from(bases));
    let query = EncodedQuery::from_protein(&protein);
    let threshold = (query.len() as u32).saturating_sub(3);
    let engine = FabpEngine::new(query, EngineConfig::kintex7(threshold)).expect("plan fits");
    let baseline = engine.run(&reference).hits;
    (engine, reference, baseline)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary seeds and fault mixes, recovery is bit-exact.
    #[test]
    fn any_seeded_detectable_schedule_recovers_bit_identically(
        seed in any::<u64>(),
        beat_flips in 0u32..4,
        config_upsets in 0u32..3,
        stalls in 0u32..3,
        query_flips in 0u32..2,
        scrub_interval in 2u64..12,
    ) {
        let (engine, reference, baseline) = build_fixture(seed ^ 0x5EED);
        let mix = FaultMix { beat_flips, query_flips, config_upsets, stalls };
        let schedule = FaultSchedule::seeded(seed, 11, 6, mix);
        let runner = ResilientRunner::new(&engine, ResilienceLevel::Recover, schedule.clone())
            .with_scrub(scrub_interval, 16)
            .with_watchdog(256);
        let out = runner
            .run(&reference, &Registry::disabled())
            .unwrap_or_else(|e| panic!("schedule `{schedule}` (seed {seed:#x}): {e}"));
        prop_assert_eq!(
            out.run.hits,
            baseline,
            "schedule `{}` diverged (seed {:#x})",
            schedule,
            seed
        );
        prop_assert_eq!(out.report.injected, schedule.events().len() as u64);
    }
}
