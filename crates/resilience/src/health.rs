//! Health-driven routing: a phi-accrual-style failure detector over
//! per-node latency statistics and fault events.
//!
//! The cluster layer in `fabp-core` originally answered node death
//! *post mortem*: a kill observed mid-search triggered a one-shot shard
//! redispatch, and the next search started from scratch. A fleet that
//! serves steady traffic needs the opposite shape — **routing** consults
//! a continuously updated health table so suspected nodes stop receiving
//! primary reads *before* a request has to fail over, and recovered
//! nodes rejoin gradually through probation probes instead of instantly
//! absorbing full load.
//!
//! The detector keeps, per node:
//!
//! * an **EWMA of observed request latency** plus an EWMA of its squared
//!   deviation (a cheap online variance), from which a p95-style bound
//!   `mean + 2σ` is derived — the hedge-delay budget the fleet's
//!   scatter/gather uses;
//! * the **timestamp of the last success**, from which the classic
//!   phi-accrual suspicion level is computed: assuming exponentially
//!   distributed arrival gaps with the observed mean, the probability of
//!   seeing a gap at least as long as the current silence is
//!   `exp(-elapsed/mean)`, and `phi = -log10` of that —
//!   `phi = log10(e) · elapsed / mean ≈ 0.4343 · elapsed / mean`;
//! * a **consecutive-failure counter** fed by watchdog/fault events,
//!   each failure contributing a fixed phi boost so hard errors drain a
//!   node after [`HealthPolicy::failure_threshold`] strikes even when
//!   its latency history looks healthy.
//!
//! State machine (all transitions counted in telemetry):
//!
//! ```text
//!            phi > threshold, or
//!            failure_threshold strikes           explicit kill
//!  Healthy ───────────────────────► Suspected ───────────────► Dead
//!     ▲                                 │                       │
//!     │    probation_probes successes   │  first probe success  │ revive()
//!     └──────────── Probation ◄─────────┴───────────────────────┘
//! ```
//!
//! `Healthy` nodes are routable as primaries. `Probation` nodes receive
//! only probe traffic (the fleet routes hedges at them) until
//! [`HealthPolicy::probation_probes`] consecutive successes promote them
//! back. `Suspected` and `Dead` nodes are drained from the routing table
//! entirely; `Suspected` nodes re-enter via probation on their first
//! observed success, `Dead` nodes only via an explicit [`FailureDetector::revive`].

use fabp_telemetry::{labels, Gauge, Registry};

/// log10(e): converts the exponential-CDF exponent into a phi value.
const LOG10_E: f64 = core::f64::consts::LOG10_E;

/// Tunables for the failure detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Suspicion level at which a node is drained from routing.
    /// Classic phi-accrual deployments use 8–12; the default of 8 means
    /// "the observed silence is 10^8 times less likely than the mean
    /// gap" under the exponential model.
    pub phi_threshold: f64,
    /// Consecutive hard failures (watchdog stall, dispatch error, fault
    /// event) that suspend a node regardless of its phi.
    pub failure_threshold: u32,
    /// Phi contributed by each consecutive hard failure, so failures
    /// and silence compose into one suspicion scale.
    pub failure_phi_boost: f64,
    /// Consecutive successful probes a probation node must serve before
    /// rejoining the routing table as healthy.
    pub probation_probes: u32,
    /// EWMA smoothing factor for latency mean/variance, in `(0, 1]`.
    pub ewma_alpha: f64,
    /// Samples required before phi is trusted; an unarmed node is
    /// treated as healthy (cold fleets must not self-drain).
    pub min_samples: u32,
}

impl Default for HealthPolicy {
    fn default() -> HealthPolicy {
        HealthPolicy {
            phi_threshold: 8.0,
            failure_threshold: 3,
            failure_phi_boost: 4.0,
            probation_probes: 2,
            ewma_alpha: 0.25,
            min_samples: 3,
        }
    }
}

/// Routing state of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// In the routing table; receives primary reads.
    Healthy,
    /// Drained: suspicion crossed the threshold. Re-enters via
    /// probation on the next observed success.
    Suspected,
    /// Serving probe traffic only; promotes to healthy after the
    /// configured streak of successes, demotes to suspected on failure.
    Probation,
    /// Administratively or fatally down; only [`FailureDetector::revive`]
    /// brings it back (into probation, not straight to healthy).
    Dead,
}

impl NodeState {
    /// Stable label for telemetry.
    pub fn label(self) -> &'static str {
        match self {
            NodeState::Healthy => "healthy",
            NodeState::Suspected => "suspected",
            NodeState::Probation => "probation",
            NodeState::Dead => "dead",
        }
    }
}

/// Per-node statistics backing the suspicion computation.
#[derive(Debug, Clone)]
struct NodeHealth {
    state: NodeState,
    /// EWMA of observed request latency, microseconds.
    ewma_latency_us: f64,
    /// EWMA of squared deviation from the latency mean (online
    /// variance estimate).
    ewma_var_us2: f64,
    /// Server-clock timestamp of the last success, microseconds.
    last_success_us: u64,
    /// Latency samples absorbed so far.
    samples: u32,
    consecutive_failures: u32,
    probe_streak: u32,
}

impl NodeHealth {
    fn new() -> NodeHealth {
        NodeHealth {
            state: NodeState::Healthy,
            ewma_latency_us: 0.0,
            ewma_var_us2: 0.0,
            last_success_us: 0,
            samples: 0,
            consecutive_failures: 0,
            probe_streak: 0,
        }
    }
}

/// Phi-accrual failure detector and routing table for a fixed-size fleet.
#[derive(Debug)]
pub struct FailureDetector {
    policy: HealthPolicy,
    nodes: Vec<NodeHealth>,
    registry: Registry,
    routable_gauge: Gauge,
    suspected_gauge: Gauge,
}

impl FailureDetector {
    /// Builds a detector for `nodes` nodes, all initially healthy.
    pub fn new(nodes: usize, policy: HealthPolicy, registry: &Registry) -> FailureDetector {
        let detector = FailureDetector {
            policy,
            nodes: (0..nodes).map(|_| NodeHealth::new()).collect(),
            registry: registry.clone(),
            routable_gauge: registry.gauge(
                "fabp_fleet_nodes_routable",
                "Nodes currently accepting primary reads",
            ),
            suspected_gauge: registry.gauge(
                "fabp_fleet_nodes_suspected",
                "Nodes drained from routing (suspected or dead)",
            ),
        };
        detector.routable_gauge.set(nodes as i64);
        detector.suspected_gauge.set(0);
        detector
    }

    /// A detector with the default policy.
    pub fn with_defaults(nodes: usize, registry: &Registry) -> FailureDetector {
        FailureDetector::new(nodes, HealthPolicy::default(), registry)
    }

    /// Number of nodes tracked.
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The policy in force.
    pub fn policy(&self) -> HealthPolicy {
        self.policy
    }

    /// Current state of `node` (healthy for out-of-range indices, which
    /// the fleet never produces).
    pub fn state(&self, node: usize) -> NodeState {
        self.nodes.get(node).map_or(NodeState::Healthy, |n| n.state)
    }

    /// Whether `node` accepts primary reads.
    pub fn is_routable(&self, node: usize) -> bool {
        self.state(node) == NodeState::Healthy
    }

    /// Whether `node` may receive hedge/probe traffic: healthy nodes
    /// always, probation nodes as their controlled re-entry path.
    pub fn accepts_probes(&self, node: usize) -> bool {
        matches!(self.state(node), NodeState::Healthy | NodeState::Probation)
    }

    /// Nodes currently accepting primary reads, ascending.
    pub fn routing_table(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&n| self.is_routable(n))
            .collect()
    }

    /// Count of nodes accepting primary reads.
    pub fn routable_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.state == NodeState::Healthy)
            .count()
    }

    /// Count of nodes able to serve reads at all: routable primaries
    /// plus probation nodes earning their rejoin through probes. This is
    /// the fleet's surviving *capacity* — the number brownout admission
    /// control should scale by, since probation nodes still do work.
    pub fn serving_count(&self) -> usize {
        (0..self.nodes.len())
            .filter(|&n| self.accepts_probes(n))
            .count()
    }

    /// Fraction of the fleet accepting primary reads, in `[0, 1]`.
    pub fn surviving_fraction(&self) -> f64 {
        if self.nodes.is_empty() {
            return 1.0;
        }
        self.routable_count() as f64 / self.nodes.len() as f64
    }

    /// EWMA latency estimate for `node`, microseconds (0 before the
    /// first sample).
    pub fn ewma_latency_us(&self, node: usize) -> f64 {
        self.nodes.get(node).map_or(0.0, |n| n.ewma_latency_us)
    }

    /// p95-style latency bound for `node`: `mean + 2σ` from the EWMA
    /// statistics. This is the hedge-delay budget — a primary read
    /// predicted (or observed) to exceed it earns a hedged duplicate.
    pub fn p95_latency_us(&self, node: usize) -> f64 {
        self.nodes.get(node).map_or(0.0, |n| {
            n.ewma_latency_us + 2.0 * n.ewma_var_us2.max(0.0).sqrt()
        })
    }

    /// The phi-accrual suspicion level for `node` at `now_us`.
    ///
    /// `0` while unarmed (fewer than [`HealthPolicy::min_samples`]
    /// samples); otherwise `0.4343 · silence / mean_latency` plus the
    /// per-failure boost for each consecutive hard failure.
    pub fn phi(&self, node: usize, now_us: u64) -> f64 {
        let Some(n) = self.nodes.get(node) else {
            return 0.0;
        };
        let failure_phi = f64::from(n.consecutive_failures) * self.policy.failure_phi_boost;
        if n.samples < self.policy.min_samples {
            return failure_phi;
        }
        let mean = n.ewma_latency_us.max(1.0);
        let silence = now_us.saturating_sub(n.last_success_us) as f64;
        LOG10_E * silence / mean + failure_phi
    }

    /// Feeds one successful request served by `node` with the observed
    /// `latency_us`, completing at `now_us`. Drives probation promotion
    /// and suspected→probation re-entry.
    pub fn record_success(&mut self, node: usize, latency_us: f64, now_us: u64) {
        let alpha = self.policy.ewma_alpha;
        let probes_needed = self.policy.probation_probes;
        let Some(n) = self.nodes.get_mut(node) else {
            return;
        };
        if n.samples == 0 {
            n.ewma_latency_us = latency_us;
            n.ewma_var_us2 = 0.0;
        } else {
            let dev = latency_us - n.ewma_latency_us;
            n.ewma_latency_us += alpha * dev;
            n.ewma_var_us2 = alpha * dev * dev + (1.0 - alpha) * n.ewma_var_us2;
        }
        n.samples = n.samples.saturating_add(1);
        n.last_success_us = now_us;
        n.consecutive_failures = 0;
        match n.state {
            NodeState::Healthy | NodeState::Dead => {}
            NodeState::Suspected => {
                n.probe_streak = 1;
                self.transition(node, NodeState::Probation);
            }
            NodeState::Probation => {
                n.probe_streak += 1;
                if n.probe_streak >= probes_needed {
                    self.transition(node, NodeState::Healthy);
                }
            }
        }
    }

    /// Feeds one hard failure on `node` (watchdog stall, dispatch error,
    /// injected fault) at `now_us`. Suspends the node once the failure
    /// streak or the combined phi crosses the policy thresholds.
    pub fn record_failure(&mut self, node: usize, now_us: u64) {
        let threshold = self.policy.failure_threshold;
        let phi_threshold = self.policy.phi_threshold;
        let Some(n) = self.nodes.get_mut(node) else {
            return;
        };
        n.consecutive_failures = n.consecutive_failures.saturating_add(1);
        n.probe_streak = 0;
        let strikes = n.consecutive_failures;
        match n.state {
            NodeState::Healthy => {
                if strikes >= threshold || self.phi(node, now_us) > phi_threshold {
                    self.transition(node, NodeState::Suspected);
                }
            }
            NodeState::Probation => self.transition(node, NodeState::Suspected),
            NodeState::Suspected | NodeState::Dead => {}
        }
    }

    /// Marks `node` dead outright (a kill event, not a suspicion).
    pub fn record_kill(&mut self, node: usize) {
        if self.nodes.get(node).is_some() {
            self.transition(node, NodeState::Dead);
        }
    }

    /// Re-evaluates every armed node's phi at `now_us`, draining any
    /// whose suspicion crossed the threshold. Returns the nodes drained
    /// by this sweep.
    pub fn sweep(&mut self, now_us: u64) -> Vec<usize> {
        let mut drained = Vec::new();
        for node in 0..self.nodes.len() {
            if self.nodes[node].state == NodeState::Healthy
                && self.phi(node, now_us) > self.policy.phi_threshold
            {
                self.transition(node, NodeState::Suspected);
                drained.push(node);
            }
        }
        drained
    }

    /// Administratively revives a dead node into probation: it serves
    /// probe traffic until the probation streak promotes it.
    pub fn revive(&mut self, node: usize) {
        let Some(n) = self.nodes.get_mut(node) else {
            return;
        };
        if n.state == NodeState::Dead || n.state == NodeState::Suspected {
            n.consecutive_failures = 0;
            n.probe_streak = 0;
            self.transition(node, NodeState::Probation);
        }
    }

    fn transition(&mut self, node: usize, to: NodeState) {
        let from = self.nodes[node].state;
        if from == to {
            return;
        }
        self.nodes[node].state = to;
        if to == NodeState::Healthy {
            self.nodes[node].probe_streak = 0;
        }
        self.registry
            .counter_with(
                "fabp_fleet_node_state_changes_total",
                "Failure-detector state transitions",
                labels(&[("to", to.label())]),
            )
            .inc();
        self.routable_gauge.set(self.routable_count() as i64);
        self.suspected_gauge.set(
            self.nodes
                .iter()
                .filter(|n| matches!(n.state, NodeState::Suspected | NodeState::Dead))
                .count() as i64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(nodes: usize) -> FailureDetector {
        FailureDetector::with_defaults(nodes, &Registry::disabled())
    }

    #[test]
    fn cold_fleet_is_fully_routable() {
        let d = detector(4);
        assert_eq!(d.routing_table(), vec![0, 1, 2, 3]);
        assert_eq!(d.phi(0, 1_000_000), 0.0, "unarmed nodes never self-drain");
        assert!((d.surviving_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_and_p95_track_latency() {
        let mut d = detector(1);
        d.record_success(0, 100.0, 1_000);
        assert!((d.ewma_latency_us(0) - 100.0).abs() < 1e-9);
        // Constant latency → zero variance → p95 == mean.
        d.record_success(0, 100.0, 2_000);
        d.record_success(0, 100.0, 3_000);
        assert!((d.p95_latency_us(0) - 100.0).abs() < 1e-9);
        // A slow burst widens the bound above the mean.
        d.record_success(0, 400.0, 4_000);
        assert!(d.p95_latency_us(0) > d.ewma_latency_us(0));
    }

    #[test]
    fn silence_accrues_phi_and_sweep_drains() {
        let mut d = detector(2);
        for t in 1..=3u64 {
            d.record_success(0, 100.0, t * 1_000);
            d.record_success(1, 100.0, t * 1_000);
        }
        // Shortly after the last success: low suspicion.
        assert!(d.phi(0, 3_100) < 1.0);
        // Long silence: phi grows linearly past the threshold.
        assert!(d.phi(0, 3_000 + 10_000_000) > d.policy().phi_threshold);
        let drained = d.sweep(3_000 + 10_000_000);
        assert_eq!(drained, vec![0, 1]);
        assert_eq!(d.state(0), NodeState::Suspected);
        assert!(d.routing_table().is_empty());
    }

    #[test]
    fn failures_suspend_after_the_threshold() {
        let mut d = detector(3);
        d.record_failure(1, 10);
        d.record_failure(1, 20);
        assert_eq!(d.state(1), NodeState::Healthy, "two strikes tolerated");
        d.record_failure(1, 30);
        assert_eq!(d.state(1), NodeState::Suspected);
        assert_eq!(d.routing_table(), vec![0, 2]);
        assert!((d.surviving_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn probation_rejoins_after_probe_streak() {
        let mut d = detector(2);
        for _ in 0..3 {
            d.record_failure(0, 100);
        }
        assert_eq!(d.state(0), NodeState::Suspected);
        // First success re-enters via probation, not straight to healthy.
        d.record_success(0, 120.0, 200);
        assert_eq!(d.state(0), NodeState::Probation);
        assert!(!d.is_routable(0));
        assert!(d.accepts_probes(0));
        // The second consecutive success completes the default streak.
        d.record_success(0, 110.0, 300);
        assert_eq!(d.state(0), NodeState::Healthy);
        assert!(d.is_routable(0));
    }

    #[test]
    fn probation_failure_demotes_back_to_suspected() {
        let mut d = detector(1);
        for _ in 0..3 {
            d.record_failure(0, 100);
        }
        d.record_success(0, 100.0, 200);
        assert_eq!(d.state(0), NodeState::Probation);
        d.record_failure(0, 300);
        assert_eq!(d.state(0), NodeState::Suspected);
    }

    #[test]
    fn kill_is_dead_until_revived() {
        let mut d = detector(2);
        d.record_kill(1);
        assert_eq!(d.state(1), NodeState::Dead);
        // Successes do not resurrect a dead node.
        d.record_success(1, 100.0, 1_000);
        assert_eq!(d.state(1), NodeState::Dead);
        d.revive(1);
        assert_eq!(d.state(1), NodeState::Probation);
        d.record_success(1, 100.0, 2_000);
        d.record_success(1, 100.0, 3_000);
        assert_eq!(d.state(1), NodeState::Healthy);
    }

    #[test]
    fn transitions_are_counted_and_gauges_exported() {
        let registry = Registry::new();
        let mut d = FailureDetector::with_defaults(3, &registry);
        d.record_kill(2);
        for _ in 0..3 {
            d.record_failure(0, 10);
        }
        let text = registry.snapshot().to_prometheus();
        assert!(text.contains("fabp_fleet_nodes_routable 1"), "{text}");
        assert!(text.contains("fabp_fleet_nodes_suspected 2"), "{text}");
        assert!(
            text.contains("fabp_fleet_node_state_changes_total{to=\"dead\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("fabp_fleet_node_state_changes_total{to=\"suspected\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn detector_is_deterministic_for_identical_event_streams() {
        // Identical event sequences must produce identical routing
        // decisions — hedging determinism depends on it.
        let run = || {
            let mut d = detector(4);
            for t in 1..=5u64 {
                d.record_success(0, 80.0 + t as f64, t * 1_000);
                d.record_success(1, 200.0, t * 1_000);
            }
            d.record_failure(2, 5_100);
            d.record_failure(2, 5_200);
            d.record_failure(2, 5_300);
            d.sweep(20_000_000);
            (
                d.routing_table(),
                d.p95_latency_us(0).to_bits(),
                d.p95_latency_us(1).to_bits(),
                d.phi(3, 20_000_000).to_bits(),
            )
        };
        assert_eq!(run(), run());
    }
}
