//! CRC32 (IEEE 802.3) framing for AXI bursts and packed bitstreams.
//!
//! The hardware analogue is a per-burst CRC generator on the DMA engine
//! and a checker in the accelerator's stream frontend: the host computes
//! the frame CRC when it packs the data, the checker recomputes it as
//! beats arrive, and a mismatch raises a transient stream error. The
//! checker is fully pipelined in the real design, so verification adds
//! **zero** cycles to the data path; the cost is LUTs, not latency.
//!
//! The implementation is the classic reflected table-driven CRC-32
//! (polynomial `0xEDB8_8320`), dependency-free and `const`-initialised.

use fabp_encoding::packing::AxiBeat;

/// The reflected CRC-32 (IEEE) polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Incremental CRC32 state.
///
/// ```
/// use fabp_resilience::crc::Crc32;
/// let mut crc = Crc32::new();
/// crc.update(b"123456789");
/// assert_eq!(crc.finalize(), 0xCBF4_3926); // the canonical check value
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh CRC computation.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the running CRC.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            let idx = ((crc ^ b as u32) & 0xFF) as usize;
            crc = (crc >> 8) ^ TABLE[idx];
        }
        self.state = crc;
    }

    /// Feeds a little-endian `u64` into the running CRC.
    pub fn update_u64(&mut self, word: u64) {
        self.update(&word.to_le_bytes());
    }

    /// Returns the final (bit-inverted) CRC value.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finalize()
}

/// CRC32 of a slice of 64-bit words (little-endian byte order), as used
/// for packed query/database bitstreams.
pub fn crc32_words(words: &[u64]) -> u32 {
    let mut c = Crc32::new();
    for &w in words {
        c.update_u64(w);
    }
    c.finalize()
}

/// CRC32 framing of a single 512-bit AXI beat.
///
/// The frame covers the eight data words plus the `valid` element count
/// (so a truncated trailing beat cannot alias a full one).
pub fn beat_crc(beat: &AxiBeat) -> u32 {
    let mut c = Crc32::new();
    for &w in &beat.words {
        c.update_u64(w);
    }
    c.update_u64(beat.valid as u64);
    c.finalize()
}

/// Frames a whole burst: the per-beat CRCs the host DMA engine would
/// append to each beat.
pub fn frame_beats(beats: &[AxiBeat]) -> Vec<u32> {
    beats.iter().map(beat_crc).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value_matches_ieee() {
        // The canonical CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        // Empty input.
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).collect();
        let mut inc = Crc32::new();
        for chunk in data.chunks(7) {
            inc.update(chunk);
        }
        assert_eq!(inc.finalize(), crc32(&data));
    }

    #[test]
    fn words_crc_matches_bytes() {
        let words = [0x0123_4567_89AB_CDEFu64, 0xFEDC_BA98_7654_3210];
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(crc32_words(&words), crc32(&bytes));
    }

    #[test]
    fn single_bit_flip_changes_beat_crc() {
        let mut beat = AxiBeat {
            words: [0; 8],
            valid: 256,
        };
        let golden = beat_crc(&beat);
        for word in 0..8 {
            for bit in [0u32, 17, 63] {
                beat.words[word] ^= 1u64 << bit;
                assert_ne!(beat_crc(&beat), golden, "flip w{word} b{bit} undetected");
                beat.words[word] ^= 1u64 << bit;
            }
        }
        // Truncation is covered too.
        let short = AxiBeat {
            words: [0; 8],
            valid: 255,
        };
        assert_ne!(beat_crc(&short), golden);
    }
}
