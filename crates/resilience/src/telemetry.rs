//! Telemetry surface of the resilience layer.
//!
//! All fault/detect/recover events flow into `fabp-telemetry` through
//! the helpers here, so the metric names stay consistent between the
//! engine runner, the cluster recovery path in `fabp-core`, and the
//! Prometheus golden test.

use fabp_telemetry::{labels, Registry};

/// Counts one injected fault, labelled by kind.
pub fn count_injected(registry: &Registry, kind: &str) {
    registry
        .counter_with(
            "fabp_resilience_faults_injected_total",
            "Faults injected by the chaos schedule",
            labels(&[("kind", kind)]),
        )
        .inc();
}

/// Counts one detected fault, labelled by kind.
pub fn count_detected(registry: &Registry, kind: &str) {
    registry
        .counter_with(
            "fabp_resilience_faults_detected_total",
            "Faults detected by CRC framing, scrubbing or the watchdog",
            labels(&[("kind", kind)]),
        )
        .inc();
}

/// Counts one recovered fault, labelled by kind.
pub fn count_recovered(registry: &Registry, kind: &str) {
    registry
        .counter_with(
            "fabp_resilience_faults_recovered_total",
            "Faults recovered by retry, scrub-and-replay or re-dispatch",
            labels(&[("kind", kind)]),
        )
        .inc();
}

/// Counts one retry and records its backoff delay.
pub fn record_retry(registry: &Registry, delay_cycles: u64) {
    registry
        .counter(
            "fabp_resilience_retries_total",
            "Transient-error retries issued by the backoff policy",
        )
        .inc();
    registry
        .histogram(
            "fabp_resilience_retry_delay_cycles",
            "Backoff delay charged per retry, in cycles",
        )
        .observe(delay_cycles);
}

/// Counts one scrub pass, labelled clean/upset.
pub fn count_scrub(registry: &Registry, outcome: &str) {
    registry
        .counter_with(
            "fabp_resilience_scrubs_total",
            "Configuration scrub passes by outcome",
            labels(&[("outcome", outcome)]),
        )
        .inc();
}

/// Records the detection latency of a config upset, in cycles.
pub fn record_detection_latency(registry: &Registry, cycles: u64) {
    registry
        .histogram(
            "fabp_resilience_detection_latency_cycles",
            "Cycles from fault injection to detection",
        )
        .observe(cycles);
}

/// Counts beats replayed during scrub-and-replay recovery.
pub fn count_replayed_beats(registry: &Registry, beats: u64) {
    registry
        .counter(
            "fabp_resilience_replayed_beats_total",
            "Reference beats replayed after a config upset",
        )
        .add(beats);
}

/// Counts one watchdog stall detection.
pub fn count_watchdog_stall(registry: &Registry, stalled_cycles: u64) {
    registry
        .counter(
            "fabp_resilience_watchdog_stalls_total",
            "Stream stalls flagged by the watchdog",
        )
        .inc();
    registry
        .histogram(
            "fabp_resilience_watchdog_stall_cycles",
            "Cycles of no progress observed per flagged stall",
        )
        .observe(stalled_cycles);
}

/// Records the total recovery overhead of one run, in cycles.
pub fn record_recovery_overhead(registry: &Registry, cycles: u64) {
    registry
        .histogram(
            "fabp_resilience_recovery_overhead_cycles",
            "Extra cycles spent on detection + recovery per run",
        )
        .observe(cycles);
}

/// Counts one cluster node death.
pub fn count_node_killed(registry: &Registry) {
    registry
        .counter(
            "fabp_cluster_nodes_killed_total",
            "Cluster nodes lost during a search",
        )
        .inc();
}

/// Counts one shard re-dispatched to a surviving node.
pub fn count_shard_redispatched(registry: &Registry) {
    registry
        .counter(
            "fabp_cluster_shards_redispatched_total",
            "Shards re-dispatched from dead nodes to survivors",
        )
        .inc();
}

/// Records the degraded cluster throughput as a permille of nominal.
pub fn record_degraded_throughput(registry: &Registry, permille: i64) {
    registry
        .gauge(
            "fabp_cluster_degraded_throughput_permille",
            "Cluster throughput after degradation, in permille of nominal",
        )
        .set(permille);
}

/// Counts one hedged duplicate read issued past the delay budget.
pub fn count_hedge_issued(registry: &Registry) {
    registry
        .counter(
            "fabp_fleet_hedges_total",
            "Hedged duplicate reads issued by the fleet scatter",
        )
        .inc();
}

/// Counts one hedge that beat its primary to completion.
pub fn count_hedge_won(registry: &Registry) {
    registry
        .counter(
            "fabp_fleet_hedge_wins_total",
            "Hedged reads that completed before their primary",
        )
        .inc();
}

/// Counts one read cancelled after losing a hedge race.
pub fn count_hedge_cancelled(registry: &Registry) {
    registry
        .counter(
            "fabp_fleet_cancels_total",
            "Reads cancelled after losing a first-response-wins race",
        )
        .inc();
}

/// Counts one shard failed over because no placed replica was routable.
pub fn count_failover(registry: &Registry) {
    registry
        .counter(
            "fabp_fleet_failovers_total",
            "Shards routed off their placement because every replica was drained",
        )
        .inc();
}
