//! Fault injection, detection and recovery for the FabP stack.
//!
//! The paper's deployment target — a Kintex-7 streaming NCBI-scale
//! databases for hours — sits squarely in the regime where single-event
//! upsets (SEUs) in configuration memory, transient AXI bit-flips, DRAM
//! corruption of packed bitstreams, bus stalls and whole-node failures
//! silently corrupt alignment scores. This crate closes the
//! **inject → detect → recover** loop at the system level:
//!
//! * [`inject`] — a deterministic, seeded [`inject::FaultSchedule`]
//!   (chaos harness) that flips AXI beats, corrupts packed-query words,
//!   upsets comparator LUT configs mid-run, stalls the reference stream
//!   past a deadline, and kills cluster nodes at a chosen point.
//! * [`detect`] — CRC32 framing on AXI bursts and packed streams
//!   ([`crc`]), periodic configuration scrubbing that compares the live
//!   comparator truth tables against the golden netlist (detection
//!   latency modelled in cycles), and a watchdog that flags engines
//!   whose consumed-element counter stops advancing.
//! * [`recover`] — the typed [`error::FabpError`] taxonomy,
//!   retry-with-exponential-backoff for transient stream errors,
//!   scrub-and-replay for configuration upsets, and the
//!   [`recover::ResilienceLevel`] policy knob.
//! * [`health`] — a phi-accrual-style [`health::FailureDetector`] that
//!   turns per-node EWMA latency and fault/watchdog events into a live
//!   routing table (suspected nodes drained, recovered nodes rejoining
//!   through probation probes) plus the p95-derived hedge-delay budget
//!   used by `fabp_core::fleet`'s hedged scatter/gather.
//! * [`engine`] — [`engine::ResilientRunner`], which drives a
//!   `fabp_fpga::engine::EngineSession` beat by beat under a schedule
//!   and produces a run whose hits are bit-identical to the fault-free
//!   run whenever every injected fault is detectable.
//!
//! Every fault, retry, scrub and replay event is exported through
//! `fabp-telemetry` counters and histograms (see [`telemetry`]).
//!
//! Cluster-level recovery (shard re-dispatch from a dead node to the
//! survivors with recomputed timing) lives in `fabp-core`, which layers
//! on top of this crate.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod crc;
pub mod detect;
pub mod engine;
pub mod error;
pub mod health;
pub mod inject;
pub mod recover;
pub mod telemetry;

pub use crc::{crc32, Crc32};
pub use detect::{ConfigScrubber, ScrubOutcome, Watchdog, WatchdogVerdict};
pub use engine::{ResilienceReport, ResilientRun, ResilientRunner};
pub use error::{FabpError, FabpResult, StreamKind};
pub use health::{FailureDetector, HealthPolicy, NodeState};
pub use inject::{ConfigLut, FaultKind, FaultSchedule};
pub use recover::{retry_with_backoff, ResilienceLevel, RetryPolicy};
