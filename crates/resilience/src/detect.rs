//! Detection layer: CRC checkers, configuration scrubbing, watchdog.
//!
//! Three independent detectors cover the fault model:
//!
//! * **CRC framing** (see [`crate::crc`]) catches transient data
//!   corruption on the AXI reference stream and the packed query
//!   bitstream. The checker is pipelined, so it adds no data-path
//!   cycles.
//! * **[`ConfigScrubber`]** catches SEUs in configuration memory: every
//!   `interval_beats` beats the scrubber reads the live comparator
//!   truth tables back and compares them against the golden netlist.
//!   Readback steals `readback_cycles` from the data path, and an upset
//!   is only *observed* at the next scrub point — the detection latency
//!   is therefore up to one full interval, and is modelled in cycles.
//! * **[`Watchdog`]** catches stalls: if the engine's consumed-element
//!   counter fails to advance within `deadline_cycles`, the stream is
//!   declared hung and the burst is re-issued.

use crate::error::{FabpError, StreamKind};
use fabp_encoding::packing::AxiBeat;
use fabp_fpga::comparator::ComparatorCell;
use fabp_fpga::engine::EngineSession;

use crate::crc::beat_crc;

/// Verifies one framed beat against its golden CRC.
///
/// Returns the typed CRC-mismatch error on failure so callers can feed
/// it straight into the retry policy.
pub fn check_beat(beat: &AxiBeat, golden_crc: u32, frame: u64) -> Result<(), FabpError> {
    let actual = beat_crc(beat);
    if actual == golden_crc {
        Ok(())
    } else {
        Err(FabpError::CrcMismatch {
            stream: StreamKind::AxiReference,
            frame,
            expected: golden_crc,
            actual,
        })
    }
}

/// Periodic configuration-memory scrubbing against the golden netlist.
///
/// Mirrors the Xilinx SEM-style readback scrubber: every
/// `interval_beats` data beats the frame readback engine pauses the
/// stream for `readback_cycles`, reads the live LUT truth tables and
/// compares them with the golden configuration. The **detection
/// latency** of an upset is the cycle distance from the corrupting
/// event to the scrub that observes it — bounded by one interval.
#[derive(Debug, Clone)]
pub struct ConfigScrubber {
    golden: ComparatorCell,
    interval_beats: u64,
    readback_cycles: u64,
    scrubs: u64,
}

/// What one scrub pass observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScrubOutcome {
    /// Live configuration matches the golden netlist.
    Clean,
    /// The live truth tables differed; `corrupted_words` 64-bit INIT
    /// words were wrong. When scrubbing with repair, the configuration
    /// has been rewritten from the golden copy.
    Upset {
        /// Number of corrupted 64-bit truth-table words (1 or 2).
        corrupted_words: u32,
    },
}

impl ConfigScrubber {
    /// Default scrub interval in beats.
    ///
    /// The pipelined engine retires ~one beat per cycle, so the
    /// asymptotic scrub cost is `readback_cycles / interval_beats`:
    /// 32 / 4096 ≈ 0.8 %, comfortably inside the < 2 % detection-
    /// overhead budget the CLI and BENCH output advertise, while
    /// bounding upset-detection latency to ~one interval of cycles.
    pub const DEFAULT_INTERVAL_BEATS: u64 = 4096;
    /// Default modelled readback pause per scrub, in cycles.
    pub const DEFAULT_READBACK_CYCLES: u64 = 32;

    /// Creates a scrubber holding the golden configuration.
    pub fn new(
        golden: ComparatorCell,
        interval_beats: u64,
        readback_cycles: u64,
    ) -> ConfigScrubber {
        ConfigScrubber {
            golden,
            interval_beats: interval_beats.max(1),
            readback_cycles,
            scrubs: 0,
        }
    }

    /// A scrubber with the default interval and readback cost.
    pub fn with_defaults(golden: ComparatorCell) -> ConfigScrubber {
        ConfigScrubber::new(
            golden,
            ConfigScrubber::DEFAULT_INTERVAL_BEATS,
            ConfigScrubber::DEFAULT_READBACK_CYCLES,
        )
    }

    /// Whether a scrub is due before consuming `beat_index`.
    pub fn due(&self, beat_index: u64) -> bool {
        beat_index > 0 && beat_index.is_multiple_of(self.interval_beats)
    }

    /// The modelled readback pause per scrub pass.
    pub fn readback_cycles(&self) -> u64 {
        self.readback_cycles
    }

    /// The scrub interval in beats.
    pub fn interval_beats(&self) -> u64 {
        self.interval_beats
    }

    /// Number of scrub passes performed so far.
    pub fn scrubs_performed(&self) -> u64 {
        self.scrubs
    }

    /// Counts 64-bit truth-table words in `live` differing from golden.
    pub fn corrupted_words(&self, live: ComparatorCell) -> u32 {
        let mut n = 0;
        if live.mux().init() != self.golden.mux().init() {
            n += 1;
        }
        if live.cmp().init() != self.golden.cmp().init() {
            n += 1;
        }
        n
    }

    /// Runs one scrub pass against a live engine session: pauses the
    /// stream for the readback window, compares, and — when `repair` is
    /// set — rewrites the golden configuration over the live one.
    pub fn scrub(&mut self, session: &mut EngineSession<'_>, repair: bool) -> ScrubOutcome {
        self.scrubs += 1;
        session.inject_idle(self.readback_cycles);
        let corrupted = self.corrupted_words(session.cell());
        if corrupted == 0 {
            ScrubOutcome::Clean
        } else {
            if repair {
                session.set_cell(self.golden);
            }
            ScrubOutcome::Upset {
                corrupted_words: corrupted,
            }
        }
    }
}

/// Flags engines whose consumed-element counter stops advancing.
///
/// The watchdog samples `(cycle, consumed)` pairs; if `consumed` fails
/// to advance while the cycle counter moves more than
/// `deadline_cycles`, the stream is declared stalled.
#[derive(Debug, Clone)]
pub struct Watchdog {
    deadline_cycles: u64,
    last_consumed: u64,
    last_advance_cycle: u64,
    armed: bool,
}

/// The watchdog's verdict after one observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogVerdict {
    /// The stream is advancing.
    Alive,
    /// No progress for longer than the deadline.
    Stalled {
        /// Cycles since the last observed advance.
        stalled_cycles: u64,
    },
}

impl Watchdog {
    /// Default deadline: generous multiple of the worst-case modelled
    /// inter-burst gap, so modelled AXI latency never trips it.
    pub const DEFAULT_DEADLINE_CYCLES: u64 = 256;

    /// Creates a watchdog with the given no-progress deadline.
    pub fn new(deadline_cycles: u64) -> Watchdog {
        Watchdog {
            deadline_cycles: deadline_cycles.max(1),
            last_consumed: 0,
            last_advance_cycle: 0,
            armed: false,
        }
    }

    /// The configured no-progress deadline.
    pub fn deadline_cycles(&self) -> u64 {
        self.deadline_cycles
    }

    /// Feeds one `(cycle, consumed)` sample.
    pub fn observe(&mut self, cycle: u64, consumed: u64) -> WatchdogVerdict {
        if !self.armed || consumed > self.last_consumed {
            self.last_consumed = consumed;
            self.last_advance_cycle = cycle;
            self.armed = true;
            return WatchdogVerdict::Alive;
        }
        let stalled = cycle.saturating_sub(self.last_advance_cycle);
        if stalled > self.deadline_cycles {
            WatchdogVerdict::Stalled {
                stalled_cycles: stalled,
            }
        } else {
            WatchdogVerdict::Alive
        }
    }

    /// Resets the progress baseline (after a recovered stall).
    pub fn rearm(&mut self, cycle: u64, consumed: u64) {
        self.last_consumed = consumed;
        self.last_advance_cycle = cycle;
        self.armed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc::beat_crc;

    #[test]
    fn check_beat_flags_flips() {
        let beat = AxiBeat {
            words: [7; 8],
            valid: 256,
        };
        let golden = beat_crc(&beat);
        assert!(check_beat(&beat, golden, 0).is_ok());
        let mut bad = beat;
        bad.words[3] ^= 1 << 12;
        let err = check_beat(&bad, golden, 9).unwrap_err();
        match err {
            FabpError::CrcMismatch { frame, stream, .. } => {
                assert_eq!(frame, 9);
                assert_eq!(stream, StreamKind::AxiReference);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn watchdog_trips_only_past_deadline() {
        let mut wd = Watchdog::new(100);
        assert_eq!(wd.observe(0, 0), WatchdogVerdict::Alive);
        assert_eq!(wd.observe(50, 0), WatchdogVerdict::Alive);
        // Progress resets the clock.
        assert_eq!(wd.observe(90, 256), WatchdogVerdict::Alive);
        assert_eq!(wd.observe(190, 256), WatchdogVerdict::Alive);
        match wd.observe(191, 256) {
            WatchdogVerdict::Stalled { stalled_cycles } => assert_eq!(stalled_cycles, 101),
            WatchdogVerdict::Alive => panic!("expected stall"),
        }
        wd.rearm(191, 256);
        assert_eq!(wd.observe(200, 256), WatchdogVerdict::Alive);
    }

    #[test]
    fn scrub_due_at_interval_boundaries() {
        let sc = ConfigScrubber::new(ComparatorCell::new(), 64, 16);
        assert!(!sc.due(0));
        assert!(!sc.due(63));
        assert!(sc.due(64));
        assert!(!sc.due(65));
        assert!(sc.due(128));
    }

    #[test]
    fn corrupted_words_counts_luts() {
        use fabp_fpga::comparator::{compare_lut, mux_lut};
        use fabp_fpga::primitives::Lut6;
        let sc = ConfigScrubber::with_defaults(ComparatorCell::new());
        assert_eq!(sc.corrupted_words(ComparatorCell::new()), 0);
        let upset_mux =
            ComparatorCell::from_luts(Lut6::from_init(mux_lut().init() ^ 1), compare_lut());
        assert_eq!(sc.corrupted_words(upset_mux), 1);
        let upset_both = ComparatorCell::from_luts(
            Lut6::from_init(mux_lut().init() ^ 2),
            Lut6::from_init(compare_lut().init() ^ 4),
        );
        assert_eq!(sc.corrupted_words(upset_both), 2);
    }
}
