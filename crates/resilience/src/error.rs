//! The typed error taxonomy for the FabP stack.
//!
//! Public APIs in `fabp-core` and this crate return [`FabpError`]
//! instead of panicking; callers match on the variant to decide between
//! retry (transient), scrub-and-replay (config upsets) and re-dispatch
//! (node death). [`FabpError::is_transient`] encodes the retry policy's
//! view of the taxonomy.

use std::fmt;

/// Convenience alias used across the workspace.
pub type FabpResult<T> = Result<T, FabpError>;

/// Which framed stream a CRC mismatch was observed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKind {
    /// 512-bit reference-database beats on the AXI read channel.
    AxiReference,
    /// The packed 2-bit query bitstream transferred at configure time.
    PackedQuery,
    /// A packed-shard payload in the persistent on-disk reference index.
    IndexShard,
    /// The fixed-size header of the persistent on-disk reference index.
    IndexHeader,
}

impl StreamKind {
    /// Stable label used for telemetry and `Display`.
    pub fn label(self) -> &'static str {
        match self {
            StreamKind::AxiReference => "axi_reference",
            StreamKind::PackedQuery => "packed_query",
            StreamKind::IndexShard => "index_shard",
            StreamKind::IndexHeader => "index_header",
        }
    }
}

impl fmt::Display for StreamKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Typed failure taxonomy replacing panics in the public APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabpError {
    /// A query with zero residues cannot be planned or aligned.
    EmptyQuery,
    /// The architecture planner could not fit the design (message from
    /// `fabp_fpga::resources::PlanError`).
    Plan(String),
    /// A framed stream failed its CRC32 check — transient corruption on
    /// the wire or in DRAM; retry the transfer.
    CrcMismatch {
        /// The stream the mismatch was observed on.
        stream: StreamKind,
        /// The frame (beat index for AXI, always 0 for the query).
        frame: u64,
        /// CRC computed at pack time (golden).
        expected: u32,
        /// CRC computed at the consumer.
        actual: u32,
    },
    /// Configuration scrubbing found live LUT truth tables that differ
    /// from the golden netlist — an SEU in configuration memory.
    ConfigUpset {
        /// Cycle at which the scrub detected the upset.
        detected_cycle: u64,
        /// Number of 64-bit truth-table words that differed.
        corrupted_words: u32,
    },
    /// The reference stream stopped advancing past the watchdog
    /// deadline — a hung DMA or bus stall; retry the burst.
    StreamStall {
        /// Beat index that stalled.
        beat: u64,
        /// Cycles the watchdog waited before declaring the stall.
        stalled_cycles: u64,
    },
    /// A cluster node died and its shard did not complete.
    NodeDown {
        /// Index of the dead node in the cluster.
        node: usize,
    },
    /// A packed bitstream failed to decode (corruption escaped framing).
    Decode(String),
    /// The retry policy gave up.
    RetriesExhausted {
        /// Attempts made (including the first).
        attempts: u32,
        /// The final error that exhausted the budget.
        last: Box<FabpError>,
    },
    /// A cluster/shard plan is invalid (zero nodes, empty shard list,
    /// mismatched offsets, …).
    InvalidShardPlan(String),
    /// The serving layer's admission queue is full — backpressure; the
    /// client should retry after a backoff.
    Overloaded {
        /// Requests currently queued.
        queue_depth: usize,
        /// Configured admission-queue capacity.
        capacity: usize,
    },
    /// A request's deadline expired before (or while) it was served and
    /// the serving layer shed it.
    DeadlineExceeded {
        /// Microseconds past the deadline when the request was shed.
        late_us: u64,
    },
    /// The serving instance is draining for shutdown or maintenance and
    /// no longer admits new work; in-flight requests still complete.
    /// Clients should route to another instance.
    Draining,
    /// The fleet is browned out: surviving capacity is below demand, and
    /// this request was shed by tenant priority to protect
    /// higher-priority traffic.
    Brownout {
        /// Nodes still accepting primary reads when the request was shed.
        routable_nodes: usize,
        /// Total nodes in the fleet.
        fleet_nodes: usize,
    },
    /// A k-mer seed-index word or packed key does not fit the index's
    /// `21^word_size` table geometry — wrong residue count, or a packed
    /// key at or beyond `21^word_size`.
    InvalidWord {
        /// The index's configured word size in residues.
        word_size: usize,
        /// What the caller supplied and why it was rejected.
        detail: String,
    },
    /// A user-supplied fault-schedule or CLI spec failed to parse.
    InvalidSpec(String),
    /// An invariant the code relies on was violated — the typed
    /// replacement for `unreachable!`/`expect` in public APIs.
    Internal(String),
}

impl FabpError {
    /// Whether the retry policy should treat this error as transient
    /// (a re-issue of the same operation can succeed).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            FabpError::CrcMismatch { .. }
                | FabpError::StreamStall { .. }
                | FabpError::Overloaded { .. }
                | FabpError::Brownout { .. }
        )
    }

    /// Stable short label for telemetry counters.
    pub fn kind_label(&self) -> &'static str {
        match self {
            FabpError::EmptyQuery => "empty_query",
            FabpError::Plan(_) => "plan",
            FabpError::CrcMismatch { .. } => "crc_mismatch",
            FabpError::ConfigUpset { .. } => "config_upset",
            FabpError::StreamStall { .. } => "stream_stall",
            FabpError::NodeDown { .. } => "node_down",
            FabpError::Decode(_) => "decode",
            FabpError::RetriesExhausted { .. } => "retries_exhausted",
            FabpError::InvalidShardPlan(_) => "invalid_shard_plan",
            FabpError::Overloaded { .. } => "overloaded",
            FabpError::DeadlineExceeded { .. } => "deadline_exceeded",
            FabpError::Draining => "draining",
            FabpError::Brownout { .. } => "brownout",
            FabpError::InvalidWord { .. } => "invalid_word",
            FabpError::InvalidSpec(_) => "invalid_spec",
            FabpError::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for FabpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabpError::EmptyQuery => write!(f, "query is empty"),
            FabpError::Plan(msg) => write!(f, "architecture plan failed: {msg}"),
            FabpError::CrcMismatch {
                stream,
                frame,
                expected,
                actual,
            } => write!(
                f,
                "CRC32 mismatch on {stream} frame {frame}: expected {expected:#010x}, got {actual:#010x}"
            ),
            FabpError::ConfigUpset {
                detected_cycle,
                corrupted_words,
            } => write!(
                f,
                "configuration upset detected at cycle {detected_cycle}: {corrupted_words} truth-table word(s) differ from golden netlist"
            ),
            FabpError::StreamStall {
                beat,
                stalled_cycles,
            } => write!(
                f,
                "reference stream stalled at beat {beat} for {stalled_cycles} cycles past the watchdog deadline"
            ),
            FabpError::NodeDown { node } => write!(f, "cluster node {node} is down"),
            FabpError::Decode(msg) => write!(f, "bitstream decode failed: {msg}"),
            FabpError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s): {last}")
            }
            FabpError::InvalidShardPlan(msg) => write!(f, "invalid shard plan: {msg}"),
            FabpError::Overloaded {
                queue_depth,
                capacity,
            } => write!(
                f,
                "admission queue full ({queue_depth}/{capacity} requests); retry after backoff"
            ),
            FabpError::DeadlineExceeded { late_us } => {
                write!(f, "request deadline exceeded by {late_us} µs; shed")
            }
            FabpError::Draining => {
                write!(f, "server is draining and no longer admits work; route elsewhere")
            }
            FabpError::Brownout {
                routable_nodes,
                fleet_nodes,
            } => write!(
                f,
                "fleet browned out ({routable_nodes}/{fleet_nodes} nodes routable); request shed by tenant priority"
            ),
            FabpError::InvalidWord { word_size, detail } => write!(
                f,
                "invalid k-mer word for word_size {word_size}: {detail}"
            ),
            FabpError::InvalidSpec(msg) => write!(f, "invalid fault spec: {msg}"),
            FabpError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for FabpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FabpError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<fabp_fpga::resources::PlanError> for FabpError {
    fn from(e: fabp_fpga::resources::PlanError) -> FabpError {
        FabpError::Plan(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification() {
        assert!(FabpError::CrcMismatch {
            stream: StreamKind::AxiReference,
            frame: 3,
            expected: 1,
            actual: 2
        }
        .is_transient());
        assert!(FabpError::StreamStall {
            beat: 0,
            stalled_cycles: 100
        }
        .is_transient());
        assert!(!FabpError::ConfigUpset {
            detected_cycle: 10,
            corrupted_words: 1
        }
        .is_transient());
        assert!(!FabpError::NodeDown { node: 2 }.is_transient());
        assert!(!FabpError::EmptyQuery.is_transient());
        // Backpressure is transient (retry after backoff); a blown
        // deadline is not (the result is no longer wanted).
        assert!(FabpError::Overloaded {
            queue_depth: 64,
            capacity: 64
        }
        .is_transient());
        assert!(!FabpError::DeadlineExceeded { late_us: 10 }.is_transient());
        // A brownout clears when nodes rejoin — retry; a draining
        // instance never admits again — route elsewhere.
        assert!(FabpError::Brownout {
            routable_nodes: 1,
            fleet_nodes: 4
        }
        .is_transient());
        assert!(!FabpError::Draining.is_transient());
    }

    #[test]
    fn fleet_errors_display_and_label() {
        let brownout = FabpError::Brownout {
            routable_nodes: 1,
            fleet_nodes: 4,
        };
        assert!(brownout.to_string().contains("1/4"));
        assert_eq!(brownout.kind_label(), "brownout");
        assert!(FabpError::Draining.to_string().contains("draining"));
        assert_eq!(FabpError::Draining.kind_label(), "draining");
    }

    #[test]
    fn serve_errors_display_and_label() {
        let over = FabpError::Overloaded {
            queue_depth: 64,
            capacity: 64,
        };
        assert!(over.to_string().contains("64/64"));
        assert_eq!(over.kind_label(), "overloaded");
        let late = FabpError::DeadlineExceeded { late_us: 1234 };
        assert!(late.to_string().contains("1234"));
        assert_eq!(late.kind_label(), "deadline_exceeded");
    }

    #[test]
    fn display_includes_key_fields() {
        let e = FabpError::CrcMismatch {
            stream: StreamKind::PackedQuery,
            frame: 0,
            expected: 0xDEAD_BEEF,
            actual: 0x0BAD_F00D,
        };
        let s = e.to_string();
        assert!(s.contains("packed_query"));
        assert!(s.contains("0xdeadbeef"));
        let chained = FabpError::RetriesExhausted {
            attempts: 4,
            last: Box::new(e),
        };
        assert!(chained.to_string().contains("4 attempt(s)"));
        assert!(std::error::Error::source(&chained).is_some());
    }
}
