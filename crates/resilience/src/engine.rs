//! The resilient kernel runner: drives an engine session beat by beat
//! under a fault schedule, detecting and recovering as configured.
//!
//! [`ResilientRunner`] is the system-level composition of the three
//! layers:
//!
//! * every reference beat is CRC-framed at "pack time" (host side) and
//!   checked on arrival; a mismatch triggers retry-with-backoff
//!   re-fetches of the pristine beat from DRAM;
//! * the packed query bitstream is CRC-checked before configuration; a
//!   mismatch triggers a re-transfer;
//! * a [`ConfigScrubber`] periodically compares the live comparator
//!   truth tables against the golden netlist; an upset is repaired by
//!   rewriting the golden configuration and **replaying** the beats
//!   since the last clean checkpoint (which were scored by corrupted
//!   logic) — replays honestly cost cycles and DRAM reads;
//! * a [`Watchdog`] bounds how long a fetch may stall; a flagged stall
//!   is recovered by re-issuing the burst, so the run pays
//!   `deadline + backoff` instead of the full stall.
//!
//! Under [`ResilienceLevel::Recover`], any schedule of *detectable*
//! faults yields hits **bit-identical** to the fault-free run (the
//! chaos property suite pins this); under `Detect` the run fails fast
//! with the typed error; under `Off` faults corrupt silently, which is
//! the baseline the CLI uses to quantify detection overhead.

use crate::crc::{crc32_words, frame_beats};
use crate::detect::{check_beat, ConfigScrubber, ScrubOutcome, Watchdog};
use crate::error::{FabpError, FabpResult, StreamKind};
use crate::inject::{ConfigLut, FaultKind, FaultSchedule};
use crate::recover::{ResilienceLevel, RetryPolicy};
use crate::telemetry as rtel;
use fabp_bio::seq::PackedSeq;
use fabp_encoding::bitstream::PackedQuery;
use fabp_encoding::packing::axi_beats;
use fabp_fpga::comparator::ComparatorCell;
use fabp_fpga::engine::{EngineRun, FabpEngine};
use fabp_fpga::primitives::Lut6;
use fabp_telemetry::{FlightRecorder, Registry, TraceContext, TraceEvent, FLAG_RETRY};

/// Aggregate fault/detect/recover statistics for one resilient run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceReport {
    /// Faults the schedule injected into this run.
    pub injected: u64,
    /// Faults the detection layer observed.
    pub detected: u64,
    /// Faults recovered (retry, re-transfer, scrub-and-replay).
    pub recovered: u64,
    /// Transient-error retries issued.
    pub retries: u64,
    /// Configuration scrub passes performed.
    pub scrubs: u64,
    /// Scrub passes that found an upset.
    pub scrub_upsets: u64,
    /// Beats replayed after scrub-and-replay.
    pub replayed_beats: u64,
    /// Watchdog stall detections.
    pub stalls_detected: u64,
    /// Packed-query CRC failures detected.
    pub query_crc_failures: u64,
    /// Reference-beat CRC failures detected.
    pub beat_crc_failures: u64,
    /// Extra cycles charged to detection + recovery (scrub readback,
    /// backoff delays, replayed beats' stream time).
    pub overhead_cycles: u64,
    /// Worst observed upset detection latency, in cycles.
    pub max_detection_latency_cycles: u64,
}

impl ResilienceReport {
    /// Folds another report into this one (cluster-level aggregation:
    /// counts add, detection latency takes the maximum).
    pub fn absorb(&mut self, other: &ResilienceReport) {
        self.injected += other.injected;
        self.detected += other.detected;
        self.recovered += other.recovered;
        self.retries += other.retries;
        self.scrubs += other.scrubs;
        self.scrub_upsets += other.scrub_upsets;
        self.replayed_beats += other.replayed_beats;
        self.stalls_detected += other.stalls_detected;
        self.query_crc_failures += other.query_crc_failures;
        self.beat_crc_failures += other.beat_crc_failures;
        self.overhead_cycles += other.overhead_cycles;
        self.max_detection_latency_cycles = self
            .max_detection_latency_cycles
            .max(other.max_detection_latency_cycles);
    }
}

/// Result of a resilient kernel run.
#[derive(Debug, Clone)]
pub struct ResilientRun {
    /// The engine run (hits + cycle statistics, including all charged
    /// recovery overhead).
    pub run: EngineRun,
    /// What the resilience layer saw and did.
    pub report: ResilienceReport,
}

/// Drives a [`FabpEngine`] under a fault schedule with a configurable
/// resilience level.
#[derive(Debug, Clone)]
pub struct ResilientRunner<'e> {
    engine: &'e FabpEngine,
    level: ResilienceLevel,
    schedule: FaultSchedule,
    retry: RetryPolicy,
    scrub_interval_beats: u64,
    scrub_readback_cycles: u64,
    watchdog_deadline_cycles: u64,
    /// Flight recorder retry spans are written to (disabled by default).
    flight: FlightRecorder,
    /// Parent span for retry events (the owning shard/engine span).
    trace: TraceContext,
    /// Start timestamp stamped onto retry spans, microseconds on the
    /// caller's clock.
    trace_start_us: f64,
}

impl<'e> ResilientRunner<'e> {
    /// Creates a runner with default retry/scrub/watchdog parameters.
    pub fn new(
        engine: &'e FabpEngine,
        level: ResilienceLevel,
        schedule: FaultSchedule,
    ) -> ResilientRunner<'e> {
        ResilientRunner {
            engine,
            level,
            schedule,
            retry: RetryPolicy::default(),
            scrub_interval_beats: ConfigScrubber::DEFAULT_INTERVAL_BEATS,
            scrub_readback_cycles: ConfigScrubber::DEFAULT_READBACK_CYCLES,
            watchdog_deadline_cycles: Watchdog::DEFAULT_DEADLINE_CYCLES,
            flight: FlightRecorder::disabled(),
            trace: TraceContext::none(),
            trace_start_us: 0.0,
        }
    }

    /// Attaches a trace identity: every recovery retry this runner
    /// performs is recorded as a `resilience_retry` child span of
    /// `trace` in `flight`. Disabled contexts/recorders cost one branch.
    pub fn with_trace(
        mut self,
        flight: FlightRecorder,
        trace: TraceContext,
        start_us: f64,
    ) -> ResilientRunner<'e> {
        self.flight = flight;
        self.trace = trace;
        self.trace_start_us = start_us;
        self
    }

    /// Records one retry as a child span of the runner's trace context.
    /// `slot` disambiguates sibling retries (beat index or retry site).
    fn trace_retry(&self, slot: u64, name: &'static str, delay_cycles: u64) {
        self.flight.record(
            TraceEvent::new(
                self.trace.child(0x5E7 + slot),
                name,
                self.trace_start_us,
                (delay_cycles as f64).max(1.0),
            )
            .with_arg(slot)
            .with_flags(FLAG_RETRY),
        );
    }

    /// Overrides the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> ResilientRunner<'e> {
        self.retry = retry;
        self
    }

    /// Overrides the scrub interval (beats) and readback cost (cycles).
    pub fn with_scrub(mut self, interval_beats: u64, readback_cycles: u64) -> ResilientRunner<'e> {
        self.scrub_interval_beats = interval_beats.max(1);
        self.scrub_readback_cycles = readback_cycles;
        self
    }

    /// Overrides the watchdog no-progress deadline.
    pub fn with_watchdog(mut self, deadline_cycles: u64) -> ResilientRunner<'e> {
        self.watchdog_deadline_cycles = deadline_cycles.max(1);
        self
    }

    /// The schedule after seed resolution against `reference`'s shape.
    pub fn resolved_schedule(&self, reference: &PackedSeq) -> FaultSchedule {
        let beats = axi_beats(reference).len() as u64;
        let query_words = PackedQuery::from_query(self.engine.query()).words().len();
        self.schedule.resolve(beats, query_words)
    }

    /// Runs the kernel over `reference` under the configured schedule
    /// and level, reporting all events into `registry`.
    ///
    /// # Errors
    ///
    /// Under [`ResilienceLevel::Detect`], the first detected fault is
    /// returned as its typed error. Under `Recover`, an error is only
    /// returned when the retry budget is exhausted. Under `Off`, a
    /// corrupted query bitstream that no longer decodes surfaces as
    /// [`FabpError::Decode`]; everything else runs to completion with
    /// silently wrong results.
    pub fn run(&self, reference: &PackedSeq, registry: &Registry) -> FabpResult<ResilientRun> {
        let beats = axi_beats(reference);
        let packed_query = PackedQuery::from_query(self.engine.query());
        let schedule = self
            .schedule
            .resolve(beats.len() as u64, packed_query.words().len());
        let mut report = ResilienceReport::default();

        // ---- configure phase: packed query transfer + CRC check ----
        let corrupted_engine =
            self.transfer_query(&packed_query, &schedule, registry, &mut report)?;
        let engine = corrupted_engine.as_ref().unwrap_or(self.engine);

        // Host-side golden frame CRCs, computed at pack time.
        let golden_crcs = frame_beats(&beats);

        // ---- stream phase ----
        let mut session = engine.session();
        let mut scrubber = ConfigScrubber::new(
            engine_golden_cell(engine),
            self.scrub_interval_beats,
            self.scrub_readback_cycles,
        );
        let mut watchdog = Watchdog::new(self.watchdog_deadline_cycles);
        let mut checkpoint = session.checkpoint();
        let mut upset_pending_since: Option<u64> = None;

        for (i, beat) in beats.iter().enumerate() {
            let i64b = i as u64;

            // Periodic configuration scrubbing (detect levels only).
            if self.level.detects() && scrubber.due(i64b) {
                report.scrubs += 1;
                report.overhead_cycles += scrubber.readback_cycles();
                match scrubber.scrub(&mut session, self.level.recovers()) {
                    ScrubOutcome::Clean => {
                        rtel::count_scrub(registry, "clean");
                        checkpoint = session.checkpoint();
                    }
                    ScrubOutcome::Upset { corrupted_words } => {
                        report.scrub_upsets += 1;
                        report.detected += 1;
                        rtel::count_scrub(registry, "upset");
                        rtel::count_detected(registry, "config_upset");
                        let latency = upset_pending_since
                            .map(|c| session.current_cycle().saturating_sub(c))
                            .unwrap_or(0);
                        upset_pending_since = None;
                        report.max_detection_latency_cycles =
                            report.max_detection_latency_cycles.max(latency);
                        rtel::record_detection_latency(registry, latency);
                        if !self.level.recovers() {
                            return Err(FabpError::ConfigUpset {
                                detected_cycle: session.current_cycle(),
                                corrupted_words,
                            });
                        }
                        // Scrub-and-replay: the beats since the last
                        // clean checkpoint were scored by corrupted
                        // logic — rewind and replay them at full price.
                        let from = checkpoint.beat_index();
                        session.restore(&checkpoint);
                        let mut replayed = 0u64;
                        for j in from..i64b {
                            session.push_beat(
                                &beats[usize::try_from(j).map_err(|_| {
                                    FabpError::InvalidShardPlan("beat index overflow".into())
                                })?],
                            );
                            replayed += 1;
                        }
                        report.replayed_beats += replayed;
                        rtel::count_replayed_beats(registry, replayed);
                        rtel::count_recovered(registry, "config_upset");
                        report.recovered += 1;
                        checkpoint = session.checkpoint();
                    }
                }
            }

            // Gather this beat's scheduled faults.
            let mut delivered_beat = *beat;
            let mut extra_delay = 0u64;
            for event in schedule.events() {
                match *event {
                    FaultKind::AxiBeatFlip { beat: b, word, bit } if b == i64b => {
                        report.injected += 1;
                        rtel::count_injected(registry, event.label());
                        delivered_beat.words[word.min(7)] ^= 1u64 << (bit % 64);
                    }
                    FaultKind::ConfigUpset { beat: b, lut, bit } if b == i64b => {
                        report.injected += 1;
                        rtel::count_injected(registry, event.label());
                        let cell = session.cell();
                        session.set_cell(upset_cell(cell, lut, bit));
                        if upset_pending_since.is_none() {
                            upset_pending_since = Some(session.current_cycle());
                        }
                    }
                    FaultKind::StreamStall { beat: b, cycles } if b == i64b => {
                        report.injected += 1;
                        rtel::count_injected(registry, event.label());
                        extra_delay += cycles;
                    }
                    _ => {}
                }
            }

            // CRC check + retry-with-backoff re-fetch.
            if self.level.detects() {
                if let Err(e) = check_beat(&delivered_beat, golden_crcs[i], i64b) {
                    report.detected += 1;
                    report.beat_crc_failures += 1;
                    rtel::count_detected(registry, "axi_beat_flip");
                    if !self.level.recovers() {
                        return Err(e);
                    }
                    // Transient wire corruption: re-fetch the pristine
                    // beat from DRAM after one backoff step. The model
                    // assumes transients do not repeat on re-fetch; the
                    // CRC is re-checked regardless.
                    let delay = self.retry.delay_for(1);
                    report.retries += 1;
                    report.overhead_cycles += delay;
                    rtel::record_retry(registry, delay);
                    self.trace_retry(i64b, "resilience_retry", delay);
                    check_beat(beat, golden_crcs[i], i64b)?;
                    delivered_beat = *beat;
                    extra_delay += delay;
                    rtel::count_recovered(registry, "axi_beat_flip");
                    report.recovered += 1;
                }
            }

            // Watchdog: a stall past the deadline is detected and the
            // burst re-issued, paying deadline + backoff instead of the
            // full stall.
            if self.level.detects() && extra_delay > watchdog.deadline_cycles() {
                report.detected += 1;
                report.stalls_detected += 1;
                rtel::count_detected(registry, "stream_stall");
                rtel::count_watchdog_stall(registry, extra_delay);
                if !self.level.recovers() {
                    return Err(FabpError::StreamStall {
                        beat: i64b,
                        stalled_cycles: extra_delay,
                    });
                }
                let delay = self.retry.delay_for(1);
                let recovered_delay = watchdog.deadline_cycles() + delay;
                report.retries += 1;
                rtel::record_retry(registry, delay);
                self.trace_retry(i64b, "resilience_retry", delay);
                if recovered_delay < extra_delay {
                    report.overhead_cycles += recovered_delay;
                    extra_delay = recovered_delay;
                } else {
                    report.overhead_cycles += extra_delay;
                }
                rtel::count_recovered(registry, "stream_stall");
                report.recovered += 1;
            }

            let outcome = session.push_beat_delayed(&delivered_beat, extra_delay);
            watchdog.rearm(outcome.delivered_cycle, session.consumed());
        }

        // Final scrub: catch upsets injected after the last interval,
        // so "detectable" means detectable-by-end-of-run.
        if self.level.detects() && upset_pending_since.is_some() {
            report.scrubs += 1;
            report.overhead_cycles += scrubber.readback_cycles();
            if let ScrubOutcome::Upset { corrupted_words } =
                scrubber.scrub(&mut session, self.level.recovers())
            {
                report.scrub_upsets += 1;
                report.detected += 1;
                rtel::count_scrub(registry, "upset");
                rtel::count_detected(registry, "config_upset");
                let latency = upset_pending_since
                    .map(|c| session.current_cycle().saturating_sub(c))
                    .unwrap_or(0);
                report.max_detection_latency_cycles =
                    report.max_detection_latency_cycles.max(latency);
                rtel::record_detection_latency(registry, latency);
                if !self.level.recovers() {
                    return Err(FabpError::ConfigUpset {
                        detected_cycle: session.current_cycle(),
                        corrupted_words,
                    });
                }
                let from = checkpoint.beat_index();
                session.restore(&checkpoint);
                let mut replayed = 0u64;
                for j in from..beats.len() as u64 {
                    session.push_beat(&beats[j as usize]);
                    replayed += 1;
                }
                report.replayed_beats += replayed;
                rtel::count_replayed_beats(registry, replayed);
                rtel::count_recovered(registry, "config_upset");
                report.recovered += 1;
            } else {
                rtel::count_scrub(registry, "clean");
            }
        }

        let run = session.finish_with_registry(registry);
        rtel::record_recovery_overhead(registry, report.overhead_cycles);
        Ok(ResilientRun { run, report })
    }

    /// Models the packed-query transfer: applies scheduled query-word
    /// flips, CRC-checks the stream, and — under `Recover` —
    /// re-transfers the pristine bitstream. Returns a corrupted-engine
    /// replacement only when an *undetected* corrupted query still
    /// decodes (the `Off` baseline).
    fn transfer_query(
        &self,
        packed: &PackedQuery,
        schedule: &FaultSchedule,
        registry: &Registry,
        report: &mut ResilienceReport,
    ) -> FabpResult<Option<FabpEngine>> {
        let golden_crc = crc32_words(packed.words());
        let mut words = packed.words().to_vec();
        let mut corrupted = false;
        for event in schedule.events() {
            if let FaultKind::QueryWordFlip { word, bit } = *event {
                if word < words.len() {
                    report.injected += 1;
                    rtel::count_injected(registry, event.label());
                    words[word] ^= 1u64 << (bit % 64);
                    corrupted = true;
                }
            }
        }
        if !corrupted {
            return Ok(None);
        }
        let actual = crc32_words(&words);
        if !self.level.detects() {
            // No framing: the corrupted bitstream configures the device.
            let bad = PackedQuery::from_raw_parts(words, packed.len());
            let query = bad.unpack().map_err(|e| FabpError::Decode(e.to_string()))?;
            let engine =
                FabpEngine::new(query, self.engine.config().clone()).map_err(FabpError::from)?;
            return Ok(Some(engine));
        }
        report.detected += 1;
        report.query_crc_failures += 1;
        rtel::count_detected(registry, "query_word_flip");
        if !self.level.recovers() {
            return Err(FabpError::CrcMismatch {
                stream: StreamKind::PackedQuery,
                frame: 0,
                expected: golden_crc,
                actual,
            });
        }
        // Re-transfer the pristine bitstream after one backoff step.
        let delay = self.retry.delay_for(1);
        report.retries += 1;
        report.overhead_cycles += delay;
        rtel::record_retry(registry, delay);
        self.trace_retry(0, "resilience_retry", delay);
        rtel::count_recovered(registry, "query_word_flip");
        report.recovered += 1;
        Ok(None)
    }
}

/// The engine's golden comparator configuration (what the bitstream
/// loader wrote before any upset).
fn engine_golden_cell(_engine: &FabpEngine) -> ComparatorCell {
    // All FabP engines share the two shipped truth tables; a session
    // starts from this golden cell.
    ComparatorCell::new()
}

/// Flips one INIT bit of the selected truth table.
fn upset_cell(cell: ComparatorCell, lut: ConfigLut, bit: u32) -> ComparatorCell {
    let mask = 1u64 << (bit % 64);
    match lut {
        ConfigLut::Mux => {
            ComparatorCell::from_luts(Lut6::from_init(cell.mux().init() ^ mask), cell.cmp())
        }
        ConfigLut::Compare => {
            ComparatorCell::from_luts(cell.mux(), Lut6::from_init(cell.cmp().init() ^ mask))
        }
    }
}
