//! Recovery policies: resilience levels and retry with backoff.

use crate::error::{FabpError, FabpResult};
use std::fmt;
use std::str::FromStr;

/// How much of the inject → detect → recover loop is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResilienceLevel {
    /// No detection, no recovery: faults corrupt silently (baseline for
    /// quantifying detection overhead and fault impact).
    Off,
    /// Detect and report (CRC checks, scrubbing readback, watchdog) but
    /// do not repair: the run fails fast with a typed error.
    Detect,
    /// Detect and recover: retry transient errors with backoff,
    /// scrub-and-replay config upsets, re-dispatch shards from dead
    /// nodes.
    #[default]
    Recover,
}

impl ResilienceLevel {
    /// Whether any detector is active.
    pub fn detects(self) -> bool {
        !matches!(self, ResilienceLevel::Off)
    }

    /// Whether recovery actions are taken on detection.
    pub fn recovers(self) -> bool {
        matches!(self, ResilienceLevel::Recover)
    }

    /// Stable label for telemetry and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            ResilienceLevel::Off => "off",
            ResilienceLevel::Detect => "detect",
            ResilienceLevel::Recover => "recover",
        }
    }
}

impl fmt::Display for ResilienceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for ResilienceLevel {
    type Err = FabpError;

    fn from_str(s: &str) -> Result<ResilienceLevel, FabpError> {
        match s {
            "off" => Ok(ResilienceLevel::Off),
            "detect" => Ok(ResilienceLevel::Detect),
            "recover" => Ok(ResilienceLevel::Recover),
            other => Err(FabpError::InvalidSpec(format!(
                "unknown resilience level `{other}` (want off|detect|recover)"
            ))),
        }
    }
}

/// Retry-with-exponential-backoff policy for transient errors.
///
/// Delays are modelled in *cycles* (the simulation's native unit): the
/// first retry waits `base_delay_cycles`, each further retry doubles
/// the wait up to `max_delay_cycles`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum total attempts (including the first). Minimum 1.
    pub max_attempts: u32,
    /// Backoff delay before the first retry, in cycles.
    pub base_delay_cycles: u64,
    /// Upper bound for any single backoff delay, in cycles.
    pub max_delay_cycles: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay_cycles: 16,
            max_delay_cycles: 4096,
        }
    }
}

impl RetryPolicy {
    /// The backoff delay before retry number `retry` (1-based): the
    /// exponential schedule `base · 2^(retry-1)` capped at the maximum.
    pub fn delay_for(&self, retry: u32) -> u64 {
        if retry == 0 {
            return 0;
        }
        let shift = (retry - 1).min(63);
        self.base_delay_cycles
            .saturating_mul(1u64 << shift)
            .min(self.max_delay_cycles)
    }

    /// Total backoff cycles paid if all `max_attempts` attempts run.
    pub fn worst_case_delay_cycles(&self) -> u64 {
        (1..self.max_attempts).map(|r| self.delay_for(r)).sum()
    }
}

/// Runs `op` under `policy`, retrying transient errors.
///
/// `op` receives the 0-based attempt number and, on a transient failure
/// ([`FabpError::is_transient`]), is re-invoked after the modelled
/// backoff; `on_retry` is called with `(attempt, delay_cycles, &error)`
/// before each re-invocation so callers can charge the delay to the
/// simulation clock and emit telemetry. Permanent errors propagate
/// immediately; exhausting the budget yields
/// [`FabpError::RetriesExhausted`].
pub fn retry_with_backoff<T>(
    policy: &RetryPolicy,
    mut op: impl FnMut(u32) -> FabpResult<T>,
    mut on_retry: impl FnMut(u32, u64, &FabpError),
) -> FabpResult<T> {
    let attempts = policy.max_attempts.max(1);
    let mut last = None;
    for attempt in 0..attempts {
        match op(attempt) {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt + 1 < attempts => {
                let delay = policy.delay_for(attempt + 1);
                on_retry(attempt, delay, &e);
                last = Some(e);
            }
            Err(e) if e.is_transient() => {
                return Err(FabpError::RetriesExhausted {
                    attempts,
                    last: Box::new(e),
                });
            }
            Err(e) => return Err(e),
        }
    }
    // Unreachable in practice: the loop always returns. Keep a typed
    // fallback rather than a panic for `deny(unwrap_used)` parity.
    Err(FabpError::RetriesExhausted {
        attempts,
        last: Box::new(last.unwrap_or(FabpError::EmptyQuery)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StreamKind;

    fn transient() -> FabpError {
        FabpError::StreamStall {
            beat: 1,
            stalled_cycles: 700,
        }
    }

    #[test]
    fn level_parsing_round_trips() {
        for level in [
            ResilienceLevel::Off,
            ResilienceLevel::Detect,
            ResilienceLevel::Recover,
        ] {
            assert_eq!(level.label().parse::<ResilienceLevel>().unwrap(), level);
        }
        assert!("verbose".parse::<ResilienceLevel>().is_err());
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_attempts: 6,
            base_delay_cycles: 10,
            max_delay_cycles: 100,
        };
        assert_eq!(p.delay_for(1), 10);
        assert_eq!(p.delay_for(2), 20);
        assert_eq!(p.delay_for(3), 40);
        assert_eq!(p.delay_for(4), 80);
        assert_eq!(p.delay_for(5), 100); // capped
        assert_eq!(p.worst_case_delay_cycles(), 10 + 20 + 40 + 80 + 100);
    }

    #[test]
    fn retry_succeeds_after_transients() {
        let mut delays = Vec::new();
        let result = retry_with_backoff(
            &RetryPolicy::default(),
            |attempt| {
                if attempt < 2 {
                    Err(transient())
                } else {
                    Ok(attempt)
                }
            },
            |_, delay, _| delays.push(delay),
        );
        assert_eq!(result.unwrap(), 2);
        assert_eq!(delays, vec![16, 32]);
    }

    #[test]
    fn retry_exhausts_on_persistent_transient() {
        let err = retry_with_backoff(
            &RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            },
            |_| -> FabpResult<()> { Err(transient()) },
            |_, _, _| {},
        )
        .unwrap_err();
        match err {
            FabpError::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, 3);
                assert!(last.is_transient());
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn permanent_errors_do_not_retry() {
        let mut calls = 0;
        let err = retry_with_backoff(
            &RetryPolicy::default(),
            |_| -> FabpResult<()> {
                calls += 1;
                Err(FabpError::CrcMismatch {
                    stream: StreamKind::PackedQuery,
                    frame: 0,
                    expected: 1,
                    actual: 2,
                })
            },
            |_, _, _| {},
        )
        .unwrap_err();
        // CRC mismatches ARE transient; use a truly permanent error.
        assert!(matches!(err, FabpError::RetriesExhausted { .. }));
        assert_eq!(calls, 4);

        let mut calls2 = 0;
        let err2 = retry_with_backoff(
            &RetryPolicy::default(),
            |_| -> FabpResult<()> {
                calls2 += 1;
                Err(FabpError::EmptyQuery)
            },
            |_, _, _| {},
        )
        .unwrap_err();
        assert_eq!(err2, FabpError::EmptyQuery);
        assert_eq!(calls2, 1);
    }
}
