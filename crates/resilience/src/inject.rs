//! Deterministic, seeded fault injection (the chaos harness).
//!
//! A [`FaultSchedule`] is an ordered list of faults pinned to beat
//! indices. Schedules come from three places:
//!
//! * **hand-written** — [`FaultSchedule::new`] + [`FaultSchedule::push`];
//! * **seeded** — [`FaultSchedule::seeded`] draws a reproducible random
//!   mix from a 64-bit seed (the chaos suite's seed matrix); a failing
//!   test prints the seed, and re-running with it replays the exact
//!   schedule;
//! * **parsed** — [`FaultSchedule::parse`] accepts the CLI `--inject-faults`
//!   spec, and [`std::fmt::Display`] round-trips a schedule back into
//!   that spec so failures are copy-paste reproducible.
//!
//! The generator is a self-contained SplitMix64 so schedules do not
//! depend on any external RNG crate (the `rand` shim is dev-only).

use crate::error::{FabpError, FabpResult};
use std::fmt;

/// Which of the comparator cell's two LUT6 truth tables an SEU hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfigLut {
    /// The back-translation mux LUT (codon → residue select).
    Mux,
    /// The residue compare LUT.
    Compare,
}

impl ConfigLut {
    /// Stable label used in specs and telemetry.
    pub fn label(self) -> &'static str {
        match self {
            ConfigLut::Mux => "mux",
            ConfigLut::Compare => "cmp",
        }
    }
}

/// One injectable fault, pinned to a point in the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Flip bit `bit` of word `word` of reference beat `beat` while it
    /// crosses the AXI read channel (transient wire/DRAM corruption).
    AxiBeatFlip {
        /// Beat index into the reference stream.
        beat: u64,
        /// Word within the 512-bit beat, `0..8`.
        word: usize,
        /// Bit within the word, `0..64`.
        bit: u32,
    },
    /// Flip bit `bit` of word `word` of the packed query bitstream
    /// before it is transferred (DRAM corruption at configure time).
    QueryWordFlip {
        /// Word index into the packed query.
        word: usize,
        /// Bit within the word, `0..64`.
        bit: u32,
    },
    /// Flip one bit of a comparator LUT truth table just before beat
    /// `beat` is consumed (an SEU in configuration memory).
    ConfigUpset {
        /// Beat index at which the upset lands.
        beat: u64,
        /// Which truth table is hit.
        lut: ConfigLut,
        /// INIT bit to flip, `0..64`.
        bit: u32,
    },
    /// Stall the delivery of beat `beat` by `cycles` extra cycles (a
    /// hung DMA descriptor / bus contention spike).
    StreamStall {
        /// Beat index whose fetch stalls.
        beat: u64,
        /// Extra stall cycles beyond the modelled AXI latency.
        cycles: u64,
    },
    /// Kill cluster node `node` after it has consumed `after_beats`
    /// beats of its shard (power loss / fatal link error).
    NodeKill {
        /// Cluster node index.
        node: usize,
        /// Beats of its shard the node completes before dying.
        after_beats: u64,
    },
}

impl FaultKind {
    /// Stable label used for telemetry counters.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::AxiBeatFlip { .. } => "axi_beat_flip",
            FaultKind::QueryWordFlip { .. } => "query_word_flip",
            FaultKind::ConfigUpset { .. } => "config_upset",
            FaultKind::StreamStall { .. } => "stream_stall",
            FaultKind::NodeKill { .. } => "node_kill",
        }
    }

    /// Whether the detect layer can catch this fault (all shipped kinds
    /// are detectable; the distinction matters for hand-written
    /// schedules that model undetectable multi-bit aliasing).
    pub fn is_detectable(&self) -> bool {
        true
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::AxiBeatFlip { beat, word, bit } => {
                write!(f, "beatflip@{beat}:{word}:{bit}")
            }
            FaultKind::QueryWordFlip { word, bit } => write!(f, "queryflip@{word}:{bit}"),
            FaultKind::ConfigUpset { beat, lut, bit } => {
                write!(f, "config@{beat}:{}:{bit}", lut.label())
            }
            FaultKind::StreamStall { beat, cycles } => write!(f, "stall@{beat}:{cycles}"),
            FaultKind::NodeKill { node, after_beats } => {
                write!(f, "kill@{node}:{after_beats}")
            }
        }
    }
}

/// A deterministic, ordered schedule of faults.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultSchedule {
    events: Vec<FaultKind>,
    seed: Option<u64>,
}

/// The per-kind weights used by [`FaultSchedule::seeded`].
#[derive(Debug, Clone, Copy)]
pub struct FaultMix {
    /// Number of AXI beat flips to draw.
    pub beat_flips: u32,
    /// Number of packed-query word flips to draw.
    pub query_flips: u32,
    /// Number of configuration upsets to draw.
    pub config_upsets: u32,
    /// Number of stream stalls to draw.
    pub stalls: u32,
}

impl Default for FaultMix {
    fn default() -> FaultMix {
        FaultMix {
            beat_flips: 2,
            query_flips: 1,
            config_upsets: 1,
            stalls: 1,
        }
    }
}

/// SplitMix64 step (public domain; Vigna 2015) — keeps the schedule
/// generator dependency-free and bit-stable across platforms.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultSchedule {
    /// An empty schedule (the fault-free baseline).
    pub fn new() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Appends a fault to the schedule.
    pub fn push(&mut self, fault: FaultKind) -> &mut Self {
        self.events.push(fault);
        self
    }

    /// Builds a schedule with the given events.
    pub fn from_events(events: Vec<FaultKind>) -> FaultSchedule {
        FaultSchedule { events, seed: None }
    }

    /// Draws a reproducible random schedule from `seed`.
    ///
    /// `total_beats` bounds the beat indices (faults land in
    /// `0..total_beats`); `query_words` bounds query-flip word indices
    /// (0 disables query flips even if the mix requests them).
    pub fn seeded(seed: u64, total_beats: u64, query_words: usize, mix: FaultMix) -> FaultSchedule {
        let mut s = seed;
        let beats = total_beats.max(1);
        let mut events = Vec::new();
        for _ in 0..mix.beat_flips {
            events.push(FaultKind::AxiBeatFlip {
                beat: splitmix64(&mut s) % beats,
                word: (splitmix64(&mut s) % 8) as usize,
                bit: (splitmix64(&mut s) % 64) as u32,
            });
        }
        if query_words > 0 {
            for _ in 0..mix.query_flips {
                events.push(FaultKind::QueryWordFlip {
                    word: (splitmix64(&mut s) % query_words as u64) as usize,
                    bit: (splitmix64(&mut s) % 64) as u32,
                });
            }
        }
        for _ in 0..mix.config_upsets {
            let lut = if splitmix64(&mut s) & 1 == 0 {
                ConfigLut::Mux
            } else {
                ConfigLut::Compare
            };
            events.push(FaultKind::ConfigUpset {
                beat: splitmix64(&mut s) % beats,
                lut,
                bit: (splitmix64(&mut s) % 64) as u32,
            });
        }
        for _ in 0..mix.stalls {
            events.push(FaultKind::StreamStall {
                beat: splitmix64(&mut s) % beats,
                // Long enough to trip any sane watchdog deadline.
                cycles: 500 + splitmix64(&mut s) % 1500,
            });
        }
        // Deterministic order: sort by beat, then by the display form so
        // equal-beat events have a stable order.
        events.sort_by_key(|e| (schedule_beat(e), e.to_string()));
        FaultSchedule {
            events,
            seed: Some(seed),
        }
    }

    /// Parses a CLI spec: comma-separated fault atoms, e.g.
    /// `beatflip@12:3:17,stall@40:900,config@64:mux:5,queryflip@0:3,kill@1:50`
    /// or `seed:0xBEEF` / `seed:42` for a seeded schedule (resolved
    /// against the run's beat count by the caller via
    /// [`FaultSchedule::seeded`], signalled here by an empty event list
    /// and `Some(seed)`).
    pub fn parse(spec: &str) -> FabpResult<FaultSchedule> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Ok(FaultSchedule::new());
        }
        if let Some(rest) = spec.strip_prefix("seed:") {
            let seed = parse_u64(rest)
                .ok_or_else(|| FabpError::InvalidSpec(format!("bad seed `{rest}`")))?;
            return Ok(FaultSchedule {
                events: Vec::new(),
                seed: Some(seed),
            });
        }
        let mut events = Vec::new();
        for atom in spec.split(',') {
            let atom = atom.trim();
            let (kind, args) = atom
                .split_once('@')
                .ok_or_else(|| FabpError::InvalidSpec(format!("missing `@` in `{atom}`")))?;
            let parts: Vec<&str> = args.split(':').collect();
            let bad = || FabpError::InvalidSpec(format!("bad arguments in `{atom}`"));
            let num = |i: usize| -> FabpResult<u64> {
                parts.get(i).and_then(|p| parse_u64(p)).ok_or_else(bad)
            };
            let event = match kind {
                "beatflip" => {
                    if parts.len() != 3 {
                        return Err(bad());
                    }
                    FaultKind::AxiBeatFlip {
                        beat: num(0)?,
                        word: (num(1)? as usize).min(7),
                        bit: (num(2)? % 64) as u32,
                    }
                }
                "queryflip" => {
                    if parts.len() != 2 {
                        return Err(bad());
                    }
                    FaultKind::QueryWordFlip {
                        word: num(0)? as usize,
                        bit: (num(1)? % 64) as u32,
                    }
                }
                "config" => {
                    if parts.len() != 3 {
                        return Err(bad());
                    }
                    let lut = match parts[1] {
                        "mux" => ConfigLut::Mux,
                        "cmp" | "compare" => ConfigLut::Compare,
                        other => {
                            return Err(FabpError::InvalidSpec(format!(
                                "unknown LUT `{other}` in `{atom}` (want mux|cmp)"
                            )))
                        }
                    };
                    FaultKind::ConfigUpset {
                        beat: num(0)?,
                        lut,
                        bit: (num(2)? % 64) as u32,
                    }
                }
                "stall" => {
                    if parts.len() != 2 {
                        return Err(bad());
                    }
                    FaultKind::StreamStall {
                        beat: num(0)?,
                        cycles: num(1)?,
                    }
                }
                "kill" => {
                    if parts.len() != 2 {
                        return Err(bad());
                    }
                    FaultKind::NodeKill {
                        node: num(0)? as usize,
                        after_beats: num(1)?,
                    }
                }
                other => {
                    return Err(FabpError::InvalidSpec(format!(
                        "unknown fault kind `{other}` (want beatflip|queryflip|config|stall|kill)"
                    )))
                }
            };
            events.push(event);
        }
        Ok(FaultSchedule { events, seed: None })
    }

    /// The ordered fault events.
    pub fn events(&self) -> &[FaultKind] {
        &self.events
    }

    /// The seed this schedule was drawn from, if any.
    pub fn seed(&self) -> Option<u64> {
        self.seed
    }

    /// True when the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.seed.is_none()
    }

    /// Whether a seeded spec still needs resolving against a run shape.
    pub fn needs_resolution(&self) -> bool {
        self.events.is_empty() && self.seed.is_some()
    }

    /// Resolves a `seed:`-style schedule against the run shape; a
    /// schedule that already has events is returned unchanged.
    pub fn resolve(&self, total_beats: u64, query_words: usize) -> FaultSchedule {
        if self.needs_resolution() {
            match self.seed {
                Some(seed) => {
                    FaultSchedule::seeded(seed, total_beats, query_words, FaultMix::default())
                }
                None => self.clone(),
            }
        } else {
            self.clone()
        }
    }

    /// All node-kill events (cluster-level; engine runners ignore them).
    pub fn node_kills(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.events.iter().filter_map(|e| match e {
            FaultKind::NodeKill { node, after_beats } => Some((*node, *after_beats)),
            _ => None,
        })
    }
}

/// Beat key used for deterministic ordering (query flips sort first,
/// node kills last).
fn schedule_beat(e: &FaultKind) -> u64 {
    match e {
        FaultKind::QueryWordFlip { .. } => 0,
        FaultKind::AxiBeatFlip { beat, .. }
        | FaultKind::ConfigUpset { beat, .. }
        | FaultKind::StreamStall { beat, .. } => *beat,
        FaultKind::NodeKill { .. } => u64::MAX,
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

impl fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.needs_resolution() {
            return match self.seed {
                Some(seed) => write!(f, "seed:{seed:#x}"),
                None => Ok(()),
            };
        }
        let mut first = true;
        for e in &self.events {
            if !first {
                f.write_str(",")?;
            }
            write!(f, "{e}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic_and_bounded() {
        let a = FaultSchedule::seeded(0xBEEF, 100, 4, FaultMix::default());
        let b = FaultSchedule::seeded(0xBEEF, 100, 4, FaultMix::default());
        assert_eq!(a, b);
        assert_eq!(a.seed(), Some(0xBEEF));
        assert!(!a.events().is_empty());
        for e in a.events() {
            match e {
                FaultKind::AxiBeatFlip { beat, word, bit } => {
                    assert!(*beat < 100 && *word < 8 && *bit < 64)
                }
                FaultKind::QueryWordFlip { word, bit } => assert!(*word < 4 && *bit < 64),
                FaultKind::ConfigUpset { beat, bit, .. } => assert!(*beat < 100 && *bit < 64),
                FaultKind::StreamStall { beat, cycles } => {
                    assert!(*beat < 100 && *cycles >= 500)
                }
                FaultKind::NodeKill { .. } => panic!("seeded schedules are node-local"),
            }
        }
        let c = FaultSchedule::seeded(0xBEF0, 100, 4, FaultMix::default());
        assert_ne!(a, c, "different seeds draw different schedules");
    }

    #[test]
    fn spec_round_trips_through_display() {
        let spec = "beatflip@12:3:17,config@64:mux:5,stall@40:900,queryflip@0:3,kill@1:50";
        let sched = FaultSchedule::parse(spec).unwrap();
        assert_eq!(sched.events().len(), 5);
        let printed = sched.to_string();
        let reparsed = FaultSchedule::parse(&printed).unwrap();
        assert_eq!(sched.events(), reparsed.events());
    }

    #[test]
    fn seed_spec_resolves_lazily() {
        let sched = FaultSchedule::parse("seed:0xBEEF").unwrap();
        assert!(sched.needs_resolution());
        assert_eq!(sched.to_string(), "seed:0xbeef");
        let resolved = sched.resolve(64, 2);
        assert!(!resolved.needs_resolution());
        assert_eq!(
            resolved,
            FaultSchedule::seeded(0xBEEF, 64, 2, FaultMix::default())
        );
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for bad in [
            "nope@1:2",
            "beatflip@1",
            "config@1:quux:3",
            "stall@",
            "seed:zzz",
            "beatflip12:3:17",
        ] {
            let err = FaultSchedule::parse(bad).unwrap_err();
            assert_eq!(err.kind_label(), "invalid_spec", "{bad} should fail");
        }
        assert!(FaultSchedule::parse("").unwrap().is_empty());
    }

    #[test]
    fn node_kills_are_filtered() {
        let sched = FaultSchedule::parse("kill@2:10,beatflip@1:0:0").unwrap();
        let kills: Vec<_> = sched.node_kills().collect();
        assert_eq!(kills, vec![(2, 10)]);
    }
}
