//! Persistent packed reference index + k-mer seeded prefilter.
//!
//! Every search used to re-encode and re-scan the full reference; that
//! caps the system far below the paper's GB-scale `nt`-style workloads
//! (ROADMAP item 3). This module adds the two-tier filter-then-verify
//! design proven in ASAP (Banerjee et al.) and the Salamat/Rosing FPGA
//! alignment survey:
//!
//! 1. **A versioned on-disk packed-shard format** ([`ReferenceIndex`]):
//!    the reference is 2-bit packed ([`PackedSeq`]) into shards cut by
//!    [`slice_plan::overlap_ranges`](crate::slice_plan::overlap_ranges)
//!    with a fixed trailing overlap, framed with CRC32 checksums from
//!    `fabp-resilience`, and written as raw little-endian words. Loading
//!    is a single pass of reads straight into `u64` buffers — no text
//!    parse, no re-encode — so a 1 GB+ reference cold-loads at I/O
//!    speed and warm paths can hold the shards resident behind an
//!    [`Arc`](std::sync::Arc) keyed by [`ReferenceIndex::fingerprint`].
//! 2. **A k-mer seed prefilter** ([`search_index`] with
//!    [`PrefilterMode::Seeded`]): the production promotion of
//!    [`fabp_baselines::kmer::WordIndex`] — a BLAST-style BLOSUM62
//!    neighbourhood word table per query. Each shard is translated in
//!    the three forward frames with rolling packed keys; every seed hit
//!    `(word position, query position)` names one diagonal, so the
//!    candidate alignment start is `word_base − 3·q`. Candidates are
//!    binned per shard, coalesced into disjoint regions, and **verified
//!    by the exact engine** ([`BitParallelEngine`]) over just those
//!    regions. A hit depends only on the `window` bases it spans, so
//!    every hit the filter admits is bit-identical to the full scan's;
//!    the filter can only *miss* windows whose every seed word mutated
//!    below the neighbourhood threshold `T`. Recall is measured against
//!    planted ground truth (see `tests/proptest_index.rs` and
//!    `bench_serve`); [`PrefilterMode::Off`] keeps the exhaustive scan
//!    reachable end-to-end.
//!
//! # On-disk layout (version 1, all little-endian)
//!
//! ```text
//! magic   "FABPIDX\0"                      8 bytes
//! version u32                              4 bytes
//! hlen    u32   header-region byte length  4 bytes
//! header region (hlen bytes):
//!   total_bases u64 · overlap u64 · shard_count u64
//!   then per shard:
//!     start u64 · base_len u64 · word_count u64
//!     payload_crc u32 · reserved u32
//! header_crc u32   CRC32 over the header region
//! payload: per shard, word_count × u64 packed words
//! ```
//!
//! A corrupted header fails with
//! [`FabpError::CrcMismatch`]`{stream: IndexHeader}`; a corrupted shard
//! payload with `{stream: IndexShard, frame: shard}` — typed errors,
//! never UB or silent wrong hits.

use crate::aligner::{FabpAligner, Threshold};
use crate::bitparallel::BitParallelEngine;
use crate::hits::{merge_shard_hits, Hit};
use crate::slice_plan::overlap_ranges;
use fabp_baselines::kmer::{WordIndex, SYMBOLS};
use fabp_bio::alphabet::AminoAcid;
use fabp_bio::codon::Codon;
use fabp_bio::seq::{PackedSeq, ProteinSeq, RnaSeq};
use fabp_encoding::encoder::EncodedQuery;
use fabp_resilience::crc::crc32_words;
use fabp_resilience::{FabpError, FabpResult, StreamKind};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};

/// File magic at offset 0.
pub const MAGIC: [u8; 8] = *b"FABPIDX\0";
/// Current format version.
pub const VERSION: u32 = 1;

/// BLAST protein defaults: 3-residue words, neighbourhood threshold 11.
pub const DEFAULT_WORD_SIZE: usize = 3;
/// See [`DEFAULT_WORD_SIZE`].
pub const DEFAULT_SEED_THRESHOLD: i32 = 11;

/// Whether the seeded prefilter routes the scan, or the exhaustive
/// full-reference scan runs (the ground-truth path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrefilterMode {
    /// Exhaustive scan of every position — no filtering, full recall.
    Off,
    /// k-mer seed → diagonal candidates → exact verification.
    #[default]
    Seeded,
}

impl PrefilterMode {
    /// Stable label for telemetry/CLI output.
    pub fn label(self) -> &'static str {
        match self {
            PrefilterMode::Off => "off",
            PrefilterMode::Seeded => "seeded",
        }
    }
}

impl FromStr for PrefilterMode {
    type Err = FabpError;

    fn from_str(s: &str) -> FabpResult<PrefilterMode> {
        match s {
            "off" => Ok(PrefilterMode::Off),
            "seeded" => Ok(PrefilterMode::Seeded),
            other => Err(FabpError::InvalidSpec(format!(
                "unknown prefilter mode '{other}' (expected off|seeded)"
            ))),
        }
    }
}

/// Seeding parameters for the prefilter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedParams {
    /// Word size in residues (BLAST protein default 3).
    pub word_size: usize,
    /// BLOSUM62 neighbourhood threshold `T` (BLAST default 11).
    pub threshold: i32,
}

impl Default for SeedParams {
    fn default() -> SeedParams {
        SeedParams {
            word_size: DEFAULT_WORD_SIZE,
            threshold: DEFAULT_SEED_THRESHOLD,
        }
    }
}

/// Sizing policy for [`ReferenceIndex::build_from_rna`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexBuildOptions {
    /// Trailing overlap bases per shard. Must be at least
    /// `3 × max_query_aa − 1` for the seeded path to admit every query
    /// window; the serve layer derives it from its `max_query_aa`.
    pub overlap: usize,
    /// Target shard payload size in bases; the builder cuts
    /// `ceil(total / target)` shards.
    pub target_shard_bases: usize,
}

impl Default for IndexBuildOptions {
    fn default() -> IndexBuildOptions {
        IndexBuildOptions {
            // 3 × 128 aa: comfortably above every workload's max query.
            overlap: 384,
            // 4 Mbases/shard: large enough to amortise per-shard costs,
            // small enough to parallelise seeding across cores.
            target_shard_bases: 1 << 22,
        }
    }
}

/// One packed shard of the reference: `base_len` bases starting at
/// global base `start`, including the trailing overlap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexShard {
    /// Global base offset of the shard's first base.
    pub start: usize,
    /// The 2-bit packed shard bases (body + trailing overlap).
    pub packed: PackedSeq,
}

/// A persistent, CRC-framed, packed-shard reference index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferenceIndex {
    total_bases: usize,
    overlap: usize,
    shards: Vec<IndexShard>,
    fingerprint: u64,
}

impl ReferenceIndex {
    /// Packs `reference` into overlap-sharded form.
    ///
    /// # Errors
    ///
    /// Returns [`FabpError::InvalidShardPlan`] for an empty reference.
    pub fn build_from_rna(
        reference: &RnaSeq,
        options: IndexBuildOptions,
    ) -> FabpResult<ReferenceIndex> {
        let total = reference.len();
        if total == 0 {
            return Err(FabpError::InvalidShardPlan(
                "cannot index an empty reference".into(),
            ));
        }
        let parts = total.div_ceil(options.target_shard_bases.max(1)).max(1);
        let ranges = overlap_ranges(total, parts, options.overlap)?;
        let shards: Vec<IndexShard> = ranges
            .into_iter()
            .filter(|(s, e)| e > s)
            .map(|(s, e)| IndexShard {
                start: s,
                packed: reference.as_slice()[s..e].iter().copied().collect(),
            })
            .collect();
        let mut index = ReferenceIndex {
            total_bases: total,
            overlap: options.overlap,
            shards,
            fingerprint: 0,
        };
        index.fingerprint = index.compute_fingerprint();
        Ok(index)
    }

    /// Total reference length in bases.
    pub fn total_bases(&self) -> usize {
        self.total_bases
    }

    /// Trailing overlap bases per shard.
    pub fn overlap(&self) -> usize {
        self.overlap
    }

    /// The packed shards, in reference order.
    pub fn shards(&self) -> &[IndexShard] {
        &self.shards
    }

    /// Content fingerprint derived from the header and per-shard CRCs;
    /// stable across write/load round trips, suitable as a cache key
    /// that avoids re-hashing the full reference.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Alignment positions this shard *owns* for a `window`-base query:
    /// positions in the trailing overlap belong to the next shard.
    fn owned_positions(&self, shard_idx: usize, window: usize) -> usize {
        let shard = &self.shards[shard_idx];
        let len = shard.packed.len();
        let body = match self.shards.get(shard_idx + 1) {
            Some(next) => next.start - shard.start,
            None => len,
        };
        body.min((len + 1).saturating_sub(window))
    }

    /// Decodes the full reference back to an [`RnaSeq`] (each shard's
    /// body, overlap skipped) — the exhaustive-scan path for
    /// [`PrefilterMode::Off`].
    pub fn decode_reference(&self) -> RnaSeq {
        let mut bases = Vec::with_capacity(self.total_bases);
        for (i, shard) in self.shards.iter().enumerate() {
            let body = match self.shards.get(i + 1) {
                Some(next) => next.start - shard.start,
                None => shard.packed.len(),
            };
            bases.extend(shard.packed.iter().take(body));
        }
        RnaSeq::from(bases)
    }

    fn header_bytes(&self) -> Vec<u8> {
        let mut h = Vec::with_capacity(24 + self.shards.len() * 32);
        h.extend_from_slice(&(self.total_bases as u64).to_le_bytes());
        h.extend_from_slice(&(self.overlap as u64).to_le_bytes());
        h.extend_from_slice(&(self.shards.len() as u64).to_le_bytes());
        for shard in &self.shards {
            h.extend_from_slice(&(shard.start as u64).to_le_bytes());
            h.extend_from_slice(&(shard.packed.len() as u64).to_le_bytes());
            h.extend_from_slice(&(shard.packed.words().len() as u64).to_le_bytes());
            h.extend_from_slice(&crc32_words(shard.packed.words()).to_le_bytes());
            h.extend_from_slice(&0u32.to_le_bytes());
        }
        h
    }

    fn compute_fingerprint(&self) -> u64 {
        let header = self.header_bytes();
        let header_crc = fabp_resilience::crc::crc32(&header);
        let mut tail = fabp_resilience::crc::Crc32::new();
        for shard in &self.shards {
            tail.update(&crc32_words(shard.packed.words()).to_le_bytes());
        }
        (u64::from(header_crc) << 32) | u64::from(tail.finalize())
    }

    /// Serializes the index to the version-1 byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let header = self.header_bytes();
        let payload_words: usize = self.shards.iter().map(|s| s.packed.words().len()).sum();
        let mut out = Vec::with_capacity(20 + header.len() + payload_words * 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(header.len() as u32).to_le_bytes());
        out.extend_from_slice(&header);
        out.extend_from_slice(&fabp_resilience::crc::crc32(&header).to_le_bytes());
        for shard in &self.shards {
            for word in shard.packed.words() {
                out.extend_from_slice(&word.to_le_bytes());
            }
        }
        out
    }

    /// Writes the index to `path`.
    ///
    /// # Errors
    ///
    /// I/O failures surface as [`FabpError::Internal`].
    pub fn write_to(&self, path: impl AsRef<Path>) -> FabpResult<()> {
        let io_err = |e: std::io::Error| FabpError::Internal(format!("index write: {e}"));
        let mut w = BufWriter::new(File::create(path).map_err(io_err)?);
        let header = self.header_bytes();
        w.write_all(&MAGIC).map_err(io_err)?;
        w.write_all(&VERSION.to_le_bytes()).map_err(io_err)?;
        w.write_all(&(header.len() as u32).to_le_bytes())
            .map_err(io_err)?;
        w.write_all(&header).map_err(io_err)?;
        w.write_all(&fabp_resilience::crc::crc32(&header).to_le_bytes())
            .map_err(io_err)?;
        for shard in &self.shards {
            for word in shard.packed.words() {
                w.write_all(&word.to_le_bytes()).map_err(io_err)?;
            }
        }
        w.flush().map_err(io_err)
    }

    /// Loads an index from `path` (buffered chunk reads straight into
    /// word buffers — no text parse, no re-encode).
    ///
    /// # Errors
    ///
    /// * [`FabpError::Decode`] — wrong magic/version, truncation, or
    ///   inconsistent geometry;
    /// * [`FabpError::CrcMismatch`] — header or shard payload corrupted.
    pub fn load(path: impl AsRef<Path>) -> FabpResult<ReferenceIndex> {
        let io_err = |e: std::io::Error| FabpError::Decode(format!("index read: {e}"));
        let mut r = BufReader::new(File::open(path).map_err(io_err)?);
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes).map_err(io_err)?;
        ReferenceIndex::from_bytes(&bytes)
    }

    /// Decodes the version-1 byte layout. See [`ReferenceIndex::load`]
    /// for the error contract.
    pub fn from_bytes(bytes: &[u8]) -> FabpResult<ReferenceIndex> {
        let mut cur = Cursor { bytes, at: 0 };
        let magic = cur.take(8)?;
        if magic != MAGIC {
            return Err(FabpError::Decode(format!(
                "bad index magic {magic:02x?} (expected {MAGIC:02x?})"
            )));
        }
        let version = cur.u32()?;
        if version != VERSION {
            return Err(FabpError::Decode(format!(
                "unsupported index version {version} (expected {VERSION})"
            )));
        }
        let header_len = cur.u32()? as usize;
        let header = cur.take(header_len)?.to_vec();
        let stored_header_crc = cur.u32()?;
        let actual_header_crc = fabp_resilience::crc::crc32(&header);
        if stored_header_crc != actual_header_crc {
            return Err(FabpError::CrcMismatch {
                stream: StreamKind::IndexHeader,
                frame: 0,
                expected: stored_header_crc,
                actual: actual_header_crc,
            });
        }

        let mut hc = Cursor {
            bytes: &header,
            at: 0,
        };
        let total_bases = hc.u64()? as usize;
        let overlap = hc.u64()? as usize;
        let shard_count = hc.u64()? as usize;
        if shard_count == 0 || shard_count > total_bases.max(1) {
            return Err(FabpError::Decode(format!(
                "implausible shard count {shard_count} for {total_bases} bases"
            )));
        }
        let mut geometry = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let start = hc.u64()? as usize;
            let base_len = hc.u64()? as usize;
            let word_count = hc.u64()? as usize;
            let payload_crc = hc.u32()?;
            let _reserved = hc.u32()?;
            if word_count != base_len.div_ceil(PackedSeq::BASES_PER_WORD) {
                return Err(FabpError::Decode(format!(
                    "shard {i}: {word_count} words cannot hold {base_len} bases"
                )));
            }
            if start + base_len > total_bases {
                return Err(FabpError::Decode(format!(
                    "shard {i}: range {start}+{base_len} exceeds {total_bases} bases"
                )));
            }
            geometry.push((start, base_len, word_count, payload_crc));
        }

        let mut cursor = Cursor {
            bytes: cur.rest(),
            at: 0,
        };
        let mut shards = Vec::with_capacity(shard_count);
        for (i, (start, base_len, word_count, payload_crc)) in geometry.into_iter().enumerate() {
            let raw = cursor.take(word_count * 8)?;
            let words: Vec<u64> = raw
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
                .collect();
            let actual = crc32_words(&words);
            if actual != payload_crc {
                return Err(FabpError::CrcMismatch {
                    stream: StreamKind::IndexShard,
                    frame: i as u64,
                    expected: payload_crc,
                    actual,
                });
            }
            let packed = PackedSeq::from_words(words, base_len).ok_or_else(|| {
                FabpError::Decode(format!(
                    "shard {i}: words inconsistent with {base_len} bases"
                ))
            })?;
            shards.push(IndexShard { start, packed });
        }

        let mut index = ReferenceIndex {
            total_bases,
            overlap,
            shards,
            fingerprint: 0,
        };
        index.fingerprint = index.compute_fingerprint();
        Ok(index)
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> FabpResult<&'a [u8]> {
        if self.at + n > self.bytes.len() {
            return Err(FabpError::Decode(format!(
                "index truncated: wanted {n} bytes at offset {}, have {}",
                self.at,
                self.bytes.len()
            )));
        }
        let out = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    fn u32(&mut self) -> FabpResult<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> FabpResult<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn rest(&self) -> &'a [u8] {
        &self.bytes[self.at..]
    }
}

/// Counters describing one [`search_index`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IndexSearchStats {
    /// Raw seed hits (word match × posting) across all queries/shards.
    pub seed_hits: u64,
    /// Candidate alignment windows admitted for verification (after
    /// diagonal binning, before region coalescing).
    pub candidate_windows: u64,
    /// Bases the exact engine actually scanned (coalesced regions),
    /// summed over queries.
    pub admitted_bases: u64,
    /// Bases a full scan would read: `total_bases × queries`.
    pub full_scan_bases: u64,
}

impl IndexSearchStats {
    /// Fraction of the full scan the verifier actually ran (0 with the
    /// prefilter admitting nothing, 1.0 for [`PrefilterMode::Off`]).
    pub fn scanned_fraction(&self) -> f64 {
        if self.full_scan_bases == 0 {
            0.0
        } else {
            self.admitted_bases as f64 / self.full_scan_bases as f64
        }
    }
}

fn publish_stats(stats: &IndexSearchStats, mode: PrefilterMode) {
    let registry = fabp_telemetry::Registry::global();
    registry
        .counter(
            "fabp_index_seed_hits_total",
            "Raw k-mer seed hits across queries and shards",
        )
        .add(stats.seed_hits);
    registry
        .counter(
            "fabp_index_candidate_windows_total",
            "Candidate windows admitted by the seed prefilter",
        )
        .add(stats.candidate_windows);
    registry
        .counter(
            "fabp_index_admitted_bases_total",
            "Bases scanned by the exact verifier",
        )
        .add(stats.admitted_bases);
    registry
        .counter_with(
            "fabp_index_searches_total",
            "Index search calls by prefilter mode",
            fabp_telemetry::labels(&[("mode", mode.label())]),
        )
        .inc();
    registry
        .gauge(
            "fabp_index_scanned_fraction_permille",
            "Scanned fraction of the last index search, in permille",
        )
        .set((stats.scanned_fraction() * 1000.0) as i64);
}

/// Records a measured recall (vs planted ground truth) on the global
/// registry — called by the bench harness and CLIs after an evaluation
/// run so dashboards track the prefilter's recall alongside its
/// admission counters.
pub fn record_recall(recall: f64) {
    fabp_telemetry::Registry::global()
        .gauge(
            "fabp_index_recall_permille",
            "Measured seeded-prefilter recall vs planted ground truth, in permille",
        )
        .set((recall.clamp(0.0, 1.0) * 1000.0) as i64);
}

/// Searches `proteins` against the indexed reference.
///
/// With [`PrefilterMode::Off`] the reference is decoded once and every
/// position scanned (the exhaustive ground-truth path). With
/// [`PrefilterMode::Seeded`] each shard is translated in three frames,
/// seed hits are diagonally binned into candidate windows, and only the
/// coalesced candidate regions are verified by the exact engine — hits
/// are bit-identical to the full scan on everything admitted.
///
/// Returns per-query hit lists (global positions, merged and deduped by
/// [`merge_shard_hits`]) and the run's [`IndexSearchStats`].
///
/// # Errors
///
/// * [`FabpError::EmptyQuery`] — a query with zero residues;
/// * [`FabpError::InvalidShardPlan`] — a query window wider than the
///   index overlap allows (`3 × aa > overlap + 1` on a multi-shard
///   index), which would lose boundary-straddling hits;
/// * seed-table errors from [`WordIndex::try_build`].
pub fn search_index(
    index: &ReferenceIndex,
    proteins: &[ProteinSeq],
    threshold: Threshold,
    mode: PrefilterMode,
    params: SeedParams,
    workers: usize,
) -> FabpResult<(Vec<Vec<Hit>>, IndexSearchStats)> {
    for protein in proteins {
        if protein.is_empty() {
            return Err(FabpError::EmptyQuery);
        }
    }
    let mut stats = IndexSearchStats {
        full_scan_bases: index.total_bases() as u64 * proteins.len() as u64,
        ..IndexSearchStats::default()
    };
    let hits = match mode {
        PrefilterMode::Off => {
            stats.admitted_bases = stats.full_scan_bases;
            search_off(index, proteins, threshold, workers)?
        }
        PrefilterMode::Seeded => {
            search_seeded(index, proteins, threshold, params, workers, &mut stats)?
        }
    };
    publish_stats(&stats, mode);
    Ok((hits, stats))
}

/// The exhaustive path: decode once, scan everything through the
/// sliced batch scheduler.
fn search_off(
    index: &ReferenceIndex,
    proteins: &[ProteinSeq],
    threshold: Threshold,
    workers: usize,
) -> FabpResult<Vec<Vec<Hit>>> {
    let reference = index.decode_reference();
    let aligners: Vec<FabpAligner> = proteins
        .iter()
        .map(|p| {
            FabpAligner::builder()
                .protein_query(p)
                .threshold(threshold)
                .build()
                .map_err(FabpError::from)
        })
        .collect::<FabpResult<_>>()?;
    let outcomes = crate::batch::search_all_prebuilt(&aligners, &reference, workers.max(1))?;
    Ok(outcomes.into_iter().map(|o| o.hits).collect())
}

/// Per-query seeding state shared across shards.
struct QuerySeed {
    words: WordIndex,
    engine: Option<BitParallelEngine>,
    aligner: FabpAligner,
    window: usize,
    resolved_threshold: u32,
}

fn search_seeded(
    index: &ReferenceIndex,
    proteins: &[ProteinSeq],
    threshold: Threshold,
    params: SeedParams,
    workers: usize,
    stats: &mut IndexSearchStats,
) -> FabpResult<Vec<Vec<Hit>>> {
    let seeds: Vec<QuerySeed> = proteins
        .iter()
        .map(|protein| {
            let words =
                WordIndex::try_build(protein.as_slice(), params.word_size, params.threshold)?;
            let encoded = EncodedQuery::from_protein(protein);
            let window = encoded.len();
            if index.shards().len() > 1 && window > index.overlap() + 1 {
                return Err(FabpError::InvalidShardPlan(format!(
                    "query window {window} exceeds index overlap {} + 1; rebuild the \
                     index with a larger overlap or use --prefilter off",
                    index.overlap()
                )));
            }
            let engine = BitParallelEngine::new(&encoded).ok();
            let aligner = FabpAligner::builder()
                .protein_query(protein)
                .threshold(threshold)
                .build()
                .map_err(FabpError::from)?;
            Ok(QuerySeed {
                words,
                engine,
                aligner,
                window,
                resolved_threshold: threshold.resolve(window),
            })
        })
        .collect::<FabpResult<_>>()?;

    // Seed every shard (parallel over shards): per shard, one 3-frame
    // translation pass with rolling packed keys feeds every query's
    // word table.
    let shard_count = index.shards().len();
    let threads = workers.max(1).min(shard_count.max(1));
    let next = AtomicUsize::new(0);
    let mut shard_results: Vec<Option<(Vec<Vec<usize>>, u64)>> = Vec::new();
    shard_results.resize_with(shard_count, || None);
    type ShardSlot = std::sync::Mutex<Option<(Vec<Vec<usize>>, u64)>>;
    let results_slots: Vec<ShardSlot> = (0..shard_count)
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= shard_count {
                    break;
                }
                let seeded = seed_shard(&index.shards()[i].packed, &seeds, params);
                *results_slots[i].lock().expect("seed slot lock") = Some(seeded);
            });
        }
    });
    for (i, slot) in results_slots.into_iter().enumerate() {
        shard_results[i] = slot.into_inner().expect("seed slot lock");
    }

    // Verify: per query, coalesce candidates into regions and run the
    // exact engine over just those bases.
    let mut per_query_hits: Vec<Vec<Hit>> = Vec::with_capacity(seeds.len());
    for (q, seed) in seeds.iter().enumerate() {
        let mut per_shard: Vec<Vec<Hit>> = Vec::with_capacity(shard_count);
        for (shard_idx, shard) in index.shards().iter().enumerate() {
            let (candidates, _) = shard_results[shard_idx]
                .as_ref()
                .expect("all shards seeded");
            let owned = index.owned_positions(shard_idx, seed.window);
            let mut starts: Vec<usize> = candidates[q]
                .iter()
                .copied()
                .filter(|&c| c < owned)
                .collect();
            starts.sort_unstable();
            starts.dedup();
            stats.candidate_windows += starts.len() as u64;
            if starts.is_empty() {
                continue;
            }
            let regions = coalesce(&starts, seed.window, shard.packed.len());
            let mut local_hits = Vec::new();
            for (lo, hi) in regions {
                stats.admitted_bases += (hi - lo) as u64;
                let bases: Vec<fabp_bio::alphabet::Nucleotide> = (lo..hi)
                    .map(|i| shard.packed.get(i).expect("in range"))
                    .collect();
                match &seed.engine {
                    Some(engine) => {
                        for hit in engine.search(&bases, seed.resolved_threshold) {
                            let local = lo + hit.position;
                            if local < owned {
                                local_hits.push(Hit {
                                    position: shard.start + local,
                                    score: hit.score,
                                });
                            }
                        }
                    }
                    None => {
                        // Bit-parallel-ineligible query: the serial
                        // aligner verifies the region instead.
                        let outcome = seed.aligner.search(&RnaSeq::from(bases));
                        for hit in outcome.hits {
                            let local = lo + hit.position;
                            if local < owned {
                                local_hits.push(Hit {
                                    position: shard.start + local,
                                    score: hit.score,
                                });
                            }
                        }
                    }
                }
            }
            per_shard.push(local_hits);
        }
        per_query_hits.push(merge_shard_hits(per_shard));
    }
    for (_, seed_hits) in shard_results.iter().flatten() {
        stats.seed_hits += seed_hits;
    }
    Ok(per_query_hits)
}

/// Translates one packed shard in the three forward frames, streaming
/// rolling packed word keys into every query's neighbourhood table.
/// Returns per-query candidate window starts (shard-local bases) and
/// the raw seed-hit count.
fn seed_shard(
    packed: &PackedSeq,
    seeds: &[QuerySeed],
    params: SeedParams,
) -> (Vec<Vec<usize>>, u64) {
    let w = params.word_size;
    let rolling_modulus = SYMBOLS.pow(w as u32 - 1);
    let len = packed.len();
    let mut candidates: Vec<Vec<usize>> = seeds.iter().map(|_| Vec::new()).collect();
    let mut seed_hits = 0u64;
    for frame in 0..3usize {
        if len < frame + 3 {
            continue;
        }
        let mut key = 0usize;
        let mut residues = 0usize;
        let aa_count = (len - frame) / 3;
        for j in 0..aa_count {
            let base = frame + 3 * j;
            let codon_idx = ((packed.code_at(base) as usize) << 4)
                | ((packed.code_at(base + 1) as usize) << 2)
                | (packed.code_at(base + 2) as usize);
            let aa: AminoAcid = Codon::from_index(codon_idx as u8).translate();
            key = (key % rolling_modulus) * SYMBOLS + aa.index();
            residues += 1;
            if residues < w {
                continue;
            }
            // Word spans residues j−w+1 ..= j; its first base:
            let word_base = frame + 3 * (j + 1 - w);
            for (q, seed) in seeds.iter().enumerate() {
                let postings = seed.words.lookup_key(key);
                seed_hits += postings.len() as u64;
                for &qpos in postings {
                    let offset = 3 * qpos as usize;
                    if word_base >= offset {
                        candidates[q].push(word_base - offset);
                    }
                }
            }
        }
    }
    (candidates, seed_hits)
}

/// Coalesces sorted candidate starts into disjoint `[lo, hi)` base
/// regions of `window`-sized verifications, clamped to the shard.
fn coalesce(starts: &[usize], window: usize, shard_len: usize) -> Vec<(usize, usize)> {
    let mut regions: Vec<(usize, usize)> = Vec::new();
    for &c in starts {
        let lo = c;
        let hi = (c + window).min(shard_len);
        if hi <= lo {
            continue;
        }
        match regions.last_mut() {
            Some((_, end)) if lo <= *end => *end = (*end).max(hi),
            _ => regions.push((lo, hi)),
        }
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::generate::{random_protein, random_rna};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_index(len: usize, seed: u64) -> (RnaSeq, ReferenceIndex) {
        let mut rng = StdRng::seed_from_u64(seed);
        let reference = random_rna(len, &mut rng);
        let index = ReferenceIndex::build_from_rna(
            &reference,
            IndexBuildOptions {
                overlap: 47,
                target_shard_bases: 256,
            },
        )
        .unwrap();
        (reference, index)
    }

    #[test]
    fn build_shards_cover_the_reference() {
        let (reference, index) = small_index(1_000, 7);
        assert_eq!(index.total_bases(), 1_000);
        assert!(index.shards().len() > 1);
        assert_eq!(index.decode_reference(), reference);
    }

    #[test]
    fn round_trip_through_bytes_is_bit_identical() {
        let (_, index) = small_index(777, 3);
        let bytes = index.to_bytes();
        let loaded = ReferenceIndex::from_bytes(&bytes).unwrap();
        assert_eq!(loaded, index);
        assert_eq!(loaded.fingerprint(), index.fingerprint());
    }

    #[test]
    fn round_trip_through_a_file() {
        let (_, index) = small_index(2_048, 11);
        let dir = std::env::temp_dir().join("fabp_index_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.fabpidx");
        index.write_to(&path).unwrap();
        let loaded = ReferenceIndex::load(&path).unwrap();
        assert_eq!(loaded, index);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_payload_is_a_typed_crc_error() {
        let (_, index) = small_index(512, 5);
        let mut bytes = index.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        match ReferenceIndex::from_bytes(&bytes) {
            Err(FabpError::CrcMismatch {
                stream: StreamKind::IndexShard,
                ..
            }) => {}
            other => panic!("expected shard CRC mismatch, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_header_is_a_typed_crc_error() {
        let (_, index) = small_index(512, 5);
        let mut bytes = index.to_bytes();
        bytes[20] ^= 0x01; // inside the header region
        match ReferenceIndex::from_bytes(&bytes) {
            Err(FabpError::CrcMismatch {
                stream: StreamKind::IndexHeader,
                ..
            }) => {}
            other => panic!("expected header CRC mismatch, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_and_version_are_decode_errors() {
        let (_, index) = small_index(256, 9);
        let mut bytes = index.to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            ReferenceIndex::from_bytes(&bytes),
            Err(FabpError::Decode(_))
        ));
        let mut bytes = index.to_bytes();
        bytes[8] = 0xFF; // version
        assert!(matches!(
            ReferenceIndex::from_bytes(&bytes),
            Err(FabpError::Decode(_))
        ));
        assert!(matches!(
            ReferenceIndex::from_bytes(&bytes[..10]),
            Err(FabpError::Decode(_))
        ));
    }

    #[test]
    fn seeded_search_agrees_with_off_on_planted_exact_match() {
        let mut rng = StdRng::seed_from_u64(42);
        let protein = random_protein(9, &mut rng);
        let coding = fabp_bio::generate::coding_rna_for_paper_patterns(&protein, &mut rng);
        let mut bases = random_rna(2_000, &mut rng).into_inner();
        let at = 700;
        bases.splice(at..at + coding.len(), coding.iter().copied());
        let reference = RnaSeq::from(bases);
        let index = ReferenceIndex::build_from_rna(
            &reference,
            IndexBuildOptions {
                overlap: 63,
                target_shard_bases: 333,
            },
        )
        .unwrap();

        let proteins = vec![protein];
        let threshold = Threshold::Fraction(1.0);
        let (off, off_stats) = search_index(
            &index,
            &proteins,
            threshold,
            PrefilterMode::Off,
            SeedParams::default(),
            2,
        )
        .unwrap();
        let (seeded, stats) = search_index(
            &index,
            &proteins,
            threshold,
            PrefilterMode::Seeded,
            SeedParams::default(),
            2,
        )
        .unwrap();
        assert!(
            off[0].iter().any(|h| h.position == at),
            "full scan finds the plant"
        );
        assert_eq!(
            seeded[0], off[0],
            "seeded path recovers the full scan's hits"
        );
        assert!(stats.admitted_bases < off_stats.admitted_bases);
        assert!(stats.scanned_fraction() < 1.0);
        assert!(stats.seed_hits > 0);
    }

    #[test]
    fn oversized_query_window_is_rejected_on_multi_shard_index() {
        let (_, index) = small_index(1_000, 13); // overlap 47
        let mut rng = StdRng::seed_from_u64(1);
        let protein = random_protein(30, &mut rng); // window 90 > 48
        let err = search_index(
            &index,
            &[protein],
            Threshold::Fraction(0.8),
            PrefilterMode::Seeded,
            SeedParams::default(),
            1,
        )
        .unwrap_err();
        assert!(matches!(err, FabpError::InvalidShardPlan(_)), "{err}");
    }

    #[test]
    fn empty_query_is_rejected() {
        let (_, index) = small_index(256, 2);
        let err = search_index(
            &index,
            &[ProteinSeq::new()],
            Threshold::Fraction(0.8),
            PrefilterMode::Seeded,
            SeedParams::default(),
            1,
        )
        .unwrap_err();
        assert!(matches!(err, FabpError::EmptyQuery));
    }

    #[test]
    fn coalesce_merges_overlapping_windows() {
        assert_eq!(coalesce(&[0, 5, 40], 12, 100), vec![(0, 17), (40, 52)]);
        assert_eq!(coalesce(&[95], 12, 100), vec![(95, 100)]);
        assert!(coalesce(&[], 12, 100).is_empty());
    }

    #[test]
    fn prefilter_mode_parses() {
        assert_eq!("off".parse::<PrefilterMode>().unwrap(), PrefilterMode::Off);
        assert_eq!(
            "seeded".parse::<PrefilterMode>().unwrap(),
            PrefilterMode::Seeded
        );
        assert!("hybrid".parse::<PrefilterMode>().is_err());
    }
}
