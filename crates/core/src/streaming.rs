//! Incremental (streaming) search: feed the reference in chunks.
//!
//! Mirrors the hardware's own consumption model — "FabP keeps the last
//! `L_q` elements of the current Reference Stream buffer and concatenates
//! it with the next incoming reference sequence" (§III-C) — at the API
//! level, so gigabase FASTA files can be searched without materialising
//! them in memory.
//!
//! The working buffer is owned by the scanner and reused across
//! [`StreamingAligner::feed`] calls: the carried `L_q − 1` overlap stays
//! in place at the front of the buffer (slid down with a `copy_within`
//! after each chunk) and only the incoming chunk is appended, so a
//! steady-state feed performs **zero allocations** and never re-copies or
//! re-encodes the overlap from scratch.

use crate::hits::Hit;
use crate::software::SoftwareEngine;
use fabp_bio::alphabet::Nucleotide;
use fabp_encoding::encoder::EncodedQuery;
use fabp_resilience::{FabpError, FabpResult};
use fabp_telemetry::Counter;

/// A stateful scanner that accepts reference chunks of any size and
/// reports hits with global coordinates.
///
/// # Examples
///
/// ```
/// use fabp_core::streaming::StreamingAligner;
/// use fabp_encoding::encoder::EncodedQuery;
/// use fabp_bio::seq::{ProteinSeq, RnaSeq};
///
/// let protein: ProteinSeq = "MF".parse()?;
/// let query = EncodedQuery::from_protein(&protein);
/// let mut scanner = StreamingAligner::new(&query, 6);
///
/// // "AUGUUC" arrives split across two chunks.
/// let a: RnaSeq = "GGAUGU".parse()?;
/// let b: RnaSeq = "UCGG".parse()?;
/// let mut hits = scanner.feed(a.as_slice());
/// hits.extend(scanner.feed(b.as_slice()));
/// hits.extend(scanner.finish());
/// assert_eq!(hits.len(), 1);
/// assert_eq!(hits[0].position, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamingAligner {
    engine: SoftwareEngine,
    threshold: u32,
    /// Reusable working buffer. Between `feed` calls it holds exactly the
    /// carried tail: the last `L_q − 1` elements seen.
    buffer: Vec<Nucleotide>,
    /// Global position of `buffer[0]`.
    carry_position: usize,
    /// Total elements consumed.
    consumed: usize,
    /// Telemetry handles, registered once at construction — the feed hot
    /// path pays one atomic add per chunk, not a registry lookup.
    chunks_ctr: Counter,
    elements_ctr: Counter,
}

impl StreamingAligner {
    /// Creates a scanner for an encoded query and absolute threshold.
    ///
    /// # Panics
    ///
    /// Panics if the query is empty; use [`StreamingAligner::try_new`]
    /// for a fallible constructor.
    pub fn new(query: &EncodedQuery, threshold: u32) -> StreamingAligner {
        match StreamingAligner::try_new(query, threshold) {
            Ok(scanner) => scanner,
            Err(_) => panic!("query must be non-empty"),
        }
    }

    /// Fallible constructor: returns [`FabpError::EmptyQuery`] instead of
    /// panicking when the query has no elements.
    ///
    /// # Errors
    ///
    /// [`FabpError::EmptyQuery`] when `query` is empty.
    pub fn try_new(query: &EncodedQuery, threshold: u32) -> FabpResult<StreamingAligner> {
        if query.is_empty() {
            return Err(FabpError::EmptyQuery);
        }
        let telemetry = fabp_telemetry::Registry::global();
        Ok(StreamingAligner {
            engine: SoftwareEngine::new(query),
            threshold,
            buffer: Vec::new(),
            carry_position: 0,
            consumed: 0,
            chunks_ctr: telemetry.counter("fabp_stream_chunks_total", "Reference chunks streamed"),
            elements_ctr: telemetry.counter(
                "fabp_stream_elements_total",
                "Reference elements consumed by streaming scans",
            ),
        })
    }

    /// Total reference elements consumed so far.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Feeds the next chunk, returning all hits whose windows are now
    /// complete (positions are global).
    ///
    /// Steady-state cost: one append of `chunk` into the reused working
    /// buffer, one scan, one in-place slide of the `L_q − 1` carry tail —
    /// no allocation once the buffer has grown to the largest
    /// `carry + chunk` seen.
    pub fn feed(&mut self, chunk: &[Nucleotide]) -> Vec<Hit> {
        let qlen = self.engine.query_len();
        self.consumed += chunk.len();
        self.chunks_ctr.inc();
        self.elements_ctr.add(chunk.len() as u64);

        // The carry tail is already in place at the front of the buffer;
        // append only the new chunk.
        self.buffer.extend_from_slice(chunk);

        let hits: Vec<Hit> = if self.buffer.len() >= qlen {
            self.engine
                .search(&self.buffer, self.threshold)
                .into_iter()
                .map(|h| Hit {
                    position: h.position + self.carry_position,
                    score: h.score,
                })
                .collect()
        } else {
            Vec::new()
        };

        // Slide the trailing qlen-1 elements to the front for the next
        // chunk (in place — the allocation is retained).
        let keep = (qlen - 1).min(self.buffer.len());
        let drop = self.buffer.len() - keep;
        self.carry_position += drop;
        self.buffer.copy_within(drop.., 0);
        self.buffer.truncate(keep);

        hits
    }

    /// Finishes the stream. No further windows can complete (every window
    /// ending in the carried tail was already reported), so this only
    /// resets the state and returns nothing; provided for API symmetry
    /// with chunked decoders.
    pub fn finish(&mut self) -> Vec<Hit> {
        self.buffer.clear();
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::generate::{random_protein, random_rna};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn chunked_equals_whole_for_any_chunking() {
        let mut rng = StdRng::seed_from_u64(0x517);
        let protein = random_protein(10, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let reference = random_rna(3_000, &mut rng);
        let threshold = 18u32;

        let whole = SoftwareEngine::new(&query).search(reference.as_slice(), threshold);

        for chunk_size in [1usize, 7, 64, 256, 1000, 5000] {
            let mut scanner = StreamingAligner::new(&query, threshold);
            let mut hits = Vec::new();
            for chunk in reference.as_slice().chunks(chunk_size) {
                hits.extend(scanner.feed(chunk));
            }
            hits.extend(scanner.finish());
            assert_eq!(hits, whole, "chunk size {chunk_size}");
            assert_eq!(scanner.consumed(), reference.len());
        }
    }

    #[test]
    fn random_chunk_sizes_agree_too() {
        let mut rng = StdRng::seed_from_u64(0x518);
        let protein = random_protein(7, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let reference = random_rna(2_000, &mut rng);
        let whole = SoftwareEngine::new(&query).search(reference.as_slice(), 12);

        let mut scanner = StreamingAligner::new(&query, 12);
        let mut hits = Vec::new();
        let mut rest = reference.as_slice();
        while !rest.is_empty() {
            let take = rng.gen_range(1..=rest.len().min(333));
            let (chunk, tail) = rest.split_at(take);
            hits.extend(scanner.feed(chunk));
            rest = tail;
        }
        hits.extend(scanner.finish());
        assert_eq!(hits, whole);
    }

    #[test]
    fn no_duplicate_hits_across_boundaries() {
        // A hit exactly at a chunk boundary must be reported once.
        let protein = "MF".parse().unwrap();
        let query = EncodedQuery::from_protein(&protein);
        let reference: fabp_bio::seq::RnaSeq = "AUGUUUAUGUUU".parse().unwrap();
        let mut scanner = StreamingAligner::new(&query, 6);
        let mut hits = Vec::new();
        for chunk in reference.as_slice().chunks(6) {
            hits.extend(scanner.feed(chunk));
        }
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].position, 0);
        assert_eq!(hits[1].position, 6);
    }

    #[test]
    fn buffer_is_reused_across_feeds() {
        // After the first uniform-size feed, subsequent feeds must not
        // grow the buffer's capacity (zero steady-state allocation).
        let mut rng = StdRng::seed_from_u64(0x519);
        let protein = random_protein(8, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let reference = random_rna(8_192, &mut rng);
        let mut scanner = StreamingAligner::new(&query, 10);
        let mut caps = Vec::new();
        for chunk in reference.as_slice().chunks(512) {
            scanner.feed(chunk);
            caps.push(scanner.buffer.capacity());
        }
        let steady = caps[1];
        assert!(
            caps[1..].iter().all(|&c| c == steady),
            "buffer capacity kept growing: {caps:?}"
        );
    }

    #[test]
    fn short_stream_produces_nothing() {
        let protein = "MFW".parse().unwrap();
        let query = EncodedQuery::from_protein(&protein);
        let mut scanner = StreamingAligner::new(&query, 0);
        let chunk: fabp_bio::seq::RnaSeq = "AUG".parse().unwrap();
        assert!(scanner.feed(chunk.as_slice()).is_empty());
        assert!(scanner.finish().is_empty());
    }
}
