//! Incremental (streaming) search: feed the reference in chunks.
//!
//! Mirrors the hardware's own consumption model — "FabP keeps the last
//! `L_q` elements of the current Reference Stream buffer and concatenates
//! it with the next incoming reference sequence" (§III-C) — at the API
//! level, so gigabase FASTA files can be searched without materialising
//! them in memory.

use crate::hits::Hit;
use crate::software::SoftwareEngine;
use fabp_bio::alphabet::Nucleotide;
use fabp_encoding::encoder::EncodedQuery;
use fabp_resilience::{FabpError, FabpResult};

/// A stateful scanner that accepts reference chunks of any size and
/// reports hits with global coordinates.
///
/// # Examples
///
/// ```
/// use fabp_core::streaming::StreamingAligner;
/// use fabp_encoding::encoder::EncodedQuery;
/// use fabp_bio::seq::{ProteinSeq, RnaSeq};
///
/// let protein: ProteinSeq = "MF".parse()?;
/// let query = EncodedQuery::from_protein(&protein);
/// let mut scanner = StreamingAligner::new(&query, 6);
///
/// // "AUGUUC" arrives split across two chunks.
/// let a: RnaSeq = "GGAUGU".parse()?;
/// let b: RnaSeq = "UCGG".parse()?;
/// let mut hits = scanner.feed(a.as_slice());
/// hits.extend(scanner.feed(b.as_slice()));
/// hits.extend(scanner.finish());
/// assert_eq!(hits.len(), 1);
/// assert_eq!(hits[0].position, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamingAligner {
    engine: SoftwareEngine,
    threshold: u32,
    /// Carried tail: the last `L_q − 1` elements seen.
    carry: Vec<Nucleotide>,
    /// Global position of `carry[0]`.
    carry_position: usize,
    /// Total elements consumed.
    consumed: usize,
}

impl StreamingAligner {
    /// Creates a scanner for an encoded query and absolute threshold.
    ///
    /// # Panics
    ///
    /// Panics if the query is empty; use [`StreamingAligner::try_new`]
    /// for a fallible constructor.
    pub fn new(query: &EncodedQuery, threshold: u32) -> StreamingAligner {
        match StreamingAligner::try_new(query, threshold) {
            Ok(scanner) => scanner,
            Err(_) => panic!("query must be non-empty"),
        }
    }

    /// Fallible constructor: returns [`FabpError::EmptyQuery`] instead of
    /// panicking when the query has no elements.
    ///
    /// # Errors
    ///
    /// [`FabpError::EmptyQuery`] when `query` is empty.
    pub fn try_new(query: &EncodedQuery, threshold: u32) -> FabpResult<StreamingAligner> {
        if query.is_empty() {
            return Err(FabpError::EmptyQuery);
        }
        Ok(StreamingAligner {
            engine: SoftwareEngine::new(query),
            threshold,
            carry: Vec::new(),
            carry_position: 0,
            consumed: 0,
        })
    }

    /// Total reference elements consumed so far.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Feeds the next chunk, returning all hits whose windows are now
    /// complete (positions are global).
    pub fn feed(&mut self, chunk: &[Nucleotide]) -> Vec<Hit> {
        let qlen = self.engine.query_len();
        self.consumed += chunk.len();
        let telemetry = fabp_telemetry::Registry::global();
        telemetry
            .counter("fabp_stream_chunks_total", "Reference chunks streamed")
            .inc();
        telemetry
            .counter(
                "fabp_stream_elements_total",
                "Reference elements consumed by streaming scans",
            )
            .add(chunk.len() as u64);

        // Working buffer: carry + chunk.
        let mut buffer = Vec::with_capacity(self.carry.len() + chunk.len());
        buffer.extend_from_slice(&self.carry);
        buffer.extend_from_slice(chunk);

        let hits: Vec<Hit> = if buffer.len() >= qlen {
            self.engine
                .search(&buffer, self.threshold)
                .into_iter()
                .map(|h| Hit {
                    position: h.position + self.carry_position,
                    score: h.score,
                })
                .collect()
        } else {
            Vec::new()
        };

        // Keep the trailing qlen-1 elements for the next chunk.
        let keep = (qlen - 1).min(buffer.len());
        let drop = buffer.len() - keep;
        self.carry_position += drop;
        self.carry = buffer.split_off(drop);

        hits
    }

    /// Finishes the stream. No further windows can complete (every window
    /// ending in the carried tail was already reported), so this only
    /// resets the state and returns nothing; provided for API symmetry
    /// with chunked decoders.
    pub fn finish(&mut self) -> Vec<Hit> {
        self.carry.clear();
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::generate::{random_protein, random_rna};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn chunked_equals_whole_for_any_chunking() {
        let mut rng = StdRng::seed_from_u64(0x517);
        let protein = random_protein(10, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let reference = random_rna(3_000, &mut rng);
        let threshold = 18u32;

        let whole = SoftwareEngine::new(&query).search(reference.as_slice(), threshold);

        for chunk_size in [1usize, 7, 64, 256, 1000, 5000] {
            let mut scanner = StreamingAligner::new(&query, threshold);
            let mut hits = Vec::new();
            for chunk in reference.as_slice().chunks(chunk_size) {
                hits.extend(scanner.feed(chunk));
            }
            hits.extend(scanner.finish());
            assert_eq!(hits, whole, "chunk size {chunk_size}");
            assert_eq!(scanner.consumed(), reference.len());
        }
    }

    #[test]
    fn random_chunk_sizes_agree_too() {
        let mut rng = StdRng::seed_from_u64(0x518);
        let protein = random_protein(7, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let reference = random_rna(2_000, &mut rng);
        let whole = SoftwareEngine::new(&query).search(reference.as_slice(), 12);

        let mut scanner = StreamingAligner::new(&query, 12);
        let mut hits = Vec::new();
        let mut rest = reference.as_slice();
        while !rest.is_empty() {
            let take = rng.gen_range(1..=rest.len().min(333));
            let (chunk, tail) = rest.split_at(take);
            hits.extend(scanner.feed(chunk));
            rest = tail;
        }
        hits.extend(scanner.finish());
        assert_eq!(hits, whole);
    }

    #[test]
    fn no_duplicate_hits_across_boundaries() {
        // A hit exactly at a chunk boundary must be reported once.
        let protein = "MF".parse().unwrap();
        let query = EncodedQuery::from_protein(&protein);
        let reference: fabp_bio::seq::RnaSeq = "AUGUUUAUGUUU".parse().unwrap();
        let mut scanner = StreamingAligner::new(&query, 6);
        let mut hits = Vec::new();
        for chunk in reference.as_slice().chunks(6) {
            hits.extend(scanner.feed(chunk));
        }
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].position, 0);
        assert_eq!(hits[1].position, 6);
    }

    #[test]
    fn short_stream_produces_nothing() {
        let protein = "MFW".parse().unwrap();
        let query = EncodedQuery::from_protein(&protein);
        let mut scanner = StreamingAligner::new(&query, 0);
        let chunk: fabp_bio::seq::RnaSeq = "AUG".parse().unwrap();
        assert!(scanner.feed(chunk.as_slice()).is_empty());
        assert!(scanner.finish().is_empty());
    }
}
