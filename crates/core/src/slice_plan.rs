//! Reference slicing for fine-grained batch parallelism.
//!
//! Per-query work stealing (PR 4) cannot help when `queries ≪ workers`:
//! one query is one indivisible work item, so `1 query × N workers`
//! leaves `N − 1` workers idle and the batch runs at serial speed. The
//! fix — fine-grained parallelization of the *reference* scan, à la
//! Nguyen & Lavenier — is to split the reference into cache-sized slices
//! and steal `(query, slice)` pairs instead of whole queries.
//!
//! A [`SlicePlan`] partitions the **alignment positions**
//! `0 .. L_r − window + 1` into contiguous runs and assigns each run the
//! base range that scores it: slice `i` owns positions
//! `[pos_start, pos_start + positions)` and reads bases
//! `[pos_start, pos_start + positions + window − 1)` — the same
//! `window − 1` trailing-overlap arithmetic as
//! [`crate::cluster::try_shard_with_overlap`] (which now delegates its
//! range math to [`overlap_ranges`] here). Because the overlap is
//! *exactly* `window − 1`, the per-slice position sets partition the
//! global position set: scanning each base range independently and
//! translating hits by `pos_start` reproduces the full scan with no
//! duplicates, and [`crate::hits::merge_shard_hits`] (sort + exact-dup
//! removal) restores the single-engine hit order regardless of slice
//! completion order. Engines whose lanes read *more* than `window − 1`
//! of context (a multi-query group scanning a shorter lane against the
//! group-maximum window) re-report boundary-straddling positions on two
//! slices with identical `(position, score)` pairs — the same
//! overlap-duplicate shape the cluster merge already deduplicates.
//!
//! Slice sizing trades steal granularity against per-slice overhead
//! (the overlap bases are re-read, and the tile ring warms up once per
//! slice): [`SliceOptions`] asks for a few slices per worker so stealing
//! can rebalance cost skew, but never slices below
//! [`SliceOptions::min_slice_positions`] so the overhead stays
//! amortised.

use fabp_resilience::{FabpError, FabpResult};

/// One reference slice of a [`SlicePlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slice {
    /// First base of the slice — also the global position offset to add
    /// to slice-local hit positions.
    pub start: usize,
    /// One past the last base the slice may read (includes the
    /// `window − 1` trailing overlap, clamped to the reference end).
    pub end: usize,
    /// Alignment positions owned by this slice:
    /// `[start, start + positions)` in global coordinates.
    pub positions: usize,
}

impl Slice {
    /// Number of bases the slice reads, including overlap.
    pub fn bases(&self) -> usize {
        self.end - self.start
    }
}

/// Sizing policy for [`SlicePlan::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceOptions {
    /// Target slices per worker. More slices steal-balance better; every
    /// extra slice re-reads `window − 1` overlap bases and re-warms the
    /// scan tile. 2–4 is the sweet spot.
    pub slices_per_worker: usize,
    /// Never cut slices smaller than this many positions (except when
    /// the whole reference is smaller). Keeps the per-slice fixed costs
    /// (thread handoff, tile warm-up, overlap re-read) well under the
    /// scan cost.
    pub min_slice_positions: usize,
}

impl Default for SliceOptions {
    fn default() -> SliceOptions {
        SliceOptions {
            slices_per_worker: 2,
            // ≈ 16 KiB of 2-bit-packable bases per slice minimum; a slice
            // scan costs ~10 µs at fused-scan speed, dwarfing steal costs.
            min_slice_positions: 16_384,
        }
    }
}

/// A partition of one reference into overlap-aware scan slices for a
/// fixed query window. See the module docs for the invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlicePlan {
    window: usize,
    reference_len: usize,
    slices: Vec<Slice>,
}

impl SlicePlan {
    /// Plans slices of a `reference_len`-base reference for a
    /// `window`-element query, sized for `workers` parallel workers.
    ///
    /// Degenerate shapes are well-defined:
    ///
    /// * empty reference → an empty plan (no slices, nothing to scan);
    /// * `0 < reference_len < window` (no alignment positions) → one
    ///   slice covering the whole reference with `positions == 0`, so
    ///   callers can still run their (vacuous) scan uniformly;
    /// * fewer positions than `workers × slices_per_worker ×
    ///   min_slice_positions` → fewer (possibly one) slices rather than
    ///   undersized ones.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` (an empty query has no windows).
    pub fn build(
        reference_len: usize,
        window: usize,
        workers: usize,
        options: SliceOptions,
    ) -> SlicePlan {
        assert!(window > 0, "window must be positive");
        if reference_len == 0 {
            return SlicePlan {
                window,
                reference_len,
                slices: Vec::new(),
            };
        }
        let positions = reference_len.saturating_sub(window - 1);
        if positions == 0 {
            // Shorter than one window: a single vacuous slice.
            return SlicePlan {
                window,
                reference_len,
                slices: vec![Slice {
                    start: 0,
                    end: reference_len,
                    positions: 0,
                }],
            };
        }
        let desired = workers
            .max(1)
            .saturating_mul(options.slices_per_worker.max(1));
        let by_min = positions / options.min_slice_positions.max(1);
        let count = desired.min(by_min.max(1)).max(1);
        let ranges = position_ranges(positions, count);
        let slices = ranges
            .into_iter()
            .map(|(pos_start, pos_len)| Slice {
                start: pos_start,
                end: (pos_start + pos_len + window - 1).min(reference_len),
                positions: pos_len,
            })
            .collect();
        SlicePlan {
            window,
            reference_len,
            slices,
        }
    }

    /// The query window the plan was built for.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Reference length the plan was built for.
    pub fn reference_len(&self) -> usize {
        self.reference_len
    }

    /// The planned slices, in reference order.
    pub fn slices(&self) -> &[Slice] {
        &self.slices
    }

    /// Number of slices.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// True for the empty-reference plan.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// Total positions across all slices (equals the full scan's
    /// position count — the partition invariant).
    pub fn total_positions(&self) -> usize {
        self.slices.iter().map(|s| s.positions).sum()
    }
}

/// Splits `total` positions into `count` contiguous `(start, len)` runs,
/// sizes differing by at most one — the same even-split arithmetic as
/// [`crate::cluster::try_shard_database`], in position space.
fn position_ranges(total: usize, count: usize) -> Vec<(usize, usize)> {
    let count = count.max(1);
    let base = total / count;
    let extra = total % count;
    let mut ranges = Vec::with_capacity(count);
    let mut start = 0usize;
    for i in 0..count {
        let len = base + usize::from(i < extra);
        ranges.push((start, len));
        start += len;
    }
    ranges
}

/// Splits `total` bases into `parts` contiguous `(start, end)` base
/// ranges where each part additionally reads `overlap` trailing bases
/// (clamped to the reference end) — the shared range math behind
/// [`crate::cluster::try_shard_with_overlap`] and [`SlicePlan`].
///
/// Part sizes (before overlap) differ by at most one base. With more
/// parts than bases the surplus parts are zero-sized; they sort to the
/// end of the split where the clamp leaves them as empty `(total,
/// total)` ranges — they scan nothing and contribute no hits, so the
/// downstream merge sees no duplicates from them. Consecutive non-empty
/// ranges overlap by exactly `overlap` bases (clamped at the reference
/// end), never more.
///
/// # Errors
///
/// Returns [`FabpError::InvalidShardPlan`] if `parts == 0`.
pub fn overlap_ranges(
    total: usize,
    parts: usize,
    overlap: usize,
) -> FabpResult<Vec<(usize, usize)>> {
    if parts == 0 {
        return Err(FabpError::InvalidShardPlan(
            "a cluster needs at least one node".into(),
        ));
    }
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    for (_, len) in position_ranges(total, parts) {
        let end = (start + len).saturating_add(overlap).min(total);
        ranges.push((start, end));
        start += len;
    }
    Ok(ranges)
}

#[cfg(test)]
mod tests {
    use super::*;

    const OPTS: SliceOptions = SliceOptions {
        slices_per_worker: 2,
        min_slice_positions: 100,
    };

    #[test]
    fn slices_partition_positions_with_window_overlap() {
        let plan = SlicePlan::build(10_000, 60, 4, OPTS);
        assert_eq!(plan.len(), 8);
        assert_eq!(plan.total_positions(), 10_000 - 59);
        let mut next_pos = 0usize;
        for s in plan.slices() {
            assert_eq!(s.start, next_pos, "positions are contiguous");
            // Every slice reads exactly its positions + window − 1 bases
            // (clamped at the end).
            assert_eq!(s.end, (s.start + s.positions + 59).min(10_000));
            next_pos += s.positions;
        }
        assert_eq!(next_pos, plan.total_positions());
        assert_eq!(plan.slices().last().unwrap().end, 10_000);
    }

    #[test]
    fn empty_reference_plans_no_slices() {
        let plan = SlicePlan::build(0, 10, 4, OPTS);
        assert!(plan.is_empty());
        assert_eq!(plan.total_positions(), 0);
    }

    #[test]
    fn reference_shorter_than_window_is_one_vacuous_slice() {
        // slice length < window: no alignment positions exist, but the
        // plan still yields one well-formed (vacuous) slice.
        let plan = SlicePlan::build(7, 10, 8, OPTS);
        assert_eq!(plan.len(), 1);
        let s = plan.slices()[0];
        assert_eq!((s.start, s.end, s.positions), (0, 7, 0));
    }

    #[test]
    fn reference_shorter_than_one_slice_is_not_subdivided() {
        // Fewer positions than min_slice_positions: one slice, never
        // undersized fragments.
        let plan = SlicePlan::build(80, 10, 8, OPTS);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.total_positions(), 71);
    }

    #[test]
    fn one_query_eight_workers_saturates_when_reference_allows() {
        // The 1-query × 8-worker shape that starved per-query stealing:
        // the plan must produce at least 8 slices so every worker eats.
        let plan = SlicePlan::build(100_000, 60, 8, OPTS);
        assert!(plan.len() >= 8, "only {} slices", plan.len());
        assert_eq!(plan.len(), 16); // 8 workers × 2 slices/worker
        let max = plan.slices().iter().map(|s| s.positions).max().unwrap();
        let min = plan.slices().iter().map(|s| s.positions).min().unwrap();
        assert!(max - min <= 1, "even split: {min}..{max}");
    }

    #[test]
    fn min_slice_positions_caps_the_slice_count() {
        // 1000 positions at min 100 → at most 10 slices even for many
        // workers.
        let plan = SlicePlan::build(1_000 + 59, 60, 64, OPTS);
        assert_eq!(plan.len(), 10);
        assert!(plan.slices().iter().all(|s| s.positions == 100));
    }

    #[test]
    fn window_one_has_no_overlap() {
        let plan = SlicePlan::build(1_000, 1, 2, OPTS);
        assert_eq!(plan.total_positions(), 1_000);
        for s in plan.slices() {
            assert_eq!(s.bases(), s.positions, "window 1 reads no overlap");
        }
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_is_rejected() {
        let _ = SlicePlan::build(100, 0, 2, OPTS);
    }

    #[test]
    fn overlap_ranges_match_shard_with_overlap_shape() {
        // Mirrors cluster::try_shard_with_overlap's documented semantics.
        let ranges = overlap_ranges(100, 4, 5).unwrap();
        assert_eq!(ranges, vec![(0, 30), (25, 55), (50, 80), (75, 100)]);
        // Degenerate: more parts than bases → zero-sized parts that
        // sort to the end as empty (total, total) ranges.
        let tiny = overlap_ranges(3, 5, 2).unwrap();
        assert_eq!(tiny.len(), 5);
        assert_eq!(tiny[0], (0, 3));
        assert_eq!(tiny[4], (3, 3));
        // Zero parts is a typed error.
        assert!(overlap_ranges(10, 0, 1).is_err());
    }

    // --- Directed degenerate-geometry pins (ISSUE 10): shapes that
    // historically produce duplicate hits or malformed slices in
    // sharded scanners.

    #[test]
    fn consecutive_slices_overlap_by_exactly_window_minus_one() {
        // Interior boundaries must overlap by window − 1 bases — enough
        // for every straddling alignment window, never enough to score
        // the same position twice.
        for (len, window, workers) in [(10_000, 60, 4), (1_001, 7, 8), (333, 3, 5), (4_096, 33, 3)]
        {
            let opts = SliceOptions {
                slices_per_worker: 2,
                min_slice_positions: 16,
            };
            let plan = SlicePlan::build(len, window, workers, opts);
            for pair in plan.slices().windows(2) {
                let overlap = pair[0].end - pair[1].start;
                assert_eq!(
                    overlap,
                    window - 1,
                    "len {len} window {window} workers {workers}: slices {pair:?}"
                );
            }
        }
    }

    #[test]
    fn slice_length_equal_to_overlap_stays_disjoint_in_positions() {
        // Pathological sizing: every slice owns exactly one position, so
        // the slice body length equals the overlap (window − 1) + 1.
        let window = 9;
        let opts = SliceOptions {
            slices_per_worker: 1,
            min_slice_positions: 1,
        };
        let plan = SlicePlan::build(window + 3, window, 4, opts);
        assert_eq!(plan.total_positions(), 4);
        let mut seen = std::collections::HashSet::new();
        for s in plan.slices() {
            assert!(s.positions > 0, "no empty slices: {s:?}");
            assert!(s.end <= plan.reference_len());
            assert!(s.bases() < s.positions + window, "over-wide slice {s:?}");
            for p in s.start..s.start + s.positions {
                assert!(seen.insert(p), "position {p} owned twice");
            }
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn overlap_ranges_part_length_equal_to_overlap() {
        // Each part's body length equals the overlap: consecutive parts
        // overlap by exactly `overlap`, never more, and nothing escapes
        // the reference.
        let ranges = overlap_ranges(12, 4, 3).unwrap();
        assert_eq!(ranges, vec![(0, 6), (3, 9), (6, 12), (9, 12)]);
        for pair in ranges.windows(2) {
            let overlap = pair[0].1.saturating_sub(pair[1].0);
            assert!(overlap <= 3, "over-wide overlap in {pair:?}");
        }
    }

    #[test]
    fn single_slice_plan_covers_everything_once() {
        let opts = SliceOptions {
            slices_per_worker: 1,
            min_slice_positions: 1,
        };
        let plan = SlicePlan::build(500, 20, 1, opts);
        assert_eq!(plan.len(), 1);
        let s = plan.slices()[0];
        assert_eq!((s.start, s.end), (0, 500));
        assert_eq!(s.positions, 481);
        assert_eq!(plan.total_positions(), 481);
        // Same via overlap_ranges: one part is the whole reference.
        assert_eq!(overlap_ranges(500, 1, 19).unwrap(), vec![(0, 500)]);
    }

    #[test]
    fn reference_equal_to_window_is_one_single_position_slice() {
        let plan = SlicePlan::build(10, 10, 8, OPTS);
        assert_eq!(plan.len(), 1);
        let s = plan.slices()[0];
        assert_eq!((s.start, s.end, s.positions), (0, 10, 1));
    }

    #[test]
    fn zero_sized_overlap_parts_are_empty_not_overreaching() {
        // More parts than bases: the trailing zero-length parts must be
        // empty ranges, not ranges that re-read the tail and duplicate
        // hits.
        let ranges = overlap_ranges(5, 9, 4).unwrap();
        assert_eq!(ranges.len(), 9);
        for &(start, end) in &ranges {
            assert!(end <= 5);
            assert!(start <= end);
        }
        let empties = ranges.iter().filter(|(s, e)| s == e).count();
        assert_eq!(empties, 4, "9 parts over 5 bases leave 4 empty");
        assert!(ranges[5..].iter().all(|&(s, e)| (s, e) == (5, 5)));
    }
}
