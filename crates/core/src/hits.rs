//! Hit post-processing: merging, ranking and region extraction.
//!
//! FabP reports *every* alignment position above the threshold (§III-C), so
//! a strong homology produces a cluster of overlapping hits around the true
//! position. Downstream consumers usually want one region per homology —
//! [`merge_overlapping`] — or the best few positions — [`top_k`].

pub use fabp_fpga::engine::Hit;

/// A maximal run of overlapping hits, merged into one reported region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitRegion {
    /// First hit position in the region.
    pub start: usize,
    /// One past the last covered reference element
    /// (`last hit position + query_len`).
    pub end: usize,
    /// The best-scoring hit inside the region (ties: leftmost).
    pub best: Hit,
    /// Number of hits merged into the region.
    pub hit_count: usize,
}

impl HitRegion {
    /// Length of the region in reference elements.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Regions are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Merges position-sorted hits whose query windows overlap into
/// [`HitRegion`]s.
///
/// Two hits overlap when their positions differ by less than `query_len`.
///
/// # Panics
///
/// Panics if `query_len == 0` or `hits` is not sorted by position.
pub fn merge_overlapping(hits: &[Hit], query_len: usize) -> Vec<HitRegion> {
    assert!(query_len > 0, "query_len must be positive");
    let mut regions: Vec<HitRegion> = Vec::new();
    let mut last_position = 0usize;
    for &hit in hits {
        assert!(
            regions.is_empty() || hit.position >= last_position,
            "hits must be sorted by position"
        );
        last_position = hit.position;
        match regions.last_mut() {
            Some(region) if hit.position < region.end => {
                region.end = region.end.max(hit.position + query_len);
                region.hit_count += 1;
                if hit.score > region.best.score {
                    region.best = hit;
                }
            }
            _ => regions.push(HitRegion {
                start: hit.position,
                end: hit.position + query_len,
                best: hit,
                hit_count: 1,
            }),
        }
    }
    regions
}

/// Merges per-shard hit lists (already translated into **global**
/// coordinates) into one position-sorted, duplicate-free list.
///
/// This is the one shared merge step for every shard-composing path —
/// [`crate::cluster::FpgaCluster::search`], the resilient re-dispatch
/// path, and any caller composing
/// [`crate::cluster::try_shard_with_overlap`] with per-shard engines
/// (e.g. `fabp-serve`'s sharded backend). Shards built with
/// `query_len - 1` bases of trailing overlap evaluate every window
/// straddling a boundary on **two** nodes; both report the same
/// `(position, score)` pair, and naive concatenation double-counts it.
/// Sorting then deduplicating exact duplicates restores the
/// single-engine hit list.
///
/// Input order is irrelevant (lists are sorted here), so the helper is
/// also safe for the resilient path, where re-dispatched orphan shards
/// complete *after* higher-offset survivors.
pub fn merge_shard_hits(per_shard: impl IntoIterator<Item = Vec<Hit>>) -> Vec<Hit> {
    let mut hits: Vec<Hit> = per_shard.into_iter().flatten().collect();
    dedup_sorted_hits(&mut hits);
    hits
}

/// Sorts `hits` by `(position, score)` and removes exact duplicates
/// in place — the flat-list form of [`merge_shard_hits`].
pub fn dedup_sorted_hits(hits: &mut Vec<Hit>) {
    hits.sort_unstable_by_key(|h| (h.position, h.score));
    hits.dedup();
}

/// Like [`merge_overlapping`], but tolerates unsorted input by sorting
/// a copy first (sort-before-merge).
///
/// Use this on hit lists whose ordering is not guaranteed — e.g. the
/// intermediate lists of [`crate::cluster::FpgaCluster::search_resilient`]
/// while dead-node shards are being re-dispatched to survivors, which
/// legally completes shards out of offset order. [`merge_overlapping`]
/// panics on such input; this variant never does.
///
/// # Panics
///
/// Panics if `query_len == 0` (an empty query has no windows).
pub fn merge_overlapping_unsorted(hits: &[Hit], query_len: usize) -> Vec<HitRegion> {
    let mut sorted = hits.to_vec();
    dedup_sorted_hits(&mut sorted);
    merge_overlapping(&sorted, query_len)
}

/// The `k` best hits by score (ties: lower position first).
pub fn top_k(hits: &[Hit], k: usize) -> Vec<Hit> {
    let mut sorted: Vec<Hit> = hits.to_vec();
    sorted.sort_by(|a, b| b.score.cmp(&a.score).then(a.position.cmp(&b.position)));
    sorted.truncate(k);
    sorted
}

/// The single best hit, if any (ties: lowest position).
pub fn best_hit(hits: &[Hit]) -> Option<Hit> {
    top_k(hits, 1).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(position: usize, score: u32) -> Hit {
        Hit { position, score }
    }

    #[test]
    fn merge_groups_overlapping_cluster() {
        let hits = [hit(100, 50), hit(101, 58), hit(102, 52), hit(400, 55)];
        let regions = merge_overlapping(&hits, 60);
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].start, 100);
        assert_eq!(regions[0].end, 102 + 60);
        assert_eq!(regions[0].best, hit(101, 58));
        assert_eq!(regions[0].hit_count, 3);
        assert_eq!(regions[1].hit_count, 1);
        assert_eq!(regions[1].len(), 60);
    }

    #[test]
    fn adjacent_but_disjoint_hits_stay_separate() {
        let hits = [hit(0, 10), hit(60, 11)];
        let regions = merge_overlapping(&hits, 60);
        assert_eq!(regions.len(), 2);
    }

    #[test]
    fn chained_overlaps_extend_the_region() {
        // Each hit overlaps the next; the region spans all of them.
        let hits = [hit(0, 10), hit(30, 11), hit(59, 12), hit(80, 13)];
        let regions = merge_overlapping(&hits, 60);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].end, 140);
        assert_eq!(regions[0].best.score, 13);
    }

    #[test]
    fn empty_hits_give_empty_regions() {
        assert!(merge_overlapping(&[], 10).is_empty());
    }

    #[test]
    fn top_k_orders_by_score_then_position() {
        let hits = [hit(5, 10), hit(1, 20), hit(9, 20), hit(3, 15)];
        let top = top_k(&hits, 3);
        assert_eq!(top, vec![hit(1, 20), hit(9, 20), hit(3, 15)]);
        assert_eq!(best_hit(&hits), Some(hit(1, 20)));
        assert_eq!(best_hit(&[]), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn merge_rejects_zero_query_len() {
        let _ = merge_overlapping(&[hit(0, 1)], 0);
    }

    #[test]
    fn shard_merge_drops_cross_shard_duplicates() {
        // Shard i's overlap tail and shard i+1's head both report the
        // boundary-straddling window at position 98.
        let shard0 = vec![hit(10, 5), hit(98, 9)];
        let shard1 = vec![hit(98, 9), hit(120, 7)];
        let merged = merge_shard_hits([shard0, shard1]);
        assert_eq!(merged, vec![hit(10, 5), hit(98, 9), hit(120, 7)]);
    }

    #[test]
    fn shard_merge_sorts_out_of_order_lists() {
        // Re-dispatch order: the orphaned low-offset shard finishes last.
        let survivor = vec![hit(500, 4), hit(800, 6)];
        let orphan = vec![hit(100, 3)];
        let merged = merge_shard_hits([survivor, orphan]);
        assert_eq!(merged, vec![hit(100, 3), hit(500, 4), hit(800, 6)]);
    }

    #[test]
    fn shard_merge_keeps_distinct_scores_at_one_position() {
        // Same position, different scores (multi-pass artefact): both are
        // distinct hits and must survive the exact-duplicate dedup.
        let merged = merge_shard_hits([vec![hit(42, 8)], vec![hit(42, 9)]]);
        assert_eq!(merged, vec![hit(42, 8), hit(42, 9)]);
    }

    #[test]
    fn unsorted_merge_matches_sorted_merge() {
        let unsorted = [hit(400, 55), hit(100, 50), hit(102, 52), hit(101, 58)];
        let regions = merge_overlapping_unsorted(&unsorted, 60);
        let mut sorted = unsorted.to_vec();
        sorted.sort_by_key(|h| h.position);
        assert_eq!(regions, merge_overlapping(&sorted, 60));
        // The strict variant panics on the same input.
        let panicked = std::panic::catch_unwind(|| merge_overlapping(&unsorted, 60));
        assert!(panicked.is_err(), "strict merge must reject unsorted hits");
    }
}
