//! Hit post-processing: merging, ranking and region extraction.
//!
//! FabP reports *every* alignment position above the threshold (§III-C), so
//! a strong homology produces a cluster of overlapping hits around the true
//! position. Downstream consumers usually want one region per homology —
//! [`merge_overlapping`] — or the best few positions — [`top_k`].

pub use fabp_fpga::engine::Hit;

/// A maximal run of overlapping hits, merged into one reported region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitRegion {
    /// First hit position in the region.
    pub start: usize,
    /// One past the last covered reference element
    /// (`last hit position + query_len`).
    pub end: usize,
    /// The best-scoring hit inside the region (ties: leftmost).
    pub best: Hit,
    /// Number of hits merged into the region.
    pub hit_count: usize,
}

impl HitRegion {
    /// Length of the region in reference elements.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Regions are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Merges position-sorted hits whose query windows overlap into
/// [`HitRegion`]s.
///
/// Two hits overlap when their positions differ by less than `query_len`.
///
/// # Panics
///
/// Panics if `query_len == 0` or `hits` is not sorted by position.
pub fn merge_overlapping(hits: &[Hit], query_len: usize) -> Vec<HitRegion> {
    assert!(query_len > 0, "query_len must be positive");
    let mut regions: Vec<HitRegion> = Vec::new();
    let mut last_position = 0usize;
    for &hit in hits {
        assert!(
            regions.is_empty() || hit.position >= last_position,
            "hits must be sorted by position"
        );
        last_position = hit.position;
        match regions.last_mut() {
            Some(region) if hit.position < region.end => {
                region.end = region.end.max(hit.position + query_len);
                region.hit_count += 1;
                if hit.score > region.best.score {
                    region.best = hit;
                }
            }
            _ => regions.push(HitRegion {
                start: hit.position,
                end: hit.position + query_len,
                best: hit,
                hit_count: 1,
            }),
        }
    }
    regions
}

/// The `k` best hits by score (ties: lower position first).
pub fn top_k(hits: &[Hit], k: usize) -> Vec<Hit> {
    let mut sorted: Vec<Hit> = hits.to_vec();
    sorted.sort_by(|a, b| b.score.cmp(&a.score).then(a.position.cmp(&b.position)));
    sorted.truncate(k);
    sorted
}

/// The single best hit, if any (ties: lowest position).
pub fn best_hit(hits: &[Hit]) -> Option<Hit> {
    top_k(hits, 1).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(position: usize, score: u32) -> Hit {
        Hit { position, score }
    }

    #[test]
    fn merge_groups_overlapping_cluster() {
        let hits = [hit(100, 50), hit(101, 58), hit(102, 52), hit(400, 55)];
        let regions = merge_overlapping(&hits, 60);
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].start, 100);
        assert_eq!(regions[0].end, 102 + 60);
        assert_eq!(regions[0].best, hit(101, 58));
        assert_eq!(regions[0].hit_count, 3);
        assert_eq!(regions[1].hit_count, 1);
        assert_eq!(regions[1].len(), 60);
    }

    #[test]
    fn adjacent_but_disjoint_hits_stay_separate() {
        let hits = [hit(0, 10), hit(60, 11)];
        let regions = merge_overlapping(&hits, 60);
        assert_eq!(regions.len(), 2);
    }

    #[test]
    fn chained_overlaps_extend_the_region() {
        // Each hit overlaps the next; the region spans all of them.
        let hits = [hit(0, 10), hit(30, 11), hit(59, 12), hit(80, 13)];
        let regions = merge_overlapping(&hits, 60);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].end, 140);
        assert_eq!(regions[0].best.score, 13);
    }

    #[test]
    fn empty_hits_give_empty_regions() {
        assert!(merge_overlapping(&[], 10).is_empty());
    }

    #[test]
    fn top_k_orders_by_score_then_position() {
        let hits = [hit(5, 10), hit(1, 20), hit(9, 20), hit(3, 15)];
        let top = top_k(&hits, 3);
        assert_eq!(top, vec![hit(1, 20), hit(9, 20), hit(3, 15)]);
        assert_eq!(best_hit(&hits), Some(hit(1, 20)));
        assert_eq!(best_hit(&[]), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn merge_rejects_zero_query_len() {
        let _ = merge_overlapping(&[hit(0, 1)], 0);
    }
}
