//! Federated multi-FPGA fleet: replication, health-driven routing and
//! hedged scatter/gather.
//!
//! [`crate::cluster::FpgaCluster`] models a single-host shard list whose
//! only failure answer is one-shot dead-node redispatch: a kill observed
//! mid-search costs a full shard rescan, and a second failure on the
//! same shard loses coverage entirely because every shard exists exactly
//! once. This module promotes the scale-out model to a *fleet*:
//!
//! * **Replication with anti-affinity.** [`place_replicas`] assigns each
//!   shard `s` to `R` distinct nodes `(s + r) % nodes`, so no node holds
//!   two replicas of one shard and any single failure leaves `R − 1`
//!   live copies.
//! * **Health-driven routing.** Every dispatch consults a
//!   [`FailureDetector`] (phi-accrual suspicion over per-node EWMA
//!   latency plus fault events — see `fabp_resilience::health`): drained
//!   nodes stop receiving primary reads *before* a request has to fail
//!   over, and recovered nodes rejoin through probation probes. This is
//!   steady-state load balancing, not post-mortem redispatch.
//! * **Hedged reads** (the tail-at-scale pattern): when the primary's
//!   modelled completion exceeds the detector's p95-derived budget for
//!   that node, a duplicate read is issued to the next placed replica.
//!   First response wins; the loser is cancelled unless it finishes
//!   inside the cancel-propagation window, in which case both responses
//!   deliver and [`merge_shard_hits`] removes the exact duplicates —
//!   replica overlap stays bit-identical to the single-node oracle.
//! * **Live degraded timing.** [`FpgaFleet::fleet_timing`] recomputes
//!   [`ClusterTiming`] from the *current* routing table, so SLO
//!   burn-rate gauges track the degraded fleet as nodes drain and
//!   rejoin, rather than a post-hoc redispatch summary.
//!
//! The serving integration (graceful drain, brownout shedding, chaos
//! under live traffic) lives in `fabp-serve`.

use crate::cluster::{try_shard_database, ClusterTiming, SHARD_TRACK_BASE};
use crate::hits::{merge_shard_hits, Hit};
use fabp_bio::seq::PackedSeq;
use fabp_encoding::encoder::EncodedQuery;
use fabp_fpga::engine::{EngineConfig, FabpEngine};
use fabp_resilience::health::FailureDetector;
use fabp_resilience::telemetry as rtel;
use fabp_resilience::{FabpError, FabpResult};
use fabp_telemetry::{
    FlightRecorder, Registry, TraceContext, TraceEvent, FLAG_CANCELLED, FLAG_ERROR, FLAG_HEDGE,
};

/// Modelled time for a cancellation to propagate to a losing read,
/// microseconds. A loser that would finish within this window of the
/// winner cannot be cancelled in time — both responses deliver and the
/// gather deduplicates them.
pub const CANCEL_PROPAGATION_US: f64 = 50.0;

/// Places `R` replicas of each of `shards` shards across `nodes` nodes
/// with anti-affinity: replica `r` of shard `s` lives on node
/// `(s + r) % nodes`, so one shard's replicas always land on distinct
/// nodes and consecutive shards' primaries are spread evenly.
///
/// # Errors
///
/// [`FabpError::InvalidShardPlan`] when `replication == 0` (a shard with
/// no home) or `replication > nodes` (anti-affinity is unsatisfiable —
/// some node would hold two copies of one shard).
pub fn place_replicas(
    shards: usize,
    nodes: usize,
    replication: usize,
) -> FabpResult<Vec<Vec<usize>>> {
    if nodes == 0 {
        return Err(FabpError::InvalidShardPlan(
            "a fleet needs at least one node".into(),
        ));
    }
    if replication == 0 {
        return Err(FabpError::InvalidShardPlan(
            "every shard needs at least one replica".into(),
        ));
    }
    if replication > nodes {
        return Err(FabpError::InvalidShardPlan(format!(
            "replication {replication} over {nodes} node(s) violates anti-affinity"
        )));
    }
    Ok((0..shards)
        .map(|s| (0..replication).map(|r| (s + r) % nodes).collect())
        .collect())
}

/// How one shard was routed by a hedged scatter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardDispatch {
    /// Shard index.
    pub shard: usize,
    /// Node that received the primary read.
    pub primary: usize,
    /// Node that received the hedged duplicate, if one was issued.
    pub hedge: Option<usize>,
    /// Node whose response won the race (equals `primary` when no hedge
    /// was issued).
    pub winner: usize,
    /// Node whose read was cancelled after losing the race. `None` when
    /// no hedge ran, or when the loser finished inside the
    /// cancel-propagation window and delivered anyway.
    pub cancelled: Option<usize>,
    /// True when no placed replica was routable and the shard was
    /// served off-placement by an arbitrary routable node.
    pub failover: bool,
}

/// Outcome of one hedged fleet search.
#[derive(Debug, Clone)]
pub struct FleetSearchOutcome {
    /// Merged hits in global coordinates — bit-identical to a
    /// single-node scan of the whole reference.
    pub hits: Vec<Hit>,
    /// Per-shard routing decisions, in shard order.
    pub dispatches: Vec<ShardDispatch>,
    /// Live fleet timing over the current routing table (degraded when
    /// nodes are drained).
    pub timing: ClusterTiming,
    /// Hedged duplicates issued.
    pub hedges: u32,
    /// Hedges that beat their primary.
    pub hedge_wins: u32,
    /// Reads cancelled after losing the race.
    pub cancels: u32,
    /// Shards served off-placement because every replica was drained.
    pub failovers: u32,
}

/// A replicated fleet: one engine per node, one shard per node slot,
/// each shard placed on `R` nodes.
#[derive(Debug)]
pub struct FpgaFleet {
    engines: Vec<FabpEngine>,
    shard_bases: Vec<u64>,
    placement: Vec<Vec<usize>>,
    /// Per-node latency multiplier (test hook modelling stragglers);
    /// 1.0 = nominal.
    straggle: Vec<f64>,
    replication: usize,
}

impl FpgaFleet {
    /// Builds a homogeneous fleet: `nodes` boards with `config`, the
    /// database of `total_bases` nucleotides split into `nodes` shards,
    /// each shard replicated on `replication` nodes with anti-affinity.
    ///
    /// # Errors
    ///
    /// [`FabpError::InvalidShardPlan`] for a zero-node fleet or an
    /// unsatisfiable replication factor, [`FabpError::EmptyQuery`] for
    /// an empty query, and [`FabpError::Plan`] when the query cannot fit
    /// the device.
    pub fn homogeneous(
        query: &EncodedQuery,
        config: &EngineConfig,
        nodes: usize,
        replication: usize,
        total_bases: u64,
    ) -> FabpResult<FpgaFleet> {
        if query.is_empty() {
            return Err(FabpError::EmptyQuery);
        }
        let shard_bases = try_shard_database(total_bases, nodes)?;
        let placement = place_replicas(nodes, nodes, replication)?;
        let engines = (0..nodes)
            .map(|_| FabpEngine::new(query.clone(), config.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        let telemetry = Registry::global();
        telemetry
            .gauge("fabp_fleet_nodes", "Nodes in the modelled fleet")
            .set(nodes as i64);
        telemetry
            .gauge("fabp_fleet_replication", "Replicas per shard")
            .set(replication as i64);
        Ok(FpgaFleet {
            engines,
            shard_bases,
            placement,
            straggle: vec![1.0; nodes],
            replication,
        })
    }

    /// Number of nodes (== number of shards).
    pub fn nodes(&self) -> usize {
        self.engines.len()
    }

    /// Replicas per shard.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The placement map: `placement()[s]` lists the nodes holding
    /// shard `s`, primary first.
    pub fn placement(&self) -> &[Vec<usize>] {
        &self.placement
    }

    /// Models `node` as a straggler: its reads take `factor`× the
    /// nominal modelled kernel time. Test/chaos hook.
    pub fn set_straggle(&mut self, node: usize, factor: f64) {
        if let Some(s) = self.straggle.get_mut(node) {
            *s = factor.max(0.0);
        }
    }

    /// Modelled completion time of `bases` nucleotides on `node`,
    /// microseconds, including its straggle factor.
    pub fn read_latency_us(&self, node: usize, bases: u64) -> f64 {
        let nominal = self
            .engines
            .get(node)
            .map_or(0.0, |e| e.model_kernel_seconds(bases.div_ceil(4)) * 1e6);
        nominal * self.straggle.get(node).copied().unwrap_or(1.0)
    }

    /// Nominal timing with every node healthy, each serving exactly its
    /// own shard (replicas idle as hedge capacity).
    pub fn timing(&self) -> ClusterTiming {
        self.timing_for_assignment(&(0..self.nodes()).map(|s| (s, s)).collect::<Vec<_>>())
    }

    /// Live fleet timing over the detector's current routing table:
    /// each shard is served by its first routable replica (or any
    /// routable node as a last resort), survivors' serial loads set the
    /// latency. This is the number SLO burn-rate gauges should track
    /// while the fleet is degraded — recomputed on every call, not
    /// captured at failure time.
    ///
    /// # Errors
    ///
    /// [`FabpError::NodeDown`] when no node is routable.
    pub fn fleet_timing(&self, detector: &FailureDetector) -> FabpResult<ClusterTiming> {
        let assignment = (0..self.nodes())
            .map(|s| Ok((s, self.route_shard(s, detector)?.0)))
            .collect::<FabpResult<Vec<_>>>()?;
        Ok(self.timing_for_assignment(&assignment))
    }

    /// Timing when each `(shard, node)` pair in `assignment` runs
    /// serially on its node.
    fn timing_for_assignment(&self, assignment: &[(usize, usize)]) -> ClusterTiming {
        let power_model = fabp_fpga::power_model::PowerModel::default();
        let mut load = vec![0u64; self.nodes()];
        for &(shard, node) in assignment {
            if let (Some(l), Some(&bases)) = (load.get_mut(node), self.shard_bases.get(shard)) {
                *l += bases;
            }
        }
        let mut latency: f64 = 0.0;
        let mut joules = 0.0;
        for (node, (engine, &bases)) in self.engines.iter().zip(&load).enumerate() {
            if bases == 0 {
                continue;
            }
            let t = engine.model_kernel_seconds(bases.div_ceil(4))
                * self.straggle.get(node).copied().unwrap_or(1.0);
            latency = latency.max(t);
            let watts = power_model
                .power(engine.plan().resources, engine.config().device.clock_hz)
                .total();
            joules += watts * t;
        }
        ClusterTiming {
            latency_seconds: latency,
            queries_per_second: if latency > 0.0 { 1.0 / latency } else { 0.0 },
            joules_per_query: joules,
        }
    }

    /// Routes `shard` through the detector: the first routable placed
    /// replica serves as primary; if every replica is drained, the
    /// shard fails over to a routable node chosen round-robin by shard
    /// index; if *no* node is routable, a probe-accepting (probation)
    /// node serves as a last resort — a successful probe read is
    /// exactly what earns its rejoin streak, so a fleet that is all in
    /// probation heals through traffic instead of flatlining. Returns
    /// `(primary, failover)`.
    fn route_shard(&self, shard: usize, detector: &FailureDetector) -> FabpResult<(usize, bool)> {
        let replicas = &self.placement[shard];
        if let Some(&primary) = replicas.iter().find(|&&n| detector.is_routable(n)) {
            return Ok((primary, false));
        }
        let table = detector.routing_table();
        if let Some(&node) = table.get(shard % table.len().max(1)) {
            return Ok((node, true));
        }
        if let Some(&node) = replicas.iter().find(|&&n| detector.accepts_probes(n)) {
            return Ok((node, true));
        }
        let probers: Vec<usize> = (0..self.nodes())
            .filter(|&n| detector.accepts_probes(n))
            .collect();
        match probers.get(shard % probers.len().max(1)) {
            Some(&node) => Ok((node, true)),
            None => Err(FabpError::NodeDown {
                node: replicas.first().copied().unwrap_or(0),
            }),
        }
    }

    /// The hedge target for `shard` given its `primary`: the next
    /// placed replica (in placement order) that accepts probe traffic —
    /// probation nodes qualify, which is exactly how they earn their
    /// rejoin streak without taking primary reads.
    fn hedge_target(
        &self,
        shard: usize,
        primary: usize,
        detector: &FailureDetector,
    ) -> Option<usize> {
        self.placement[shard]
            .iter()
            .copied()
            .find(|&n| n != primary && detector.accepts_probes(n))
    }

    /// Hedged scatter/gather over pre-packed shards.
    ///
    /// Per shard: the primary read goes to the first routable placed
    /// replica (consulting `detector`'s live routing table); when the
    /// primary's modelled completion exceeds the detector's p95-derived
    /// budget for that node, a hedged duplicate is issued to the next
    /// replica. First response wins. The loser is cancelled — unless it
    /// finishes within [`CANCEL_PROPAGATION_US`] of the winner, in
    /// which case both responses deliver and the gather's
    /// [`merge_shard_hits`] removes the exact duplicates. Every
    /// completion feeds the detector's EWMA statistics, so routing and
    /// hedge budgets evolve with the traffic (steady-state, not
    /// post-mortem).
    ///
    /// Trace spans: each shard records a `shard` span on track
    /// `SHARD_TRACK_BASE + primary`; a hedged duplicate records a
    /// `hedge` child span ([`FLAG_HEDGE`], track of the hedge node), and
    /// a cancelled read carries [`FLAG_CANCELLED`]. A failed-over shard
    /// span carries [`FLAG_ERROR`] since its placement was unroutable.
    ///
    /// # Errors
    ///
    /// [`FabpError::InvalidShardPlan`] on shard/offset count mismatch,
    /// [`FabpError::NodeDown`] when no node is routable for some shard.
    #[allow(clippy::too_many_arguments)]
    pub fn search_packed_hedged(
        &self,
        shards: &[PackedSeq],
        shard_offsets: &[usize],
        detector: &mut FailureDetector,
        now_us: u64,
        registry: &Registry,
        flight: &FlightRecorder,
        trace: TraceContext,
        start_us: f64,
    ) -> FabpResult<FleetSearchOutcome> {
        if shards.len() != self.nodes() || shards.len() != shard_offsets.len() {
            return Err(FabpError::InvalidShardPlan(format!(
                "{} shard(s) / {} offset(s) for a {}-node fleet",
                shards.len(),
                shard_offsets.len(),
                self.nodes()
            )));
        }
        let mut per_shard: Vec<Vec<Hit>> = Vec::with_capacity(shards.len());
        let mut dispatches = Vec::with_capacity(shards.len());
        let (mut hedges, mut hedge_wins, mut cancels, mut failovers) = (0u32, 0u32, 0u32, 0u32);

        for (shard_idx, (shard, &offset)) in shards.iter().zip(shard_offsets).enumerate() {
            let (primary, failover) = self.route_shard(shard_idx, detector)?;
            if failover {
                failovers += 1;
                rtel::count_failover(registry);
            }
            let bases = shard.len() as u64;
            let primary_latency = self.read_latency_us(primary, bases);

            // Hedge when the primary's modelled completion blows the
            // p95 budget learned for that node. A cold detector (no
            // samples yet) has budget 0 treated as "no budget": never
            // hedge blind.
            let budget = detector.p95_latency_us(primary);
            let hedge = if budget > 0.0 && primary_latency > budget {
                self.hedge_target(shard_idx, primary, detector)
            } else {
                None
            };

            let shard_ctx = trace.child(shard_idx as u64);
            let dispatch = match hedge {
                None => {
                    self.record_shard_span(
                        flight,
                        shard_ctx,
                        shard_idx,
                        primary,
                        primary_latency,
                        start_us,
                        if failover { FLAG_ERROR } else { 0 },
                    );
                    ShardDispatch {
                        shard: shard_idx,
                        primary,
                        hedge: None,
                        winner: primary,
                        cancelled: None,
                        failover,
                    }
                }
                Some(hedge_node) => {
                    hedges += 1;
                    rtel::count_hedge_issued(registry);
                    let hedge_latency = self.read_latency_us(hedge_node, bases);
                    let (winner, winner_latency, loser, loser_latency) =
                        if hedge_latency < primary_latency {
                            hedge_wins += 1;
                            rtel::count_hedge_won(registry);
                            (hedge_node, hedge_latency, primary, primary_latency)
                        } else {
                            (primary, primary_latency, hedge_node, hedge_latency)
                        };
                    // First response wins; the loser is cancelled if the
                    // cancel reaches it before it finishes anyway.
                    let cancelled = if loser_latency - winner_latency > CANCEL_PROPAGATION_US {
                        cancels += 1;
                        rtel::count_hedge_cancelled(registry);
                        Some(loser)
                    } else {
                        None
                    };
                    let primary_flags = (if failover { FLAG_ERROR } else { 0 })
                        | (if cancelled == Some(primary) {
                            FLAG_CANCELLED
                        } else {
                            0
                        });
                    self.record_shard_span(
                        flight,
                        shard_ctx,
                        shard_idx,
                        primary,
                        primary_latency,
                        start_us,
                        primary_flags,
                    );
                    let hedge_flags = FLAG_HEDGE
                        | (if cancelled == Some(hedge_node) {
                            FLAG_CANCELLED
                        } else {
                            0
                        });
                    flight.record(
                        TraceEvent::new(
                            shard_ctx.child(0x4E + hedge_node as u64),
                            "hedge",
                            start_us,
                            hedge_latency,
                        )
                        .with_arg(hedge_node as u64)
                        .with_track(SHARD_TRACK_BASE + hedge_node as u32)
                        .with_flags(hedge_flags),
                    );
                    ShardDispatch {
                        shard: shard_idx,
                        primary,
                        hedge: Some(hedge_node),
                        winner,
                        cancelled,
                        failover,
                    }
                }
            };

            // Run every read that delivers a response; exact duplicates
            // from an uncancelled loser are removed by the merge below.
            let mut delivering = vec![dispatch.winner];
            if let Some(hedge_node) = dispatch.hedge {
                let loser = if dispatch.winner == hedge_node {
                    dispatch.primary
                } else {
                    hedge_node
                };
                if dispatch.cancelled.is_none() {
                    delivering.push(loser);
                }
            }
            for &node in &delivering {
                let latency = self.read_latency_us(node, bases);
                let engine = self
                    .engines
                    .get(node)
                    .ok_or_else(|| FabpError::Internal(format!("node {node} has no engine")))?;
                let hits = engine
                    .run_traced(
                        shard,
                        registry,
                        flight,
                        shard_ctx.child(0x10 + node as u64),
                        start_us,
                    )
                    .hits
                    .into_iter()
                    .map(|h| Hit {
                        position: h.position + offset,
                        score: h.score,
                    })
                    .collect::<Vec<_>>();
                per_shard.push(hits);
                detector.record_success(node, latency, now_us.saturating_add(latency as u64));
            }
            dispatches.push(dispatch);
        }

        // Replica duplicates (uncancelled losers) and ordinary
        // cross-shard overlap duplicates both flow through the shared
        // merge — the transparency invariant every shard-composing
        // caller relies on.
        let hits = merge_shard_hits(per_shard);

        let timing = self.fleet_timing(detector)?;
        let nominal = self.timing();
        if detector.routable_count() < self.nodes() && nominal.queries_per_second > 0.0 {
            let permille =
                (timing.queries_per_second / nominal.queries_per_second * 1000.0).round() as i64;
            rtel::record_degraded_throughput(registry, permille.clamp(0, 1000));
        }

        Ok(FleetSearchOutcome {
            hits,
            dispatches,
            timing,
            hedges,
            hedge_wins,
            cancels,
            failovers,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn record_shard_span(
        &self,
        flight: &FlightRecorder,
        ctx: TraceContext,
        shard: usize,
        node: usize,
        dur_us: f64,
        start_us: f64,
        flags: u32,
    ) {
        flight.record(
            TraceEvent::new(ctx, "shard", start_us, dur_us)
                .with_arg(shard as u64)
                .with_track(SHARD_TRACK_BASE + node as u32)
                .with_flags(flags),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::shard_with_overlap;
    use fabp_bio::generate::{coding_rna_for_paper_patterns, random_protein, random_rna};
    use fabp_bio::seq::RnaSeq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture(seed: u64, bases: usize, plant: &[usize]) -> (EncodedQuery, RnaSeq) {
        let mut rng = StdRng::seed_from_u64(seed);
        let protein = random_protein(10, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let coding = coding_rna_for_paper_patterns(&protein, &mut rng);
        let mut seq = random_rna(bases, &mut rng).into_inner();
        for &at in plant {
            seq.splice(at..at + coding.len(), coding.iter().copied());
        }
        (query, RnaSeq::from(seq))
    }

    fn oracle(query: &EncodedQuery, reference: &RnaSeq) -> Vec<Hit> {
        let engine =
            FabpEngine::new(query.clone(), EngineConfig::kintex7(query.len() as u32)).unwrap();
        engine.run(&PackedSeq::from_rna(reference)).hits
    }

    fn packed_shards(
        reference: &RnaSeq,
        nodes: usize,
        overlap: usize,
    ) -> (Vec<PackedSeq>, Vec<usize>) {
        let (shards, offsets) = shard_with_overlap(reference, nodes, overlap);
        (shards.iter().map(PackedSeq::from_rna).collect(), offsets)
    }

    /// Warms the detector so every node has an armed EWMA at
    /// `latency_us` — the state a steady fleet reaches after a few
    /// requests.
    fn warm(detector: &mut FailureDetector, nodes: usize, latency_us: f64) {
        for t in 1..=4u64 {
            for n in 0..nodes {
                detector.record_success(n, latency_us, t * 1_000);
            }
        }
    }

    #[test]
    fn placement_has_anti_affinity_and_rejects_bad_factors() {
        let placement = place_replicas(6, 6, 3).unwrap();
        assert_eq!(placement.len(), 6);
        for (s, replicas) in placement.iter().enumerate() {
            assert_eq!(replicas.len(), 3);
            let mut sorted = replicas.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "shard {s} replicas collide: {replicas:?}");
            assert_eq!(replicas[0], s, "primary replica is the home node");
        }
        // Every node carries the same number of replicas (balance).
        let mut per_node = vec![0usize; 6];
        for replicas in &placement {
            for &n in replicas {
                per_node[n] += 1;
            }
        }
        assert!(per_node.iter().all(|&c| c == 3), "{per_node:?}");

        assert!(matches!(
            place_replicas(4, 4, 0),
            Err(FabpError::InvalidShardPlan(_))
        ));
        assert!(matches!(
            place_replicas(4, 4, 5),
            Err(FabpError::InvalidShardPlan(_))
        ));
        assert!(matches!(
            place_replicas(4, 0, 1),
            Err(FabpError::InvalidShardPlan(_))
        ));
    }

    #[test]
    fn unhedged_fleet_matches_the_single_node_oracle() {
        let (query, reference) = fixture(41, 2_000, &[300, 985]);
        let qlen = query.len();
        let fleet = FpgaFleet::homogeneous(
            &query,
            &EngineConfig::kintex7(qlen as u32),
            4,
            2,
            reference.len() as u64,
        )
        .unwrap();
        let (shards, offsets) = packed_shards(&reference, 4, qlen - 1);
        let mut detector = FailureDetector::with_defaults(4, &Registry::disabled());
        let out = fleet
            .search_packed_hedged(
                &shards,
                &offsets,
                &mut detector,
                0,
                &Registry::disabled(),
                &FlightRecorder::disabled(),
                TraceContext::none(),
                0.0,
            )
            .unwrap();
        assert_eq!(out.hits, oracle(&query, &reference));
        assert_eq!(out.hedges, 0, "cold detector must not hedge blind");
        assert_eq!(out.failovers, 0);
        assert!(out
            .dispatches
            .iter()
            .enumerate()
            .all(|(s, d)| d.primary == s && d.winner == s && d.hedge.is_none()));
    }

    #[test]
    fn straggler_triggers_hedge_and_hits_stay_bit_identical() {
        let (query, reference) = fixture(42, 2_000, &[300, 985]);
        let qlen = query.len();
        let mut fleet = FpgaFleet::homogeneous(
            &query,
            &EngineConfig::kintex7(qlen as u32),
            4,
            2,
            reference.len() as u64,
        )
        .unwrap();
        let (shards, offsets) = packed_shards(&reference, 4, qlen - 1);
        let nominal = fleet.read_latency_us(0, shards[0].len() as u64);

        // Train the detector at the nominal latency, then make node 1 a
        // heavy straggler: its primary read blows the p95 budget and the
        // scatter hedges shard 1 to node 2 (placement (1, 2)). The
        // straggle factor is sized so the loser finishes well outside
        // the cancel-propagation window of the winner.
        let straggle = 2.0 * CANCEL_PROPAGATION_US / nominal + 2.0;
        let mut detector = FailureDetector::with_defaults(4, &Registry::disabled());
        warm(&mut detector, 4, nominal);
        fleet.set_straggle(1, straggle);

        let registry = Registry::new();
        let out = fleet
            .search_packed_hedged(
                &shards,
                &offsets,
                &mut detector,
                1_000_000,
                &registry,
                &FlightRecorder::disabled(),
                TraceContext::none(),
                0.0,
            )
            .unwrap();
        assert_eq!(out.hits, oracle(&query, &reference), "hedging is invisible");
        assert!(out.hedges >= 1);
        assert!(out.hedge_wins >= 1, "the healthy replica must win");
        let d1 = out.dispatches[1];
        assert_eq!((d1.primary, d1.hedge, d1.winner), (1, Some(2), 2));
        assert_eq!(d1.cancelled, Some(1), "the straggler read is cancelled");
        let prom = registry.snapshot().to_prometheus();
        assert!(prom.contains("fabp_fleet_hedges_total"), "{prom}");
        assert!(prom.contains("fabp_fleet_hedge_wins_total"), "{prom}");
        assert!(prom.contains("fabp_fleet_cancels_total"), "{prom}");
    }

    #[test]
    fn uncancellable_loser_delivers_duplicates_that_dedup_exactly() {
        let (query, reference) = fixture(43, 1_600, &[200, 900]);
        let qlen = query.len();
        let mut fleet = FpgaFleet::homogeneous(
            &query,
            &EngineConfig::kintex7(qlen as u32),
            4,
            2,
            reference.len() as u64,
        )
        .unwrap();
        let (shards, offsets) = packed_shards(&reference, 4, qlen - 1);
        let nominal = fleet.read_latency_us(0, shards[0].len() as u64);

        // Train the budget low, then slow *every* node slightly: each
        // primary blows its budget, but primary and hedge finish within
        // the cancel-propagation window of each other (same straggle),
        // so both deliver and the gather must dedup the full replica
        // overlap back to the oracle.
        let mut detector = FailureDetector::with_defaults(4, &Registry::disabled());
        warm(&mut detector, 4, nominal * 0.2);
        for n in 0..4 {
            fleet.set_straggle(n, 1.0);
        }

        let out = fleet
            .search_packed_hedged(
                &shards,
                &offsets,
                &mut detector,
                1_000_000,
                &Registry::disabled(),
                &FlightRecorder::disabled(),
                TraceContext::none(),
                0.0,
            )
            .unwrap();
        assert!(out.hedges >= 1, "every shard should hedge: {out:?}");
        assert_eq!(out.cancels, 0, "equal-speed losers cannot be cancelled");
        assert!(out
            .dispatches
            .iter()
            .any(|d| d.hedge.is_some() && d.cancelled.is_none()));
        assert_eq!(
            out.hits,
            oracle(&query, &reference),
            "duplicate replica responses must dedup bit-identically"
        );
    }

    #[test]
    fn drained_replicas_fail_over_and_stay_bit_identical() {
        let (query, reference) = fixture(44, 2_000, &[120, 1_500]);
        let qlen = query.len();
        let fleet = FpgaFleet::homogeneous(
            &query,
            &EngineConfig::kintex7(qlen as u32),
            4,
            2,
            reference.len() as u64,
        )
        .unwrap();
        let (shards, offsets) = packed_shards(&reference, 4, qlen - 1);

        // Shard 0 is placed on nodes (0, 1); kill both. The scatter
        // must fail over to a routable node and still merge the full
        // hit set.
        let mut detector = FailureDetector::with_defaults(4, &Registry::disabled());
        detector.record_kill(0);
        detector.record_kill(1);
        let out = fleet
            .search_packed_hedged(
                &shards,
                &offsets,
                &mut detector,
                0,
                &Registry::disabled(),
                &FlightRecorder::disabled(),
                TraceContext::none(),
                0.0,
            )
            .unwrap();
        assert_eq!(out.hits, oracle(&query, &reference));
        assert!(out.failovers >= 1);
        assert!(out.dispatches[0].failover);
        assert!([2, 3].contains(&out.dispatches[0].primary));

        // Timing over two survivors each carrying double load is worse
        // than nominal.
        let degraded = fleet.fleet_timing(&detector).unwrap();
        assert!(degraded.latency_seconds > fleet.timing().latency_seconds);
        assert!(degraded.queries_per_second < fleet.timing().queries_per_second);

        // A fully dead fleet is fatal.
        detector.record_kill(2);
        detector.record_kill(3);
        assert!(matches!(
            fleet.search_packed_hedged(
                &shards,
                &offsets,
                &mut detector,
                0,
                &Registry::disabled(),
                &FlightRecorder::disabled(),
                TraceContext::none(),
                0.0,
            ),
            Err(FabpError::NodeDown { .. })
        ));
    }

    #[test]
    fn hedging_is_deterministic_for_identical_inputs() {
        let (query, reference) = fixture(45, 1_800, &[400]);
        let qlen = query.len();
        let run = || {
            let mut fleet = FpgaFleet::homogeneous(
                &query,
                &EngineConfig::kintex7(qlen as u32),
                4,
                2,
                reference.len() as u64,
            )
            .unwrap();
            let (shards, offsets) = packed_shards(&reference, 4, qlen - 1);
            let nominal = fleet.read_latency_us(0, shards[0].len() as u64);
            let mut detector = FailureDetector::with_defaults(4, &Registry::disabled());
            warm(&mut detector, 4, nominal);
            fleet.set_straggle(3, 50.0);
            let out = fleet
                .search_packed_hedged(
                    &shards,
                    &offsets,
                    &mut detector,
                    1_000_000,
                    &Registry::disabled(),
                    &FlightRecorder::disabled(),
                    TraceContext::none(),
                    0.0,
                )
                .unwrap();
            (
                out.hits,
                out.dispatches,
                out.hedges,
                out.hedge_wins,
                out.cancels,
                out.failovers,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn shard_count_mismatch_is_a_typed_error() {
        let (query, reference) = fixture(46, 800, &[]);
        let fleet = FpgaFleet::homogeneous(
            &query,
            &EngineConfig::kintex7(query.len() as u32),
            4,
            2,
            reference.len() as u64,
        )
        .unwrap();
        let (shards, offsets) = packed_shards(&reference, 3, 0);
        let mut detector = FailureDetector::with_defaults(4, &Registry::disabled());
        assert!(matches!(
            fleet.search_packed_hedged(
                &shards,
                &offsets,
                &mut detector,
                0,
                &Registry::disabled(),
                &FlightRecorder::disabled(),
                TraceContext::none(),
                0.0,
            ),
            Err(FabpError::InvalidShardPlan(_))
        ));
    }

    #[test]
    fn empty_query_fleet_is_a_typed_error() {
        let query = EncodedQuery::from_exact_rna(&RnaSeq::new());
        assert!(matches!(
            FpgaFleet::homogeneous(&query, &EngineConfig::kintex7(0), 2, 2, 100),
            Err(FabpError::EmptyQuery)
        ));
    }
}
