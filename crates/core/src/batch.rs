//! Multi-query batch search over reference slices.
//!
//! The paper evaluates 10 000 queries against one resident database
//! (§IV-A). On hardware, queries are searched one after another (the query
//! lives in flip-flops; reloading it is microseconds against a
//! multi-millisecond scan); in software we parallelise — and the unit of
//! parallelism matters.
//!
//! **Why per-query stealing failed (PR 4):** the previous scheduler stole
//! whole queries from a shared atomic index. That granularity has two
//! fatal shapes: with `queries < workers` the surplus workers idle (the
//! degenerate 1 query × N workers case runs fully serial), and even with
//! plenty of queries every worker re-streams the entire reference from
//! DRAM for each claim, so the memory system — not the core count — sets
//! the ceiling. `batch_parallel4_vs_serial` measured **0.98×**.
//!
//! **This scheduler steals `(query-group, reference-slice)` pairs.** A
//! [`SlicePlan`](crate::slice_plan::SlicePlan) cuts the reference into
//! cache-friendly slices with exactly `window − 1` bases of trailing
//! overlap (the `shard_with_overlap` math), so per-slice scans partition
//! the alignment-position space and
//! [`merge_shard_hits`](crate::hits::merge_shard_hits) reassembles the
//! serial hit list bit-identically — even for one query on many workers.
//! Orthogonally, bit-parallel-eligible queries are packed into
//! [`LANES`]-wide groups scored by one [`MultiQueryEngine`] pass per
//! slice, amortising column decode and table evaluation across queries.
//!
//! Scheduling remains **work-stealing** (an atomic claim index over the
//! flattened item list) rather than static chunking: a worker that draws
//! cheap slices immediately steals the next unclaimed one. Telemetry is
//! honest about utilisation: per-worker **busy-nanosecond histograms**
//! (`fabp_batch_worker_busy_ns`) replace the old claim-count gauges that
//! hid the 0.98× pathology, the imbalance gauge reports the busy-time
//! spread in microseconds, and `fabp_batch_lane_occupancy_pct` exposes
//! how full the SIMD lanes ran.

use crate::aligner::{merge_hits, Engine, FabpAligner, SearchOutcome, Threshold};
use crate::bitparallel::{BitParallelEngine, MultiQueryEngine, LANES};
use crate::hits::{merge_shard_hits, Hit};
use crate::slice_plan::{SliceOptions, SlicePlan};
use fabp_bio::seq::{ProteinSeq, RnaSeq};
use fabp_resilience::{FabpError, FabpResult};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Searches every query against the reference, returning one outcome per
/// query (input order preserved).
///
/// `threads` parallelises across `(query-group, reference-slice)` work
/// items (see the module docs) — no query or slice is lost or duplicated
/// regardless of per-query cost skew, `threads > queries`, or slice
/// boundaries straddling match windows.
///
/// # Errors
///
/// Returns the first build failure encountered, mapped into the workspace
/// [`FabpError`] taxonomy (e.g. [`FabpError::EmptyQuery`]).
pub fn search_all(
    queries: &[ProteinSeq],
    reference: &RnaSeq,
    threshold: Threshold,
    threads: usize,
) -> FabpResult<Vec<SearchOutcome>> {
    // Build all aligners up front so errors surface before work starts.
    let aligners = queries
        .iter()
        .map(|q| {
            FabpAligner::builder()
                .protein_query(q)
                .threshold(threshold)
                .engine(Engine::Software { threads: 1 })
                .build()
                .map_err(FabpError::from)
        })
        .collect::<FabpResult<Vec<_>>>()?;
    search_all_prebuilt(&aligners, reference, threads)
}

/// [`search_all`] over aligners the caller already built (and possibly
/// cached) — the serving layer's dispatch path, where the encode and
/// table-build cost of a repeated query is paid once and reused across
/// micro-batches. Outcomes are returned in `aligners` order.
///
/// `A` is anything that borrows a [`FabpAligner`], so `&[FabpAligner]`
/// and `&[Arc<FabpAligner>]` both work.
///
/// # Errors
///
/// [`FabpError::Internal`] only on a scheduler invariant violation (a
/// result slot filled twice or left unfilled).
pub fn search_all_prebuilt<A: std::borrow::Borrow<FabpAligner> + Sync>(
    aligners: &[A],
    reference: &RnaSeq,
    threads: usize,
) -> FabpResult<Vec<SearchOutcome>> {
    search_all_prebuilt_with_stats(aligners, reference, threads, SliceOptions::default())
        .map(|(outcomes, _)| outcomes)
}

/// How the scheduler actually ran one batch: work-item mix, lane packing
/// and the per-worker busy time the critical-path analysis needs.
///
/// Busy time is what the old claim-count gauges could not show: with
/// per-query stealing, `1 query × 4 workers` reported a perfectly
/// balanced `1/0/0/0` claim split while three workers did nothing. The
/// busy-nanosecond vector makes that pathology (and its fix) measurable:
/// the batch's critical path is `max(per_worker_busy_ns)`, and speedup
/// over serial is `serial_ns / max(per_worker_busy_ns)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchRunStats {
    /// Workers actually spawned (≤ requested threads).
    pub workers: usize,
    /// Total work items scheduled.
    pub items: usize,
    /// Items that were lane-group reference slices.
    pub group_slices: usize,
    /// Items that were scalar `(query, pass)` reference slices.
    pub scalar_slices: usize,
    /// Items that were whole queries (cycle-accurate backend).
    pub whole_queries: usize,
    /// Multi-query lane groups formed.
    pub lane_groups: usize,
    /// Occupied lanes as a percentage of `lane_groups × LANES`
    /// (100.0 when every group is full; 0.0 when no groups formed).
    pub lane_occupancy_pct: f64,
    /// Busy CPU nanoseconds per worker (thread CPU time spent inside
    /// claimed items — immune to preemption on oversubscribed hosts).
    pub per_worker_busy_ns: Vec<u64>,
}

impl BatchRunStats {
    /// The batch's critical path: the busiest worker's busy time.
    pub fn critical_path_ns(&self) -> u64 {
        self.per_worker_busy_ns.iter().copied().max().unwrap_or(0)
    }
}

/// One schedulable unit of batch work.
enum WorkItem {
    /// Scan one reference slice for one multi-query lane group.
    GroupSlice { group: usize, slice: usize },
    /// Scan positions `start..end` for one scalar software pass.
    ScalarSlice {
        query: usize,
        pass: usize,
        start: usize,
        end: usize,
    },
    /// Run one whole query (cycle-accurate backend: its per-run
    /// statistics must accumulate inside a single run).
    Whole { query: usize },
}

/// The engine scoring one lane group's slices.
enum GroupEngine {
    /// Ragged tail of one query: the plain fused scan (cheaper than a
    /// one-lane multi-query pass, which still ripples [`LANES`] counter
    /// words).
    Single(BitParallelEngine),
    /// 2 ..= [`LANES`] queries per pass.
    Multi(MultiQueryEngine),
}

/// A group of bit-parallel-eligible queries scanned together.
struct LaneGroup {
    /// Query indices (into `aligners`), one per lane.
    members: Vec<usize>,
    /// Per-lane absolute thresholds.
    thresholds: Vec<u32>,
    engine: GroupEngine,
    /// Slices planned against the group-maximum window.
    plan: SlicePlan,
}

/// What one claimed item produced.
enum ItemResult {
    GroupSlice {
        group: usize,
        /// Position-translated hits, one vector per lane.
        per_lane: Vec<Vec<Hit>>,
    },
    ScalarSlice {
        query: usize,
        pass: usize,
        hits: Vec<Hit>,
    },
    Whole {
        query: usize,
        outcome: SearchOutcome,
    },
}

/// CPU nanoseconds consumed by the calling thread
/// (`CLOCK_THREAD_CPUTIME_ID`).
///
/// Busy time must be CPU time, not wall time: on a host with fewer
/// cores than workers, a worker preempted mid-item would be charged
/// wall-clock for cycles *another* worker consumed, every worker's
/// "busy" time would converge on the total wall time, and
/// [`BatchRunStats::critical_path_ns`] would degenerate to the serial
/// time. The thread CPU clock counts only cycles this thread actually
/// executed, so the critical path stays meaningful on any core count.
#[cfg(target_os = "linux")]
fn thread_cpu_ns() -> u64 {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: `ts` is a valid writable timespec and the clock id is a
    // constant every Linux kernel supports.
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    if rc == 0 {
        ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
    } else {
        0
    }
}

/// Wall-clock fallback where no per-thread CPU clock is exposed.
#[cfg(not(target_os = "linux"))]
fn thread_cpu_ns() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// [`search_all_prebuilt`] with explicit slice sizing and scheduler
/// statistics — the benchmarking and property-testing entry point (the
/// proptest matrix draws `options` to force slice boundaries through
/// match windows).
///
/// # Errors
///
/// [`FabpError::Internal`] only on a scheduler invariant violation.
pub fn search_all_prebuilt_with_stats<A: std::borrow::Borrow<FabpAligner> + Sync>(
    aligners: &[A],
    reference: &RnaSeq,
    threads: usize,
    options: SliceOptions,
) -> FabpResult<(Vec<SearchOutcome>, BatchRunStats)> {
    let threads = threads.max(1);
    if threads <= 1 || aligners.is_empty() {
        let start = Instant::now();
        let outcomes: Vec<SearchOutcome> = aligners
            .iter()
            .map(|a| a.borrow().search(reference))
            .collect();
        let stats = BatchRunStats {
            workers: 1,
            items: aligners.len(),
            whole_queries: aligners.len(),
            per_worker_busy_ns: vec![start.elapsed().as_nanos() as u64],
            ..BatchRunStats::default()
        };
        return Ok((outcomes, stats));
    }

    // Classify queries: bit-parallel-eligible single-pass software
    // queries become lane-group candidates; other software queries
    // (multi-pass extended-Ser, or unsupported patterns) scan
    // scalar-sliced; cycle-accurate queries stay whole.
    let mut candidates: Vec<(usize, BitParallelEngine)> = Vec::new();
    let mut scalar: Vec<usize> = Vec::new();
    let mut whole: Vec<usize> = Vec::new();
    for (q, a) in aligners.iter().enumerate() {
        let a = a.borrow();
        match a.software_passes() {
            None => whole.push(q),
            Some(passes) => {
                let eligible = if passes.len() == 1 {
                    BitParallelEngine::new(a.query()).ok()
                } else {
                    None
                };
                match eligible {
                    Some(engine) => candidates.push((q, engine)),
                    None => scalar.push(q),
                }
            }
        }
    }

    // Pack candidates into LANES-wide groups, each with its own slice
    // plan against the group-maximum window.
    let lane_capacity = candidates.len().div_ceil(LANES) * LANES;
    let occupied_lanes = candidates.len();
    let mut groups: Vec<LaneGroup> = Vec::new();
    while !candidates.is_empty() {
        let take = candidates.len().min(LANES);
        let chunk: Vec<(usize, BitParallelEngine)> = candidates.drain(..take).collect();
        let members: Vec<usize> = chunk.iter().map(|&(q, _)| q).collect();
        let thresholds: Vec<u32> = members
            .iter()
            .map(|&q| aligners[q].borrow().threshold())
            .collect();
        let (engine, window) = if chunk.len() == 1 {
            let (_, single) = &chunk[0];
            let window = single.query_len();
            (GroupEngine::Single(single.clone()), window)
        } else {
            let queries: Vec<_> = members
                .iter()
                .map(|&q| aligners[q].borrow().query())
                .collect();
            // Eligibility was verified per query above, so the union
            // build cannot fail; degrade to an invariant error if it
            // somehow does rather than panicking mid-batch.
            let multi = MultiQueryEngine::new(&queries).map_err(|e| {
                FabpError::Internal(format!("lane-group build failed after eligibility: {e}"))
            })?;
            let window = multi.max_query_len();
            (GroupEngine::Multi(multi), window)
        };
        let plan = SlicePlan::build(reference.len(), window.max(1), threads, options);
        groups.push(LaneGroup {
            members,
            thresholds,
            engine,
            plan,
        });
    }

    // Flatten every unit of work into one steal queue. Scalar passes get
    // their own per-pass plans (extended-Ser passes may differ in
    // length); vacuous slices (no positions) schedule nothing.
    let mut items: Vec<WorkItem> = Vec::new();
    for (g, group) in groups.iter().enumerate() {
        for (s, slice) in group.plan.slices().iter().enumerate() {
            if slice.positions > 0 {
                items.push(WorkItem::GroupSlice { group: g, slice: s });
            }
        }
    }
    for &q in &scalar {
        if let Some(passes) = aligners[q].borrow().software_passes() {
            for (pass, engine) in passes.iter().enumerate() {
                let plan =
                    SlicePlan::build(reference.len(), engine.query_len().max(1), threads, options);
                for slice in plan.slices() {
                    if slice.positions > 0 {
                        items.push(WorkItem::ScalarSlice {
                            query: q,
                            pass,
                            start: slice.start,
                            end: slice.start + slice.positions,
                        });
                    }
                }
            }
        }
    }
    for &q in &whole {
        items.push(WorkItem::Whole { query: q });
    }

    // Telemetry handles are resolved once per batch, before any worker
    // spawns — the hot claim loop pays only atomic ops and one CPU-clock
    // read per item, never a registry lookup.
    let telemetry = fabp_telemetry::Registry::global();
    let pending_gauge = telemetry.gauge(
        "fabp_batch_queue_depth",
        "Work items not yet claimed from the shared work-stealing queue",
    );
    let imbalance_gauge = telemetry.gauge(
        "fabp_batch_queue_imbalance",
        "Busiest minus idlest per-worker busy time in the last batch, microseconds",
    );
    let occupancy_gauge = telemetry.gauge(
        "fabp_batch_lane_occupancy_pct",
        "Occupied SIMD lanes as a percentage of lane-group capacity in the last batch",
    );
    let items_ctr = telemetry.counter(
        "fabp_batch_items_claimed_total",
        "Work items (reference slices or whole queries) claimed from the batch queue",
    );
    let slice_steals_ctr = telemetry.counter(
        "fabp_batch_slice_steals_total",
        "Reference-slice work items stolen by batch workers",
    );
    let busy_hists: Vec<_> = (0..threads.min(items.len().max(1)))
        .map(|w| {
            telemetry.histogram_with(
                "fabp_batch_worker_busy_ns",
                "CPU nanoseconds each batch worker spent inside claimed work items",
                fabp_telemetry::labels(&[("worker", &w.to_string())]),
            )
        })
        .collect();

    let workers = threads.min(items.len().max(1));
    let next = AtomicUsize::new(0);
    pending_gauge.set(items.len() as i64);

    let run_item = |item: &WorkItem| -> ItemResult {
        match *item {
            WorkItem::GroupSlice { group, slice } => {
                let g = &groups[group];
                let s = g.plan.slices()[slice];
                let sub = &reference.as_slice()[s.start..s.end];
                let mut per_lane = match &g.engine {
                    GroupEngine::Single(engine) => vec![engine.search(sub, g.thresholds[0])],
                    GroupEngine::Multi(engine) => engine.search(sub, &g.thresholds),
                };
                for lane in &mut per_lane {
                    for hit in lane.iter_mut() {
                        hit.position += s.start;
                    }
                }
                ItemResult::GroupSlice { group, per_lane }
            }
            WorkItem::ScalarSlice {
                query,
                pass,
                start,
                end,
            } => {
                let aligner = aligners[query].borrow();
                let hits = match aligner.software_passes() {
                    Some(passes) => passes[pass].search_range(
                        reference.as_slice(),
                        aligner.threshold(),
                        start,
                        end,
                    ),
                    None => Vec::new(), // unreachable: items built from software passes
                };
                ItemResult::ScalarSlice { query, pass, hits }
            }
            WorkItem::Whole { query } => ItemResult::Whole {
                query,
                outcome: aligners[query].borrow().search(reference),
            },
        }
    };

    let mut per_worker: Vec<(Vec<ItemResult>, u64)> = Vec::with_capacity(workers);
    if !items.is_empty() {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let next = &next;
                    let items = &items;
                    let run_item = &run_item;
                    let pending = &pending_gauge;
                    let items_ctr = &items_ctr;
                    let slice_steals = &slice_steals_ctr;
                    let busy_hist = &busy_hists[w];
                    scope.spawn(move || {
                        let mut results: Vec<ItemResult> = Vec::new();
                        let mut busy_ns: u64 = 0;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            pending.dec();
                            items_ctr.inc();
                            if !matches!(items[i], WorkItem::Whole { .. }) {
                                slice_steals.inc();
                            }
                            let started = thread_cpu_ns();
                            results.push(run_item(&items[i]));
                            let ns = thread_cpu_ns().saturating_sub(started);
                            busy_ns += ns;
                            busy_hist.observe(ns);
                        }
                        (results, busy_ns)
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(worker_out) => per_worker.push(worker_out),
                    // Forward a worker panic instead of masking it behind a
                    // generic `expect` message.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
    }

    // Honest utilisation telemetry: busy-time spread, not claim counts.
    let busy: Vec<u64> = per_worker.iter().map(|(_, ns)| *ns).collect();
    let max_busy = busy.iter().copied().max().unwrap_or(0);
    let min_busy = busy.iter().copied().min().unwrap_or(0);
    imbalance_gauge.set(((max_busy - min_busy) / 1_000) as i64);
    let lane_occupancy_pct = if lane_capacity > 0 {
        occupied_lanes as f64 * 100.0 / lane_capacity as f64
    } else {
        0.0
    };
    occupancy_gauge.set(lane_occupancy_pct.round() as i64);

    // Reassemble per-query outcomes from the slice results.
    let mut group_acc: Vec<Vec<Vec<Vec<Hit>>>> = groups
        .iter()
        .map(|g| vec![Vec::new(); g.members.len()])
        .collect();
    let mut scalar_acc: Vec<Vec<Vec<Vec<Hit>>>> = aligners
        .iter()
        .enumerate()
        .map(|(q, a)| {
            if scalar.contains(&q) {
                vec![Vec::new(); a.borrow().passes()]
            } else {
                Vec::new()
            }
        })
        .collect();
    let mut outcomes: Vec<Option<SearchOutcome>> = Vec::new();
    outcomes.resize_with(aligners.len(), || None);

    let mut group_slices = 0usize;
    let mut scalar_slices = 0usize;
    for result in per_worker.into_iter().flat_map(|(results, _)| results) {
        match result {
            ItemResult::GroupSlice { group, per_lane } => {
                group_slices += 1;
                for (lane, hits) in per_lane.into_iter().enumerate() {
                    group_acc[group][lane].push(hits);
                }
            }
            ItemResult::ScalarSlice { query, pass, hits } => {
                scalar_slices += 1;
                scalar_acc[query][pass].push(hits);
            }
            ItemResult::Whole { query, outcome } => {
                if outcomes[query].replace(outcome).is_some() {
                    return Err(FabpError::Internal(format!(
                        "batch workers produced outcome slot {query} twice"
                    )));
                }
            }
        }
    }

    // Lane groups: slices arrive in steal order; the shard merge restores
    // position order and drops the exact boundary duplicates shorter
    // lanes re-report across slice overlaps.
    for (g, group) in groups.iter().enumerate() {
        for (lane, &q) in group.members.iter().enumerate() {
            let hits = merge_shard_hits(std::mem::take(&mut group_acc[g][lane]));
            let aligner = aligners[q].borrow();
            let outcome = SearchOutcome {
                hits,
                threshold: aligner.threshold(),
                query_len: aligner.query().len(),
                stats: None,
            };
            if outcomes[q].replace(outcome).is_some() {
                return Err(FabpError::Internal(format!(
                    "batch workers produced outcome slot {q} twice"
                )));
            }
        }
    }
    // Scalar queries: merge slices within each pass, then reduce passes
    // with the same best-score merge the serial aligner uses.
    for &q in &scalar {
        let per_pass = std::mem::take(&mut scalar_acc[q]);
        let hits = per_pass
            .into_iter()
            .map(merge_shard_hits)
            .reduce(merge_hits)
            .unwrap_or_default();
        let aligner = aligners[q].borrow();
        let outcome = SearchOutcome {
            hits,
            threshold: aligner.threshold(),
            query_len: aligner.query().len(),
            stats: None,
        };
        if outcomes[q].replace(outcome).is_some() {
            return Err(FabpError::Internal(format!(
                "batch workers produced outcome slot {q} twice"
            )));
        }
    }

    let outcomes = outcomes
        .into_iter()
        .enumerate()
        .map(|(i, o)| {
            o.ok_or_else(|| {
                FabpError::Internal(format!("batch worker left outcome slot {i} unfilled"))
            })
        })
        .collect::<FabpResult<Vec<SearchOutcome>>>()?;

    let stats = BatchRunStats {
        workers,
        items: items.len(),
        group_slices,
        scalar_slices,
        whole_queries: whole.len(),
        lane_groups: groups.len(),
        lane_occupancy_pct,
        per_worker_busy_ns: busy,
    };
    Ok((outcomes, stats))
}

/// Summary of a batch run: how many queries produced at least one hit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchSummary {
    /// Queries searched.
    pub queries: usize,
    /// Queries with ≥ 1 hit.
    pub queries_with_hits: usize,
    /// Total hits across all queries.
    pub total_hits: usize,
}

/// Summarises batch outcomes.
pub fn summarize(outcomes: &[SearchOutcome]) -> BatchSummary {
    BatchSummary {
        queries: outcomes.len(),
        queries_with_hits: outcomes.iter().filter(|o| !o.hits.is_empty()).count(),
        total_hits: outcomes.iter().map(|o| o.hits.len()).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::generate::{random_protein, PlantedDatabase, PlantedDatabaseConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Small slices so even test-sized references exercise real stealing.
    const TEST_SLICES: SliceOptions = SliceOptions {
        slices_per_worker: 2,
        min_slice_positions: 256,
    };

    #[test]
    fn batch_finds_every_planted_query() {
        let mut rng = StdRng::seed_from_u64(71);
        let db = PlantedDatabase::generate(
            &PlantedDatabaseConfig {
                reference_len: 30_000,
                num_queries: 8,
                query_len: 25,
                paper_codons_only: true,
                ..PlantedDatabaseConfig::default()
            },
            &mut rng,
        );
        let outcomes = search_all(&db.queries, &db.reference, Threshold::Fraction(1.0), 4).unwrap();
        assert_eq!(outcomes.len(), 8);
        for (region, outcome) in db.regions.iter().zip(&outcomes) {
            assert!(
                outcome.hits.iter().any(|h| h.position == region.position),
                "query {} missing its planted hit",
                region.query_index
            );
        }
        let summary = summarize(&outcomes);
        assert_eq!(summary.queries_with_hits, 8);
        assert!(summary.total_hits >= 8);
    }

    #[test]
    fn serial_and_parallel_batches_agree() {
        let mut rng = StdRng::seed_from_u64(72);
        let db = PlantedDatabase::generate(
            &PlantedDatabaseConfig {
                reference_len: 12_000,
                num_queries: 5,
                query_len: 20,
                ..PlantedDatabaseConfig::default()
            },
            &mut rng,
        );
        let serial = search_all(&db.queries, &db.reference, Threshold::Fraction(0.85), 1).unwrap();
        let parallel =
            search_all(&db.queries, &db.reference, Threshold::Fraction(0.85), 8).unwrap();
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.hits, b.hits);
        }
    }

    #[test]
    fn one_query_many_workers_is_sliced_and_exact() {
        // The shape per-query stealing could not touch: one query, eight
        // workers. The sliced scheduler must fan the reference out across
        // all workers and still match serial bit-for-bit.
        let mut rng = StdRng::seed_from_u64(76);
        let queries = [random_protein(20, &mut rng)];
        let reference = fabp_bio::generate::random_rna(50_000, &mut rng);
        let aligners: Vec<FabpAligner> = queries
            .iter()
            .map(|q| {
                FabpAligner::builder()
                    .protein_query(q)
                    .threshold(Threshold::Fraction(0.7))
                    .build()
                    .unwrap()
            })
            .collect();
        let serial = search_all_prebuilt(&aligners, &reference, 1).unwrap();
        let (sliced, stats) =
            search_all_prebuilt_with_stats(&aligners, &reference, 8, TEST_SLICES).unwrap();
        assert_eq!(serial[0].hits, sliced[0].hits);
        assert!(
            stats.items >= 8,
            "1 query × 8 workers must schedule ≥ 8 slices, got {}",
            stats.items
        );
        assert_eq!(stats.group_slices, stats.items);
        assert_eq!(stats.lane_groups, 1);
        assert_eq!(stats.workers, 8);
        assert_eq!(stats.per_worker_busy_ns.len(), 8);
    }

    #[test]
    fn lane_groups_are_packed_and_exact() {
        // 9 queries → two full LANES-wide groups plus a single-lane tail;
        // every lane must match its serial outcome.
        let mut rng = StdRng::seed_from_u64(77);
        let queries: Vec<_> = (0..9).map(|i| random_protein(8 + i, &mut rng)).collect();
        let reference = fabp_bio::generate::random_rna(20_000, &mut rng);
        let aligners: Vec<FabpAligner> = queries
            .iter()
            .map(|q| {
                FabpAligner::builder()
                    .protein_query(q)
                    .threshold(Threshold::Fraction(0.6))
                    .build()
                    .unwrap()
            })
            .collect();
        let serial = search_all_prebuilt(&aligners, &reference, 1).unwrap();
        let (sliced, stats) =
            search_all_prebuilt_with_stats(&aligners, &reference, 4, TEST_SLICES).unwrap();
        for (i, (a, b)) in serial.iter().zip(&sliced).enumerate() {
            assert_eq!(a.hits, b.hits, "query {i}");
        }
        assert_eq!(stats.lane_groups, 3);
        assert!((stats.lane_occupancy_pct - 75.0).abs() < 1e-9); // 9 of 12 lanes
    }

    #[test]
    fn extended_ser_batch_goes_scalar_sliced_and_exact() {
        use fabp_bio::backtranslate::BackTranslationMode;
        let mut rng = StdRng::seed_from_u64(78);
        let protein: fabp_bio::seq::ProteinSeq = "MSSKWVF".parse().unwrap();
        let reference = fabp_bio::generate::random_rna(15_000, &mut rng);
        let aligner = FabpAligner::builder()
            .protein_query(&protein)
            .threshold(Threshold::Fraction(0.6))
            .mode(BackTranslationMode::ExtendedSer)
            .build()
            .unwrap();
        assert_eq!(aligner.passes(), 3);
        let serial = aligner.search(&reference);
        let (sliced, stats) =
            search_all_prebuilt_with_stats(&[&aligner], &reference, 4, TEST_SLICES).unwrap();
        assert_eq!(serial.hits, sliced[0].hits);
        assert_eq!(stats.group_slices, 0, "multi-pass queries must go scalar");
        assert!(stats.scalar_slices >= 3, "one plan per pass");
    }

    #[test]
    fn mixed_backends_in_one_batch_are_exact() {
        // Software and cycle-accurate aligners in one batch: the cycle
        // query stays whole (stats intact), software queries slice.
        let mut rng = StdRng::seed_from_u64(79);
        let p1 = random_protein(10, &mut rng);
        let p2 = random_protein(12, &mut rng);
        let reference = fabp_bio::generate::random_rna(6_000, &mut rng);
        let soft = FabpAligner::builder()
            .protein_query(&p1)
            .threshold(Threshold::Fraction(0.6))
            .build()
            .unwrap();
        let cycle = FabpAligner::builder()
            .protein_query(&p2)
            .threshold(Threshold::Fraction(0.6))
            .engine(Engine::CycleAccurate(Box::new(
                fabp_fpga::engine::EngineConfig::kintex7(0),
            )))
            .build()
            .unwrap();
        let serial_soft = soft.search(&reference);
        let serial_cycle = cycle.search(&reference);
        let (batch, stats) =
            search_all_prebuilt_with_stats(&[&soft, &cycle], &reference, 4, TEST_SLICES).unwrap();
        assert_eq!(batch[0].hits, serial_soft.hits);
        assert_eq!(batch[1].hits, serial_cycle.hits);
        assert!(batch[1].stats.is_some(), "cycle stats must survive");
        assert_eq!(stats.whole_queries, 1);
        assert!(stats.group_slices >= 1);
    }

    #[test]
    fn more_threads_than_queries_loses_nothing() {
        // threads > queries: the surplus workers now eat reference slices
        // instead of idling, and every query appears exactly once, in
        // input order.
        let mut rng = StdRng::seed_from_u64(73);
        let db = PlantedDatabase::generate(
            &PlantedDatabaseConfig {
                reference_len: 8_000,
                num_queries: 3,
                query_len: 15,
                ..PlantedDatabaseConfig::default()
            },
            &mut rng,
        );
        let serial = search_all(&db.queries, &db.reference, Threshold::Fraction(0.8), 1).unwrap();
        let wide = search_all(&db.queries, &db.reference, Threshold::Fraction(0.8), 16).unwrap();
        assert_eq!(wide.len(), db.queries.len());
        for (a, b) in serial.iter().zip(&wide) {
            assert_eq!(a.hits, b.hits);
        }
    }

    #[test]
    fn adversarial_cost_skew_is_exact() {
        // One query is ~20× more expensive than the rest (long query over
        // the same reference); under static chunking the worker that drew
        // it would also own a chunk of cheap queries. Slice stealing must
        // still return every outcome, input-ordered, identical to serial.
        let mut rng = StdRng::seed_from_u64(74);
        let mut queries = vec![random_protein(120, &mut rng)];
        for _ in 0..11 {
            queries.push(random_protein(6, &mut rng));
        }
        let reference = fabp_bio::generate::random_rna(40_000, &mut rng);
        let serial = search_all(&queries, &reference, Threshold::Fraction(0.6), 1).unwrap();
        let parallel = search_all(&queries, &reference, Threshold::Fraction(0.6), 4).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(a.hits, b.hits, "query {i}");
        }
    }

    #[test]
    fn honest_telemetry_is_exported_under_slice_stealing() {
        let mut rng = StdRng::seed_from_u64(75);
        let db = PlantedDatabase::generate(
            &PlantedDatabaseConfig {
                reference_len: 6_000,
                num_queries: 6,
                query_len: 12,
                ..PlantedDatabaseConfig::default()
            },
            &mut rng,
        );
        search_all(&db.queries, &db.reference, Threshold::Fraction(0.9), 3).unwrap();
        let snapshot = fabp_telemetry::Registry::global().snapshot();
        let text = snapshot.to_prometheus();
        assert!(text.contains("fabp_batch_queue_depth"));
        assert!(text.contains("fabp_batch_queue_imbalance"));
        assert!(text.contains("fabp_batch_lane_occupancy_pct"));
        assert!(text.contains("fabp_batch_items_claimed_total"));
        assert!(text.contains("fabp_batch_slice_steals_total"));
        // The satellite fix: busy-time histograms, not claim-count gauges.
        assert!(text.contains("fabp_batch_worker_busy_ns"));
        assert!(!text.contains("fabp_batch_worker_queue_depth"));
    }

    #[test]
    fn empty_batch_is_ok() {
        let reference: RnaSeq = "ACGU".parse().unwrap();
        let outcomes = search_all(&[], &reference, Threshold::Absolute(0), 4).unwrap();
        assert!(outcomes.is_empty());
        assert_eq!(summarize(&outcomes).queries, 0);
    }

    #[test]
    fn empty_reference_yields_empty_outcomes() {
        let mut rng = StdRng::seed_from_u64(80);
        let queries = vec![random_protein(5, &mut rng), random_protein(7, &mut rng)];
        let reference = RnaSeq::new();
        let outcomes = search_all(&queries, &reference, Threshold::Absolute(1), 4).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| o.hits.is_empty()));
    }

    #[test]
    fn empty_query_in_batch_errors() {
        let reference: RnaSeq = "ACGU".parse().unwrap();
        let queries = vec![ProteinSeq::new()];
        assert!(search_all(&queries, &reference, Threshold::Absolute(0), 1).is_err());
    }
}
