//! Multi-query batch search.
//!
//! The paper evaluates 10 000 queries against one resident database
//! (§IV-A). On hardware, queries are searched one after another (the query
//! lives in flip-flops; reloading it is microseconds against a
//! multi-millisecond scan); in software we additionally parallelise across
//! queries.
//!
//! Scheduling is **work-stealing** (an atomic claim index over the shared
//! query queue) rather than static ceil-division chunking: a worker that
//! draws cheap queries immediately steals the next unclaimed one, so one
//! expensive query can no longer serialise the tail of the batch. The
//! queue-depth and imbalance gauges are kept honest under stealing: depth
//! now reports *unclaimed* work, and imbalance is measured from the
//! per-worker claim counts the run actually produced.

use crate::aligner::{Engine, FabpAligner, SearchOutcome, Threshold};
use fabp_bio::seq::{ProteinSeq, RnaSeq};
use fabp_resilience::{FabpError, FabpResult};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Searches every query against the reference, returning one outcome per
/// query (input order preserved).
///
/// `threads` parallelises across queries (each query's scan is serial, so
/// total CPU use stays bounded). Workers claim queries from a shared
/// atomic index — no query is lost or duplicated regardless of per-query
/// cost skew or `threads > queries`.
///
/// # Errors
///
/// Returns the first build failure encountered, mapped into the workspace
/// [`FabpError`] taxonomy (e.g. [`FabpError::EmptyQuery`]).
pub fn search_all(
    queries: &[ProteinSeq],
    reference: &RnaSeq,
    threshold: Threshold,
    threads: usize,
) -> FabpResult<Vec<SearchOutcome>> {
    // Build all aligners up front so errors surface before work starts.
    let aligners = queries
        .iter()
        .map(|q| {
            FabpAligner::builder()
                .protein_query(q)
                .threshold(threshold)
                .engine(Engine::Software { threads: 1 })
                .build()
                .map_err(FabpError::from)
        })
        .collect::<FabpResult<Vec<_>>>()?;
    search_all_prebuilt(&aligners, reference, threads)
}

/// [`search_all`] over aligners the caller already built (and possibly
/// cached) — the serving layer's dispatch path, where the encode and
/// table-build cost of a repeated query is paid once and reused across
/// micro-batches. Outcomes are returned in `aligners` order.
///
/// `A` is anything that borrows a [`FabpAligner`], so `&[FabpAligner]`
/// and `&[Arc<FabpAligner>]` both work.
///
/// # Errors
///
/// [`FabpError::Internal`] only on a scheduler invariant violation (a
/// result slot filled twice or left unfilled).
pub fn search_all_prebuilt<A: std::borrow::Borrow<FabpAligner> + Sync>(
    aligners: &[A],
    reference: &RnaSeq,
    threads: usize,
) -> FabpResult<Vec<SearchOutcome>> {
    let threads = threads.max(1).min(aligners.len().max(1));
    if threads <= 1 {
        return Ok(aligners
            .iter()
            .map(|a| a.borrow().search(reference))
            .collect());
    }

    // Telemetry handles are resolved once per batch, before any worker
    // spawns — the hot claim loop pays only atomic ops, never a registry
    // lookup.
    let telemetry = fabp_telemetry::Registry::global();
    let pending_gauge = telemetry.gauge(
        "fabp_batch_queue_depth",
        "Queries not yet claimed from the shared work-stealing queue",
    );
    let imbalance_gauge = telemetry.gauge(
        "fabp_batch_queue_imbalance",
        "Largest minus smallest per-worker query count in the last batch",
    );
    let worker_depth_gauges: Vec<_> = (0..threads)
        .map(|w| {
            telemetry.gauge_with(
                "fabp_batch_worker_queue_depth",
                "Queries claimed but not yet finished per batch worker",
                fabp_telemetry::labels(&[("worker", &w.to_string())]),
            )
        })
        .collect();
    let steals_ctr = telemetry.counter(
        "fabp_batch_queries_claimed_total",
        "Queries claimed from the shared batch queue",
    );

    let next = AtomicUsize::new(0);
    pending_gauge.set(aligners.len() as i64);

    let mut per_worker: Vec<Vec<(usize, SearchOutcome)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let next = &next;
                let aligners = &aligners;
                let depth = &worker_depth_gauges[w];
                let pending = &pending_gauge;
                let steals = &steals_ctr;
                scope.spawn(move || {
                    let mut claimed: Vec<(usize, SearchOutcome)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= aligners.len() {
                            break;
                        }
                        pending.dec();
                        steals.inc();
                        depth.set(1);
                        claimed.push((i, aligners[i].borrow().search(reference)));
                        depth.set(0);
                    }
                    claimed
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(claimed) => per_worker.push(claimed),
                // Forward a worker panic instead of masking it behind a
                // generic `expect` message.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    // Imbalance as actually realised by stealing (typically 0 or 1 when
    // costs are uniform; larger only when one query dominated a worker).
    let max_claims = per_worker.iter().map(Vec::len).max().unwrap_or(0);
    let min_claims = per_worker.iter().map(Vec::len).min().unwrap_or(0);
    imbalance_gauge.set((max_claims - min_claims) as i64);

    let mut outcomes: Vec<Option<SearchOutcome>> = Vec::new();
    outcomes.resize_with(aligners.len(), || None);
    for (i, outcome) in per_worker.into_iter().flatten() {
        if outcomes[i].replace(outcome).is_some() {
            return Err(FabpError::Internal(format!(
                "batch workers produced outcome slot {i} twice"
            )));
        }
    }
    outcomes
        .into_iter()
        .enumerate()
        .map(|(i, o)| {
            o.ok_or_else(|| {
                FabpError::Internal(format!("batch worker left outcome slot {i} unfilled"))
            })
        })
        .collect()
}

/// Summary of a batch run: how many queries produced at least one hit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchSummary {
    /// Queries searched.
    pub queries: usize,
    /// Queries with ≥ 1 hit.
    pub queries_with_hits: usize,
    /// Total hits across all queries.
    pub total_hits: usize,
}

/// Summarises batch outcomes.
pub fn summarize(outcomes: &[SearchOutcome]) -> BatchSummary {
    BatchSummary {
        queries: outcomes.len(),
        queries_with_hits: outcomes.iter().filter(|o| !o.hits.is_empty()).count(),
        total_hits: outcomes.iter().map(|o| o.hits.len()).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::generate::{random_protein, PlantedDatabase, PlantedDatabaseConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn batch_finds_every_planted_query() {
        let mut rng = StdRng::seed_from_u64(71);
        let db = PlantedDatabase::generate(
            &PlantedDatabaseConfig {
                reference_len: 30_000,
                num_queries: 8,
                query_len: 25,
                paper_codons_only: true,
                ..PlantedDatabaseConfig::default()
            },
            &mut rng,
        );
        let outcomes = search_all(&db.queries, &db.reference, Threshold::Fraction(1.0), 4).unwrap();
        assert_eq!(outcomes.len(), 8);
        for (region, outcome) in db.regions.iter().zip(&outcomes) {
            assert!(
                outcome.hits.iter().any(|h| h.position == region.position),
                "query {} missing its planted hit",
                region.query_index
            );
        }
        let summary = summarize(&outcomes);
        assert_eq!(summary.queries_with_hits, 8);
        assert!(summary.total_hits >= 8);
    }

    #[test]
    fn serial_and_parallel_batches_agree() {
        let mut rng = StdRng::seed_from_u64(72);
        let db = PlantedDatabase::generate(
            &PlantedDatabaseConfig {
                reference_len: 12_000,
                num_queries: 5,
                query_len: 20,
                ..PlantedDatabaseConfig::default()
            },
            &mut rng,
        );
        let serial = search_all(&db.queries, &db.reference, Threshold::Fraction(0.85), 1).unwrap();
        let parallel =
            search_all(&db.queries, &db.reference, Threshold::Fraction(0.85), 8).unwrap();
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.hits, b.hits);
        }
    }

    #[test]
    fn more_threads_than_queries_loses_nothing() {
        // threads > queries: the overshooting workers must claim nothing
        // and every query must appear exactly once, in input order.
        let mut rng = StdRng::seed_from_u64(73);
        let db = PlantedDatabase::generate(
            &PlantedDatabaseConfig {
                reference_len: 8_000,
                num_queries: 3,
                query_len: 15,
                ..PlantedDatabaseConfig::default()
            },
            &mut rng,
        );
        let serial = search_all(&db.queries, &db.reference, Threshold::Fraction(0.8), 1).unwrap();
        let wide = search_all(&db.queries, &db.reference, Threshold::Fraction(0.8), 16).unwrap();
        assert_eq!(wide.len(), db.queries.len());
        for (a, b) in serial.iter().zip(&wide) {
            assert_eq!(a.hits, b.hits);
        }
    }

    #[test]
    fn adversarial_cost_skew_is_exact() {
        // One query is ~20× more expensive than the rest (long query over
        // the same reference); under static chunking the worker that drew
        // it would also own a chunk of cheap queries. Work-stealing must
        // still return every outcome, input-ordered, identical to serial.
        let mut rng = StdRng::seed_from_u64(74);
        let mut queries = vec![random_protein(120, &mut rng)];
        for _ in 0..11 {
            queries.push(random_protein(6, &mut rng));
        }
        let reference = fabp_bio::generate::random_rna(40_000, &mut rng);
        let serial = search_all(&queries, &reference, Threshold::Fraction(0.6), 1).unwrap();
        let parallel = search_all(&queries, &reference, Threshold::Fraction(0.6), 4).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(a.hits, b.hits, "query {i}");
        }
    }

    #[test]
    fn queue_gauges_are_exported_under_stealing() {
        let mut rng = StdRng::seed_from_u64(75);
        let db = PlantedDatabase::generate(
            &PlantedDatabaseConfig {
                reference_len: 6_000,
                num_queries: 6,
                query_len: 12,
                ..PlantedDatabaseConfig::default()
            },
            &mut rng,
        );
        search_all(&db.queries, &db.reference, Threshold::Fraction(0.9), 3).unwrap();
        let snapshot = fabp_telemetry::Registry::global().snapshot();
        let text = snapshot.to_prometheus();
        assert!(text.contains("fabp_batch_queue_imbalance"));
        assert!(text.contains("fabp_batch_worker_queue_depth"));
        assert!(text.contains("fabp_batch_queue_depth"));
        assert!(text.contains("fabp_batch_queries_claimed_total"));
    }

    #[test]
    fn empty_batch_is_ok() {
        let reference: RnaSeq = "ACGU".parse().unwrap();
        let outcomes = search_all(&[], &reference, Threshold::Absolute(0), 4).unwrap();
        assert!(outcomes.is_empty());
        assert_eq!(summarize(&outcomes).queries, 0);
    }

    #[test]
    fn empty_query_in_batch_errors() {
        let reference: RnaSeq = "ACGU".parse().unwrap();
        let queries = vec![ProteinSeq::new()];
        assert!(search_all(&queries, &reference, Threshold::Absolute(0), 1).is_err());
    }
}
