//! Multi-query batch search.
//!
//! The paper evaluates 10 000 queries against one resident database
//! (§IV-A). On hardware, queries are searched one after another (the query
//! lives in flip-flops; reloading it is microseconds against a
//! multi-millisecond scan); in software we additionally parallelise across
//! queries.

use crate::aligner::{Engine, FabpAligner, SearchOutcome, Threshold};
use fabp_bio::seq::{ProteinSeq, RnaSeq};
use fabp_resilience::{FabpError, FabpResult};

/// Searches every query against the reference, returning one outcome per
/// query (input order preserved).
///
/// `threads` parallelises across queries (each query's scan is serial, so
/// total CPU use stays bounded).
///
/// # Errors
///
/// Returns the first build failure encountered, mapped into the workspace
/// [`FabpError`] taxonomy (e.g. [`FabpError::EmptyQuery`]).
pub fn search_all(
    queries: &[ProteinSeq],
    reference: &RnaSeq,
    threshold: Threshold,
    threads: usize,
) -> FabpResult<Vec<SearchOutcome>> {
    // Build all aligners up front so errors surface before work starts.
    let aligners = queries
        .iter()
        .map(|q| {
            FabpAligner::builder()
                .protein_query(q)
                .threshold(threshold)
                .engine(Engine::Software { threads: 1 })
                .build()
                .map_err(FabpError::from)
        })
        .collect::<FabpResult<Vec<_>>>()?;

    let threads = threads.max(1).min(aligners.len().max(1));
    if threads <= 1 {
        return Ok(aligners.iter().map(|a| a.search(reference)).collect());
    }

    let telemetry = fabp_telemetry::Registry::global();
    let chunk = aligners.len().div_ceil(threads);
    // Worker imbalance: with ceil-division chunking the last worker may
    // run short — export the spread so batch tuning is observable.
    let last_chunk = aligners.len() - chunk * ((aligners.len() - 1) / chunk);
    telemetry
        .gauge(
            "fabp_batch_queue_imbalance",
            "Largest minus smallest per-worker query count in the last batch",
        )
        .set((chunk - last_chunk) as i64);

    let mut outcomes: Vec<Option<SearchOutcome>> = Vec::new();
    outcomes.resize_with(aligners.len(), || None);
    std::thread::scope(|scope| {
        let mut rest = outcomes.as_mut_slice();
        let mut offset = 0usize;
        let mut worker = 0usize;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let aligners = &aligners;
            let start = offset;
            let depth = telemetry.gauge_with(
                "fabp_batch_worker_queue_depth",
                "Queries still pending per batch worker",
                fabp_telemetry::labels(&[("worker", &worker.to_string())]),
            );
            depth.set(take as i64);
            scope.spawn(move || {
                for (i, slot) in head.iter_mut().enumerate() {
                    *slot = Some(aligners[start + i].search(reference));
                    depth.dec();
                }
            });
            offset += take;
            worker += 1;
        }
    });

    outcomes
        .into_iter()
        .enumerate()
        .map(|(i, o)| {
            o.ok_or_else(|| {
                FabpError::Internal(format!("batch worker left outcome slot {i} unfilled"))
            })
        })
        .collect()
}

/// Summary of a batch run: how many queries produced at least one hit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchSummary {
    /// Queries searched.
    pub queries: usize,
    /// Queries with ≥ 1 hit.
    pub queries_with_hits: usize,
    /// Total hits across all queries.
    pub total_hits: usize,
}

/// Summarises batch outcomes.
pub fn summarize(outcomes: &[SearchOutcome]) -> BatchSummary {
    BatchSummary {
        queries: outcomes.len(),
        queries_with_hits: outcomes.iter().filter(|o| !o.hits.is_empty()).count(),
        total_hits: outcomes.iter().map(|o| o.hits.len()).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::generate::{PlantedDatabase, PlantedDatabaseConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn batch_finds_every_planted_query() {
        let mut rng = StdRng::seed_from_u64(71);
        let db = PlantedDatabase::generate(
            &PlantedDatabaseConfig {
                reference_len: 30_000,
                num_queries: 8,
                query_len: 25,
                paper_codons_only: true,
                ..PlantedDatabaseConfig::default()
            },
            &mut rng,
        );
        let outcomes = search_all(&db.queries, &db.reference, Threshold::Fraction(1.0), 4).unwrap();
        assert_eq!(outcomes.len(), 8);
        for (region, outcome) in db.regions.iter().zip(&outcomes) {
            assert!(
                outcome.hits.iter().any(|h| h.position == region.position),
                "query {} missing its planted hit",
                region.query_index
            );
        }
        let summary = summarize(&outcomes);
        assert_eq!(summary.queries_with_hits, 8);
        assert!(summary.total_hits >= 8);
    }

    #[test]
    fn serial_and_parallel_batches_agree() {
        let mut rng = StdRng::seed_from_u64(72);
        let db = PlantedDatabase::generate(
            &PlantedDatabaseConfig {
                reference_len: 12_000,
                num_queries: 5,
                query_len: 20,
                ..PlantedDatabaseConfig::default()
            },
            &mut rng,
        );
        let serial = search_all(&db.queries, &db.reference, Threshold::Fraction(0.85), 1).unwrap();
        let parallel =
            search_all(&db.queries, &db.reference, Threshold::Fraction(0.85), 8).unwrap();
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.hits, b.hits);
        }
    }

    #[test]
    fn empty_batch_is_ok() {
        let reference: RnaSeq = "ACGU".parse().unwrap();
        let outcomes = search_all(&[], &reference, Threshold::Absolute(0), 4).unwrap();
        assert!(outcomes.is_empty());
        assert_eq!(summarize(&outcomes).queries, 0);
    }

    #[test]
    fn empty_query_in_batch_errors() {
        let reference: RnaSeq = "ACGU".parse().unwrap();
        let queries = vec![ProteinSeq::new()];
        assert!(search_all(&queries, &reference, Threshold::Absolute(0), 1).is_err());
    }
}
