//! Multi-FPGA scale-out model.
//!
//! The paper motivates FabP with cloud deployment: "Recent popularity of
//! FPGAs as accelerators has led to widely deployment of FPGAs in data
//! centers" (§I). This module models the natural scale-out: shard the
//! reference database across `N` boards with resident shards, broadcast
//! each query, and merge hits — the query-throughput configuration a
//! sequencing centre would run.

use crate::hits::Hit;
use fabp_bio::seq::{PackedSeq, RnaSeq};
use fabp_encoding::encoder::EncodedQuery;
use fabp_fpga::engine::{EngineConfig, FabpEngine};
use fabp_fpga::resources::PlanError;

/// Splits `total_bases` into `nodes` contiguous shards, sizes differing by
/// at most one base.
///
/// # Panics
///
/// Panics if `nodes == 0`.
pub fn shard_database(total_bases: u64, nodes: usize) -> Vec<u64> {
    assert!(nodes > 0, "a cluster needs at least one node");
    let base = total_bases / nodes as u64;
    let extra = (total_bases % nodes as u64) as usize;
    (0..nodes).map(|i| base + u64::from(i < extra)).collect()
}

/// A modelled FPGA cluster with one engine per node.
#[derive(Debug)]
pub struct FpgaCluster {
    engines: Vec<FabpEngine>,
    shard_bases: Vec<u64>,
}

/// Timing summary of one broadcast query on the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterTiming {
    /// Slowest node's kernel time — the query latency, seconds.
    pub latency_seconds: f64,
    /// Aggregate queries/second with perfect query pipelining.
    pub queries_per_second: f64,
    /// Total board energy per query, joules (per-board power from the
    /// activity model).
    pub joules_per_query: f64,
}

impl FpgaCluster {
    /// Builds a homogeneous cluster: `nodes` boards with `config`, the
    /// database of `total_bases` nucleotides sharded evenly.
    ///
    /// # Errors
    ///
    /// Propagates planning failure (query too large for the device).
    pub fn homogeneous(
        query: &EncodedQuery,
        config: &EngineConfig,
        nodes: usize,
        total_bases: u64,
    ) -> Result<FpgaCluster, PlanError> {
        let shard_bases = shard_database(total_bases, nodes);
        let engines = (0..nodes)
            .map(|_| FabpEngine::new(query.clone(), config.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        let telemetry = fabp_telemetry::Registry::global();
        telemetry
            .gauge("fabp_cluster_nodes", "Boards in the modelled cluster")
            .set(nodes as i64);
        let max = shard_bases.iter().copied().max().unwrap_or(0);
        let min = shard_bases.iter().copied().min().unwrap_or(0);
        telemetry
            .gauge(
                "fabp_cluster_shard_imbalance_bases",
                "Largest minus smallest shard, bases",
            )
            .set((max - min) as i64);
        for (node, &bases) in shard_bases.iter().enumerate() {
            telemetry
                .gauge_with(
                    "fabp_cluster_shard_bases",
                    "Resident shard size per node, bases",
                    fabp_telemetry::labels(&[("node", &node.to_string())]),
                )
                .set(bases as i64);
        }
        Ok(FpgaCluster {
            engines,
            shard_bases,
        })
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.engines.len()
    }

    /// Modelled timing of one broadcast query.
    pub fn timing(&self) -> ClusterTiming {
        let power_model = fabp_fpga::power_model::PowerModel::default();
        let mut latency: f64 = 0.0;
        let mut joules = 0.0;
        for (engine, &bases) in self.engines.iter().zip(&self.shard_bases) {
            let t = engine.model_kernel_seconds(bases.div_ceil(4));
            latency = latency.max(t);
            let watts = power_model
                .power(engine.plan().resources, engine.config().device.clock_hz)
                .total();
            joules += watts * t;
        }
        ClusterTiming {
            latency_seconds: latency,
            queries_per_second: if latency > 0.0 { 1.0 / latency } else { 0.0 },
            joules_per_query: joules,
        }
    }

    /// Executes one query for real against in-memory shard data,
    /// merging hits into global coordinates. `shards` must align with the
    /// cluster's shard sizes and carry `query_len - 1` bases of overlap
    /// handled by the caller via [`shard_with_overlap`].
    pub fn search(&self, shards: &[RnaSeq], shard_offsets: &[usize]) -> Vec<Hit> {
        assert_eq!(shards.len(), self.engines.len(), "shard count mismatch");
        assert_eq!(shards.len(), shard_offsets.len());
        let mut hits = Vec::new();
        for ((engine, shard), &offset) in self.engines.iter().zip(shards).zip(shard_offsets) {
            let run = engine.run(&PackedSeq::from_rna(shard));
            hits.extend(run.hits.into_iter().map(|h| Hit {
                position: h.position + offset,
                score: h.score,
            }));
        }
        hits.sort_by_key(|h| h.position);
        hits.dedup();
        hits
    }
}

/// Splits a concrete reference into `nodes` shards with `overlap` bases of
/// trailing context copied onto each shard (so windows straddling shard
/// boundaries are evaluated by exactly one... at least one node). Returns
/// `(shards, global offsets)`.
pub fn shard_with_overlap(
    reference: &RnaSeq,
    nodes: usize,
    overlap: usize,
) -> (Vec<RnaSeq>, Vec<usize>) {
    let sizes = shard_database(reference.len() as u64, nodes);
    let mut shards = Vec::with_capacity(nodes);
    let mut offsets = Vec::with_capacity(nodes);
    let mut start = 0usize;
    for size in sizes {
        let end = ((start + size as usize) + overlap).min(reference.len());
        shards.push(reference.as_slice()[start..end].iter().copied().collect());
        offsets.push(start);
        start += size as usize;
    }
    (shards, offsets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::generate::{coding_rna_for_paper_patterns, random_protein, random_rna};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sharding_is_even_and_complete() {
        let shards = shard_database(1_000_000_007, 8);
        assert_eq!(shards.len(), 8);
        assert_eq!(shards.iter().sum::<u64>(), 1_000_000_007);
        let min = shards.iter().min().unwrap();
        let max = shards.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn throughput_scales_with_nodes() {
        let protein = random_protein(50, &mut StdRng::seed_from_u64(1));
        let query = EncodedQuery::from_protein(&protein);
        let config = EngineConfig::kintex7(140);
        let single = FpgaCluster::homogeneous(&query, &config, 1, 1_000_000_000).unwrap();
        let quad = FpgaCluster::homogeneous(&query, &config, 4, 1_000_000_000).unwrap();
        let t1 = single.timing();
        let t4 = quad.timing();
        let scaling = t4.queries_per_second / t1.queries_per_second;
        assert!(
            (3.2..=4.0).contains(&scaling),
            "4-node scaling {scaling:.2} (warm-up overhead bounds it below 4)"
        );
        // Energy per query stays in the same ballpark (same total work).
        let ratio = t4.joules_per_query / t1.joules_per_query;
        assert!((0.8..=1.6).contains(&ratio), "energy ratio {ratio:.2}");
    }

    #[test]
    fn cluster_search_finds_hits_across_shard_boundaries() {
        let mut rng = StdRng::seed_from_u64(2);
        let protein = random_protein(10, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let qlen = query.len();
        let coding = coding_rna_for_paper_patterns(&protein, &mut rng);

        // Reference of 4 shards of 500; plant one copy straddling the
        // boundary at 1000 and one mid-shard.
        let mut bases = random_rna(2_000, &mut rng).into_inner();
        bases.splice(985..985 + coding.len(), coding.iter().copied());
        bases.splice(300..300 + coding.len(), coding.iter().copied());
        let reference = RnaSeq::from(bases);

        let cluster = FpgaCluster::homogeneous(
            &query,
            &EngineConfig::kintex7(qlen as u32),
            4,
            reference.len() as u64,
        )
        .unwrap();
        let (shards, offsets) = shard_with_overlap(&reference, 4, qlen - 1);
        let hits = cluster.search(&shards, &offsets);
        assert!(hits.iter().any(|h| h.position == 300), "{hits:?}");
        assert!(
            hits.iter().any(|h| h.position == 985),
            "straddling hit: {hits:?}"
        );

        // Cross-check against a single-engine scan of the whole reference.
        let single = FabpEngine::new(query, EngineConfig::kintex7(qlen as u32)).unwrap();
        let expected = single.run(&PackedSeq::from_rna(&reference)).hits;
        assert_eq!(hits, expected);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = shard_database(100, 0);
    }
}
