//! Multi-FPGA scale-out model.
//!
//! The paper motivates FabP with cloud deployment: "Recent popularity of
//! FPGAs as accelerators has led to widely deployment of FPGAs in data
//! centers" (§I). This module models the natural scale-out: shard the
//! reference database across `N` boards with resident shards, broadcast
//! each query, and merge hits — the query-throughput configuration a
//! sequencing centre would run.

use crate::hits::{merge_overlapping_unsorted, merge_shard_hits, Hit, HitRegion};
use fabp_bio::seq::{PackedSeq, RnaSeq};
use fabp_encoding::encoder::EncodedQuery;
use fabp_fpga::engine::{EngineConfig, FabpEngine};
use fabp_resilience::telemetry as rtel;
use fabp_resilience::{
    FabpError, FabpResult, FaultSchedule, ResilienceLevel, ResilienceReport, ResilientRunner,
};
use fabp_telemetry::{
    FlightRecorder, TraceContext, TraceEvent, FLAG_ERROR, FLAG_RECOVERED, FLAG_RETRY,
};

/// Display-track base for per-shard scatter spans in Chrome-trace dumps:
/// node `n`'s span renders on track `SHARD_TRACK_BASE + n`, so parallel
/// shards do not stack on the request track (track 0).
pub const SHARD_TRACK_BASE: u32 = 10;

/// Splits `total_bases` into `nodes` contiguous shards, sizes differing by
/// at most one base.
///
/// # Errors
///
/// Returns [`FabpError::InvalidShardPlan`] if `nodes == 0`.
pub fn try_shard_database(total_bases: u64, nodes: usize) -> FabpResult<Vec<u64>> {
    if nodes == 0 {
        return Err(FabpError::InvalidShardPlan(
            "a cluster needs at least one node".into(),
        ));
    }
    let base = total_bases / nodes as u64;
    let extra = (total_bases % nodes as u64) as usize;
    Ok((0..nodes).map(|i| base + u64::from(i < extra)).collect())
}

/// Splits `total_bases` into `nodes` contiguous shards, sizes differing by
/// at most one base.
///
/// # Panics
///
/// Panics if `nodes == 0`; use [`try_shard_database`] for a typed error.
pub fn shard_database(total_bases: u64, nodes: usize) -> Vec<u64> {
    match try_shard_database(total_bases, nodes) {
        Ok(shards) => shards,
        Err(e) => panic!("a cluster needs at least one node: {e}"),
    }
}

/// A modelled FPGA cluster with one engine per node.
#[derive(Debug)]
pub struct FpgaCluster {
    engines: Vec<FabpEngine>,
    shard_bases: Vec<u64>,
}

/// Timing summary of one broadcast query on the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterTiming {
    /// Slowest node's kernel time — the query latency, seconds.
    pub latency_seconds: f64,
    /// Aggregate queries/second with perfect query pipelining.
    pub queries_per_second: f64,
    /// Total board energy per query, joules (per-board power from the
    /// activity model).
    pub joules_per_query: f64,
}

impl FpgaCluster {
    /// Builds a homogeneous cluster: `nodes` boards with `config`, the
    /// database of `total_bases` nucleotides sharded evenly.
    ///
    /// # Errors
    ///
    /// [`FabpError::InvalidShardPlan`] for a zero-node cluster,
    /// [`FabpError::EmptyQuery`] for an empty query, and
    /// [`FabpError::Plan`] when the query cannot fit the device.
    pub fn homogeneous(
        query: &EncodedQuery,
        config: &EngineConfig,
        nodes: usize,
        total_bases: u64,
    ) -> FabpResult<FpgaCluster> {
        if query.is_empty() {
            return Err(FabpError::EmptyQuery);
        }
        let shard_bases = try_shard_database(total_bases, nodes)?;
        let engines = (0..nodes)
            .map(|_| FabpEngine::new(query.clone(), config.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        let telemetry = fabp_telemetry::Registry::global();
        telemetry
            .gauge("fabp_cluster_nodes", "Boards in the modelled cluster")
            .set(nodes as i64);
        let max = shard_bases.iter().copied().max().unwrap_or(0);
        let min = shard_bases.iter().copied().min().unwrap_or(0);
        telemetry
            .gauge(
                "fabp_cluster_shard_imbalance_bases",
                "Largest minus smallest shard, bases",
            )
            .set((max - min) as i64);
        for (node, &bases) in shard_bases.iter().enumerate() {
            telemetry
                .gauge_with(
                    "fabp_cluster_shard_bases",
                    "Resident shard size per node, bases",
                    fabp_telemetry::labels(&[("node", &node.to_string())]),
                )
                .set(bases as i64);
        }
        Ok(FpgaCluster {
            engines,
            shard_bases,
        })
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.engines.len()
    }

    /// Modelled timing of one broadcast query.
    pub fn timing(&self) -> ClusterTiming {
        let power_model = fabp_fpga::power_model::PowerModel::default();
        let mut latency: f64 = 0.0;
        let mut joules = 0.0;
        for (engine, &bases) in self.engines.iter().zip(&self.shard_bases) {
            let t = engine.model_kernel_seconds(bases.div_ceil(4));
            latency = latency.max(t);
            let watts = power_model
                .power(engine.plan().resources, engine.config().device.clock_hz)
                .total();
            joules += watts * t;
        }
        ClusterTiming {
            latency_seconds: latency,
            queries_per_second: if latency > 0.0 { 1.0 / latency } else { 0.0 },
            joules_per_query: joules,
        }
    }

    /// Executes one query for real against in-memory shard data,
    /// merging hits into global coordinates. `shards` must align with the
    /// cluster's shard sizes and carry `query_len - 1` bases of overlap
    /// handled by the caller via [`shard_with_overlap`].
    ///
    /// # Errors
    ///
    /// [`FabpError::InvalidShardPlan`] when the shard or offset counts do
    /// not match the cluster's node count.
    pub fn search(&self, shards: &[RnaSeq], shard_offsets: &[usize]) -> FabpResult<Vec<Hit>> {
        let packed: Vec<PackedSeq> = shards.iter().map(PackedSeq::from_rna).collect();
        self.search_packed(&packed, shard_offsets)
    }

    /// [`FpgaCluster::search`] over pre-packed shards — the engine's
    /// native input. Serving layers that keep packed shards resident
    /// (e.g. `fabp-serve`'s reference cache) use this entry point to
    /// skip the per-query repack of the whole database.
    ///
    /// # Errors
    ///
    /// [`FabpError::InvalidShardPlan`] when the shard or offset counts do
    /// not match the cluster's node count.
    pub fn search_packed(
        &self,
        shards: &[PackedSeq],
        shard_offsets: &[usize],
    ) -> FabpResult<Vec<Hit>> {
        self.search_packed_traced(
            shards,
            shard_offsets,
            fabp_telemetry::Registry::global(),
            &FlightRecorder::disabled(),
            TraceContext::none(),
            0.0,
        )
    }

    /// [`FpgaCluster::search_packed`] with request-scoped tracing: the
    /// scatter records one `shard` child span of `trace` per node (on
    /// display track `SHARD_TRACK_BASE + node`, duration from the
    /// modelled kernel time so traces stay deterministic) with an
    /// `fpga_kernel` work span beneath each. A disabled context or
    /// recorder reduces every record to one branch.
    ///
    /// # Errors
    ///
    /// As [`FpgaCluster::search_packed`].
    pub fn search_packed_traced(
        &self,
        shards: &[PackedSeq],
        shard_offsets: &[usize],
        registry: &fabp_telemetry::Registry,
        flight: &FlightRecorder,
        trace: TraceContext,
        start_us: f64,
    ) -> FabpResult<Vec<Hit>> {
        if shards.len() != self.engines.len() || shards.len() != shard_offsets.len() {
            return Err(FabpError::InvalidShardPlan(format!(
                "{} shard(s) / {} offset(s) for a {}-node cluster",
                shards.len(),
                shard_offsets.len(),
                self.engines.len()
            )));
        }
        let mut per_shard = Vec::with_capacity(shards.len());
        for (node, (shard, &offset)) in shards.iter().zip(shard_offsets).enumerate() {
            let shard_ctx = trace.child(node as u64);
            flight.record(
                TraceEvent::new(
                    shard_ctx,
                    "shard",
                    start_us,
                    self.shard_dur_us(node, shard.len() as u64),
                )
                .with_arg(node as u64)
                .with_track(SHARD_TRACK_BASE + node as u32),
            );
            let hits = self.engines[node]
                .run_traced(shard, registry, flight, shard_ctx.child(0), start_us)
                .hits
                .into_iter()
                .map(|h| Hit {
                    position: h.position + offset,
                    score: h.score,
                })
                .collect::<Vec<_>>();
            per_shard.push(hits);
        }
        // Cross-shard duplicates (windows in shard i's overlap tail and
        // shard i+1's head) are removed by the shared merge helper — the
        // same one every shard-composing caller must use.
        Ok(merge_shard_hits(per_shard))
    }

    /// Modelled kernel time for `bases` nucleotides on `node`'s engine,
    /// microseconds — the deterministic duration stamped onto shard
    /// scatter spans.
    fn shard_dur_us(&self, node: usize, bases: u64) -> f64 {
        self.engines
            .get(node)
            .map_or(0.0, |e| e.model_kernel_seconds(bases.div_ceil(4)) * 1e6)
    }

    fn check_shards(&self, shards: &[RnaSeq], shard_offsets: &[usize]) -> FabpResult<()> {
        if shards.len() != self.engines.len() {
            return Err(FabpError::InvalidShardPlan(format!(
                "shard count {} does not match node count {}",
                shards.len(),
                self.engines.len()
            )));
        }
        if shards.len() != shard_offsets.len() {
            return Err(FabpError::InvalidShardPlan(format!(
                "offset count {} does not match shard count {}",
                shard_offsets.len(),
                shards.len()
            )));
        }
        Ok(())
    }

    /// Executes one query under a fault schedule with the configured
    /// resilience level, surviving node deaths by re-dispatching the
    /// dead node's shard to a survivor.
    ///
    /// Engine-level faults (beat flips, config upsets, stalls, query
    /// flips) from `schedule` are applied to **every** node's shard run;
    /// [`fabp_resilience::FaultKind::NodeKill`] events mark whole nodes
    /// dead. Under [`ResilienceLevel::Recover`] each orphaned shard is
    /// re-run on a surviving node (round-robin) and the merged hits are
    /// bit-identical to the fault-free search; the outcome reports the
    /// recomputed [`ClusterTiming`] and throughput penalty. Under
    /// `Detect` a node death fails fast with [`FabpError::NodeDown`];
    /// under `Off` the dead node's hits are silently missing.
    ///
    /// # Errors
    ///
    /// [`FabpError::InvalidShardPlan`] on shard/offset count mismatch,
    /// [`FabpError::NodeDown`] when detection is on without recovery or
    /// when every node died, and any engine-level error propagated from
    /// [`ResilientRunner::run`].
    pub fn search_resilient(
        &self,
        shards: &[RnaSeq],
        shard_offsets: &[usize],
        level: ResilienceLevel,
        schedule: &FaultSchedule,
        registry: &fabp_telemetry::Registry,
    ) -> FabpResult<ClusterSearchOutcome> {
        self.search_resilient_traced(
            shards,
            shard_offsets,
            level,
            schedule,
            registry,
            &FlightRecorder::disabled(),
            TraceContext::none(),
            0.0,
        )
    }

    /// [`FpgaCluster::search_resilient`] with request-scoped tracing.
    ///
    /// Per node the scatter records a `shard` child span of `trace`
    /// (track `SHARD_TRACK_BASE + node`). A dead node's span carries
    /// [`fabp_telemetry::FLAG_ERROR`]; under
    /// [`ResilienceLevel::Recover`] its re-dispatch is recorded as a
    /// `resilience_retry` child of that shard span (flags
    /// [`fabp_telemetry::FLAG_RETRY`] |
    /// [`fabp_telemetry::FLAG_RECOVERED`], argument = the survivor
    /// node), and engine-level CRC/stall/config retries nest beneath
    /// whichever span drove the run. All spans share `trace`'s id, so a
    /// flight-recorder dump reconstructs the full scatter/retry tree.
    ///
    /// # Errors
    ///
    /// As [`FpgaCluster::search_resilient`].
    #[allow(clippy::too_many_arguments)]
    pub fn search_resilient_traced(
        &self,
        shards: &[RnaSeq],
        shard_offsets: &[usize],
        level: ResilienceLevel,
        schedule: &FaultSchedule,
        registry: &fabp_telemetry::Registry,
        flight: &FlightRecorder,
        trace: TraceContext,
        start_us: f64,
    ) -> FabpResult<ClusterSearchOutcome> {
        self.check_shards(shards, shard_offsets)?;
        let nodes = self.engines.len();

        // Which nodes die this run.
        let mut dead: Vec<usize> = schedule
            .node_kills()
            .map(|(node, _)| node)
            .filter(|&n| n < nodes)
            .collect();
        dead.sort_unstable();
        dead.dedup();
        let survivors: Vec<usize> = (0..nodes).filter(|n| !dead.contains(n)).collect();
        if !dead.is_empty() && survivors.is_empty() {
            return Err(FabpError::NodeDown { node: dead[0] });
        }

        let mut report = ResilienceReport::default();
        let mut hits = Vec::new();
        // Orphan shards re-dispatched to survivors, round-robin:
        // (orphan shard index, survivor node index).
        let mut redispatch: Vec<(usize, usize)> = Vec::new();
        let mut next_survivor = 0usize;

        for node in 0..nodes {
            if dead.contains(&node) {
                rtel::count_node_killed(registry);
                rtel::count_injected(registry, "node_kill");
                report.injected += 1;
                match level {
                    ResilienceLevel::Off => continue, // results silently lost
                    ResilienceLevel::Detect => {
                        // `report` is dropped on the error path, so only the
                        // registry records the detection.
                        rtel::count_detected(registry, "node_kill");
                        return Err(FabpError::NodeDown { node });
                    }
                    ResilienceLevel::Recover => {
                        report.detected += 1;
                        rtel::count_detected(registry, "node_kill");
                        let survivor = survivors[next_survivor % survivors.len()];
                        next_survivor += 1;
                        redispatch.push((node, survivor));
                        rtel::count_shard_redispatched(registry);
                        continue;
                    }
                }
            }
            let shard_ctx = trace.child(node as u64);
            flight.record(
                TraceEvent::new(
                    shard_ctx,
                    "shard",
                    start_us,
                    self.shard_dur_us(node, shards[node].len() as u64),
                )
                .with_arg(node as u64)
                .with_track(SHARD_TRACK_BASE + node as u32),
            );
            let node_hits = self.run_shard(
                node,
                &shards[node],
                shard_offsets[node],
                level,
                schedule,
                registry,
                &mut report,
                flight,
                shard_ctx,
                start_us,
            )?;
            hits.extend(node_hits);
        }

        // Re-dispatch orphaned shards to their assigned survivors.
        for &(orphan, survivor) in &redispatch {
            // The dead node's scatter span, marked failed; its retry on
            // the survivor hangs beneath it so the dump shows the
            // re-dispatch as a child of the span that could not run.
            let orphan_ctx = trace.child(orphan as u64);
            flight.record(
                TraceEvent::new(orphan_ctx, "shard", start_us, 1.0)
                    .with_arg(orphan as u64)
                    .with_track(SHARD_TRACK_BASE + orphan as u32)
                    .with_flags(FLAG_ERROR),
            );
            let retry_ctx = orphan_ctx.child(0x8E + survivor as u64);
            flight.record(
                TraceEvent::new(
                    retry_ctx,
                    "resilience_retry",
                    start_us,
                    self.shard_dur_us(survivor, shards[orphan].len() as u64),
                )
                .with_arg(survivor as u64)
                .with_track(SHARD_TRACK_BASE + survivor as u32)
                .with_flags(FLAG_RETRY | FLAG_RECOVERED),
            );
            let node_hits = self.run_shard(
                survivor,
                &shards[orphan],
                shard_offsets[orphan],
                level,
                schedule,
                registry,
                &mut report,
                flight,
                retry_ctx,
                start_us,
            )?;
            hits.extend(node_hits);
            report.recovered += 1;
            rtel::count_recovered(registry, "node_kill");
        }

        // The re-dispatch loop above appends orphan-shard hits *after*
        // higher-offset survivors, so `hits` is legally out of order
        // here; the shared helper sorts before deduplicating.
        let hits = merge_shard_hits([hits]);

        let degraded = if !dead.is_empty() && level.recovers() {
            let nominal = self.timing();
            let degraded = self.degraded_timing(&redispatch)?;
            let penalty = 1.0
                - if nominal.queries_per_second > 0.0 {
                    degraded.queries_per_second / nominal.queries_per_second
                } else {
                    1.0
                };
            rtel::record_degraded_throughput(
                registry,
                ((1.0 - penalty).clamp(0.0, 1.0) * 1000.0).round() as i64,
            );
            Some(DegradedTiming {
                nominal,
                degraded,
                throughput_penalty: penalty,
            })
        } else {
            None
        };

        Ok(ClusterSearchOutcome {
            hits,
            report,
            dead_nodes: dead,
            degraded,
        })
    }

    /// Runs one shard on one node's engine under the schedule's
    /// engine-level faults, translating hits into global coordinates.
    #[allow(clippy::too_many_arguments)]
    fn run_shard(
        &self,
        node: usize,
        shard: &RnaSeq,
        offset: usize,
        level: ResilienceLevel,
        schedule: &FaultSchedule,
        registry: &fabp_telemetry::Registry,
        report: &mut ResilienceReport,
        flight: &FlightRecorder,
        ctx: TraceContext,
        start_us: f64,
    ) -> FabpResult<Vec<Hit>> {
        let engine = self
            .engines
            .get(node)
            .ok_or_else(|| FabpError::Internal(format!("node {node} has no engine")))?;
        let engine_schedule = FaultSchedule::from_events(
            schedule
                .events()
                .iter()
                .filter(|e| !matches!(e, fabp_resilience::FaultKind::NodeKill { .. }))
                .copied()
                .collect(),
        );
        let runner = ResilientRunner::new(engine, level, engine_schedule).with_trace(
            flight.clone(),
            ctx,
            start_us,
        );
        let out = runner.run(&PackedSeq::from_rna(shard), registry)?;
        report.absorb(&out.report);
        Ok(out
            .run
            .hits
            .into_iter()
            .map(|h| Hit {
                position: h.position + offset,
                score: h.score,
            })
            .collect())
    }

    /// Recomputes cluster timing with the re-dispatch assignments: each
    /// survivor serves its own shard plus any orphan shards assigned to
    /// it (serially), so the slowest loaded survivor sets the latency.
    ///
    /// A self-redispatch pair `(n, n)` means the shard stayed home —
    /// node `n` is treated as alive serving its own shard, not as a dead
    /// node (external recovery controllers legally emit such pairs when
    /// a node rejoins between detection and re-dispatch; dropping the
    /// node used to erase its load from the model entirely, reporting a
    /// one-node cluster as infinitely fast).
    ///
    /// # Errors
    ///
    /// [`FabpError::Internal`] if an assignment references a node the
    /// cluster does not have, or re-dispatches a shard onto a node the
    /// same list declares dead (cannot happen for assignments produced
    /// by [`FpgaCluster::search_resilient`]).
    pub fn degraded_timing(&self, redispatch: &[(usize, usize)]) -> FabpResult<ClusterTiming> {
        let power_model = fabp_fpga::power_model::PowerModel::default();
        // `(n, n)` is a no-op re-dispatch, not a death.
        let dead: Vec<usize> = redispatch
            .iter()
            .filter(|&&(orphan, survivor)| orphan != survivor)
            .map(|&(orphan, _)| orphan)
            .collect();
        for &(orphan, survivor) in redispatch {
            if orphan >= self.engines.len() || survivor >= self.engines.len() {
                return Err(FabpError::Internal(format!(
                    "re-dispatch ({orphan} -> {survivor}) references a node outside the \
                     {}-node cluster",
                    self.engines.len()
                )));
            }
            if orphan != survivor && dead.contains(&survivor) {
                return Err(FabpError::Internal(format!(
                    "shard {orphan} re-dispatched to node {survivor}, which the same \
                     assignment list declares dead"
                )));
            }
        }
        let mut latency: f64 = 0.0;
        let mut joules = 0.0;
        for (node, (engine, &bases)) in self.engines.iter().zip(&self.shard_bases).enumerate() {
            if dead.contains(&node) {
                continue;
            }
            let extra: u64 = redispatch
                .iter()
                .filter(|&&(orphan, survivor)| survivor == node && orphan != node)
                .map(|&(orphan, _)| self.shard_bases.get(orphan).copied().unwrap_or(0))
                .sum();
            let t = engine.model_kernel_seconds((bases + extra).div_ceil(4));
            latency = latency.max(t);
            let watts = power_model
                .power(engine.plan().resources, engine.config().device.clock_hz)
                .total();
            joules += watts * t;
        }
        Ok(ClusterTiming {
            latency_seconds: latency,
            queries_per_second: if latency > 0.0 { 1.0 / latency } else { 0.0 },
            joules_per_query: joules,
        })
    }
}

/// Outcome of a resilient cluster search.
#[derive(Debug, Clone)]
pub struct ClusterSearchOutcome {
    /// Merged hits in global coordinates (bit-identical to the
    /// fault-free search under [`ResilienceLevel::Recover`]).
    pub hits: Vec<Hit>,
    /// Aggregated inject/detect/recover statistics across all nodes.
    pub report: ResilienceReport,
    /// Nodes that died during the search.
    pub dead_nodes: Vec<usize>,
    /// Degradation summary when nodes died and the search recovered.
    pub degraded: Option<DegradedTiming>,
}

impl ClusterSearchOutcome {
    /// Merges the outcome's hits into [`HitRegion`]s via the
    /// sort-before-merge path, which never panics on hit lists assembled
    /// from out-of-order shard completions.
    pub fn regions(&self, query_len: usize) -> Vec<HitRegion> {
        merge_overlapping_unsorted(&self.hits, query_len)
    }
}

/// Nominal vs. post-failure cluster timing.
#[derive(Debug, Clone, Copy)]
pub struct DegradedTiming {
    /// Timing with every node alive.
    pub nominal: ClusterTiming,
    /// Timing with survivors carrying the re-dispatched shards.
    pub degraded: ClusterTiming,
    /// Fractional throughput loss: `1 − degraded_qps / nominal_qps`.
    pub throughput_penalty: f64,
}

/// Splits a concrete reference into `nodes` shards with `overlap` bases of
/// trailing context copied onto each shard (so windows straddling shard
/// boundaries are evaluated by at least one node; duplicates are removed
/// by [`FpgaCluster::search`]'s merge). Returns `(shards, global offsets)`.
///
/// Degenerate inputs are well-defined: with more nodes than bases some
/// shards are zero-sized (they still receive overlap context, which the
/// merge deduplicates), and an overlap larger than a shard simply extends
/// the shard to the end of the reference.
///
/// # Errors
///
/// Returns [`FabpError::InvalidShardPlan`] if `nodes == 0`.
pub fn try_shard_with_overlap(
    reference: &RnaSeq,
    nodes: usize,
    overlap: usize,
) -> FabpResult<(Vec<RnaSeq>, Vec<usize>)> {
    // The range math is shared with the batch scheduler's reference
    // slicing — one proof of the overlap-partition invariant serves both.
    let ranges = crate::slice_plan::overlap_ranges(reference.len(), nodes, overlap)?;
    let mut shards = Vec::with_capacity(nodes);
    let mut offsets = Vec::with_capacity(nodes);
    for (start, end) in ranges {
        shards.push(reference.as_slice()[start..end].iter().copied().collect());
        offsets.push(start);
    }
    Ok((shards, offsets))
}

/// Splits a concrete reference into `nodes` shards with `overlap` bases of
/// trailing context copied onto each shard. See [`try_shard_with_overlap`]
/// for the typed-error variant and the degenerate-input semantics.
///
/// # Panics
///
/// Panics if `nodes == 0`.
pub fn shard_with_overlap(
    reference: &RnaSeq,
    nodes: usize,
    overlap: usize,
) -> (Vec<RnaSeq>, Vec<usize>) {
    match try_shard_with_overlap(reference, nodes, overlap) {
        Ok(v) => v,
        Err(e) => panic!("a cluster needs at least one node: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hits::merge_overlapping;
    use fabp_bio::generate::{coding_rna_for_paper_patterns, random_protein, random_rna};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sharding_is_even_and_complete() {
        let shards = shard_database(1_000_000_007, 8);
        assert_eq!(shards.len(), 8);
        assert_eq!(shards.iter().sum::<u64>(), 1_000_000_007);
        let min = shards.iter().min().unwrap();
        let max = shards.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn throughput_scales_with_nodes() {
        let protein = random_protein(50, &mut StdRng::seed_from_u64(1));
        let query = EncodedQuery::from_protein(&protein);
        let config = EngineConfig::kintex7(140);
        let single = FpgaCluster::homogeneous(&query, &config, 1, 1_000_000_000).unwrap();
        let quad = FpgaCluster::homogeneous(&query, &config, 4, 1_000_000_000).unwrap();
        let t1 = single.timing();
        let t4 = quad.timing();
        let scaling = t4.queries_per_second / t1.queries_per_second;
        assert!(
            (3.2..=4.0).contains(&scaling),
            "4-node scaling {scaling:.2} (warm-up overhead bounds it below 4)"
        );
        // Energy per query stays in the same ballpark (same total work).
        let ratio = t4.joules_per_query / t1.joules_per_query;
        assert!((0.8..=1.6).contains(&ratio), "energy ratio {ratio:.2}");
    }

    #[test]
    fn cluster_search_finds_hits_across_shard_boundaries() {
        let mut rng = StdRng::seed_from_u64(2);
        let protein = random_protein(10, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let qlen = query.len();
        let coding = coding_rna_for_paper_patterns(&protein, &mut rng);

        // Reference of 4 shards of 500; plant one copy straddling the
        // boundary at 1000 and one mid-shard.
        let mut bases = random_rna(2_000, &mut rng).into_inner();
        bases.splice(985..985 + coding.len(), coding.iter().copied());
        bases.splice(300..300 + coding.len(), coding.iter().copied());
        let reference = RnaSeq::from(bases);

        let cluster = FpgaCluster::homogeneous(
            &query,
            &EngineConfig::kintex7(qlen as u32),
            4,
            reference.len() as u64,
        )
        .unwrap();
        let (shards, offsets) = shard_with_overlap(&reference, 4, qlen - 1);
        let hits = cluster.search(&shards, &offsets).unwrap();
        assert!(hits.iter().any(|h| h.position == 300), "{hits:?}");
        assert!(
            hits.iter().any(|h| h.position == 985),
            "straddling hit: {hits:?}"
        );

        // Cross-check against a single-engine scan of the whole reference.
        let single = FabpEngine::new(query, EngineConfig::kintex7(qlen as u32)).unwrap();
        let expected = single.run(&PackedSeq::from_rna(&reference)).hits;
        assert_eq!(hits, expected);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = shard_database(100, 0);
    }

    #[test]
    fn zero_nodes_is_a_typed_error() {
        assert!(matches!(
            try_shard_database(100, 0),
            Err(FabpError::InvalidShardPlan(_))
        ));
        let reference: RnaSeq = "ACGU".parse().unwrap();
        assert!(try_shard_with_overlap(&reference, 0, 3).is_err());
    }

    // ---- shard edge cases (satellite): nodes > bases, zero-length
    // shards, overlap ≥ shard size ----

    #[test]
    fn more_nodes_than_bases_yields_zero_length_shards() {
        let shards = shard_database(3, 8);
        assert_eq!(shards.len(), 8);
        assert_eq!(shards.iter().sum::<u64>(), 3);
        assert_eq!(shards.iter().filter(|&&s| s == 0).count(), 5);
        // The non-empty shards come first (round-robin remainder).
        assert_eq!(&shards[..3], &[1, 1, 1]);

        // Zero bases entirely.
        let empty = shard_database(0, 4);
        assert_eq!(empty, vec![0, 0, 0, 0]);
    }

    #[test]
    fn overlap_larger_than_shard_clamps_to_reference_end() {
        let reference: RnaSeq = "ACGUACGUACGU".parse().unwrap(); // 12 bases
                                                                 // 6 shards of 2 bases, overlap 5 > shard size.
        let (shards, offsets) = shard_with_overlap(&reference, 6, 5);
        assert_eq!(shards.len(), 6);
        assert_eq!(offsets, vec![0, 2, 4, 6, 8, 10]);
        for (shard, &offset) in shards.iter().zip(&offsets) {
            // Every shard stays in bounds and reproduces the reference.
            assert!(offset + shard.len() <= reference.len());
            assert_eq!(
                shard.as_slice(),
                &reference.as_slice()[offset..offset + shard.len()]
            );
        }
        // The final shard cannot read past the end.
        assert_eq!(shards[5].len(), 2);
    }

    #[test]
    fn degenerate_sharding_still_matches_single_engine() {
        let mut rng = StdRng::seed_from_u64(9);
        let protein = random_protein(6, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let qlen = query.len();
        let coding = coding_rna_for_paper_patterns(&protein, &mut rng);

        // A reference barely longer than the query, more nodes than
        // sensible, overlap far larger than the shard size.
        let mut bases = random_rna(40, &mut rng).into_inner();
        bases.splice(7..7 + coding.len(), coding.iter().copied());
        let reference = RnaSeq::from(bases);

        let config = EngineConfig::kintex7(qlen as u32);
        let single = FabpEngine::new(query.clone(), config.clone()).unwrap();
        let expected = single.run(&PackedSeq::from_rna(&reference)).hits;
        assert!(!expected.is_empty(), "fixture must plant a hit");

        for (nodes, overlap) in [(16, qlen - 1), (8, 40), (40, qlen - 1), (3, 0)] {
            let cluster =
                FpgaCluster::homogeneous(&query, &config, nodes, reference.len() as u64).unwrap();
            let (shards, offsets) = shard_with_overlap(&reference, nodes, overlap);
            let hits = cluster.search(&shards, &offsets).unwrap();
            if overlap >= qlen - 1 {
                assert_eq!(hits, expected, "nodes={nodes} overlap={overlap}");
            } else {
                // Too little overlap may *miss* boundary hits but must
                // never invent or duplicate them.
                for h in &hits {
                    assert!(expected.contains(h), "nodes={nodes} overlap={overlap}");
                }
                let mut sorted = hits.clone();
                sorted.dedup();
                assert_eq!(sorted, hits, "no duplicates");
            }
        }
    }

    #[test]
    fn shard_count_mismatch_is_a_typed_error() {
        let protein = random_protein(5, &mut StdRng::seed_from_u64(3));
        let query = EncodedQuery::from_protein(&protein);
        let cluster = FpgaCluster::homogeneous(&query, &EngineConfig::kintex7(5), 2, 100).unwrap();
        let reference: RnaSeq = "ACGUACGUACGU".parse().unwrap();
        let (shards, offsets) = shard_with_overlap(&reference, 3, 0);
        assert!(matches!(
            cluster.search(&shards, &offsets),
            Err(FabpError::InvalidShardPlan(_))
        ));
        assert!(matches!(
            cluster.search(&shards[..2], &offsets),
            Err(FabpError::InvalidShardPlan(_))
        ));
    }

    #[test]
    fn empty_query_cluster_is_a_typed_error() {
        let query = EncodedQuery::from_exact_rna(&RnaSeq::new());
        assert!(matches!(
            FpgaCluster::homogeneous(&query, &EngineConfig::kintex7(0), 2, 100),
            Err(FabpError::EmptyQuery)
        ));
    }

    // ---- cross-shard duplicate regression (ISSUE 5 satellite) ----

    #[test]
    fn composed_shard_searches_do_not_duplicate_boundary_hits() {
        // A caller composing `try_shard_with_overlap` with per-shard
        // engine runs (exactly what `batch::search_all`-style serving
        // layers do) must get the single-engine hit list. Pre-fix, the
        // dedup lived only inside `FpgaCluster::search`, so this
        // composition double-reported the boundary homology: naive
        // concatenation contains it once from shard 1's overlap tail and
        // once from shard 2's head.
        //
        // Shards carry 64 bases of overlap — the serving-layer shape,
        // where overlap is sized for the *longest* supported query, so a
        // shorter query's boundary windows are evaluated by two nodes.
        let mut rng = StdRng::seed_from_u64(21);
        let protein = random_protein(10, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let qlen = query.len(); // 30 ≤ overlap
        let overlap = 64usize;
        let coding = coding_rna_for_paper_patterns(&protein, &mut rng);

        // 4 shards of 500 bases; plant a homology just past the shard
        // boundary at 1000 — its window [1005, 1035) lies inside both
        // shard 1's overlap tail ([500, 1064)) and shard 2 ([1000, …)).
        let mut bases = random_rna(2_000, &mut rng).into_inner();
        bases.splice(1_005..1_005 + coding.len(), coding.iter().copied());
        let reference = RnaSeq::from(bases);

        let single = FabpEngine::new(query.clone(), EngineConfig::kintex7(qlen as u32)).unwrap();
        let expected: Vec<Hit> = single.run(&PackedSeq::from_rna(&reference)).hits;
        assert!(
            expected.iter().any(|h| h.position == 1_005),
            "fixture must plant a boundary hit: {expected:?}"
        );

        // Per-shard runs, hits translated to global coordinates — the
        // composition a multi-query serving layer performs.
        let (shards, offsets) = shard_with_overlap(&reference, 4, overlap);
        let per_shard: Vec<Vec<Hit>> = shards
            .iter()
            .zip(&offsets)
            .map(|(shard, &offset)| {
                let engine =
                    FabpEngine::new(query.clone(), EngineConfig::kintex7(qlen as u32)).unwrap();
                engine
                    .run(&PackedSeq::from_rna(shard))
                    .hits
                    .into_iter()
                    .map(|h| Hit {
                        position: h.position + offset,
                        score: h.score,
                    })
                    .collect()
            })
            .collect();

        // Pre-fix behaviour (concatenate + sort, no shared dedup):
        // the boundary hit appears twice.
        let mut naive: Vec<Hit> = per_shard.iter().flatten().copied().collect();
        naive.sort_by_key(|h| h.position);
        assert!(
            naive.len() > expected.len()
                && naive.iter().filter(|h| h.position == 1_005).count() >= 2,
            "fixture must exhibit the duplicate the helper exists to remove: {naive:?}"
        );

        // Post-fix: the shared helper restores the single-engine list.
        let merged = crate::hits::merge_shard_hits(per_shard);
        assert_eq!(merged, expected, "shared shard merge must deduplicate");

        // And the cluster path agrees with the helper (same code now).
        let cluster = FpgaCluster::homogeneous(
            &query,
            &EngineConfig::kintex7(qlen as u32),
            4,
            reference.len() as u64,
        )
        .unwrap();
        assert_eq!(cluster.search(&shards, &offsets).unwrap(), expected);
        let packed: Vec<PackedSeq> = shards.iter().map(PackedSeq::from_rna).collect();
        assert_eq!(cluster.search_packed(&packed, &offsets).unwrap(), expected);
    }

    // ---- node-kill recovery (tentpole acceptance) ----

    #[test]
    fn node_kill_recovers_on_survivors_with_degraded_timing() {
        let mut rng = StdRng::seed_from_u64(4);
        let protein = random_protein(10, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let qlen = query.len();
        let coding = coding_rna_for_paper_patterns(&protein, &mut rng);

        let mut bases = random_rna(2_000, &mut rng).into_inner();
        bases.splice(985..985 + coding.len(), coding.iter().copied());
        bases.splice(300..300 + coding.len(), coding.iter().copied());
        let reference = RnaSeq::from(bases);

        let cluster = FpgaCluster::homogeneous(
            &query,
            &EngineConfig::kintex7(qlen as u32),
            4,
            reference.len() as u64,
        )
        .unwrap();
        let (shards, offsets) = shard_with_overlap(&reference, 4, qlen - 1);
        let baseline = cluster.search(&shards, &offsets).unwrap();
        assert!(!baseline.is_empty());

        // Kill the node holding the mid-shard hit (node 0 covers 0..500).
        let schedule = FaultSchedule::parse("kill@0:1").unwrap();
        let registry = fabp_telemetry::Registry::new();
        let outcome = cluster
            .search_resilient(
                &shards,
                &offsets,
                ResilienceLevel::Recover,
                &schedule,
                &registry,
            )
            .unwrap();
        assert_eq!(
            outcome.hits, baseline,
            "survivors must reproduce the full hit set bit-identically"
        );
        assert_eq!(outcome.dead_nodes, vec![0]);
        let degraded = outcome.degraded.expect("degradation must be reported");
        assert!(
            degraded.degraded.latency_seconds > degraded.nominal.latency_seconds,
            "a survivor carries double load"
        );
        assert!(
            degraded.throughput_penalty > 0.0 && degraded.throughput_penalty < 1.0,
            "penalty {:.3}",
            degraded.throughput_penalty
        );
        // Telemetry observed the death and the re-dispatch.
        let prom = registry.snapshot().to_prometheus();
        assert!(prom.contains("fabp_cluster_nodes_killed_total 1"), "{prom}");
        assert!(
            prom.contains("fabp_cluster_shards_redispatched_total 1"),
            "{prom}"
        );
        assert!(
            prom.contains("fabp_cluster_degraded_throughput_permille"),
            "{prom}"
        );

        // Detect level fails fast; Off level silently loses the shard.
        assert!(matches!(
            cluster.search_resilient(
                &shards,
                &offsets,
                ResilienceLevel::Detect,
                &schedule,
                &registry
            ),
            Err(FabpError::NodeDown { node: 0 })
        ));
        let off = cluster
            .search_resilient(
                &shards,
                &offsets,
                ResilienceLevel::Off,
                &schedule,
                &registry,
            )
            .unwrap();
        assert!(
            !off.hits.iter().any(|h| h.position == 300),
            "off level must lose node 0's hit"
        );
    }

    #[test]
    fn node_kill_then_region_merge_does_not_panic() {
        // Chaos regression (ISSUE 5 satellite): the re-dispatch path
        // legally completes shards out of offset order — the dead node's
        // shard runs on a survivor *after* higher-offset shards. Merging
        // that intermediate list with the strict `merge_overlapping`
        // panics; the cluster/serve paths must sort before merging.
        let mut rng = StdRng::seed_from_u64(31);
        let protein = random_protein(10, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let qlen = query.len();
        let coding = coding_rna_for_paper_patterns(&protein, &mut rng);
        let mut bases = random_rna(1_600, &mut rng).into_inner();
        // One homology on the to-be-killed node 0, one on node 3.
        bases.splice(100..100 + coding.len(), coding.iter().copied());
        bases.splice(1_300..1_300 + coding.len(), coding.iter().copied());
        let reference = RnaSeq::from(bases);

        let cluster = FpgaCluster::homogeneous(
            &query,
            &EngineConfig::kintex7(qlen as u32),
            4,
            reference.len() as u64,
        )
        .unwrap();
        let (shards, offsets) = shard_with_overlap(&reference, 4, qlen - 1);
        let baseline = cluster.search(&shards, &offsets).unwrap();

        // Reproduce the redispatch completion order: survivors 1..3
        // first, then node 0's orphan shard re-run on survivor 1.
        let mut completion_order: Vec<Hit> = Vec::new();
        for node in [1usize, 2, 3, 0] {
            // Node 0 is dead; its shard re-runs on survivor 1.
            let engine = &cluster.engines[if node == 0 { 1 } else { node }];
            let run = engine.run(&PackedSeq::from_rna(&shards[node]));
            completion_order.extend(run.hits.into_iter().map(|h| Hit {
                position: h.position + offsets[node],
                score: h.score,
            }));
        }
        assert!(
            completion_order
                .windows(2)
                .any(|w| w[1].position < w[0].position),
            "fixture must produce an out-of-order list: {completion_order:?}"
        );
        let strict = std::panic::catch_unwind(|| merge_overlapping(&completion_order, qlen));
        assert!(
            strict.is_err(),
            "strict merge must panic on redispatch order"
        );
        // Sort-before-merge handles it and matches the fault-free regions.
        let regions = merge_overlapping_unsorted(&completion_order, qlen);
        assert_eq!(regions, merge_overlapping(&baseline, qlen));

        // The full resilient path: kill node 0, recover, merge regions
        // through the outcome's sort-before-merge accessor.
        let schedule = FaultSchedule::parse("kill@0:1").unwrap();
        let outcome = cluster
            .search_resilient(
                &shards,
                &offsets,
                ResilienceLevel::Recover,
                &schedule,
                &fabp_telemetry::Registry::disabled(),
            )
            .unwrap();
        assert_eq!(outcome.hits, baseline);
        assert_eq!(outcome.regions(qlen), merge_overlapping(&baseline, qlen));
        assert!(outcome
            .regions(qlen)
            .iter()
            .any(|r| r.best.position == 100 || r.start <= 100));
    }

    // ---- degraded_timing self-redispatch (ISSUE 8 satellite) ----

    #[test]
    fn self_redispatch_keeps_the_node_and_its_load() {
        let protein = random_protein(8, &mut StdRng::seed_from_u64(17));
        let query = EncodedQuery::from_protein(&protein);
        let config = EngineConfig::kintex7(24);

        // One-node cluster, shard re-dispatched to itself: pre-fix the
        // node was treated as dead and skipped, so the "degraded" timing
        // reported zero latency / zero qps — an infinitely fast cluster.
        let single = FpgaCluster::homogeneous(&query, &config, 1, 4_000).unwrap();
        let nominal = single.timing();
        let degraded = single.degraded_timing(&[(0, 0)]).unwrap();
        assert!(degraded.latency_seconds > 0.0, "load must not vanish");
        assert_eq!(
            degraded, nominal,
            "a self-redispatch is a no-op: the shard never moved"
        );

        // Mixed list on a 4-node cluster: node 1 genuinely dies onto
        // node 2, node 3 self-redispatches. Only node 1 is dead; node 3
        // still carries exactly its own shard.
        let quad = FpgaCluster::homogeneous(&query, &config, 4, 4_000).unwrap();
        let mixed = quad.degraded_timing(&[(1, 2), (3, 3)]).unwrap();
        let plain = quad.degraded_timing(&[(1, 2)]).unwrap();
        assert_eq!(mixed, plain, "the (3, 3) pair must not change the model");
        assert!(mixed.latency_seconds > quad.timing().latency_seconds);
    }

    #[test]
    fn contradictory_or_out_of_range_redispatch_is_a_typed_error() {
        let protein = random_protein(8, &mut StdRng::seed_from_u64(18));
        let query = EncodedQuery::from_protein(&protein);
        let cluster =
            FpgaCluster::homogeneous(&query, &EngineConfig::kintex7(24), 3, 3_000).unwrap();
        // Shard 0 re-dispatched onto node 1, which the same list kills.
        assert!(matches!(
            cluster.degraded_timing(&[(0, 1), (1, 2)]),
            Err(FabpError::Internal(_))
        ));
        // References to nodes the cluster does not have.
        assert!(matches!(
            cluster.degraded_timing(&[(7, 0)]),
            Err(FabpError::Internal(_))
        ));
        assert!(matches!(
            cluster.degraded_timing(&[(0, 7)]),
            Err(FabpError::Internal(_))
        ));
    }

    // ---- pathological shard plans (ISSUE 8 satellite) ----

    #[test]
    fn overlap_with_more_nodes_than_bases_stays_in_bounds_and_complete() {
        let reference: RnaSeq = "ACGUA".parse().unwrap(); // 5 bases
        for (nodes, overlap) in [(8, 3), (8, 5), (8, 64), (5, 5), (12, 0)] {
            let (shards, offsets) = try_shard_with_overlap(&reference, nodes, overlap).unwrap();
            assert_eq!(shards.len(), nodes, "nodes={nodes} overlap={overlap}");
            assert_eq!(offsets.len(), nodes);
            // Offsets are non-decreasing, in bounds, and the shard at
            // each offset reproduces the reference slice exactly.
            for (shard, &offset) in shards.iter().zip(&offsets) {
                assert!(offset <= reference.len());
                assert!(offset + shard.len() <= reference.len());
                assert_eq!(
                    shard.as_slice(),
                    &reference.as_slice()[offset..offset + shard.len()]
                );
            }
            assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
            // Every base is covered by at least one shard: the union of
            // [offset, offset + len) ranges is [0, reference.len()).
            let mut covered = vec![false; reference.len()];
            for (shard, &offset) in shards.iter().zip(&offsets) {
                for c in covered.iter_mut().skip(offset).take(shard.len()) {
                    *c = true;
                }
            }
            assert!(
                covered.iter().all(|&c| c),
                "nodes={nodes} overlap={overlap}: coverage gap"
            );
            // Zero-size shards appear exactly when nodes > bases.
            let zero_body = shards
                .iter()
                .zip(try_shard_database(reference.len() as u64, nodes).unwrap())
                .filter(|&(_, body)| body == 0)
                .count();
            assert_eq!(zero_body, nodes.saturating_sub(reference.len()));
        }
    }

    #[test]
    fn killing_every_node_is_fatal() {
        let protein = random_protein(5, &mut StdRng::seed_from_u64(8));
        let query = EncodedQuery::from_protein(&protein);
        let cluster = FpgaCluster::homogeneous(&query, &EngineConfig::kintex7(5), 2, 200).unwrap();
        let reference = random_rna(200, &mut StdRng::seed_from_u64(8));
        let (shards, offsets) = shard_with_overlap(&reference, 2, 0);
        let schedule = FaultSchedule::parse("kill@0:1,kill@1:1").unwrap();
        assert!(matches!(
            cluster.search_resilient(
                &shards,
                &offsets,
                ResilienceLevel::Recover,
                &schedule,
                &fabp_telemetry::Registry::disabled()
            ),
            Err(FabpError::NodeDown { .. })
        ));
    }

    #[test]
    fn node_kill_with_engine_faults_still_bit_identical() {
        let mut rng = StdRng::seed_from_u64(13);
        let protein = random_protein(8, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let qlen = query.len();
        let coding = coding_rna_for_paper_patterns(&protein, &mut rng);
        let mut bases = random_rna(1_500, &mut rng).into_inner();
        bases.splice(700..700 + coding.len(), coding.iter().copied());
        let reference = RnaSeq::from(bases);

        let cluster = FpgaCluster::homogeneous(
            &query,
            &EngineConfig::kintex7(qlen as u32),
            3,
            reference.len() as u64,
        )
        .unwrap();
        let (shards, offsets) = shard_with_overlap(&reference, 3, qlen - 1);
        let baseline = cluster.search(&shards, &offsets).unwrap();

        // Node death *plus* engine-level faults on every node.
        let schedule =
            FaultSchedule::parse("kill@1:3,beatflip@0:2:9,config@1:cmp:11,stall@0:900").unwrap();
        let outcome = cluster
            .search_resilient(
                &shards,
                &offsets,
                ResilienceLevel::Recover,
                &schedule,
                &fabp_telemetry::Registry::disabled(),
            )
            .unwrap();
        assert_eq!(outcome.hits, baseline);
        assert!(outcome.report.recovered > 0);
    }
}
