//! The `FabpAligner` public API: the paper's full flow (Fig. 1) behind one
//! builder.
//!
//! Back-translation → encoding → alignment → thresholded hits, with a
//! choice of execution engine:
//!
//! * [`Engine::Software`] — the fast functional engine (identical hits,
//!   no timing);
//! * [`Engine::CycleAccurate`] — the `fabp-fpga` cycle-level simulator
//!   (identical hits *plus* cycle/bandwidth statistics).

use crate::hits::{merge_overlapping, Hit, HitRegion};
use crate::software::SoftwareEngine;
use fabp_bio::backtranslate::BackTranslationMode;
use fabp_bio::seq::{PackedSeq, ProteinSeq, RnaSeq};
use fabp_encoding::encoder::{EncodedQuery, QuerySet};
use fabp_fpga::engine::{EngineConfig, EngineStats, FabpEngine};
use fabp_fpga::resources::PlanError;
use std::fmt;

/// How the alignment threshold is specified.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Threshold {
    /// Absolute score (matching elements).
    Absolute(u32),
    /// Fraction of the query length in `[0, 1]`; e.g. `0.9` reports
    /// windows matching ≥ 90 % of elements.
    Fraction(f64),
}

impl Threshold {
    /// Resolves to an absolute score for a query of `query_len` elements.
    pub fn resolve(self, query_len: usize) -> u32 {
        match self {
            Threshold::Absolute(t) => t,
            Threshold::Fraction(f) => (query_len as f64 * f.clamp(0.0, 1.0)).ceil() as u32,
        }
    }
}

/// Which execution engine performs the scan.
#[derive(Debug, Clone)]
pub enum Engine {
    /// Fast functional engine with `threads` workers.
    Software {
        /// Worker threads (1 = serial).
        threads: usize,
    },
    /// Cycle-level FPGA simulation with the given configuration (the
    /// configuration's own threshold field is overridden by the
    /// aligner's).
    CycleAccurate(Box<EngineConfig>),
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::Software { threads: 1 }
    }
}

/// Errors from building an aligner.
#[derive(Debug)]
pub enum BuildError {
    /// The query was empty.
    EmptyQuery,
    /// The cycle-accurate engine could not fit the query on the device.
    Plan(PlanError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::EmptyQuery => write!(f, "query must contain at least one element"),
            BuildError::Plan(e) => write!(f, "architecture planning failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::EmptyQuery => None,
            BuildError::Plan(e) => Some(e),
        }
    }
}

impl From<PlanError> for BuildError {
    fn from(e: PlanError) -> BuildError {
        BuildError::Plan(e)
    }
}

impl From<BuildError> for fabp_resilience::FabpError {
    fn from(e: BuildError) -> fabp_resilience::FabpError {
        match e {
            BuildError::EmptyQuery => fabp_resilience::FabpError::EmptyQuery,
            BuildError::Plan(p) => fabp_resilience::FabpError::Plan(p.to_string()),
        }
    }
}

/// Result of one search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Hits at or above the threshold, position-sorted.
    pub hits: Vec<Hit>,
    /// The absolute threshold that was applied.
    pub threshold: u32,
    /// Query length in elements.
    pub query_len: usize,
    /// Cycle statistics (cycle-accurate engine only).
    pub stats: Option<EngineStats>,
}

impl SearchOutcome {
    /// Merges overlapping hits into regions.
    pub fn regions(&self) -> Vec<HitRegion> {
        merge_overlapping(&self.hits, self.query_len)
    }
}

/// Builder for [`FabpAligner`].
#[derive(Debug, Default)]
pub struct FabpAlignerBuilder {
    query: Option<EncodedQuery>,
    protein: Option<ProteinSeq>,
    threshold: Option<Threshold>,
    engine: Engine,
    mode: BackTranslationMode,
}

impl FabpAlignerBuilder {
    /// Sets a protein query (back-translated with the paper's patterns).
    pub fn protein_query(mut self, protein: &ProteinSeq) -> FabpAlignerBuilder {
        self.query = Some(EncodedQuery::from_protein(protein));
        self.protein = Some(protein.clone());
        self
    }

    /// Sets an exact-match RNA query.
    pub fn rna_query(mut self, rna: &RnaSeq) -> FabpAlignerBuilder {
        self.query = Some(EncodedQuery::from_exact_rna(rna));
        self
    }

    /// Sets a pre-encoded query.
    pub fn encoded_query(mut self, query: EncodedQuery) -> FabpAlignerBuilder {
        self.query = Some(query);
        self
    }

    /// Sets the reporting threshold (default: 90 % of the query length).
    pub fn threshold(mut self, threshold: Threshold) -> FabpAlignerBuilder {
        self.threshold = Some(threshold);
        self
    }

    /// Chooses the execution engine (default: serial software).
    pub fn engine(mut self, engine: Engine) -> FabpAlignerBuilder {
        self.engine = engine;
        self
    }

    /// Sets the Serine representation mode.
    ///
    /// [`BackTranslationMode::ExtendedSer`] makes the search multi-pass:
    /// one extra encoded query per serine position (covering the `AGU`/
    /// `AGC` codons the paper's single pattern drops), with per-position
    /// best-score merging. Only effective for protein queries.
    pub fn mode(mut self, mode: BackTranslationMode) -> FabpAlignerBuilder {
        self.mode = mode;
        self
    }

    /// Builds the aligner.
    ///
    /// # Errors
    ///
    /// [`BuildError::EmptyQuery`] when no query was set or it is empty;
    /// [`BuildError::Plan`] when the cycle-accurate engine cannot fit the
    /// query on its device.
    pub fn build(self) -> Result<FabpAligner, BuildError> {
        let query = self
            .query
            .filter(|q| !q.is_empty())
            .ok_or(BuildError::EmptyQuery)?;
        let threshold = self
            .threshold
            .unwrap_or(Threshold::Fraction(0.9))
            .resolve(query.len());

        // Extended-Ser mode: one additional pass per serine position.
        let queries: Vec<EncodedQuery> = match (self.mode, &self.protein) {
            (BackTranslationMode::ExtendedSer, Some(protein)) => {
                let set = QuerySet::build(protein, BackTranslationMode::ExtendedSer);
                std::iter::once(set.primary).chain(set.secondary).collect()
            }
            _ => vec![query.clone()],
        };

        let backend = match self.engine {
            Engine::Software { threads } => Backend::Software(
                queries.iter().map(SoftwareEngine::new).collect(),
                threads.max(1),
            ),
            Engine::CycleAccurate(mut config) => {
                config.threshold = threshold;
                let engines = queries
                    .iter()
                    .map(|q| FabpEngine::new(q.clone(), (*config).clone()))
                    .collect::<Result<Vec<_>, _>>()?;
                Backend::Cycle(engines)
            }
        };

        Ok(FabpAligner {
            query,
            threshold,
            backend,
            mode: self.mode,
        })
    }
}

enum Backend {
    Software(Vec<SoftwareEngine>, usize),
    Cycle(Vec<FabpEngine>),
}

impl fmt::Debug for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backend::Software(engines, threads) => {
                write!(
                    f,
                    "Software {{ passes: {}, threads: {threads} }}",
                    engines.len()
                )
            }
            Backend::Cycle(engines) => write!(
                f,
                "CycleAccurate {{ passes: {}, plan: {:?} }}",
                engines.len(),
                engines.first().map(|e| e.plan())
            ),
        }
    }
}

/// Per-position best-score merge of multi-pass hit lists (both inputs
/// position-sorted). `pub(crate)` so the sliced batch scheduler can
/// reduce per-pass hit lists exactly the way [`FabpAligner::search`]
/// does.
pub(crate) fn merge_hits(mut base: Vec<Hit>, extra: Vec<Hit>) -> Vec<Hit> {
    let mut merged = Vec::with_capacity(base.len().max(extra.len()));
    let mut b = base.drain(..).peekable();
    let mut e = extra.into_iter().peekable();
    loop {
        match (b.peek(), e.peek()) {
            (Some(x), Some(y)) if x.position == y.position => {
                let score = x.score.max(y.score);
                let position = x.position;
                b.next();
                e.next();
                merged.push(Hit { position, score });
            }
            (Some(x), Some(y)) => {
                if x.position < y.position {
                    merged.push(*x);
                    b.next();
                } else {
                    merged.push(*y);
                    e.next();
                }
            }
            (Some(_), None) => {
                merged.extend(b);
                break;
            }
            (None, Some(_)) => {
                merged.extend(e);
                break;
            }
            (None, None) => break,
        }
    }
    merged
}

/// The FabP aligner: searches RNA/DNA references for regions a protein
/// query could encode.
///
/// # Examples
///
/// ```
/// use fabp_core::aligner::{FabpAligner, Threshold};
/// use fabp_bio::seq::{ProteinSeq, RnaSeq};
///
/// let protein: ProteinSeq = "MF".parse()?;
/// let aligner = FabpAligner::builder()
///     .protein_query(&protein)
///     .threshold(Threshold::Absolute(6))
///     .build()?;
/// let reference: RnaSeq = "GGAUGUUUGG".parse()?;
/// let outcome = aligner.search(&reference);
/// assert_eq!(outcome.hits[0].position, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct FabpAligner {
    query: EncodedQuery,
    threshold: u32,
    backend: Backend,
    mode: BackTranslationMode,
}

impl FabpAligner {
    /// Starts building an aligner.
    pub fn builder() -> FabpAlignerBuilder {
        FabpAlignerBuilder::default()
    }

    /// The encoded query.
    pub fn query(&self) -> &EncodedQuery {
        &self.query
    }

    /// The resolved absolute threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// The configured Serine representation mode.
    pub fn mode(&self) -> BackTranslationMode {
        self.mode
    }

    /// The architecture plan, when running cycle-accurately.
    pub fn plan(&self) -> Option<&fabp_fpga::resources::FabpPlan> {
        match &self.backend {
            Backend::Cycle(engines) => engines.first().map(|e| e.plan()),
            Backend::Software(..) => None,
        }
    }

    /// Number of search passes (1, plus one per serine in extended mode).
    pub fn passes(&self) -> usize {
        match &self.backend {
            Backend::Software(engines, _) => engines.len(),
            Backend::Cycle(engines) => engines.len(),
        }
    }

    /// The software scan passes, when this aligner runs on the software
    /// backend — the batch scheduler slices these across workers. `None`
    /// for the cycle-accurate backend, whose per-run statistics must
    /// accumulate inside a single whole-reference run.
    pub(crate) fn software_passes(&self) -> Option<&[SoftwareEngine]> {
        match &self.backend {
            Backend::Software(engines, _) => Some(engines),
            Backend::Cycle(_) => None,
        }
    }

    /// Searches an RNA reference.
    pub fn search(&self, reference: &RnaSeq) -> SearchOutcome {
        match &self.backend {
            Backend::Software(engines, threads) => {
                let hits = engines
                    .iter()
                    .map(|e| e.search_parallel(reference.as_slice(), self.threshold, *threads))
                    .reduce(merge_hits)
                    .unwrap_or_default();
                SearchOutcome {
                    hits,
                    threshold: self.threshold,
                    query_len: self.query.len(),
                    stats: None,
                }
            }
            Backend::Cycle(_) => self.search_packed(&PackedSeq::from_rna(reference)),
        }
    }

    /// Searches a packed (2-bit) reference — the cycle-accurate engine's
    /// native input; the software engine unpacks.
    pub fn search_packed(&self, reference: &PackedSeq) -> SearchOutcome {
        match &self.backend {
            Backend::Software(engines, threads) => {
                let rna = reference.to_rna();
                let hits = engines
                    .iter()
                    .map(|e| e.search_parallel(rna.as_slice(), self.threshold, *threads))
                    .reduce(merge_hits)
                    .unwrap_or_default();
                SearchOutcome {
                    hits,
                    threshold: self.threshold,
                    query_len: self.query.len(),
                    stats: None,
                }
            }
            Backend::Cycle(engines) => {
                let mut hits: Option<Vec<Hit>> = None;
                let mut stats: Option<EngineStats> = None;
                for engine in engines {
                    let run = engine.run(reference);
                    hits = Some(match hits {
                        Some(existing) => merge_hits(existing, run.hits),
                        None => run.hits,
                    });
                    // Multi-pass cost accumulates: each extra query is a
                    // full reference scan on hardware.
                    stats = Some(match stats {
                        None => run.stats,
                        Some(mut acc) => {
                            acc.cycles += run.stats.cycles;
                            acc.beats += run.stats.beats;
                            acc.bytes_read += run.stats.bytes_read;
                            acc.stall_cycles += run.stats.stall_cycles;
                            acc.wb_stall_cycles += run.stats.wb_stall_cycles;
                            acc.busy_cycles += run.stats.busy_cycles;
                            acc.instances_evaluated += run.stats.instances_evaluated;
                            acc.kernel_seconds += run.stats.kernel_seconds;
                            // Aggregate bandwidth over all passes.
                            acc.achieved_bandwidth = if acc.kernel_seconds > 0.0 {
                                acc.bytes_read as f64 / acc.kernel_seconds
                            } else {
                                0.0
                            };
                            acc
                        }
                    });
                }
                SearchOutcome {
                    hits: hits.unwrap_or_default(),
                    threshold: self.threshold,
                    query_len: self.query.len(),
                    stats,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::alphabet::Nucleotide;
    use fabp_bio::generate::{coding_rna_for_paper_patterns, random_protein, random_rna};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn threshold_resolution() {
        assert_eq!(Threshold::Absolute(42).resolve(100), 42);
        assert_eq!(Threshold::Fraction(0.9).resolve(150), 135);
        assert_eq!(Threshold::Fraction(1.5).resolve(10), 10); // clamped
        assert_eq!(Threshold::Fraction(0.0).resolve(10), 0);
    }

    #[test]
    fn software_and_cycle_engines_agree() {
        let mut rng = StdRng::seed_from_u64(61);
        let protein = random_protein(12, &mut rng);
        let coding = coding_rna_for_paper_patterns(&protein, &mut rng);
        let mut bases = random_rna(2_000, &mut rng).into_inner();
        bases.splice(700..700 + coding.len(), coding.iter().copied());
        let reference = RnaSeq::from(bases);

        let soft = FabpAligner::builder()
            .protein_query(&protein)
            .threshold(Threshold::Fraction(0.8))
            .engine(Engine::Software { threads: 4 })
            .build()
            .unwrap();
        let cycle = FabpAligner::builder()
            .protein_query(&protein)
            .threshold(Threshold::Fraction(0.8))
            .engine(Engine::CycleAccurate(Box::new(
                fabp_fpga::engine::EngineConfig::kintex7(0),
            )))
            .build()
            .unwrap();

        let a = soft.search(&reference);
        let b = cycle.search(&reference);
        assert_eq!(a.hits, b.hits);
        assert!(b.stats.is_some());
        assert!(a.stats.is_none());
        assert!(a.hits.iter().any(|h| h.position == 700));
    }

    #[test]
    fn default_threshold_is_90_percent() {
        let protein: ProteinSeq = "MKWVFMKWVF".parse().unwrap();
        let aligner = FabpAligner::builder()
            .protein_query(&protein)
            .build()
            .unwrap();
        assert_eq!(aligner.threshold(), 27); // ceil(30 * 0.9)
    }

    #[test]
    fn empty_query_is_rejected() {
        let err = FabpAligner::builder().build().unwrap_err();
        assert!(matches!(err, BuildError::EmptyQuery));
        let err = FabpAligner::builder()
            .rna_query(&RnaSeq::new())
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::EmptyQuery));
    }

    #[test]
    fn rna_query_does_exact_search() {
        let needle: RnaSeq = "ACGUACGU".parse().unwrap();
        let aligner = FabpAligner::builder()
            .rna_query(&needle)
            .threshold(Threshold::Fraction(1.0))
            .build()
            .unwrap();
        let mut reference: RnaSeq = "GGGG".parse().unwrap();
        reference.extend(needle.iter().copied());
        reference.extend([Nucleotide::G; 4]);
        let outcome = aligner.search(&reference);
        assert_eq!(outcome.hits.len(), 1);
        assert_eq!(outcome.hits[0].position, 4);
    }

    #[test]
    fn regions_are_derived_from_hits() {
        let protein: ProteinSeq = "MKW".parse().unwrap();
        let aligner = FabpAligner::builder()
            .protein_query(&protein)
            .threshold(Threshold::Absolute(0))
            .build()
            .unwrap();
        let reference = random_rna(100, &mut StdRng::seed_from_u64(62));
        let outcome = aligner.search(&reference);
        let regions = outcome.regions();
        assert_eq!(regions.len(), 1, "threshold 0 merges everything");
        assert_eq!(regions[0].hit_count, outcome.hits.len());
    }

    #[test]
    fn extended_ser_mode_recovers_agy_codons() {
        use fabp_bio::backtranslate::BackTranslationMode;
        use fabp_bio::generate::coding_rna_for;

        // Find a protein+coding pair whose serine uses AGU/AGC.
        let mut rng = StdRng::seed_from_u64(63);
        let protein: ProteinSeq = "MSFW".parse().unwrap();
        let coding = loop {
            let rna = coding_rna_for(&protein, &mut rng);
            if rna.as_slice()[3] == Nucleotide::A {
                break rna;
            }
        };
        let mut reference: RnaSeq = "GG".parse().unwrap();
        reference.extend(coding.iter().copied());
        reference.extend("GG".parse::<RnaSeq>().unwrap().iter().copied());

        let paper = FabpAligner::builder()
            .protein_query(&protein)
            .threshold(Threshold::Fraction(1.0))
            .build()
            .unwrap();
        assert_eq!(paper.passes(), 1);
        assert!(
            paper.search(&reference).hits.is_empty(),
            "paper mode misses AGY Ser"
        );

        let extended = FabpAligner::builder()
            .protein_query(&protein)
            .threshold(Threshold::Fraction(1.0))
            .mode(BackTranslationMode::ExtendedSer)
            .build()
            .unwrap();
        assert_eq!(extended.passes(), 2, "one extra pass for the single Ser");
        let hits = extended.search(&reference).hits;
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].position, 2);
    }

    #[test]
    fn extended_ser_cycle_engine_matches_software() {
        use fabp_bio::backtranslate::BackTranslationMode;
        let mut rng = StdRng::seed_from_u64(64);
        let protein: ProteinSeq = "MSSKW".parse().unwrap();
        let reference = random_rna(1_200, &mut rng);
        let build = |engine: Engine| {
            FabpAligner::builder()
                .protein_query(&protein)
                .threshold(Threshold::Fraction(0.6))
                .mode(BackTranslationMode::ExtendedSer)
                .engine(engine)
                .build()
                .unwrap()
        };
        let soft = build(Engine::Software { threads: 2 });
        let cycle = build(Engine::CycleAccurate(Box::new(
            fabp_fpga::engine::EngineConfig::kintex7(0),
        )));
        assert_eq!(soft.passes(), 3);
        let a = soft.search(&reference);
        let b = cycle.search(&reference);
        assert_eq!(a.hits, b.hits);
        // Multi-pass hardware cost: stats accumulate over passes.
        let stats = b.stats.unwrap();
        assert_eq!(stats.beats as usize, 3 * reference.len().div_ceil(256));
    }

    #[test]
    fn extended_mode_is_noop_for_rna_queries() {
        use fabp_bio::backtranslate::BackTranslationMode;
        let rna: RnaSeq = "ACGUACG".parse().unwrap();
        let aligner = FabpAligner::builder()
            .rna_query(&rna)
            .mode(BackTranslationMode::ExtendedSer)
            .build()
            .unwrap();
        assert_eq!(aligner.passes(), 1);
    }

    #[test]
    fn plan_is_exposed_for_cycle_engine() {
        let protein: ProteinSeq = "MKWVF".parse().unwrap();
        let soft = FabpAligner::builder()
            .protein_query(&protein)
            .build()
            .unwrap();
        assert!(soft.plan().is_none());
        let cycle = FabpAligner::builder()
            .protein_query(&protein)
            .engine(Engine::CycleAccurate(Box::new(
                fabp_fpga::engine::EngineConfig::kintex7(0),
            )))
            .build()
            .unwrap();
        assert_eq!(cycle.plan().unwrap().segments, 1);
    }
}
