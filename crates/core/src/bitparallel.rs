//! Bit-parallel (bit-sliced) software engine.
//!
//! The FPGA evaluates 256 alignment instances simultaneously — one match
//! bit per (instance, element) — and reduces them with Pop-Counters. This
//! engine is the same computation transposed onto 64-bit words, executed
//! as a **single fused, tiled streaming pass**:
//!
//! 1. For every *distinct* comparator truth table used by the query the
//!    engine materialises the comparator output column
//!    `W_t[p] = t(ctx(p))` — but only for an L1-sized *tile* of the
//!    reference at a time, and itself bit-sliced: 64 reference elements
//!    are packed into nucleotide bit-planes and each table's factored
//!    [`TableEval`] plan computes all 64 comparator outputs in a handful
//!    of word operations. The tile ring is recycled (`copy_within` of the
//!    `L_q`-element overlap) instead of allocating `O(reference)` heap
//!    vectors, so the working set stays cache-resident regardless of the
//!    reference size.
//! 2. Each 64-position block of the tile is scored by adding the `L_q`
//!    shifted column slices into vertical (bit-sliced) counters — the
//!    Pop-Counter, carried out across 64 instances at once, with a
//!    saturating-carry early exit.
//! 3. Thresholding is bit-sliced too: a borrow-propagating
//!    `score >= threshold` comparator produces the 64-position hit mask in
//!    `O(planes)` word operations (instead of extracting all 64 scores
//!    bit-by-bit), and the mask is walked with `trailing_zeros` so only
//!    actual hits pay for score extraction.
//!
//! Queries built from proteins qualify automatically (their dependent
//! elements sit at codon position 2, so per-window and absolute context
//! coincide); arbitrary element streams with early dependent elements are
//! rejected at construction.
//!
//! The original two-pass implementation is retained as
//! [`BitParallelEngine::search_two_pass`] — it is the differential-testing
//! oracle and the baseline the `bench_perf` harness measures the fused
//! path against.

use crate::hits::Hit;
use fabp_bio::alphabet::Nucleotide;
use fabp_bio::backtranslate::{DependentFn, PatternElement};
use fabp_encoding::encoder::EncodedQuery;
use fabp_telemetry::{labels, Counter, Registry};

/// Maximum score-counter planes. The engine sizes its counters to the
/// query (`⌈log2(L_q + 1)⌉` planes — the hardware's 10-bit alignment
/// score of §IV-B corresponds to queries up to 1023 elements), capped
/// here; queries longer than `2^MAX_PLANES − 1` elements saturate at the
/// cap (and saturated lanes always report as hits).
const MAX_PLANES: usize = 16;

/// 64-position blocks per tile. At ≤ 12 distinct tables this keeps the
/// column ring (`tables × (TILE_BLOCKS + overhang) × 8 B ≈ 14 KiB`)
/// inside a typical 32 KiB L1 data cache.
const TILE_BLOCKS: usize = 128;

/// Structural upper bound on distinct fused tables: 4 `Exact` + 4
/// `Conditional` + 4 `Dependent` pattern-element kinds.
const MAX_TABLES: usize = 12;

/// Error for queries the bit-parallel engine cannot score.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedQuery {
    /// Index of the offending element.
    pub element_index: usize,
}

impl std::fmt::Display for UnsupportedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "context-dependent element at index {} (< 2) requires the scalar engine",
            self.element_index
        )
    }
}

impl std::error::Error for UnsupportedQuery {}

/// The bit-parallel engine for one encoded query.
#[derive(Debug, Clone)]
pub struct BitParallelEngine {
    /// Distinct fused tables used by the query.
    tables: Vec<u64>,
    /// Factored bit-sliced evaluation plan per distinct table: computes
    /// the comparator column for 64 reference elements at once from the
    /// nucleotide bit-planes, instead of one table lookup per element.
    evals: Vec<TableEval>,
    /// Per query element: index into `tables`.
    element_table: Vec<u16>,
    query_len: usize,
    /// Counter planes needed to represent scores up to `query_len`.
    nplanes: usize,
    /// Telemetry handles, registered once at construction so the scan
    /// loops pay only an atomic add per call (one registry lookup per
    /// engine lifetime, not per search).
    queries_ctr: Counter,
    residues_ctr: Counter,
    hits_ctr: Counter,
}

impl BitParallelEngine {
    /// Builds the engine (telemetry goes to the global registry).
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedQuery`] when a context-dependent element
    /// appears at index 0 or 1 (impossible for protein-derived queries).
    ///
    /// # Panics
    ///
    /// Panics if the query is empty.
    pub fn new(query: &EncodedQuery) -> Result<BitParallelEngine, UnsupportedQuery> {
        BitParallelEngine::with_registry(query, Registry::global())
    }

    /// Builds the engine, publishing telemetry to `registry`.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedQuery`] when a context-dependent element
    /// appears at index 0 or 1 (impossible for protein-derived queries).
    ///
    /// # Panics
    ///
    /// Panics if the query is empty.
    pub fn with_registry(
        query: &EncodedQuery,
        registry: &Registry,
    ) -> Result<BitParallelEngine, UnsupportedQuery> {
        assert!(!query.is_empty(), "query must be non-empty");
        let per_element = fused_element_tables(query)?;
        let mut tables: Vec<u64> = Vec::new();
        let mut element_table = Vec::with_capacity(per_element.len());
        for table in per_element {
            element_table.push(intern_table(&mut tables, table));
        }

        debug_assert!(tables.len() <= MAX_TABLES, "{} fused tables", tables.len());
        let evals: Vec<TableEval> = tables.iter().map(|&t| TableEval::plan(t)).collect();

        let query_len = element_table.len();
        let nplanes = (usize::BITS - query_len.leading_zeros()) as usize;
        let engine = labels(&[("engine", "bitparallel")]);
        Ok(BitParallelEngine {
            tables,
            evals,
            element_table,
            query_len,
            nplanes: nplanes.clamp(1, MAX_PLANES),
            queries_ctr: registry.counter_with(
                "fabp_queries_processed_total",
                "Query scans started, by engine",
                engine.clone(),
            ),
            residues_ctr: registry.counter_with(
                "fabp_residues_scanned_total",
                "Alignment positions evaluated, by engine",
                engine.clone(),
            ),
            hits_ctr: registry.counter_with("fabp_hits_total", "Hits emitted, by engine", engine),
        })
    }

    /// Query length in elements.
    pub fn query_len(&self) -> usize {
        self.query_len
    }

    /// Number of distinct comparator tables (≤ 12 for protein queries).
    pub fn distinct_tables(&self) -> usize {
        self.tables.len()
    }

    /// Scans the reference with the fused, tiled, bit-sliced pass,
    /// reporting hits with `score >= threshold`.
    pub fn search(&self, reference: &[Nucleotide], threshold: u32) -> Vec<Hit> {
        let qlen = self.query_len;
        if reference.len() < qlen {
            return Vec::new();
        }
        let positions = reference.len() - qlen + 1;
        self.queries_ctr.inc();
        self.residues_ctr.add(positions as u64);

        let tile_positions = TILE_BLOCKS * 64;
        // Extra words holding the `L_q − 1` cross-tile overlap bits, plus
        // the 2-word padding `read_unaligned` requires.
        let overhang_words = (qlen - 1).div_ceil(64);
        let tile_words = TILE_BLOCKS + overhang_words + 2;
        let ntables = self.tables.len();
        // One flat allocation for the whole scan: the tile ring. Invariant
        // maintained below: every bit at a relative position >= the encode
        // frontier is zero, so filling can OR bits in.
        let mut cols = vec![0u64; ntables * tile_words];

        let mut hits = Vec::new();
        // Next reference element to run through the comparator columns.
        let mut frontier = 0usize;
        let mut tile_start = 0usize;
        while tile_start < positions {
            let tile_valid = (positions - tile_start).min(tile_positions);
            let need_until = (tile_start + tile_positions + qlen - 1).min(reference.len());
            if tile_start > 0 {
                // Recycle the ring: the already-encoded overlap bits
                // (relative positions >= tile_positions) slide from word
                // offset TILE_BLOCKS to the front; the vacated tail is
                // cleared for the new tile's columns.
                for t in 0..ntables {
                    let buf = &mut cols[t * tile_words..(t + 1) * tile_words];
                    buf.copy_within(TILE_BLOCKS.., 0);
                    for w in &mut buf[tile_words - TILE_BLOCKS..] {
                        *w = 0;
                    }
                }
            }
            debug_assert!(frontier >= tile_start && frontier <= need_until);
            // Fused pass 1: extend the comparator columns to this tile's
            // horizon, **bit-sliced**. Each 64-element word of the
            // reference is packed into 2-bit nucleotide planes, expanded
            // into one-hot lane masks for the current / previous /
            // previous-previous element (`e0`/`e1`/`e2`, with cross-word
            // carry-in from the last elements of the preceding word), and
            // every distinct table evaluates all 64 comparator outputs at
            // once through its factored [`TableEval`] plan — no per-element
            // table lookups at all.
            //
            // The word walk restarts at the 64-aligned floor of the
            // frontier; recomputing the already-encoded prefix of that word
            // is safe because the fill is a deterministic function of the
            // reference, so OR-ing the word in again is idempotent.
            // `tile_start` is a multiple of `TILE_BLOCKS * 64`, hence
            // `rel ≡ p (mod 64)` and word slots line up exactly.
            let mut w_pos = frontier & !63;
            while w_pos < need_until {
                let end = (w_pos + 64).min(reference.len());
                let mut b0 = 0u64;
                let mut b1 = 0u64;
                for (i, base) in reference[w_pos..end].iter().enumerate() {
                    let c = u64::from(base.code2());
                    b0 |= (c & 1) << i;
                    b1 |= (c >> 1) << i;
                }
                let (n0, n1) = (!b0, !b1);
                // One-hot planes: e0[v] has bit i set iff element
                // w_pos + i is nucleotide code v.
                let e0 = [n1 & n0, n1 & b0, b1 & n0, b1 & b0];
                // Previous-element planes: shifted e0 with carry-in from
                // the word boundary (positions before the reference start
                // backfill as code 0, matching the rolling ctx = 0 seed).
                let pc1 = prev_code(reference, w_pos, 1);
                let pc2 = prev_code(reference, w_pos, 2);
                let mut e1 = [0u64; 4];
                let mut e2 = [0u64; 4];
                for v in 0..4 {
                    e1[v] = (e0[v] << 1) | u64::from(pc1 == v as u8);
                    e2[v] =
                        (e0[v] << 2) | (u64::from(pc1 == v as u8) << 1) | u64::from(pc2 == v as u8);
                }
                let word = (w_pos - tile_start) / 64;
                for (t, eval) in self.evals.iter().enumerate() {
                    let m = eval.eval(&e0, &e1, &e2);
                    if m != 0 {
                        cols[t * tile_words + word] |= m;
                    }
                }
                w_pos += 64;
            }
            frontier = need_until;

            // Fused pass 2: vertical-counter accumulation and bit-sliced
            // thresholding, 64 positions per block, straight out of the
            // still-hot tile ring.
            let mut block = 0usize;
            while block < tile_valid {
                let valid = (tile_valid - block).min(64);
                let lane_mask = if valid == 64 {
                    u64::MAX
                } else {
                    (1u64 << valid) - 1
                };
                let mut plane_store = [0u64; MAX_PLANES];
                let planes = &mut plane_store[..self.nplanes];
                let mut saturated = 0u64;
                let mut abandoned = false;
                for (i, &slot) in self.element_table.iter().enumerate() {
                    let col = &cols[slot as usize * tile_words..(slot as usize + 1) * tile_words];
                    // Bit-sliced increment: add the match mask into the
                    // counters (ripple across planes, early exit once the
                    // carry clears; a carry out of the top plane
                    // saturates instead of wrapping).
                    let mut carry = read_unaligned(col, block + i);
                    for plane in planes.iter_mut() {
                        if carry == 0 {
                            break;
                        }
                        let t = *plane & carry;
                        *plane ^= carry;
                        carry = t;
                    }
                    saturated |= carry;
                    // Bit-sliced early abandon (the 64-lane analogue of
                    // the scalar mismatch-budget exit): a lane can still
                    // reach the threshold only if its counter is already
                    // at `threshold − remaining`. Once no valid lane can,
                    // the rest of the block's accumulation is dead work.
                    if i & 15 == 15 {
                        let remaining = (qlen - 1 - i) as u32;
                        let needed = threshold.saturating_sub(remaining);
                        if needed > 0
                            && (ge_threshold_mask(planes, needed) | saturated) & lane_mask == 0
                        {
                            abandoned = true;
                            break;
                        }
                    }
                }
                if abandoned {
                    block += 64;
                    continue;
                }
                // O(planes) word ops produce the 64-lane hit mask; only
                // set lanes pay for score extraction.
                let mut hit_mask = (ge_threshold_mask(planes, threshold) | saturated) & lane_mask;
                while hit_mask != 0 {
                    let j = hit_mask.trailing_zeros() as usize;
                    hit_mask &= hit_mask - 1;
                    let score = if (saturated >> j) & 1 == 1 {
                        ((1u64 << self.nplanes) - 1) as u32
                    } else {
                        let mut s = 0u32;
                        for (b, &plane) in planes.iter().enumerate() {
                            s |= (((plane >> j) & 1) as u32) << b;
                        }
                        s
                    };
                    hits.push(Hit {
                        position: tile_start + block + j,
                        score,
                    });
                }
                block += 64;
            }
            tile_start += tile_positions;
        }
        self.hits_ctr.add(hits.len() as u64);
        hits
    }

    /// The original two-pass scan: pass 1 materialises full-length column
    /// bitvectors on the heap, pass 2 accumulates vertical counters and
    /// extracts every score bit-by-bit.
    ///
    /// Kept (without telemetry) as the differential-testing oracle for
    /// [`BitParallelEngine::search`] and as the baseline the `bench_perf`
    /// harness measures the fused path against. Scores above
    /// `2^MAX_PLANES − 1` saturate, matching the fused path.
    pub fn search_two_pass(&self, reference: &[Nucleotide], threshold: u32) -> Vec<Hit> {
        let qlen = self.query_len;
        if reference.len() < qlen {
            return Vec::new();
        }
        let positions = reference.len() - qlen + 1;
        let words = reference.len().div_ceil(64) + 2; // padding for shifts

        // Pass 1: comparator output columns, one bitvector per distinct
        // table: W_t[p] = table[ctx(p)].
        let mut columns: Vec<Vec<u64>> = vec![vec![0u64; words]; self.tables.len()];
        let mut ctx: u8 = 0;
        for (p, &base) in reference.iter().enumerate() {
            ctx = ((ctx << 2) | base.code2()) & 0b11_1111;
            let word = p / 64;
            let bit = p % 64;
            for (t, &table) in self.tables.iter().enumerate() {
                columns[t][word] |= ((table >> ctx) & 1) << bit;
            }
        }

        // Pass 2: vertical-counter accumulation, 64 positions per block.
        let mut hits = Vec::new();
        let mut block_base = 0usize;
        while block_base < positions {
            let valid = (positions - block_base).min(64);
            let mut plane_store = [0u64; MAX_PLANES];
            let planes = &mut plane_store[..self.nplanes];
            let mut saturated = 0u64;
            for (i, &slot) in self.element_table.iter().enumerate() {
                let mut carry = read_unaligned(&columns[slot as usize], block_base + i);
                for plane in planes.iter_mut() {
                    if carry == 0 {
                        break;
                    }
                    let t = *plane & carry;
                    *plane ^= carry;
                    carry = t;
                }
                saturated |= carry;
            }
            // Extract scores and threshold, position by position.
            for j in 0..valid {
                let mut score = 0u32;
                for (b, &plane) in planes.iter().enumerate() {
                    score |= (((plane >> j) & 1) as u32) << b;
                }
                if (saturated >> j) & 1 == 1 {
                    score = ((1u64 << self.nplanes) - 1) as u32;
                }
                if score >= threshold || (saturated >> j) & 1 == 1 {
                    hits.push(Hit {
                        position: block_base + j,
                        score,
                    });
                }
            }
            block_base += 64;
        }
        hits
    }
}

/// Queries scored per pass by [`MultiQueryEngine`]: the SIMD width of the
/// portable `[u64; 4]` lane abstraction (one 256-bit AVX2 register's
/// worth of 64-bit words; the element-wise array loops below are
/// auto-vectorized on targets that have the registers, and compile to
/// four scalar ops on targets that do not).
pub const LANES: usize = 4;

/// Per-element fused 64-entry comparator tables for one encoded query
/// (bit `ctx = prev2 << 4 | prev1 << 2 | cur`), validating that no
/// context-dependent element sits at index 0 or 1.
fn fused_element_tables(query: &EncodedQuery) -> Result<Vec<u64>, UnsupportedQuery> {
    let elements = query.decode();
    let mut tables = Vec::with_capacity(elements.len());
    for (i, &element) in elements.elements().iter().enumerate() {
        if i < 2 {
            if let PatternElement::Dependent(f) = element {
                if f != DependentFn::Any {
                    return Err(UnsupportedQuery { element_index: i });
                }
            }
        }
        let mut table = 0u64;
        for ctx in 0..64u8 {
            let cur = Nucleotide::from_code2(ctx & 0b11);
            let prev1 = Some(Nucleotide::from_code2((ctx >> 2) & 0b11));
            let prev2 = Some(Nucleotide::from_code2((ctx >> 4) & 0b11));
            if element.matches(cur, prev1, prev2) {
                table |= 1 << ctx;
            }
        }
        tables.push(table);
    }
    Ok(tables)
}

/// Interns `table` into `tables`, returning its slot.
fn intern_table(tables: &mut Vec<u64>, table: u64) -> u16 {
    match tables.iter().position(|&t| t == table) {
        Some(slot) => slot as u16,
        None => {
            tables.push(table);
            (tables.len() - 1) as u16
        }
    }
}

/// One query's view of a [`MultiQueryEngine`] lane.
#[derive(Debug, Clone)]
struct LaneQuery {
    /// Per query element: slot into the engine's *union* table set.
    element_table: Vec<u16>,
    query_len: usize,
    /// Counter planes a single-query engine would use for this query —
    /// determines the saturated-score cap, matching
    /// [`BitParallelEngine`] bit-for-bit.
    nplanes: usize,
}

/// Multi-query bit-sliced engine: scores up to [`LANES`] queries in one
/// fused pass over a single decoded column stream.
///
/// This is the software analogue of the paper's FPGA running many
/// alignment instances against one streamed reference: the expensive
/// per-reference work — packing 64 bases into nucleotide bit-planes,
/// expanding the one-hot current/prev1/prev2 lane masks, and evaluating
/// every distinct comparator table through its factored [`TableEval`]
/// plan — is paid **once per tile** and shared by all lanes, because the
/// lanes' fused tables are interned into one *union* table set
/// (protein-derived queries draw from at most [`MAX_TABLES`] distinct
/// tables total, so four queries' union is no wider than one query's
/// worst case). Only the per-element counter accumulation remains
/// per-query: each 64-position block of the hot tile is scored by every
/// lane in turn, each lane running the exact single-query vertical
/// counter loop — its own plane count, carry exit and early abandon —
/// so the shared fill is amortised without giving up any per-lane
/// control-flow shortcut.
///
/// Each lane's hit list is bit-identical to what its own
/// [`BitParallelEngine::search`] / [`BitParallelEngine::search_two_pass`]
/// would report (property-tested), including per-lane thresholds,
/// per-lane early abandon, and per-lane score saturation. Lanes with
/// different query lengths are supported: shorter lanes simply stop
/// contributing columns once their elements are exhausted, and their
/// counters freeze until extraction.
#[derive(Debug, Clone)]
pub struct MultiQueryEngine {
    /// Union of the lanes' distinct fused tables.
    tables: Vec<u64>,
    evals: Vec<TableEval>,
    lanes: Vec<LaneQuery>,
    max_qlen: usize,
    queries_ctr: Counter,
    residues_ctr: Counter,
    hits_ctr: Counter,
}

impl MultiQueryEngine {
    /// Builds a multi-query engine over `queries` (1 ..= [`LANES`] of
    /// them; telemetry goes to the global registry).
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedQuery`] when any query has a
    /// context-dependent element at index 0 or 1 (impossible for
    /// protein-derived queries) — the caller falls back to per-query
    /// scalar scanning.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty, longer than [`LANES`], or contains
    /// an empty query.
    pub fn new(queries: &[&EncodedQuery]) -> Result<MultiQueryEngine, UnsupportedQuery> {
        MultiQueryEngine::with_registry(queries, Registry::global())
    }

    /// Builds the engine, publishing telemetry to `registry`. See
    /// [`MultiQueryEngine::new`].
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedQuery`] when any query has a
    /// context-dependent element at index 0 or 1.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty, longer than [`LANES`], or contains
    /// an empty query.
    pub fn with_registry(
        queries: &[&EncodedQuery],
        registry: &Registry,
    ) -> Result<MultiQueryEngine, UnsupportedQuery> {
        assert!(
            !queries.is_empty() && queries.len() <= LANES,
            "1..={LANES} queries per multi-query engine, got {}",
            queries.len()
        );
        let mut tables: Vec<u64> = Vec::new();
        let mut lanes = Vec::with_capacity(queries.len());
        for query in queries {
            assert!(!query.is_empty(), "query must be non-empty");
            let per_element = fused_element_tables(query)?;
            let element_table: Vec<u16> = per_element
                .into_iter()
                .map(|t| intern_table(&mut tables, t))
                .collect();
            let query_len = element_table.len();
            let nplanes = (usize::BITS - query_len.leading_zeros()) as usize;
            lanes.push(LaneQuery {
                element_table,
                query_len,
                nplanes: nplanes.clamp(1, MAX_PLANES),
            });
        }
        let evals: Vec<TableEval> = tables.iter().map(|&t| TableEval::plan(t)).collect();
        let max_qlen = lanes.iter().map(|l| l.query_len).max().unwrap_or(1);
        let engine = labels(&[("engine", "multiquery")]);
        Ok(MultiQueryEngine {
            tables,
            evals,
            lanes,
            max_qlen,
            queries_ctr: registry.counter_with(
                "fabp_queries_processed_total",
                "Query scans started, by engine",
                engine.clone(),
            ),
            residues_ctr: registry.counter_with(
                "fabp_residues_scanned_total",
                "Alignment positions evaluated, by engine",
                engine.clone(),
            ),
            hits_ctr: registry.counter_with("fabp_hits_total", "Hits emitted, by engine", engine),
        })
    }

    /// Number of occupied lanes (1 ..= [`LANES`]).
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Longest lane's query length — the window for slice planning.
    pub fn max_query_len(&self) -> usize {
        self.max_qlen
    }

    /// Query length of `lane`.
    pub fn query_len(&self, lane: usize) -> usize {
        self.lanes[lane].query_len
    }

    /// Distinct comparator tables in the lanes' union.
    pub fn distinct_tables(&self) -> usize {
        self.tables.len()
    }

    /// Scans the reference once, scoring every lane against its own
    /// threshold (`thresholds[l]` applies to lane `l`). Returns one
    /// position-sorted hit list per lane, each bit-identical to that
    /// lane's single-query [`BitParallelEngine::search`].
    ///
    /// # Panics
    ///
    /// Panics if `thresholds.len() != self.lanes()`.
    pub fn search(&self, reference: &[Nucleotide], thresholds: &[u32]) -> Vec<Vec<Hit>> {
        assert_eq!(thresholds.len(), self.lanes.len(), "one threshold per lane");
        let nlanes = self.lanes.len();
        let mut results: Vec<Vec<Hit>> = vec![Vec::new(); nlanes];
        let mut lane_positions = [0usize; LANES];
        let mut positions = 0usize;
        for (l, lane) in self.lanes.iter().enumerate() {
            lane_positions[l] = reference.len().saturating_sub(lane.query_len - 1);
            if reference.len() < lane.query_len {
                lane_positions[l] = 0;
            }
            positions = positions.max(lane_positions[l]);
        }
        if positions == 0 {
            return results;
        }
        self.queries_ctr.add(nlanes as u64);
        self.residues_ctr
            .add(lane_positions.iter().map(|&p| p as u64).sum());

        let tile_positions = TILE_BLOCKS * 64;
        let overhang_words = (self.max_qlen - 1).div_ceil(64);
        let tile_words = TILE_BLOCKS + overhang_words + 2;
        let ntables = self.tables.len();
        let mut cols = vec![0u64; ntables * tile_words];

        let mut frontier = 0usize;
        let mut tile_start = 0usize;
        while tile_start < positions {
            let tile_valid = (positions - tile_start).min(tile_positions);
            let need_until = (tile_start + tile_positions + self.max_qlen - 1).min(reference.len());
            if tile_start > 0 {
                for t in 0..ntables {
                    let buf = &mut cols[t * tile_words..(t + 1) * tile_words];
                    buf.copy_within(TILE_BLOCKS.., 0);
                    for w in &mut buf[tile_words - TILE_BLOCKS..] {
                        *w = 0;
                    }
                }
            }
            debug_assert!(frontier >= tile_start && frontier <= need_until);
            // Pass 1: one shared column fill for every lane — identical
            // to the single-query fused fill, over the union tables.
            let mut w_pos = frontier & !63;
            while w_pos < need_until {
                let end = (w_pos + 64).min(reference.len());
                let mut b0 = 0u64;
                let mut b1 = 0u64;
                for (i, base) in reference[w_pos..end].iter().enumerate() {
                    let c = u64::from(base.code2());
                    b0 |= (c & 1) << i;
                    b1 |= (c >> 1) << i;
                }
                let (n0, n1) = (!b0, !b1);
                let e0 = [n1 & n0, n1 & b0, b1 & n0, b1 & b0];
                let pc1 = prev_code(reference, w_pos, 1);
                let pc2 = prev_code(reference, w_pos, 2);
                let mut e1 = [0u64; 4];
                let mut e2 = [0u64; 4];
                for v in 0..4 {
                    e1[v] = (e0[v] << 1) | u64::from(pc1 == v as u8);
                    e2[v] =
                        (e0[v] << 2) | (u64::from(pc1 == v as u8) << 1) | u64::from(pc2 == v as u8);
                }
                let word = (w_pos - tile_start) / 64;
                for (t, eval) in self.evals.iter().enumerate() {
                    let m = eval.eval(&e0, &e1, &e2);
                    if m != 0 {
                        cols[t * tile_words + word] |= m;
                    }
                }
                w_pos += 64;
            }
            frontier = need_until;

            // Pass 2: block-interleaved per-lane vertical counters. Each
            // lane runs the single-query accumulation loop — its own
            // plane count, its own carry exit, its own 16-element early
            // abandon — over the *shared*, still-cache-hot tile. An
            // interleaved `[u64; LANES]` ripple was tried first and
            // measured ~3× slower per lane: rippling the full lane array
            // per element forfeits the per-lane all-zero-carry exit and
            // keeps every lane accumulating until the *last* lane
            // abandons (see docs/PERFORMANCE.md). Lane independence is
            // what makes this exact: counters never interact across
            // lanes, only the column fill is shared.
            let mut block = 0usize;
            while block < tile_valid {
                for (l, lane) in self.lanes.iter().enumerate() {
                    let valid = lane_positions[l].saturating_sub(tile_start + block).min(64);
                    if valid == 0 {
                        continue;
                    }
                    let lane_mask = if valid == 64 {
                        u64::MAX
                    } else {
                        (1u64 << valid) - 1
                    };
                    let threshold = thresholds[l];
                    let mut plane_store = [0u64; MAX_PLANES];
                    let planes = &mut plane_store[..lane.nplanes];
                    let mut saturated = 0u64;
                    let mut abandoned = false;
                    for (i, &slot) in lane.element_table[..lane.query_len].iter().enumerate() {
                        let col =
                            &cols[slot as usize * tile_words..(slot as usize + 1) * tile_words];
                        let mut carry = read_unaligned(col, block + i);
                        for plane in planes.iter_mut() {
                            if carry == 0 {
                                break;
                            }
                            let t = *plane & carry;
                            *plane ^= carry;
                            carry = t;
                        }
                        saturated |= carry;
                        if i & 15 == 15 {
                            let remaining = (lane.query_len - 1 - i) as u32;
                            let needed = threshold.saturating_sub(remaining);
                            if needed > 0
                                && (ge_threshold_mask(planes, needed) | saturated) & lane_mask == 0
                            {
                                abandoned = true;
                                break;
                            }
                        }
                    }
                    if abandoned {
                        continue;
                    }
                    let mut hit_mask =
                        (ge_threshold_mask(planes, threshold) | saturated) & lane_mask;
                    while hit_mask != 0 {
                        let j = hit_mask.trailing_zeros() as usize;
                        hit_mask &= hit_mask - 1;
                        let score = if (saturated >> j) & 1 == 1 {
                            ((1u64 << lane.nplanes) - 1) as u32
                        } else {
                            let mut s = 0u32;
                            for (b, &plane) in planes.iter().enumerate() {
                                s |= (((plane >> j) & 1) as u32) << b;
                            }
                            s
                        };
                        results[l].push(Hit {
                            position: tile_start + block + j,
                            score,
                        });
                    }
                }
                block += 64;
            }
            tile_start += tile_positions;
        }
        self.hits_ctr
            .add(results.iter().map(|r| r.len() as u64).sum());
        results
    }
}

/// Factored bit-sliced evaluation plan for one fused 64-entry comparator
/// table, exploiting the structure of back-translated pattern elements:
/// `Exact`/`Conditional` tables ignore context entirely (`CurOnly`),
/// `Dependent(Stop)` looks one element back (`Prev1`), `Dependent(Leu)` /
/// `Dependent(Arg)` look two back (`Prev2`). Each variant stores, per
/// previous-nucleotide digit, the 4-bit set of *current* nucleotides the
/// table accepts, so 64 comparator outputs cost a handful of AND/OR word
/// operations instead of 64 table lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TableEval {
    /// Output depends only on the current nucleotide: accepted-set mask.
    CurOnly(u8),
    /// Output depends on (prev1, cur): accepted-cur set per prev1 digit.
    Prev1([u8; 4]),
    /// Output depends on (prev2, cur): accepted-cur set per prev2 digit.
    Prev2([u8; 4]),
    /// Full (prev2, prev1, cur) dependence: accepted-cur set per
    /// (prev2, prev1) pair. Unreachable for protein-derived queries but
    /// kept for completeness.
    General([u8; 16]),
}

impl TableEval {
    /// Factors a fused table (bit `ctx = prev2 << 4 | prev1 << 2 | cur`)
    /// into the cheapest evaluation plan that reproduces it exactly.
    fn plan(table: u64) -> TableEval {
        let mut sets = [0u8; 16];
        for v2 in 0..4usize {
            for v1 in 0..4usize {
                for v0 in 0..4usize {
                    let ctx = (v2 << 4) | (v1 << 2) | v0;
                    if (table >> ctx) & 1 == 1 {
                        sets[v2 * 4 + v1] |= 1 << v0;
                    }
                }
            }
        }
        if sets.iter().all(|&s| s == sets[0]) {
            return TableEval::CurOnly(sets[0]);
        }
        if (0..4).all(|v1| (0..4).all(|v2| sets[v2 * 4 + v1] == sets[v1])) {
            return TableEval::Prev1([sets[0], sets[1], sets[2], sets[3]]);
        }
        if (0..4).all(|v2| (0..4).all(|v1| sets[v2 * 4 + v1] == sets[v2 * 4])) {
            return TableEval::Prev2([sets[0], sets[4], sets[8], sets[12]]);
        }
        TableEval::General(sets)
    }

    /// Evaluates the table for 64 reference elements at once from the
    /// one-hot current / prev1 / prev2 nucleotide planes.
    #[inline]
    fn eval(&self, e0: &[u64; 4], e1: &[u64; 4], e2: &[u64; 4]) -> u64 {
        match *self {
            TableEval::CurOnly(set) => cur_mask(e0, set),
            TableEval::Prev1(sets) => {
                let mut r = 0u64;
                for (v, &set) in sets.iter().enumerate() {
                    let m = cur_mask(e0, set);
                    if m != 0 {
                        r |= e1[v] & m;
                    }
                }
                r
            }
            TableEval::Prev2(sets) => {
                let mut r = 0u64;
                for (v, &set) in sets.iter().enumerate() {
                    let m = cur_mask(e0, set);
                    if m != 0 {
                        r |= e2[v] & m;
                    }
                }
                r
            }
            TableEval::General(sets) => {
                let mut r = 0u64;
                for v2 in 0..4 {
                    for v1 in 0..4 {
                        let m = cur_mask(e0, sets[v2 * 4 + v1]);
                        if m != 0 {
                            r |= e2[v2] & e1[v1] & m;
                        }
                    }
                }
                r
            }
        }
    }
}

/// Lane mask of elements whose current nucleotide is in `set` (bit `v`
/// set ⇔ code `v` accepted), from the one-hot current planes.
#[inline]
fn cur_mask(e0: &[u64; 4], set: u8) -> u64 {
    match set {
        0 => 0,
        // The e0 planes partition every valid lane; invalid tail lanes of
        // a final partial word may pick up spurious bits here, but those
        // relative positions are never read by pass 2.
        0b1111 => u64::MAX,
        _ => {
            let mut m = 0u64;
            for (v, &plane) in e0.iter().enumerate() {
                if set & (1 << v) != 0 {
                    m |= plane;
                }
            }
            m
        }
    }
}

/// 2-bit code of the element `back` positions before `pos`, backfilling
/// code 0 before the reference start (the rolling-context seed).
#[inline]
fn prev_code(reference: &[Nucleotide], pos: usize, back: usize) -> u8 {
    if pos >= back {
        reference[pos - back].code2()
    } else {
        0
    }
}

/// Bit-sliced `score >= threshold` over 64 lanes in `O(planes)` word
/// operations: computes the borrow of `score − threshold` per lane
/// (full-subtractor recurrence) — lanes without a final borrow meet the
/// threshold.
#[inline]
fn ge_threshold_mask(planes: &[u64], threshold: u32) -> u64 {
    if threshold == 0 {
        return u64::MAX;
    }
    debug_assert!(planes.len() < 64);
    if u64::from(threshold) > (1u64 << planes.len()) - 1 {
        // Unreachable by any unsaturated counter.
        return 0;
    }
    let mut borrow = 0u64;
    for (b, &s) in planes.iter().enumerate() {
        let t = if (threshold >> b) & 1 == 1 {
            u64::MAX
        } else {
            0
        };
        borrow = (!s & t) | ((!s | t) & borrow);
    }
    !borrow
}

/// Reads 64 bits starting at bit offset `bit_pos` from a padded word
/// vector.
///
/// Callers must size `words` with **two padding words** past the last
/// addressed position so the unconditional `words[word + 1]` access in
/// the unaligned branch stays in bounds; the invariant is debug-asserted.
#[inline]
fn read_unaligned(words: &[u64], bit_pos: usize) -> u64 {
    let word = bit_pos / 64;
    debug_assert!(
        word + 1 < words.len(),
        "read_unaligned at bit {bit_pos} violates the 2-word padding invariant \
         (word {word}, len {})",
        words.len()
    );
    let off = bit_pos % 64;
    if off == 0 {
        words[word]
    } else {
        (words[word] >> off) | (words[word + 1] << (64 - off))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::software::SoftwareEngine;
    use fabp_bio::backtranslate::BackTranslatedQuery;
    use fabp_bio::generate::{random_protein, random_rna};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Positions covered by one tile, mirrored from the engine constant so
    /// tests exercise real tile boundaries.
    const TILE_POSITIONS: usize = TILE_BLOCKS * 64;

    #[test]
    fn matches_scalar_engine_on_random_data() {
        let mut rng = StdRng::seed_from_u64(0xB17A);
        for _ in 0..5 {
            let protein = random_protein(20, &mut rng);
            let query = EncodedQuery::from_protein(&protein);
            let scalar = SoftwareEngine::new(&query);
            let parallel = BitParallelEngine::new(&query).unwrap();
            let reference = random_rna(5_000, &mut rng);
            for threshold in [0u32, 30, 45, 60] {
                let fused = parallel.search(reference.as_slice(), threshold);
                assert_eq!(
                    fused,
                    scalar.search(reference.as_slice(), threshold),
                    "threshold {threshold}"
                );
                assert_eq!(
                    fused,
                    parallel.search_two_pass(reference.as_slice(), threshold),
                    "two-pass oracle disagrees at threshold {threshold}"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The fused/tiled path agrees with the scalar engine across
        /// tile-boundary-straddling reference lengths and *all* threshold
        /// values `0..=qlen`.
        #[test]
        fn fused_tiled_path_matches_scalar(
            protein_len in 3usize..=12,
            len_class in 0usize..6,
            jitter in 0usize..130,
            seed in 0u64..1_000_000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let protein = random_protein(protein_len, &mut rng);
            let query = EncodedQuery::from_protein(&protein);
            let qlen = query.len();
            // Length families: shorter than the query, exactly the query,
            // block-edge, straddling one tile boundary, straddling two.
            let len = match len_class {
                0 => qlen.saturating_sub(jitter % 3),
                1 => qlen + jitter % 4,
                2 => qlen - 1 + 64 * (1 + jitter % 4), // positions % 64 == 0
                3 => qlen - 1 + TILE_POSITIONS - 65 + jitter,
                4 => qlen - 1 + TILE_POSITIONS + jitter,
                _ => qlen - 1 + 2 * TILE_POSITIONS - 65 + jitter,
            };
            let reference = random_rna(len, &mut rng);
            let scalar = SoftwareEngine::new(&query);
            let parallel = BitParallelEngine::new(&query).unwrap();

            if len < qlen {
                prop_assert!(parallel.search(reference.as_slice(), 0).is_empty());
            } else {
                // One scalar scoring pass; thresholds derived by filtering.
                let scores = scalar.score_all(reference.as_slice());
                for threshold in 0..=qlen as u32 {
                    let expected: Vec<Hit> = scores
                        .iter()
                        .enumerate()
                        .filter(|&(_, &s)| s >= threshold)
                        .map(|(position, &score)| Hit { position, score })
                        .collect();
                    let fused = parallel.search(reference.as_slice(), threshold);
                    prop_assert_eq!(
                        &fused, &expected,
                        "len {} threshold {}", len, threshold
                    );
                }
            }
        }
    }

    #[test]
    fn block_boundaries_are_exact() {
        // References sized to hit 64-position block edges exactly.
        let mut rng = StdRng::seed_from_u64(0xB17B);
        let protein = random_protein(5, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let scalar = SoftwareEngine::new(&query);
        let parallel = BitParallelEngine::new(&query).unwrap();
        for len in [15usize, 64, 78, 79, 128, 142, 143, 200] {
            let reference = random_rna(len, &mut rng);
            assert_eq!(
                parallel.search(reference.as_slice(), 0),
                scalar.search(reference.as_slice(), 0),
                "len {len}"
            );
        }
    }

    #[test]
    fn positions_multiple_of_64_boundary_is_exact() {
        // positions % 64 == 0: the final block is exactly full, so the
        // lane mask must be all-ones and the overhang reads must stay
        // within the padded ring.
        let mut rng = StdRng::seed_from_u64(0xB17D);
        let protein = random_protein(7, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let qlen = query.len();
        let scalar = SoftwareEngine::new(&query);
        let parallel = BitParallelEngine::new(&query).unwrap();
        for blocks in [1usize, 2, TILE_BLOCKS, TILE_BLOCKS + 1] {
            let len = qlen - 1 + blocks * 64; // positions == blocks * 64
            let reference = random_rna(len, &mut rng);
            for threshold in [0u32, (qlen / 2) as u32, qlen as u32] {
                assert_eq!(
                    parallel.search(reference.as_slice(), threshold),
                    scalar.search(reference.as_slice(), threshold),
                    "blocks {blocks} threshold {threshold}"
                );
            }
        }
    }

    #[test]
    fn reference_exactly_query_length_is_exact() {
        // reference length == qlen: a single alignment position.
        let mut rng = StdRng::seed_from_u64(0xB17E);
        for _ in 0..10 {
            let protein = random_protein(6, &mut rng);
            let query = EncodedQuery::from_protein(&protein);
            let qlen = query.len();
            let scalar = SoftwareEngine::new(&query);
            let parallel = BitParallelEngine::new(&query).unwrap();
            let reference = random_rna(qlen, &mut rng);
            for threshold in [0u32, 1, qlen as u32] {
                let hits = parallel.search(reference.as_slice(), threshold);
                assert_eq!(
                    hits,
                    scalar.search(reference.as_slice(), threshold),
                    "threshold {threshold}"
                );
                assert!(hits.iter().all(|h| h.position == 0));
            }
        }
    }

    #[test]
    fn tile_boundary_straddling_hits_are_exact() {
        // Plant perfect hits right at the tile seam so windows straddle
        // the recycled overlap.
        let mut rng = StdRng::seed_from_u64(0xB17F);
        let protein = random_protein(10, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let qlen = query.len();
        let scalar = SoftwareEngine::new(&query);
        let parallel = BitParallelEngine::new(&query).unwrap();
        let len = qlen - 1 + TILE_POSITIONS + 500;
        let reference = random_rna(len, &mut rng);
        for threshold in [0u32, (qlen as u32) / 2, qlen as u32 - 1] {
            assert_eq!(
                parallel.search(reference.as_slice(), threshold),
                scalar.search(reference.as_slice(), threshold),
                "threshold {threshold}"
            );
        }
    }

    #[test]
    fn distinct_table_count_is_small() {
        let mut rng = StdRng::seed_from_u64(0xB17C);
        let protein = random_protein(250, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let engine = BitParallelEngine::new(&query).unwrap();
        assert!(
            engine.distinct_tables() <= 12,
            "{} distinct tables",
            engine.distinct_tables()
        );
    }

    #[test]
    fn early_dependent_element_is_rejected() {
        use fabp_bio::backtranslate::{DependentFn, PatternElement};
        let elements = vec![
            PatternElement::Dependent(DependentFn::Leu),
            PatternElement::Exact(Nucleotide::A),
            PatternElement::Exact(Nucleotide::A),
        ];
        let query =
            EncodedQuery::from_back_translated(&BackTranslatedQuery::from_elements(elements));
        let err = BitParallelEngine::new(&query).unwrap_err();
        assert_eq!(err.element_index, 0);
        assert!(err.to_string().contains("scalar engine"));
    }

    #[test]
    fn d_element_in_front_is_fine() {
        use fabp_bio::backtranslate::{DependentFn, PatternElement};
        let elements = vec![
            PatternElement::Dependent(DependentFn::Any),
            PatternElement::Exact(Nucleotide::G),
        ];
        let query =
            EncodedQuery::from_back_translated(&BackTranslatedQuery::from_elements(elements));
        let engine = BitParallelEngine::new(&query).unwrap();
        let reference: fabp_bio::seq::RnaSeq = "UGAG".parse().unwrap();
        let hits = engine.search(reference.as_slice(), 2);
        // Windows: UG (D matches U, G ✓), GA (✗ second), AG (✓).
        assert_eq!(
            hits.iter().map(|h| h.position).collect::<Vec<_>>(),
            vec![0, 2]
        );
    }

    #[test]
    fn short_reference_is_empty() {
        let protein = "MKW".parse().unwrap();
        let query = EncodedQuery::from_protein(&protein);
        let engine = BitParallelEngine::new(&query).unwrap();
        let reference = random_rna(5, &mut StdRng::seed_from_u64(1));
        assert!(engine.search(reference.as_slice(), 0).is_empty());
    }

    #[test]
    fn ge_threshold_mask_is_exact() {
        // Exhaustive over small plane counts: pack counter values into
        // lanes, compare against the scalar predicate.
        for nplanes in 1..=6usize {
            let max = (1u32 << nplanes) - 1;
            let mut planes = vec![0u64; nplanes];
            // Lane j holds value j % (max + 1).
            for j in 0..64u32 {
                let v = j % (max + 1);
                for (b, plane) in planes.iter_mut().enumerate() {
                    *plane |= u64::from((v >> b) & 1) << j;
                }
            }
            for threshold in 0..=max + 1 {
                let mask = ge_threshold_mask(&planes, threshold);
                for j in 0..64u32 {
                    let v = j % (max + 1);
                    assert_eq!(
                        (mask >> j) & 1 == 1,
                        v >= threshold,
                        "nplanes {nplanes} threshold {threshold} lane {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn multiquery_lanes_match_single_engines() {
        // Four queries of different lengths, one shared pass: every lane
        // must be bit-identical to its own single-query engine at its own
        // threshold.
        let mut rng = StdRng::seed_from_u64(0xB17F);
        let proteins: Vec<_> = [5usize, 9, 12, 20]
            .iter()
            .map(|&aa| random_protein(aa, &mut rng))
            .collect();
        let queries: Vec<_> = proteins.iter().map(EncodedQuery::from_protein).collect();
        let refs: Vec<&EncodedQuery> = queries.iter().collect();
        let multi = MultiQueryEngine::new(&refs).unwrap();
        assert_eq!(multi.lanes(), 4);
        assert_eq!(multi.max_query_len(), queries[3].len());
        let reference = random_rna(10_000, &mut rng);
        let thresholds: Vec<u32> = queries.iter().map(|q| (q.len() as u32) * 2 / 3).collect();
        let got = multi.search(reference.as_slice(), &thresholds);
        for (l, query) in queries.iter().enumerate() {
            let single = BitParallelEngine::new(query).unwrap();
            assert_eq!(
                got[l],
                single.search_two_pass(reference.as_slice(), thresholds[l]),
                "lane {l} disagrees with its single-query oracle"
            );
        }
    }

    #[test]
    fn multiquery_partial_occupancy_and_short_references() {
        // 1-, 2- and 3-lane groups (the ragged tail the batch layer
        // produces), including references shorter than the longest lane
        // but not the shortest.
        let mut rng = StdRng::seed_from_u64(0xB180);
        for nlanes in 1..=3usize {
            let proteins: Vec<_> = (0..nlanes)
                .map(|i| random_protein(4 + 6 * i, &mut rng))
                .collect();
            let queries: Vec<_> = proteins.iter().map(EncodedQuery::from_protein).collect();
            let refs: Vec<&EncodedQuery> = queries.iter().collect();
            let multi = MultiQueryEngine::new(&refs).unwrap();
            let max_qlen = multi.max_query_len();
            for len in [0usize, 5, max_qlen - 1, max_qlen, max_qlen + 100] {
                let reference = random_rna(len, &mut rng);
                let thresholds = vec![3u32; nlanes];
                let got = multi.search(reference.as_slice(), &thresholds);
                assert_eq!(got.len(), nlanes);
                for (l, query) in queries.iter().enumerate() {
                    let single = BitParallelEngine::new(query).unwrap();
                    assert_eq!(
                        got[l],
                        single.search_two_pass(reference.as_slice(), 3),
                        "lanes {nlanes} len {len} lane {l}"
                    );
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Multi-query lanes are bit-identical to per-lane `search_two_pass`
        /// across lane counts, ragged query lengths, per-lane thresholds and
        /// tile-boundary-straddling reference lengths.
        #[test]
        fn multiquery_matches_two_pass_oracle(
            nlanes in 1usize..=LANES,
            len_a in 3usize..=15,
            len_b in 3usize..=15,
            len_c in 3usize..=15,
            len_d in 3usize..=15,
            len_class in 0usize..4,
            jitter in 0usize..130,
            seed in 0u64..1_000_000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let lens = [len_a, len_b, len_c, len_d];
            let proteins: Vec<_> = lens[..nlanes]
                .iter()
                .map(|&aa| random_protein(aa, &mut rng))
                .collect();
            let queries: Vec<_> = proteins
                .iter()
                .map(EncodedQuery::from_protein)
                .collect();
            let refs: Vec<&EncodedQuery> = queries.iter().collect();
            let multi = MultiQueryEngine::new(&refs).unwrap();
            let max_qlen = multi.max_query_len();
            let len = match len_class {
                0 => max_qlen.saturating_sub(jitter % 5),
                1 => max_qlen + jitter % 70,
                2 => max_qlen - 1 + TILE_POSITIONS - 65 + jitter,
                _ => max_qlen - 1 + TILE_POSITIONS + jitter,
            };
            let reference = random_rna(len, &mut rng);
            let thresholds: Vec<u32> = queries
                .iter()
                .enumerate()
                .map(|(l, q)| (q.len() as u32).saturating_sub(1 + (l as u32 + jitter as u32) % 7))
                .collect();
            let got = multi.search(reference.as_slice(), &thresholds);
            for (l, query) in queries.iter().enumerate() {
                let single = BitParallelEngine::new(query).unwrap();
                prop_assert_eq!(
                    &got[l],
                    &single.search_two_pass(reference.as_slice(), thresholds[l]),
                    "nlanes {} len {} lane {}", nlanes, len, l
                );
            }
        }
    }

    #[test]
    fn multiquery_unions_distinct_tables() {
        // Identical queries in every lane intern down to one query's worth
        // of tables — the amortization the lane pass depends on.
        let mut rng = StdRng::seed_from_u64(0xB181);
        let protein = random_protein(10, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let single = BitParallelEngine::new(&query).unwrap();
        let multi = MultiQueryEngine::new(&[&query, &query, &query, &query]).unwrap();
        assert_eq!(multi.distinct_tables(), single.distinct_tables());
        assert!(multi.distinct_tables() <= MAX_TABLES);
    }
}
