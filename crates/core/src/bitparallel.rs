//! Bit-parallel (bit-sliced) software engine.
//!
//! The FPGA evaluates 256 alignment instances simultaneously — one match
//! bit per (instance, element) — and reduces them with Pop-Counters. This
//! engine is the same computation transposed onto 64-bit words:
//!
//! 1. For every *distinct* comparator truth table used by the query, one
//!    pass over the reference produces a bitvector `W_t` with
//!    `W_t[p] = t(ctx(p))` — the comparator array's output column.
//! 2. A block of 64 alignment positions is scored by adding the `L_q`
//!    shifted bitvector slices into vertical (bit-sliced) counters — the
//!    Pop-Counter, carried out across 64 instances at once.
//!
//! Queries built from proteins qualify automatically (their dependent
//! elements sit at codon position 2, so per-window and absolute context
//! coincide); arbitrary element streams with early dependent elements are
//! rejected at construction.

use crate::hits::Hit;
use fabp_bio::alphabet::Nucleotide;
use fabp_bio::backtranslate::{DependentFn, PatternElement};
use fabp_encoding::encoder::EncodedQuery;

/// Score-counter planes: supports scores up to `2^10 − 1`, matching the
/// hardware's 10-bit alignment score (§IV-B).
const PLANES: usize = 10;

/// Error for queries the bit-parallel engine cannot score.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedQuery {
    /// Index of the offending element.
    pub element_index: usize,
}

impl std::fmt::Display for UnsupportedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "context-dependent element at index {} (< 2) requires the scalar engine",
            self.element_index
        )
    }
}

impl std::error::Error for UnsupportedQuery {}

/// The bit-parallel engine for one encoded query.
#[derive(Debug, Clone)]
pub struct BitParallelEngine {
    /// Distinct fused tables used by the query.
    tables: Vec<u64>,
    /// Per query element: index into `tables`.
    element_table: Vec<u16>,
    query_len: usize,
}

impl BitParallelEngine {
    /// Builds the engine.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedQuery`] when a context-dependent element
    /// appears at index 0 or 1 (impossible for protein-derived queries).
    ///
    /// # Panics
    ///
    /// Panics if the query is empty.
    pub fn new(query: &EncodedQuery) -> Result<BitParallelEngine, UnsupportedQuery> {
        assert!(!query.is_empty(), "query must be non-empty");
        let elements = query.decode();
        let mut tables: Vec<u64> = Vec::new();
        let mut element_table = Vec::with_capacity(elements.len());

        for (i, &element) in elements.elements().iter().enumerate() {
            if i < 2 {
                if let PatternElement::Dependent(f) = element {
                    if f != DependentFn::Any {
                        return Err(UnsupportedQuery { element_index: i });
                    }
                }
            }
            // Fused 64-entry table over absolute context
            // ctx = prev2 << 4 | prev1 << 2 | cur.
            let mut table = 0u64;
            for ctx in 0..64u8 {
                let cur = Nucleotide::from_code2(ctx & 0b11);
                let prev1 = Some(Nucleotide::from_code2((ctx >> 2) & 0b11));
                let prev2 = Some(Nucleotide::from_code2((ctx >> 4) & 0b11));
                if element.matches(cur, prev1, prev2) {
                    table |= 1 << ctx;
                }
            }
            let slot = match tables.iter().position(|&t| t == table) {
                Some(slot) => slot,
                None => {
                    tables.push(table);
                    tables.len() - 1
                }
            };
            element_table.push(slot as u16);
        }

        Ok(BitParallelEngine {
            tables,
            element_table,
            query_len: elements.len(),
        })
    }

    /// Query length in elements.
    pub fn query_len(&self) -> usize {
        self.query_len
    }

    /// Number of distinct comparator tables (≤ 12 for protein queries).
    pub fn distinct_tables(&self) -> usize {
        self.tables.len()
    }

    /// Scans the reference, reporting hits with `score >= threshold`.
    pub fn search(&self, reference: &[Nucleotide], threshold: u32) -> Vec<Hit> {
        let qlen = self.query_len;
        if reference.len() < qlen {
            return Vec::new();
        }
        let positions = reference.len() - qlen + 1;
        let telemetry = fabp_telemetry::Registry::global();
        let engine = fabp_telemetry::labels(&[("engine", "bitparallel")]);
        telemetry
            .counter_with(
                "fabp_queries_processed_total",
                "Query scans started, by engine",
                engine.clone(),
            )
            .inc();
        telemetry
            .counter_with(
                "fabp_residues_scanned_total",
                "Alignment positions evaluated, by engine",
                engine.clone(),
            )
            .add(positions as u64);
        let words = reference.len().div_ceil(64) + 2; // padding for shifts

        // Pass 1: comparator output columns, one bitvector per distinct
        // table: W_t[p] = table[ctx(p)].
        let mut columns: Vec<Vec<u64>> = vec![vec![0u64; words]; self.tables.len()];
        let mut ctx: u8 = 0;
        for (p, &base) in reference.iter().enumerate() {
            ctx = ((ctx << 2) | base.code2()) & 0b11_1111;
            let word = p / 64;
            let bit = p % 64;
            for (t, &table) in self.tables.iter().enumerate() {
                columns[t][word] |= ((table >> ctx) & 1) << bit;
            }
        }

        // Pass 2: vertical-counter accumulation, 64 positions per block.
        let mut hits = Vec::new();
        let mut block_base = 0usize;
        while block_base < positions {
            let valid = (positions - block_base).min(64);
            let mut planes = [0u64; PLANES];
            for (i, &slot) in self.element_table.iter().enumerate() {
                let m = read_unaligned(&columns[slot as usize], block_base + i);
                // Bit-sliced increment: add the match mask into the
                // counters (ripple across planes).
                let mut carry = m;
                for plane in planes.iter_mut() {
                    let t = *plane & carry;
                    *plane ^= carry;
                    carry = t;
                    if carry == 0 {
                        break;
                    }
                }
            }
            // Extract scores and threshold.
            for j in 0..valid {
                let mut score = 0u32;
                for (b, plane) in planes.iter().enumerate() {
                    score |= (((plane >> j) & 1) as u32) << b;
                }
                if score >= threshold {
                    hits.push(Hit {
                        position: block_base + j,
                        score,
                    });
                }
            }
            block_base += 64;
        }
        telemetry
            .counter_with("fabp_hits_total", "Hits emitted, by engine", engine)
            .add(hits.len() as u64);
        hits
    }
}

/// Reads 64 bits starting at bit offset `bit_pos` from a padded word
/// vector.
#[inline]
fn read_unaligned(words: &[u64], bit_pos: usize) -> u64 {
    let word = bit_pos / 64;
    let off = bit_pos % 64;
    if off == 0 {
        words[word]
    } else {
        (words[word] >> off) | (words[word + 1] << (64 - off))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::software::SoftwareEngine;
    use fabp_bio::backtranslate::BackTranslatedQuery;
    use fabp_bio::generate::{random_protein, random_rna};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_scalar_engine_on_random_data() {
        let mut rng = StdRng::seed_from_u64(0xB17A);
        for _ in 0..5 {
            let protein = random_protein(20, &mut rng);
            let query = EncodedQuery::from_protein(&protein);
            let scalar = SoftwareEngine::new(&query);
            let parallel = BitParallelEngine::new(&query).unwrap();
            let reference = random_rna(5_000, &mut rng);
            for threshold in [0u32, 30, 45, 60] {
                assert_eq!(
                    parallel.search(reference.as_slice(), threshold),
                    scalar.search(reference.as_slice(), threshold),
                    "threshold {threshold}"
                );
            }
        }
    }

    #[test]
    fn block_boundaries_are_exact() {
        // References sized to hit 64-position block edges exactly.
        let mut rng = StdRng::seed_from_u64(0xB17B);
        let protein = random_protein(5, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let scalar = SoftwareEngine::new(&query);
        let parallel = BitParallelEngine::new(&query).unwrap();
        for len in [15usize, 64, 78, 79, 128, 142, 143, 200] {
            let reference = random_rna(len, &mut rng);
            assert_eq!(
                parallel.search(reference.as_slice(), 0),
                scalar.search(reference.as_slice(), 0),
                "len {len}"
            );
        }
    }

    #[test]
    fn distinct_table_count_is_small() {
        let mut rng = StdRng::seed_from_u64(0xB17C);
        let protein = random_protein(250, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let engine = BitParallelEngine::new(&query).unwrap();
        assert!(
            engine.distinct_tables() <= 12,
            "{} distinct tables",
            engine.distinct_tables()
        );
    }

    #[test]
    fn early_dependent_element_is_rejected() {
        use fabp_bio::backtranslate::{DependentFn, PatternElement};
        let elements = vec![
            PatternElement::Dependent(DependentFn::Leu),
            PatternElement::Exact(Nucleotide::A),
            PatternElement::Exact(Nucleotide::A),
        ];
        let query =
            EncodedQuery::from_back_translated(&BackTranslatedQuery::from_elements(elements));
        let err = BitParallelEngine::new(&query).unwrap_err();
        assert_eq!(err.element_index, 0);
        assert!(err.to_string().contains("scalar engine"));
    }

    #[test]
    fn d_element_in_front_is_fine() {
        use fabp_bio::backtranslate::{DependentFn, PatternElement};
        let elements = vec![
            PatternElement::Dependent(DependentFn::Any),
            PatternElement::Exact(Nucleotide::G),
        ];
        let query =
            EncodedQuery::from_back_translated(&BackTranslatedQuery::from_elements(elements));
        let engine = BitParallelEngine::new(&query).unwrap();
        let reference: fabp_bio::seq::RnaSeq = "UGAG".parse().unwrap();
        let hits = engine.search(reference.as_slice(), 2);
        // Windows: UG (D matches U, G ✓), GA (✗ second), AG (✓).
        assert_eq!(
            hits.iter().map(|h| h.position).collect::<Vec<_>>(),
            vec![0, 2]
        );
    }

    #[test]
    fn short_reference_is_empty() {
        let protein = "MKW".parse().unwrap();
        let query = EncodedQuery::from_protein(&protein);
        let engine = BitParallelEngine::new(&query).unwrap();
        let reference = random_rna(5, &mut StdRng::seed_from_u64(1));
        assert!(engine.search(reference.as_slice(), 0).is_empty());
    }
}
