//! Host-side pipeline timing (paper §IV preamble).
//!
//! "FabP host code is written in OpenCL to encode the queries and send
//! them along with the reference sequences from the host DRAM to the FPGA
//! DRAM. The host code invokes the RTL kernel … and, at the end, reads the
//! results from the FPGA DRAM. In all experiments, we measured the
//! end-to-end execution time that includes reading both query and
//! reference sequences from the FPGA DRAM, aligning the sequences, and
//! writing the results to the FPGA DRAM."
//!
//! Per that definition the database transfer host→FPGA is *outside* the
//! measured window (the reference is resident in FPGA DRAM); the measured
//! end-to-end time is query load + kernel + result write-back, which this
//! module assembles. The one-time database staging cost is still exposed
//! for completeness.

/// Host/board interconnect and encoding-rate parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostConfig {
    /// PCIe effective bandwidth, bytes/second.
    pub pcie_bandwidth: f64,
    /// Per-transfer latency, seconds.
    pub pcie_latency: f64,
    /// Host-side query encoding rate, elements/second (back-translation +
    /// 6-bit encoding is a trivial table walk).
    pub encode_rate: f64,
}

impl Default for HostConfig {
    fn default() -> HostConfig {
        HostConfig {
            pcie_bandwidth: 12.0e9, // PCIe 3.0 x16 effective
            pcie_latency: 10.0e-6,
            encode_rate: 200.0e6,
        }
    }
}

/// Breakdown of one measured end-to-end execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EndToEnd {
    /// Host-side query encoding.
    pub encode_seconds: f64,
    /// Query transfer to FPGA DRAM.
    pub query_transfer_seconds: f64,
    /// Kernel execution (from the cycle model or measured).
    pub kernel_seconds: f64,
    /// Result read-back from FPGA DRAM.
    pub readback_seconds: f64,
}

impl EndToEnd {
    /// Total measured time (the paper's end-to-end definition).
    pub fn total(&self) -> f64 {
        self.encode_seconds
            + self.query_transfer_seconds
            + self.kernel_seconds
            + self.readback_seconds
    }
}

/// Assembles the end-to-end time for one search.
///
/// `query_elements` is `L_q`, `hits` the number of reported positions
/// (8 bytes each: 4-byte position + score/flags), `kernel_seconds` the
/// kernel time from the cycle model.
pub fn end_to_end(
    config: &HostConfig,
    query_elements: usize,
    hits: usize,
    kernel_seconds: f64,
) -> EndToEnd {
    let query_bytes = (query_elements * 6).div_ceil(8) as f64;
    let result_bytes = (hits * 8) as f64;
    let breakdown = EndToEnd {
        encode_seconds: query_elements as f64 / config.encode_rate,
        query_transfer_seconds: config.pcie_latency + query_bytes / config.pcie_bandwidth,
        kernel_seconds,
        readback_seconds: config.pcie_latency + result_bytes / config.pcie_bandwidth,
    };
    record_end_to_end(fabp_telemetry::Registry::global(), &breakdown);
    breakdown
}

/// Publishes one end-to-end breakdown to `registry`: per-stage
/// `fabp_host_stage_seconds{stage=…}` float counters plus a modelled
/// span tree `end_to_end → encode → query_transfer → kernel → readback`
/// whose child durations sum exactly to the parent.
pub fn record_end_to_end(registry: &fabp_telemetry::Registry, breakdown: &EndToEnd) {
    if !registry.is_enabled() {
        return;
    }
    let stages = [
        ("encode", breakdown.encode_seconds),
        ("query_transfer", breakdown.query_transfer_seconds),
        ("kernel", breakdown.kernel_seconds),
        ("readback", breakdown.readback_seconds),
    ];
    for (stage, seconds) in stages {
        registry
            .float_counter_with(
                "fabp_host_stage_seconds",
                "Modelled host pipeline seconds, by stage",
                fabp_telemetry::labels(&[("stage", stage)]),
            )
            .add(seconds);
    }
    registry
        .float_counter(
            "fabp_host_end_to_end_seconds",
            "Modelled end-to-end seconds (paper's measured window)",
        )
        .add(breakdown.total());
    registry
        .counter("fabp_host_end_to_end_runs_total", "End-to-end model runs")
        .inc();
    let spans: Vec<(&str, f64)> = stages.iter().map(|&(s, t)| (s, t * 1e6)).collect();
    registry.record_span_tree("end_to_end", &spans);
}

/// Breakdown of a multi-query batch against one resident database.
///
/// Produced by [`batch_timing`]; [`BatchTiming::total`] is the figure
/// the paper's 10 000-query evaluation (§IV-A) accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BatchTiming {
    /// Host-side encoding time on the critical path. With double
    /// buffering the host encodes query *i + 1* while the board runs
    /// kernel *i*, so only the first query's encode — plus any residual
    /// when encoding outruns a kernel cycle — is exposed. Zero when the
    /// queries are pre-encoded.
    pub encode_seconds: f64,
    /// Query-swap transfers: one per kernel (the distributed-memory
    /// query is reloaded between kernels), each `pcie_latency +
    /// query_bytes / pcie_bandwidth`.
    pub swap_seconds: f64,
    /// Kernel execution over all queries.
    pub kernel_seconds: f64,
    /// Result read-back over all queries.
    pub readback_seconds: f64,
}

impl BatchTiming {
    /// Total batch wall-clock seconds.
    pub fn total(&self) -> f64 {
        self.encode_seconds + self.swap_seconds + self.kernel_seconds + self.readback_seconds
    }
}

/// Models a batch of `queries` searches against one resident database.
///
/// Per kernel the model charges a distinct **query-swap** transfer
/// (query bytes over PCIe plus one transfer latency), the kernel itself
/// and the result read-back; host-side encoding is charged only where
/// it is exposed (see [`BatchTiming::encode_seconds`]). Set
/// `pre_encoded` when the queries were encoded ahead of the batch (the
/// serving layer's cached-query path): encoding then costs nothing at
/// batch time.
///
/// The earlier model multiplied the *full* single-query end-to-end time
/// by the query count, double-charging the pipelined encode stage and
/// modelling no distinct swap transfer.
pub fn batch_timing(
    config: &HostConfig,
    queries: usize,
    query_elements: usize,
    hits_per_query: usize,
    kernel_seconds: f64,
    pre_encoded: bool,
) -> BatchTiming {
    let n = queries as f64;
    let query_bytes = (query_elements * 6).div_ceil(8) as f64;
    let result_bytes = (hits_per_query * 8) as f64;
    let swap = config.pcie_latency + query_bytes / config.pcie_bandwidth;
    let readback = config.pcie_latency + result_bytes / config.pcie_bandwidth;
    let per_kernel = swap + kernel_seconds + readback;
    let encode = if pre_encoded || queries == 0 {
        0.0
    } else {
        // First encode is fully exposed; later encodes overlap the
        // previous kernel cycle and only their residual surfaces.
        let one = query_elements as f64 / config.encode_rate;
        one + (n - 1.0) * (one - per_kernel).max(0.0)
    };
    BatchTiming {
        encode_seconds: encode,
        swap_seconds: n * swap,
        kernel_seconds: n * kernel_seconds,
        readback_seconds: n * readback,
    }
}

/// Total seconds of [`batch_timing`] with host-side encoding included
/// (queries arrive un-encoded). Use [`batch_seconds_pre_encoded`] when
/// encoded queries are already resident (e.g. served from a cache).
pub fn batch_seconds(
    config: &HostConfig,
    queries: usize,
    query_elements: usize,
    hits_per_query: usize,
    kernel_seconds: f64,
) -> f64 {
    batch_timing(
        config,
        queries,
        query_elements,
        hits_per_query,
        kernel_seconds,
        false,
    )
    .total()
}

/// Total seconds of [`batch_timing`] for pre-encoded queries: encoding
/// is done once, ahead of the batch, and costs nothing per kernel.
pub fn batch_seconds_pre_encoded(
    config: &HostConfig,
    queries: usize,
    query_elements: usize,
    hits_per_query: usize,
    kernel_seconds: f64,
) -> f64 {
    batch_timing(
        config,
        queries,
        query_elements,
        hits_per_query,
        kernel_seconds,
        true,
    )
    .total()
}

/// One-time cost of staging a database of `reference_bytes` packed bytes
/// into FPGA DRAM (outside the paper's measured window; amortised over
/// all queries searched against the database).
pub fn database_staging_seconds(config: &HostConfig, reference_bytes: u64) -> f64 {
    config.pcie_latency + reference_bytes as f64 / config.pcie_bandwidth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_components() {
        let e = EndToEnd {
            encode_seconds: 1.0,
            query_transfer_seconds: 2.0,
            kernel_seconds: 3.0,
            readback_seconds: 4.0,
        };
        assert_eq!(e.total(), 10.0);
    }

    #[test]
    fn kernel_dominates_for_realistic_workloads() {
        // A 250-aa query with a 20 ms kernel: host overheads must be
        // negligible (the paper's end-to-end ≈ kernel).
        let config = HostConfig::default();
        let e = end_to_end(&config, 750, 1000, 20.0e-3);
        assert!(e.kernel_seconds / e.total() > 0.99, "breakdown: {e:?}");
    }

    #[test]
    fn staging_scales_with_database() {
        let config = HostConfig::default();
        let small = database_staging_seconds(&config, 1_000_000);
        let large = database_staging_seconds(&config, 250_000_000);
        assert!(large > small * 100.0);
        // 0.25 GB over 12 GB/s ≈ 21 ms.
        assert!((large - 0.0208).abs() < 0.005, "large = {large}");
    }

    #[test]
    fn batch_scales_linearly_and_kernel_dominates() {
        let config = HostConfig::default();
        let total = batch_seconds(&config, 10_000, 750, 100, 58.6e-3);
        // 10k long queries over 1 Gbase ≈ 10 minutes of kernel time.
        assert!((580.0..=600.0).contains(&total), "total {total}");
        let single = batch_seconds(&config, 1, 750, 100, 58.6e-3);
        assert!((total / single - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn batch_timing_matches_hand_computed_model() {
        // Round numbers so every component is exact by hand:
        // 1 GB/s PCIe, 1 µs latency, 1 M elements/s encoder.
        let config = HostConfig {
            pcie_bandwidth: 1.0e9,
            pcie_latency: 1.0e-6,
            encode_rate: 1.0e6,
        };
        // 1000 elements → ceil(6000/8) = 750 query bytes;
        // 100 hits → 800 result bytes.
        let swap = 1.0e-6 + 750.0e-9; // 1.75 µs per kernel
        let readback = 1.0e-6 + 800.0e-9; // 1.80 µs per kernel
        let kernel = 1.0e-3;
        let encode_one = 1.0e-3; // 1000 / 1e6

        let t = batch_timing(&config, 10, 1000, 100, kernel, false);
        let eps = 1e-12;
        assert!((t.swap_seconds - 10.0 * swap).abs() < eps, "{t:?}");
        assert!((t.kernel_seconds - 10.0 * kernel).abs() < eps);
        assert!((t.readback_seconds - 10.0 * readback).abs() < eps);
        // encode (1 ms) < swap+kernel+readback per kernel, so only the
        // first query's encode is exposed.
        assert!((t.encode_seconds - encode_one).abs() < eps);
        let expected_total = encode_one + 10.0 * (swap + kernel + readback);
        assert!((t.total() - expected_total).abs() < eps, "{}", t.total());
        // The docstring's promise, now true: total = per-kernel
        // (swap + kernel + readback) × queries, plus exposed encode.
        assert!((batch_seconds(&config, 10, 1000, 100, kernel) - expected_total).abs() < eps);

        // Pre-encoded queries pay no encode at all.
        let pre = batch_timing(&config, 10, 1000, 100, kernel, true);
        assert_eq!(pre.encode_seconds, 0.0);
        assert!(
            (batch_seconds_pre_encoded(&config, 10, 1000, 100, kernel)
                - 10.0 * (swap + kernel + readback))
                .abs()
                < eps
        );

        // Encode-bound batch (zero-length kernel, no hits): pipelining
        // degenerates to N encodes plus one pipeline flush of transfers.
        let rb0 = 1.0e-6; // readback with 0 hits: latency only
        let bound = batch_timing(&config, 10, 1000, 0, 0.0, false);
        let expected_bound = 10.0 * encode_one + (swap + rb0);
        assert!(
            (bound.total() - expected_bound).abs() < eps,
            "{} vs {expected_bound}",
            bound.total()
        );

        // Degenerate batches are well-defined.
        assert_eq!(
            batch_timing(&config, 0, 1000, 100, kernel, false).total(),
            0.0
        );
    }

    #[test]
    fn old_model_overcharged_the_batch() {
        // The pre-fix body multiplied the full per-query end-to-end time
        // (encode included) by the query count. For an encode-visible
        // workload the corrected model is strictly cheaper, by exactly
        // the (queries - 1) hidden encode stages.
        let config = HostConfig {
            pcie_bandwidth: 1.0e9,
            pcie_latency: 1.0e-6,
            encode_rate: 1.0e6,
        };
        let old = end_to_end(&config, 1000, 100, 1.0e-3).total() * 10.0;
        let new = batch_seconds(&config, 10, 1000, 100, 1.0e-3);
        let hidden = 9.0 * (1000.0 / config.encode_rate);
        assert!((old - new - hidden).abs() < 1e-12, "old {old} new {new}");
    }

    #[test]
    fn query_transfer_includes_latency() {
        let config = HostConfig::default();
        let e = end_to_end(&config, 150, 0, 0.0);
        assert!(e.query_transfer_seconds >= config.pcie_latency);
        assert!(e.readback_seconds >= config.pcie_latency);
    }
}
