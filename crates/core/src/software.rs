//! Fast functional FabP engine: the same scores as the hardware, at
//! software speed.
//!
//! The software engine uses the fused comparator tables
//! ([`fabp_encoding::fused::FusedScorer`]) with an early-exit threshold
//! scan, optionally parallelised over reference chunks. It computes
//! *exactly* the hits the cycle-level engine reports (property-tested),
//! which makes paper-scale workloads (1 GB references) tractable without
//! simulating cycles.

use crate::hits::Hit;
use fabp_bio::alphabet::Nucleotide;
use fabp_encoding::encoder::EncodedQuery;
use fabp_encoding::fused::FusedScorer;
use fabp_telemetry::{labels, Counter, Registry};

/// The fast software engine for one encoded query.
#[derive(Debug, Clone)]
pub struct SoftwareEngine {
    fused: FusedScorer,
    query_len: usize,
    /// Telemetry handles, registered once at construction so the scan
    /// loops pay only an atomic add per chunk.
    queries_ctr: Counter,
    residues_ctr: Counter,
    hits_ctr: Counter,
}

impl SoftwareEngine {
    /// Builds the engine from an encoded query (telemetry goes to the
    /// global registry).
    pub fn new(query: &EncodedQuery) -> SoftwareEngine {
        SoftwareEngine::with_registry(query, Registry::global())
    }

    /// Builds the engine, publishing telemetry to `registry`.
    pub fn with_registry(query: &EncodedQuery, registry: &Registry) -> SoftwareEngine {
        let engine = labels(&[("engine", "software")]);
        SoftwareEngine {
            fused: FusedScorer::build(&query.decode()),
            query_len: query.len(),
            queries_ctr: registry.counter_with(
                "fabp_queries_processed_total",
                "Query scans started, by engine",
                engine.clone(),
            ),
            residues_ctr: registry.counter_with(
                "fabp_residues_scanned_total",
                "Alignment positions evaluated, by engine",
                engine.clone(),
            ),
            hits_ctr: registry.counter_with("fabp_hits_total", "Hits emitted, by engine", engine),
        }
    }

    /// Query length in elements.
    pub fn query_len(&self) -> usize {
        self.query_len
    }

    /// Scans `reference` serially, reporting hits with
    /// `score >= threshold`.
    pub fn search(&self, reference: &[Nucleotide], threshold: u32) -> Vec<Hit> {
        self.queries_ctr.inc();
        self.search_range(reference, threshold, 0, usize::MAX)
    }

    /// Scans positions `start .. min(end, L_r − L_q + 1)`.
    pub fn search_range(
        &self,
        reference: &[Nucleotide],
        threshold: u32,
        start: usize,
        end: usize,
    ) -> Vec<Hit> {
        if self.query_len == 0 || reference.len() < self.query_len {
            return Vec::new();
        }
        let limit = (reference.len() - self.query_len + 1).min(end);
        let mut hits = Vec::new();
        for position in start..limit {
            if let Some(score) = self
                .fused
                .score_window_thresholded(&reference[position..], threshold)
            {
                hits.push(Hit { position, score });
            }
        }
        self.residues_ctr.add(limit.saturating_sub(start) as u64);
        self.hits_ctr.add(hits.len() as u64);
        hits
    }

    /// Parallel scan over `threads` workers. Hit set equals the serial
    /// scan's.
    pub fn search_parallel(
        &self,
        reference: &[Nucleotide],
        threshold: u32,
        threads: usize,
    ) -> Vec<Hit> {
        if self.query_len == 0 || reference.len() < self.query_len {
            return Vec::new();
        }
        let positions = reference.len() - self.query_len + 1;
        let threads = threads.max(1).min(positions);
        self.queries_ctr.inc();
        if threads == 1 {
            return self.search_range(reference, threshold, 0, usize::MAX);
        }
        let chunk = positions.div_ceil(threads);
        let mut hits: Vec<Hit> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let start = t * chunk;
                let end = ((t + 1) * chunk).min(positions);
                if start >= end {
                    break;
                }
                handles
                    .push(scope.spawn(move || self.search_range(reference, threshold, start, end)));
            }
            for handle in handles {
                // Forward a worker panic instead of masking it behind a
                // generic `expect` message: the original payload (and thus
                // the real assertion text) reaches the caller.
                match handle.join() {
                    Ok(chunk_hits) => hits.extend(chunk_hits),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        hits.sort_by_key(|h| h.position);
        hits
    }

    /// Raw scores at all positions (no threshold), for analysis workloads.
    pub fn score_all(&self, reference: &[Nucleotide]) -> Vec<u32> {
        self.fused.score_all_positions(reference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::generate::{random_protein, random_rna};
    use fabp_bio::seq::ProteinSeq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine(protein: &str) -> SoftwareEngine {
        let protein: ProteinSeq = protein.parse().unwrap();
        SoftwareEngine::new(&EncodedQuery::from_protein(&protein))
    }

    #[test]
    fn serial_equals_bruteforce_threshold_filter() {
        let mut rng = StdRng::seed_from_u64(51);
        let protein = random_protein(12, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let eng = SoftwareEngine::new(&query);
        let reference = random_rna(2_000, &mut rng);
        for threshold in [0u32, 15, 25, 36] {
            let hits = eng.search(reference.as_slice(), threshold);
            let expected: Vec<Hit> = query
                .score_all_positions(reference.as_slice())
                .into_iter()
                .enumerate()
                .filter(|&(_, s)| s as u32 >= threshold)
                .map(|(position, score)| Hit {
                    position,
                    score: score as u32,
                })
                .collect();
            assert_eq!(hits, expected, "threshold {threshold}");
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let mut rng = StdRng::seed_from_u64(52);
        let protein = random_protein(15, &mut rng);
        let eng = SoftwareEngine::new(&EncodedQuery::from_protein(&protein));
        let reference = random_rna(10_000, &mut rng);
        let serial = eng.search(reference.as_slice(), 25);
        let parallel = eng.search_parallel(reference.as_slice(), 25, 8);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn range_restricts_positions() {
        let mut rng = StdRng::seed_from_u64(53);
        let eng = engine("MKWVF");
        let reference = random_rna(1_000, &mut rng);
        let all = eng.search(reference.as_slice(), 0);
        let slice = eng.search_range(reference.as_slice(), 0, 100, 200);
        assert_eq!(slice.len(), 100);
        assert_eq!(&all[100..200], slice.as_slice());
    }

    #[test]
    fn short_reference_yields_nothing() {
        let eng = engine("MKWVF");
        assert!(eng.search(&[], 0).is_empty());
        let reference = random_rna(5, &mut StdRng::seed_from_u64(54));
        assert!(eng.search(reference.as_slice(), 0).is_empty());
        assert!(eng.search_parallel(reference.as_slice(), 0, 4).is_empty());
    }
}
