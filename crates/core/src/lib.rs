//! # fabp-core — the FabP aligner public API
//!
//! The paper's primary contribution behind one façade: back-translate a
//! protein query, encode it into 6-bit instructions, and scan DNA/RNA
//! references for positions the protein could have been encoded at,
//! scoring by element matches (substitution-only alignment, §III).
//!
//! * [`aligner::FabpAligner`] — builder API with software and
//!   cycle-accurate execution engines (identical hits; the latter adds
//!   cycle/bandwidth statistics from the `fabp-fpga` model).
//! * [`hits`] — hit post-processing (region merging, top-k).
//! * [`software`] — the fast functional engine (fused comparator tables,
//!   early-exit threshold scan, multi-threaded).
//! * [`host`] — end-to-end host pipeline timing per the paper's
//!   measurement definition.
//! * [`batch`] — multi-query search.
//!
//! ```
//! use fabp_core::aligner::{FabpAligner, Threshold};
//! use fabp_bio::seq::{ProteinSeq, RnaSeq};
//!
//! // Search for regions that could encode Met-Phe.
//! let protein: ProteinSeq = "MF".parse()?;
//! let aligner = FabpAligner::builder()
//!     .protein_query(&protein)
//!     .threshold(Threshold::Fraction(1.0))
//!     .build()?;
//! let reference: RnaSeq = "AAAUGUUCAA".parse()?;
//! let outcome = aligner.search(&reference);
//! assert_eq!(outcome.hits.len(), 1); // AUGUUC at position 2
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod aligner;
pub mod batch;
pub mod bitparallel;
pub mod cluster;
pub mod fleet;
pub mod hits;
pub mod host;
pub mod index;
pub mod slice_plan;
pub mod software;
pub mod streaming;

pub use aligner::{BuildError, Engine, FabpAligner, SearchOutcome, Threshold};
pub use bitparallel::{BitParallelEngine, MultiQueryEngine, LANES};
pub use fleet::{place_replicas, FleetSearchOutcome, FpgaFleet, ShardDispatch};
pub use hits::{
    best_hit, dedup_sorted_hits, merge_overlapping, merge_overlapping_unsorted, merge_shard_hits,
    top_k, Hit, HitRegion,
};
pub use index::{
    search_index, IndexBuildOptions, IndexSearchStats, PrefilterMode, ReferenceIndex, SeedParams,
};
pub use slice_plan::{Slice, SliceOptions, SlicePlan};
pub use software::SoftwareEngine;
pub use streaming::StreamingAligner;

// The typed error taxonomy lives in `fabp-resilience` (below this crate
// in the dependency graph) and is re-exported here so callers of the
// core API need only one import.
pub use fabp_resilience::{FabpError, FabpResult};
