//! Property tests: persistent index round-trip and seeded-prefilter
//! recall.
//!
//! Two invariant families from ISSUE 10:
//!
//! 1. **Round-trip.** `write → load` reproduces bit-identical shards
//!    (and the same fingerprint); flipping any byte of the serialized
//!    form must yield a *typed* error ([`FabpError::CrcMismatch`] or
//!    [`FabpError::Decode`]) — never UB, never silently wrong shards.
//! 2. **Recall.** Against planted ground truth
//!    ([`fabp_bio::generate::PlantedDatabase`], substitution-only so
//!    diagonals are exact), across a (mutation rate × word size ×
//!    seed threshold) grid: the seeded hits are always a **subset** of
//!    the exhaustive scan's (exact agreement on admitted windows), and
//!    recall of full-scan-findable planted regions stays at or above
//!    the documented floor.

use fabp_bio::generate::{PlantedDatabase, PlantedDatabaseConfig};
use fabp_bio::mutate::{IndelModel, SubstitutionModel};
use fabp_bio::seq::RnaSeq;
use fabp_core::aligner::Threshold;
use fabp_core::index::{
    search_index, IndexBuildOptions, PrefilterMode, ReferenceIndex, SeedParams,
};
use fabp_resilience::FabpError;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_reference(len: usize, seed: u64) -> RnaSeq {
    let mut rng = StdRng::seed_from_u64(seed);
    fabp_bio::generate::random_rna(len, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// **Write → load is bit-identical.** Any reference length and
    /// shard geometry: the loaded index equals the built one, shard for
    /// shard, word for word, with the same fingerprint.
    #[test]
    fn index_round_trip_is_bit_identical(
        reference_len in 1usize..=4_096,
        target_shard in 64usize..=1_024,
        overlap in 0usize..=128,
        seed in 0u64..1_000_000,
    ) {
        let reference = random_reference(reference_len, seed);
        let index = ReferenceIndex::build_from_rna(
            &reference,
            IndexBuildOptions { overlap, target_shard_bases: target_shard },
        ).expect("non-empty reference");
        let bytes = index.to_bytes();
        let loaded = ReferenceIndex::from_bytes(&bytes).expect("round trip");
        prop_assert_eq!(&loaded, &index);
        prop_assert_eq!(loaded.fingerprint(), index.fingerprint());
        prop_assert_eq!(loaded.decode_reference(), reference);
    }

    /// **Corruption is always a typed error.** Flip one byte anywhere
    /// in the serialized index: loading must fail with `CrcMismatch`
    /// or `Decode` — never succeed, never panic.
    #[test]
    fn corrupted_byte_yields_typed_error(
        reference_len in 32usize..=2_048,
        target_shard in 64usize..=512,
        corrupt_at_frac in 0.0f64..1.0,
        flip in 1u8..=255,
        seed in 0u64..1_000_000,
    ) {
        let reference = random_reference(reference_len, seed);
        let index = ReferenceIndex::build_from_rna(
            &reference,
            IndexBuildOptions { overlap: 32, target_shard_bases: target_shard },
        ).expect("non-empty reference");
        let mut bytes = index.to_bytes();
        let at = ((bytes.len() as f64 * corrupt_at_frac) as usize).min(bytes.len() - 1);
        bytes[at] ^= flip;
        match ReferenceIndex::from_bytes(&bytes) {
            Err(FabpError::CrcMismatch { .. }) | Err(FabpError::Decode(_)) => {}
            Ok(_) => prop_assert!(false, "corrupt byte {at} accepted"),
            Err(other) => prop_assert!(false, "untyped failure for byte {at}: {other:?}"),
        }
    }

    /// **Seeded recall vs planted ground truth.** Mutation rate ×
    /// word size × seed threshold grid. Invariants:
    ///
    /// * seeded hits ⊆ exhaustive hits, with identical scores (exact
    ///   agreement on admitted windows);
    /// * every planted region the full scan finds is recovered by the
    ///   seeded path — at these settings a plant only escapes when all
    ///   of its seed words mutate below `T` at once, which the
    ///   assertion bounds at ≥ 80% per case (measured recall in
    ///   bench_serve stays ≥ 0.99 at BLAST defaults, w=3 T=11).
    #[test]
    fn seeded_recall_holds_across_the_grid(
        rate in 0.0f64..=0.05,
        grid_pick in 0usize..4,
        num_queries in 3usize..=6,
        query_len in 10usize..=18,
        seed in 0u64..1_000_000,
    ) {
        // (word_size, T) pairs where an unmutated word always
        // self-seeds (min BLOSUM62 self-score 4/residue, no Stop in
        // generated queries).
        let (word_size, t) = [(3, 11), (3, 10), (3, 12), (4, 13)][grid_pick];
        let mut rng = StdRng::seed_from_u64(seed);
        let db = PlantedDatabase::generate(
            &PlantedDatabaseConfig {
                reference_len: 12_000,
                num_queries,
                query_len,
                substitutions: SubstitutionModel::new(rate),
                indels: IndelModel::none(),
                paper_codons_only: false,
            },
            &mut rng,
        );
        let index = ReferenceIndex::build_from_rna(
            &db.reference,
            IndexBuildOptions { overlap: 3 * query_len + 16, target_shard_bases: 2_048 },
        ).expect("non-empty reference");
        let threshold = Threshold::Fraction(0.6);
        let params = SeedParams { word_size, threshold: t };

        let (off, _) = search_index(
            &index, &db.queries, threshold, PrefilterMode::Off, params, 2,
        ).expect("off scan");
        let (seeded, stats) = search_index(
            &index, &db.queries, threshold, PrefilterMode::Seeded, params, 2,
        ).expect("seeded scan");

        // Exact agreement on admitted windows: subset with equal scores.
        for (q, hits) in seeded.iter().enumerate() {
            for hit in hits {
                prop_assert!(
                    off[q].contains(hit),
                    "query {q}: seeded hit {hit:?} absent from the full scan"
                );
            }
        }

        // Recall over full-scan-findable plants.
        let mut findable = 0usize;
        let mut found = 0usize;
        for region in &db.regions {
            let in_off = off[region.query_index].iter().any(|h| h.position == region.position);
            let in_seeded =
                seeded[region.query_index].iter().any(|h| h.position == region.position);
            if in_off {
                findable += 1;
                if in_seeded {
                    found += 1;
                }
            }
            prop_assert!(!in_seeded || in_off, "seeded found a plant off missed");
        }
        if findable > 0 {
            let recall = found as f64 / findable as f64;
            prop_assert!(
                recall >= 0.8,
                "recall {recall:.3} ({found}/{findable}) at rate {rate:.3}, w={word_size}, T={t}"
            );
            // Zero mutations: self-seeding is deterministic — perfect recall.
            if rate == 0.0 {
                prop_assert_eq!(found, findable, "exact plants must all self-seed");
            }
        }
        prop_assert!(stats.scanned_fraction() <= 1.0);
    }
}
