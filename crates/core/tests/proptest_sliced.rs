//! Property tests: sliced-scan bit-identity.
//!
//! The sliced batch scheduler (reference slices stolen by workers,
//! multi-query SIMD lane groups per slice) must be **invisible** in the
//! hit stream: whatever the slice size, worker count, lane packing or
//! query mix, the per-query hits after
//! [`merge_shard_hits`](fabp_core::hits::merge_shard_hits) must equal
//! the serial oracle — [`BitParallelEngine::search_two_pass`] for
//! bit-parallel-eligible queries, the serial aligner for the rest. The
//! draws deliberately force slice boundaries *through* match windows
//! (tiny `min_slice_positions` against planted coding regions) so the
//! `window − 1` overlap arithmetic is exercised where it can actually
//! fail.

use fabp_bio::generate::{coding_rna_for_paper_patterns, random_protein, random_rna};
use fabp_bio::seq::RnaSeq;
use fabp_core::aligner::{FabpAligner, Threshold};
use fabp_core::batch::search_all_prebuilt_with_stats;
use fabp_core::slice_plan::{SliceOptions, SlicePlan};
use fabp_core::BitParallelEngine;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// **Sliced-batch bit-identity.** Random query count/lengths,
    /// reference length, worker count and slice sizing: every query's
    /// batch hits equal its own serial `search_two_pass` oracle.
    #[test]
    fn sliced_batch_matches_two_pass_oracle(
        num_queries in 1usize..=6,
        query_aa in 3usize..=14,
        reference_len in 200usize..=6_000,
        workers in 2usize..=8,
        min_slice in 32usize..=512,
        slices_per_worker in 1usize..=4,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let proteins: Vec<_> = (0..num_queries)
            .map(|i| random_protein(query_aa + i % 3, &mut rng))
            .collect();
        // Plant one real coding region per query so hits actually exist
        // for slice boundaries to straddle.
        let mut bases = random_rna(reference_len, &mut rng).into_inner();
        for protein in &proteins {
            let coding = coding_rna_for_paper_patterns(protein, &mut rng);
            if coding.len() < bases.len() {
                let at = (seed as usize) % (bases.len() - coding.len());
                bases.splice(at..at + coding.len(), coding.iter().copied());
            }
        }
        let reference = RnaSeq::from(bases);
        let aligners: Vec<FabpAligner> = proteins
            .iter()
            .map(|p| {
                FabpAligner::builder()
                    .protein_query(p)
                    .threshold(Threshold::Fraction(0.6))
                    .build()
                    .expect("non-empty query")
            })
            .collect();

        let options = SliceOptions { slices_per_worker, min_slice_positions: min_slice };
        let (sliced, stats) =
            search_all_prebuilt_with_stats(&aligners, &reference, workers, options).expect("batch runs");
        prop_assert_eq!(sliced.len(), aligners.len());
        prop_assert_eq!(stats.per_worker_busy_ns.len(), stats.workers);

        for (i, (aligner, outcome)) in aligners.iter().zip(&sliced).enumerate() {
            let oracle = BitParallelEngine::new(aligner.query())
                .expect("protein queries are bit-parallel eligible")
                .search_two_pass(reference.as_slice(), aligner.threshold());
            prop_assert_eq!(
                &outcome.hits, &oracle,
                "query {} of {} (workers {}, min_slice {}, spw {})",
                i, num_queries, workers, min_slice, slices_per_worker
            );
        }
    }

    /// **Boundary-straddling planted hits.** One query, a planted exact
    /// match positioned *on* a slice boundary computed from the plan
    /// itself, pathologically small slices: the hit must survive with
    /// its exact score, once.
    #[test]
    fn planted_hit_straddling_a_slice_boundary_survives(
        query_aa in 3usize..=10,
        workers in 2usize..=8,
        min_slice in 16usize..=128,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let protein = random_protein(query_aa, &mut rng);
        let coding = coding_rna_for_paper_patterns(&protein, &mut rng);
        let window = coding.len();
        let reference_len = 4_000usize;

        // Plan first, then plant the coding region so it straddles the
        // first interior slice boundary (starts window/2 before it).
        let options = SliceOptions { slices_per_worker: 2, min_slice_positions: min_slice };
        let plan = SlicePlan::build(reference_len, window, workers, options);
        let mut bases = random_rna(reference_len, &mut rng).into_inner();
        let boundary = plan.slices().get(1).map(|s| s.start).unwrap_or(reference_len / 2);
        let at = boundary.saturating_sub(window / 2).min(reference_len - window);
        bases.splice(at..at + window, coding.iter().copied());
        let reference = RnaSeq::from(bases);

        let aligner = FabpAligner::builder()
            .protein_query(&protein)
            .threshold(Threshold::Fraction(1.0))
            .build()
            .expect("non-empty query");
        let (sliced, _) =
            search_all_prebuilt_with_stats(&[&aligner], &reference, workers, options).expect("batch runs");
        let oracle = BitParallelEngine::new(aligner.query())
            .expect("eligible")
            .search_two_pass(reference.as_slice(), aligner.threshold());
        prop_assert_eq!(&sliced[0].hits, &oracle);
        // The planted full-score hit is present exactly once.
        let planted: Vec<_> = sliced[0]
            .hits
            .iter()
            .filter(|h| h.position == at && h.score == window as u32)
            .collect();
        prop_assert_eq!(planted.len(), 1, "planted hit at {} (boundary {})", at, boundary);
    }

    /// **Degenerate geometry stays exact and duplicate-free.** Tiny
    /// references (shorter than, equal to, or barely longer than the
    /// window), pathologically small slices (slice length equal to the
    /// window−1 overlap), and single-slice plans: hits still equal the
    /// serial oracle and no `(position, score)` pair appears twice.
    #[test]
    fn degenerate_geometry_matches_oracle_without_duplicates(
        query_aa in 2usize..=8,
        extra_bases in 0usize..=40,
        workers in 1usize..=8,
        min_slice in 1usize..=4,
        slices_per_worker in 1usize..=4,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let protein = random_protein(query_aa, &mut rng);
        let window = protein.len() * 3;
        // Sweep the reference length across the degenerate boundary:
        // shorter than the window (no positions), exactly the window
        // (one position), and slightly longer (slice len ≈ overlap).
        let reference_len = window.saturating_sub(extra_bases % (window + 1)) + extra_bases;
        let mut bases = random_rna(reference_len, &mut rng).into_inner();
        if reference_len >= window {
            let coding = coding_rna_for_paper_patterns(&protein, &mut rng);
            let at = (seed as usize) % (reference_len - window + 1);
            bases.splice(at..at + window, coding.iter().copied());
        }
        let reference = RnaSeq::from(bases);
        let aligner = FabpAligner::builder()
            .protein_query(&protein)
            .threshold(Threshold::Fraction(0.6))
            .build()
            .expect("non-empty query");

        let options = SliceOptions { slices_per_worker, min_slice_positions: min_slice };
        // The plan itself must be well-formed: positions partition the
        // position space and interior overlaps are exactly window − 1.
        let plan = SlicePlan::build(reference_len, window, workers, options);
        prop_assert_eq!(
            plan.total_positions(),
            reference_len.saturating_sub(window - 1)
        );
        for pair in plan.slices().windows(2) {
            prop_assert_eq!(pair[0].end - pair[1].start, window - 1);
        }

        let (sliced, _) =
            search_all_prebuilt_with_stats(&[&aligner], &reference, workers, options).expect("batch runs");
        let oracle = BitParallelEngine::new(aligner.query())
            .expect("eligible")
            .search_two_pass(reference.as_slice(), aligner.threshold());
        prop_assert_eq!(&sliced[0].hits, &oracle,
            "ref {} window {} workers {} min_slice {}", reference_len, window, workers, min_slice);
        // No duplicate (position, score) pairs survive the merge.
        let mut pairs: Vec<_> = sliced[0].hits.iter().map(|h| (h.position, h.score)).collect();
        let before = pairs.len();
        pairs.dedup();
        prop_assert_eq!(pairs.len(), before, "duplicate hits leaked through the merge");
    }

    /// **Serial/parallel equivalence stays total.** The public
    /// `search_all_prebuilt` (default slice sizing) agrees with the
    /// serial path for any worker count, including `workers = 1`.
    #[test]
    fn default_options_match_serial_for_any_worker_count(
        num_queries in 1usize..=5,
        workers in 1usize..=9,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let proteins: Vec<_> = (0..num_queries)
            .map(|_| random_protein(8, &mut rng))
            .collect();
        let reference = random_rna(3_000, &mut rng);
        let aligners: Vec<FabpAligner> = proteins
            .iter()
            .map(|p| {
                FabpAligner::builder()
                    .protein_query(p)
                    .threshold(Threshold::Fraction(0.7))
                    .build()
                    .expect("non-empty query")
            })
            .collect();
        let serial: Vec<_> = aligners.iter().map(|a| a.search(&reference)).collect();
        let parallel = fabp_core::batch::search_all_prebuilt(&aligners, &reference, workers).expect("batch runs");
        for (a, b) in serial.iter().zip(&parallel) {
            prop_assert_eq!(&a.hits, &b.hits);
        }
    }
}
