//! Property tests for the shard-merge helper under replication.
//!
//! The fleet's hedged scatter/gather legally delivers the *same* shard
//! from two replicas (an uncancelled hedge loser), so the merged stream
//! contains every hit of that shard exactly twice. `merge_shard_hits`
//! is the single dedup point all shard-composing callers share; if
//! replica duplicates survive it, hedging silently inflates scores
//! downstream. These properties pin exact-duplicate removal for fully
//! overlapping (replicated) shards alongside the classic
//! boundary-overlap case.

use fabp_core::hits::{merge_shard_hits, Hit};
use proptest::prelude::*;

fn arb_shard_hits(max_hits: usize) -> impl Strategy<Value = Vec<Hit>> {
    // One integer encodes (position, score): the compat proptest shim
    // has no tuple strategies.
    prop::collection::vec(0usize..(10_000 * 64), 0..=max_hits).prop_map(|v| {
        let mut hits: Vec<Hit> = v
            .into_iter()
            .map(|x| Hit {
                position: x / 64,
                score: (x % 64) as u32,
            })
            .collect();
        // Engine output is position-sorted and duplicate-free within
        // one shard; model that honestly.
        hits.sort_unstable_by_key(|h| (h.position, h.score));
        hits.dedup();
        hits
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// **Replica-dedup invariant.** Feeding each shard R times (fully
    /// overlapping replicas, exact duplicates) merges to precisely the
    /// single-copy result — replication must be invisible in the hit
    /// stream.
    #[test]
    fn replicated_shards_dedup_to_the_single_copy_merge(
        shards in prop::collection::vec(arb_shard_hits(12), 1..6),
        replication in 1usize..4,
    ) {
        let single = merge_shard_hits(shards.clone());
        let replicated: Vec<Vec<Hit>> = shards
            .iter()
            .flat_map(|s| std::iter::repeat_n(s.clone(), replication))
            .collect();
        let merged = merge_shard_hits(replicated);
        prop_assert_eq!(
            merged, single,
            "R={} replica duplicates must dedup exactly", replication
        );
    }

    /// Merging replicated shards never yields two identical hits, and
    /// every surviving hit came from some input shard.
    #[test]
    fn merge_output_is_sorted_unique_and_conservative(
        shards in prop::collection::vec(arb_shard_hits(12), 1..6),
    ) {
        let doubled: Vec<Vec<Hit>> = shards
            .iter()
            .chain(shards.iter())
            .cloned()
            .collect();
        let merged = merge_shard_hits(doubled);
        for w in merged.windows(2) {
            prop_assert!(
                (w[0].position, w[0].score) < (w[1].position, w[1].score),
                "output must be strictly (position, score)-sorted: {:?}", w
            );
        }
        for h in &merged {
            prop_assert!(shards.iter().flatten().any(|s| s == h));
        }
        // Conservation: nothing a single-copy merge keeps is lost.
        prop_assert_eq!(merged, merge_shard_hits(shards));
    }

    /// Partial replica overlap (one replica delivered a prefix before
    /// cancellation took effect mid-stream) still merges to the full
    /// single-copy result: duplicates vanish, coverage stays.
    #[test]
    fn partial_replica_delivery_is_absorbed(
        shards in prop::collection::vec(arb_shard_hits(12), 1..5),
        cut in 0usize..12,
    ) {
        let mut with_partial = shards.clone();
        if let Some(first) = shards.first() {
            with_partial.push(first[..cut.min(first.len())].to_vec());
        }
        prop_assert_eq!(merge_shard_hits(with_partial), merge_shard_hits(shards));
    }
}
