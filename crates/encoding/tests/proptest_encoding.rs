//! Property-based tests for the instruction encoding layer.

use fabp_bio::alphabet::{AminoAcid, Nucleotide};
use fabp_bio::backtranslate::BackTranslatedQuery;
use fabp_bio::seq::ProteinSeq;
use fabp_encoding::bitstream::PackedQuery;
use fabp_encoding::encoder::EncodedQuery;
use fabp_encoding::fused::FusedScorer;
use fabp_encoding::instruction::Instruction;
use proptest::prelude::*;

fn arb_protein(max_len: usize) -> impl Strategy<Value = ProteinSeq> {
    prop::collection::vec(0usize..21, 1..=max_len)
        .prop_map(|v| v.into_iter().map(|i| AminoAcid::ALL[i]).collect())
}

fn arb_window(len: usize) -> impl Strategy<Value = Vec<Nucleotide>> {
    prop::collection::vec(0u8..4, len..=len.max(1) * 3)
        .prop_map(|v| v.into_iter().map(Nucleotide::from_code2).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Decoding never panics on arbitrary 6-bit patterns, and accepted
    /// patterns re-encode to themselves.
    #[test]
    fn decode_total_and_involutive(bits in 0u8..64) {
        let instr = Instruction::from_bits(bits);
        if let Ok(element) = instr.decode() {
            prop_assert_eq!(Instruction::encode(element), instr);
        }
    }

    /// Bit-level matching equals the golden model on random operands.
    #[test]
    fn instruction_matches_golden(
        protein in arb_protein(8),
        ref_code in 0u8..4,
        p1 in prop::option::of(0u8..4),
        p2 in prop::option::of(0u8..4),
    ) {
        let bt = BackTranslatedQuery::from_protein(&protein);
        let reference = Nucleotide::from_code2(ref_code);
        let prev1 = p1.map(Nucleotide::from_code2);
        let prev2 = p2.map(Nucleotide::from_code2);
        for &element in bt.elements() {
            let instr = Instruction::encode(element);
            prop_assert_eq!(
                instr.matches(reference, prev1, prev2),
                element.matches(reference, prev1, prev2)
            );
        }
    }

    /// Encoder, fused scorer and golden model agree on whole windows.
    #[test]
    fn three_scorers_agree(protein in arb_protein(10), seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bt = BackTranslatedQuery::from_protein(&protein);
        let query = EncodedQuery::from_back_translated(&bt);
        let fused = FusedScorer::build(&bt);
        let window: Vec<Nucleotide> = (0..bt.len() + 16)
            .map(|_| Nucleotide::from_code2(rng.gen_range(0..4)))
            .collect();
        for k in 0..=window.len() - bt.len() {
            let golden = bt.score_window(&window[k..]);
            prop_assert_eq!(query.score_window(&window[k..]), golden);
            prop_assert_eq!(fused.score_window(&window[k..]) as usize, golden);
        }
    }

    /// Dense bit-packing round-trips for arbitrary proteins.
    #[test]
    fn packed_query_round_trip(protein in arb_protein(120)) {
        let query = EncodedQuery::from_protein(&protein);
        let packed = PackedQuery::from_query(&query);
        prop_assert_eq!(packed.size_bytes(), (query.len() * 6).div_ceil(8));
        prop_assert_eq!(packed.unpack().unwrap(), query);
    }

    /// Thresholded scoring is consistent with plain scoring for any
    /// threshold.
    #[test]
    fn thresholded_scoring_consistent(
        protein in arb_protein(8),
        window in arb_window(24),
        threshold in 0u32..30,
    ) {
        let bt = BackTranslatedQuery::from_protein(&protein);
        prop_assume!(window.len() >= bt.len());
        let fused = FusedScorer::build(&bt);
        let plain = fused.score_window(&window);
        match fused.score_window_thresholded(&window, threshold) {
            Some(s) => {
                prop_assert_eq!(s, plain);
                prop_assert!(s >= threshold);
            }
            None => prop_assert!(plain < threshold || threshold > bt.len() as u32),
        }
    }

    /// A perfect coding window always scores the full query length when
    /// built from pattern-accepted codons.
    #[test]
    fn pattern_codons_score_full(protein in arb_protein(32), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let coding =
            fabp_bio::generate::coding_rna_for_paper_patterns(&protein, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        prop_assert_eq!(query.score_window(coding.as_slice()), query.len());
    }
}
