//! Reference packing into 512-bit AXI beats and the overlapping stream
//! chunking the accelerator consumes.
//!
//! "In every cycle that the AXI port has valid data, FabP reads 512 bits of
//! the reference sequence … Since each element of the reference sequence is
//! 2 bits, … FabP reads 256 elements of the reference in each memory
//! access" (§III-C). To cover alignment positions that straddle beats,
//! "FabP keeps the last `L_q` elements of the current Reference Stream
//! buffer and concatenates it with the next incoming reference sequence",
//! so each iteration the stream buffer holds `L_q + 256` elements.

use fabp_bio::alphabet::Nucleotide;
use fabp_bio::seq::PackedSeq;

/// Reference elements carried per AXI beat (512 bits / 2 bits per base).
pub const ELEMENTS_PER_BEAT: usize = 256;

/// AXI data width in bits.
pub const AXI_WIDTH_BITS: usize = 512;

/// One 512-bit AXI data beat: eight 64-bit words, base 0 in the LSBs of
/// word 0, plus the number of valid bases (the final beat may be partial).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxiBeat {
    /// The 512 bits of payload.
    pub words: [u64; 8],
    /// Number of valid bases in `0..=256`.
    pub valid: usize,
}

impl AxiBeat {
    /// The base at beat-local `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.valid`.
    #[inline]
    pub fn base(&self, index: usize) -> Nucleotide {
        assert!(index < self.valid, "beat index {index} out of range");
        let word = self.words[index / 32];
        let bit = 2 * (index % 32);
        Nucleotide::from_code2(((word >> bit) & 0b11) as u8)
    }

    /// Iterates over the valid bases.
    pub fn iter(&self) -> impl Iterator<Item = Nucleotide> + '_ {
        (0..self.valid).map(|i| self.base(i))
    }
}

/// Splits a packed reference into AXI beats.
///
/// # Examples
///
/// ```
/// use fabp_bio::seq::{PackedSeq, RnaSeq};
/// use fabp_encoding::packing::{axi_beats, ELEMENTS_PER_BEAT};
///
/// let reference: RnaSeq = "ACGU".repeat(100).parse()?;
/// let beats = axi_beats(&PackedSeq::from_rna(&reference));
/// assert_eq!(beats.len(), 2); // 400 bases -> 256 + 144
/// assert_eq!(beats[0].valid, ELEMENTS_PER_BEAT);
/// assert_eq!(beats[1].valid, 144);
/// # Ok::<(), fabp_bio::alphabet::ParseSymbolError>(())
/// ```
pub fn axi_beats(reference: &PackedSeq) -> Vec<AxiBeat> {
    let words = reference.words();
    let mut beats = Vec::with_capacity(reference.len().div_ceil(ELEMENTS_PER_BEAT));
    let mut remaining = reference.len();
    let mut w = 0usize;
    while remaining > 0 {
        let mut beat = [0u64; 8];
        for slot in beat.iter_mut() {
            if w < words.len() {
                *slot = words[w];
                w += 1;
            }
        }
        let valid = remaining.min(ELEMENTS_PER_BEAT);
        beats.push(AxiBeat { words: beat, valid });
        remaining -= valid;
    }
    beats
}

/// The accelerator's *Reference Stream* buffer: holds the current beat's
/// 256 elements plus the trailing `L_q` elements of the previous contents,
/// so all `L_r − L_q + 1` alignment positions are covered without gaps.
#[derive(Debug, Clone)]
pub struct ReferenceStream {
    query_len: usize,
    buffer: Vec<Nucleotide>,
    /// Absolute reference position of `buffer[0]`.
    base_position: usize,
    primed: bool,
}

impl ReferenceStream {
    /// Creates a stream buffer for a query of `query_len` elements.
    pub fn new(query_len: usize) -> ReferenceStream {
        ReferenceStream {
            query_len,
            buffer: Vec::with_capacity(query_len + ELEMENTS_PER_BEAT),
            base_position: 0,
            primed: false,
        }
    }

    /// Buffer capacity per the paper: `L_q + 256`.
    pub fn capacity(&self) -> usize {
        self.query_len + ELEMENTS_PER_BEAT
    }

    /// Feeds the next AXI beat and returns the window of alignment
    /// instances it completes: `(start_position, elements)` where
    /// `elements` spans the carried overlap plus the new beat.
    ///
    /// Alignment instances starting at
    /// `start_position ..` can be evaluated on the returned slice.
    pub fn push_beat(&mut self, beat: &AxiBeat) -> StreamWindow<'_> {
        if self.primed {
            // Keep only the trailing L_q elements (may be fewer if the
            // buffer is still short).
            let keep = self.query_len.min(self.buffer.len());
            let drop = self.buffer.len() - keep;
            self.buffer.drain(..drop);
            self.base_position += drop;
        } else {
            self.primed = true;
        }
        self.buffer.extend(beat.iter());
        StreamWindow {
            start_position: self.base_position,
            elements: &self.buffer,
        }
    }

    /// Absolute position of the first element currently buffered.
    pub fn base_position(&self) -> usize {
        self.base_position
    }
}

/// A borrowed view of the stream buffer after a beat arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamWindow<'a> {
    /// Absolute reference position of `elements[0]`.
    pub start_position: usize,
    /// Buffered elements (`≤ L_q + 256`).
    pub elements: &'a [Nucleotide],
}

impl StreamWindow<'_> {
    /// Number of alignment instances of a `query_len`-element query that
    /// this window can evaluate (those whose full extent lies inside it).
    pub fn num_instances(&self, query_len: usize) -> usize {
        self.elements.len().saturating_sub(query_len)
            + usize::from(query_len <= self.elements.len() && query_len > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::generate::random_rna;
    use fabp_bio::seq::RnaSeq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn beats_round_trip_all_bases() {
        let mut rng = StdRng::seed_from_u64(1);
        for len in [0usize, 1, 255, 256, 257, 512, 1000] {
            let rna = random_rna(len, &mut rng);
            let beats = axi_beats(&PackedSeq::from_rna(&rna));
            let unpacked: RnaSeq = beats.iter().flat_map(|b| b.iter()).collect();
            assert_eq!(unpacked, rna, "len {len}");
            assert_eq!(beats.len(), len.div_ceil(ELEMENTS_PER_BEAT));
        }
    }

    #[test]
    fn beat_base_indexing() {
        let rna: RnaSeq = "UACG".parse().unwrap();
        let beats = axi_beats(&PackedSeq::from_rna(&rna));
        assert_eq!(beats[0].base(0), Nucleotide::U);
        assert_eq!(beats[0].base(3), Nucleotide::G);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn beat_base_out_of_range_panics() {
        let rna: RnaSeq = "AC".parse().unwrap();
        let beats = axi_beats(&PackedSeq::from_rna(&rna));
        let _ = beats[0].base(2);
    }

    #[test]
    fn stream_covers_every_position_exactly_once() {
        // Reconstruct all window positions from the stream and check every
        // alignment instance start in 0..=L_r - L_q appears exactly once.
        let mut rng = StdRng::seed_from_u64(2);
        let query_len = 30usize;
        let rna = random_rna(700, &mut rng);
        let beats = axi_beats(&PackedSeq::from_rna(&rna));
        let mut stream = ReferenceStream::new(query_len);
        let mut seen = vec![0usize; rna.len() - query_len + 1];
        for beat in &beats {
            let window = stream.push_beat(beat);
            if window.elements.len() < query_len {
                continue;
            }
            for offset in 0..=window.elements.len() - query_len {
                let pos = window.start_position + offset;
                if pos < seen.len() {
                    // Verify the window content equals the reference there.
                    assert_eq!(
                        &window.elements[offset..offset + query_len],
                        &rna.as_slice()[pos..pos + query_len]
                    );
                    seen[pos] += 1;
                }
            }
        }
        // Positions covered by overlapping windows appear more than once;
        // what matters is that none is missed.
        assert!(seen.iter().all(|&c| c >= 1), "some position never covered");
    }

    #[test]
    fn stream_buffer_respects_capacity() {
        let query_len = 40usize;
        let mut rng = StdRng::seed_from_u64(3);
        let rna = random_rna(1024, &mut rng);
        let beats = axi_beats(&PackedSeq::from_rna(&rna));
        let mut stream = ReferenceStream::new(query_len);
        for beat in &beats {
            let window = stream.push_beat(beat);
            assert!(window.elements.len() <= stream.capacity());
        }
        assert_eq!(stream.capacity(), query_len + 256);
    }

    #[test]
    fn window_instance_count() {
        let w = StreamWindow {
            start_position: 0,
            elements: &[Nucleotide::A; 296],
        };
        // L_q = 40: 296 - 40 + 1 = 257 instances.
        assert_eq!(w.num_instances(40), 257);
        assert_eq!(w.num_instances(297), 0);
    }
}
