//! Fused per-element match tables for fast software scoring.
//!
//! The two-LUT comparator of the hardware (input multiplexer + compare
//! LUT, Fig. 5) is a pure function of the query element and the reference
//! context `(ref[i−2], ref[i−1], ref[i])`. Fusing both LUTs per query
//! element yields one 64-entry truth table, making the software inner loop
//! a single indexed bit test — this is the engine behind the fast
//! functional aligner in `fabp-core` and the GPU-kernel baseline in
//! `fabp-baselines`.

use fabp_bio::alphabet::Nucleotide;
use fabp_bio::backtranslate::BackTranslatedQuery;

/// Per-element fused truth tables.
///
/// Table `i`'s bit `ctx` (with `ctx = prev2 << 4 | prev1 << 2 | cur`)
/// tells whether query element `i` matches reference element `cur` given
/// the two earlier reference elements. Elements at positions 0 and 1 are
/// built with missing context, matching the hardware's zero-reset shift
/// registers.
///
/// # Examples
///
/// ```
/// use fabp_bio::backtranslate::BackTranslatedQuery;
/// use fabp_bio::seq::{ProteinSeq, RnaSeq};
/// use fabp_encoding::fused::FusedScorer;
///
/// let protein: ProteinSeq = "MF".parse()?;
/// let scorer = FusedScorer::build(&BackTranslatedQuery::from_protein(&protein));
/// let reference: RnaSeq = "AUGUUC".parse()?;
/// assert_eq!(scorer.score_window(reference.as_slice()), 6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedScorer {
    tables: Vec<u64>,
}

impl FusedScorer {
    /// Pre-computes the fused tables for a back-translated query.
    pub fn build(query: &BackTranslatedQuery) -> FusedScorer {
        let tables = query
            .elements()
            .iter()
            .enumerate()
            .map(|(i, element)| {
                let mut table = 0u64;
                for ctx in 0..64u8 {
                    let cur = Nucleotide::from_code2(ctx & 0b11);
                    let prev1 = (i >= 1).then(|| Nucleotide::from_code2((ctx >> 2) & 0b11));
                    let prev2 = (i >= 2).then(|| Nucleotide::from_code2((ctx >> 4) & 0b11));
                    if element.matches(cur, prev1, prev2) {
                        table |= 1 << ctx;
                    }
                }
                table
            })
            .collect();
        FusedScorer { tables }
    }

    /// Number of query elements.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` when the query holds no elements.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Scores one window: popcount of matching elements.
    ///
    /// # Panics
    ///
    /// Panics if the window is shorter than the query.
    #[inline]
    pub fn score_window(&self, window: &[Nucleotide]) -> u32 {
        assert!(window.len() >= self.tables.len(), "window too short");
        let mut ctx: u8 = 0;
        let mut score = 0u32;
        for (i, &table) in self.tables.iter().enumerate() {
            ctx = ((ctx << 2) | window[i].code2()) & 0b11_1111;
            score += ((table >> ctx) & 1) as u32;
        }
        score
    }

    /// Scores every alignment position of `reference`.
    pub fn score_all_positions(&self, reference: &[Nucleotide]) -> Vec<u32> {
        if self.is_empty() || reference.len() < self.len() {
            return Vec::new();
        }
        (0..=reference.len() - self.len())
            .map(|k| self.score_window(&reference[k..]))
            .collect()
    }

    /// Scores with early exit: returns `None` as soon as the window cannot
    /// reach `threshold` any more (mismatch budget exhausted), else the
    /// score. A branchy but often much faster variant for high thresholds.
    #[inline]
    pub fn score_window_thresholded(&self, window: &[Nucleotide], threshold: u32) -> Option<u32> {
        debug_assert!(window.len() >= self.tables.len());
        let len = self.tables.len() as u32;
        if threshold > len {
            return None;
        }
        let budget = len - threshold; // allowed mismatches
        let mut misses = 0u32;
        let mut ctx: u8 = 0;
        for (i, &table) in self.tables.iter().enumerate() {
            ctx = ((ctx << 2) | window[i].code2()) & 0b11_1111;
            misses += 1 - (((table >> ctx) & 1) as u32);
            if misses > budget {
                return None;
            }
        }
        Some(len - misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::generate::{random_protein, random_rna};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fused_matches_golden_model() {
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..10 {
            let protein = random_protein(20, &mut rng);
            let bt = BackTranslatedQuery::from_protein(&protein);
            let scorer = FusedScorer::build(&bt);
            let reference = random_rna(300, &mut rng);
            let golden = bt.score_all_positions(reference.as_slice());
            let fast = scorer.score_all_positions(reference.as_slice());
            assert_eq!(golden.len(), fast.len());
            for (g, f) in golden.iter().zip(&fast) {
                assert_eq!(*g as u32, *f);
            }
        }
    }

    #[test]
    fn thresholded_agrees_with_plain() {
        let mut rng = StdRng::seed_from_u64(42);
        let protein = random_protein(15, &mut rng);
        let bt = BackTranslatedQuery::from_protein(&protein);
        let scorer = FusedScorer::build(&bt);
        let reference = random_rna(500, &mut rng);
        for threshold in [0u32, 10, 30, 44, 45] {
            for k in 0..=reference.len() - scorer.len() {
                let window = &reference.as_slice()[k..];
                let plain = scorer.score_window(window);
                let thresholded = scorer.score_window_thresholded(window, threshold);
                if plain >= threshold {
                    assert_eq!(thresholded, Some(plain), "k={k} t={threshold}");
                } else {
                    assert_eq!(thresholded, None, "k={k} t={threshold}");
                }
            }
        }
    }

    #[test]
    fn threshold_above_length_is_none() {
        let protein = "MF".parse().unwrap();
        let scorer = FusedScorer::build(&BackTranslatedQuery::from_protein(&protein));
        let reference = random_rna(10, &mut StdRng::seed_from_u64(1));
        assert_eq!(
            scorer.score_window_thresholded(reference.as_slice(), 7),
            None
        );
    }

    #[test]
    fn empty_query() {
        let scorer = FusedScorer::build(&BackTranslatedQuery::from_elements(Vec::new()));
        assert!(scorer.is_empty());
        assert!(scorer.score_all_positions(&[]).is_empty());
    }
}
