#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! # fabp-encoding — FabP's FPGA-friendly query/reference encoding
//!
//! Implements paper §III-B: the 6-bit query [`instruction`] format
//! (variable-length opcode, matching condition, configuration bits), the
//! whole-query [`encoder`], and the 2-bit reference [`packing`] into
//! 512-bit AXI beats with the `L_q`-overlap stream buffer.
//!
//! Everything here is bit-exact with the worked examples of §III-B and is
//! property-tested against the golden model in `fabp-bio`.
//!
//! ```
//! use fabp_bio::seq::ProteinSeq;
//! use fabp_encoding::encoder::EncodedQuery;
//!
//! let protein: ProteinSeq = "MF".parse()?;
//! let query = EncodedQuery::from_protein(&protein);
//! let reference: fabp_bio::seq::RnaSeq = "AUGUUC".parse()?;
//! assert_eq!(query.score_window(reference.as_slice()), 6);
//! # Ok::<(), fabp_bio::alphabet::ParseSymbolError>(())
//! ```

pub mod bitstream;
pub mod encoder;
pub mod fused;
pub mod instruction;
pub mod packing;

pub use bitstream::PackedQuery;
pub use encoder::{EncodedQuery, QuerySet};
pub use fused::FusedScorer;
pub use instruction::{compare_function, ConfigSelect, DecodeError, Instruction};
pub use packing::{axi_beats, AxiBeat, ReferenceStream, StreamWindow, ELEMENTS_PER_BEAT};
