//! The 6-bit FabP query instruction (paper §III-B).
//!
//! Every element of the back-translated query is stored as a 6-bit
//! *instruction* with three fields:
//!
//! * a **variable-length opcode** — `00` (Type I), `01` (Type II), or the
//!   single bit `1` (Type III and the match-anything element `D`);
//! * a **matching condition** — the nucleotide to match (Type I), the
//!   2-bit condition code (Type II), or the 2-bit function code `F`
//!   (Type III);
//! * two **configuration bits** that steer the comparator's input
//!   multiplexer (Fig. 5(a)).
//!
//! ## Bit layout
//!
//! The paper orders bits "first … last"; we store the first bit `Q[0]` in
//! bit 5 of a `u8` and the last bit `Q[5]` in bit 0:
//!
//! ```text
//!   bit:      5    4    3    2    1    0
//!   Type I:   0    0    n1   n0   0    0     n = nucleotide code
//!   Type II:  0    1    c1   c0   0    0     c = condition code
//!   Type III: 1    f1   f0   0    s1   s0    f = function, s = config
//! ```
//!
//! The worked example of §III-B encodes `Arg`'s third element as
//! `1-10-0-01` (`F:10`, config `01` → tap `Ref^{i-2}[0]`) and `Stop`'s
//! third element as `1-00-0-10` (`F:00`, config `10` → tap
//! `Ref^{i-1}[1]`); [`Instruction::encode`] reproduces those bit patterns
//! exactly (see the unit tests).

use fabp_bio::alphabet::Nucleotide;
use fabp_bio::backtranslate::{DependentFn, MatchCondition, PatternElement};
use std::fmt;

/// What the comparator's input multiplexer feeds into the compare-LUT's
/// fourth input (paper Fig. 5(a)), selected by the two configuration bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ConfigSelect {
    /// Config `00`: pass the instruction's own fourth bit `Q[3]`
    /// (Types I/II, and `D` whose output ignores it).
    QueryBit = 0b00,
    /// Config `01`: tap bit 0 (LSB) of the reference element two back —
    /// used by `F:10` (Arg).
    RefPrev2Lsb = 0b01,
    /// Config `10`: tap bit 1 (MSB) of the reference element one back —
    /// used by `F:00` (Stop).
    RefPrev1Msb = 0b10,
    /// Config `11`: tap bit 1 (MSB) of the reference element two back —
    /// used by `F:01` (Leu).
    RefPrev2Msb = 0b11,
}

impl ConfigSelect {
    /// All selects in config-code order.
    pub const ALL: [ConfigSelect; 4] = [
        ConfigSelect::QueryBit,
        ConfigSelect::RefPrev2Lsb,
        ConfigSelect::RefPrev1Msb,
        ConfigSelect::RefPrev2Msb,
    ];

    /// The 2-bit configuration code.
    #[inline]
    pub const fn code2(self) -> u8 {
        self as u8
    }

    /// Reconstructs a select from its 2-bit code.
    #[inline]
    pub const fn from_code2(code: u8) -> ConfigSelect {
        match code & 0b11 {
            0b00 => ConfigSelect::QueryBit,
            0b01 => ConfigSelect::RefPrev2Lsb,
            0b10 => ConfigSelect::RefPrev1Msb,
            _ => ConfigSelect::RefPrev2Msb,
        }
    }

    /// The configuration used by a dependent function, from its hardware
    /// source tap.
    pub fn for_function(func: DependentFn) -> ConfigSelect {
        match func.source_tap() {
            None => ConfigSelect::QueryBit,
            Some((1, 1)) => ConfigSelect::RefPrev1Msb,
            Some((2, 0)) => ConfigSelect::RefPrev2Lsb,
            Some((2, 1)) => ConfigSelect::RefPrev2Msb,
            Some(other) => unreachable!("no mux input for tap {other:?}"),
        }
    }

    /// Evaluates the multiplexer: returns the selected bit given the
    /// instruction's `Q[3]` and the previous reference elements. Missing
    /// context reads as 0, matching hardware shift registers that reset to
    /// zero.
    #[inline]
    pub fn select(self, q3: bool, prev1: Option<Nucleotide>, prev2: Option<Nucleotide>) -> bool {
        let bit = |n: Option<Nucleotide>, b: u8| n.is_some_and(|n| (n.code2() >> b) & 1 == 1);
        match self {
            ConfigSelect::QueryBit => q3,
            ConfigSelect::RefPrev2Lsb => bit(prev2, 0),
            ConfigSelect::RefPrev1Msb => bit(prev1, 1),
            ConfigSelect::RefPrev2Msb => bit(prev2, 1),
        }
    }
}

/// Error returned by [`Instruction::decode`] for bit patterns the encoder
/// never produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The rejected 6-bit pattern.
    pub bits: u8,
    /// Why it was rejected.
    pub reason: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction {:06b}: {}", self.bits, self.reason)
    }
}

impl std::error::Error for DecodeError {}

/// One 6-bit FabP query instruction.
///
/// # Examples
///
/// ```
/// use fabp_bio::alphabet::Nucleotide;
/// use fabp_bio::backtranslate::PatternElement;
/// use fabp_encoding::instruction::Instruction;
///
/// let instr = Instruction::encode(PatternElement::Exact(Nucleotide::A));
/// assert_eq!(instr.bits(), 0b000000);
/// assert_eq!(instr.decode()?, PatternElement::Exact(Nucleotide::A));
/// # Ok::<(), fabp_encoding::instruction::DecodeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction(u8);

impl Instruction {
    /// Builds an instruction from raw bits (low six bits of `bits`).
    ///
    /// No validity check is performed; use [`Instruction::decode`] to
    /// validate.
    #[inline]
    pub const fn from_bits(bits: u8) -> Instruction {
        Instruction(bits & 0b11_1111)
    }

    /// The raw 6-bit pattern (`Q[0]` in bit 5 … `Q[5]` in bit 0).
    #[inline]
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Bit `Q[i]` in the paper's first-to-last numbering (`i < 6`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 6`.
    #[inline]
    pub fn q(self, i: usize) -> bool {
        assert!(i < 6, "instruction bit index {i} out of range");
        (self.0 >> (5 - i)) & 1 == 1
    }

    /// The four "matching information" bits `Q[0..4]` that feed the
    /// compare-LUT (paper §III-D).
    #[inline]
    pub const fn match_bits(self) -> u8 {
        self.0 >> 2
    }

    /// The two configuration bits `Q[4..6]`.
    #[inline]
    pub const fn config(self) -> ConfigSelect {
        ConfigSelect::from_code2(self.0 & 0b11)
    }

    /// `true` when the opcode marks a Type III-encoded element
    /// (dependent functions and `D`).
    #[inline]
    pub const fn is_dependent_opcode(self) -> bool {
        self.0 & 0b10_0000 != 0
    }

    /// Encodes a pattern element into its 6-bit instruction.
    pub fn encode(element: PatternElement) -> Instruction {
        let bits = match element {
            PatternElement::Exact(n) => n.code2() << 2, // 00 nn 00
            PatternElement::Conditional(c) => 0b01_0000 | (c.code2() << 2),
            PatternElement::Dependent(f) => {
                0b10_0000 | (f.code2() << 3) | ConfigSelect::for_function(f).code2()
            }
        };
        Instruction(bits)
    }

    /// Decodes the instruction back into a pattern element.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for patterns the encoder never produces:
    /// non-zero config bits on Type I/II, a set fourth bit on Type III, or
    /// a config that does not match the function's source tap.
    pub fn decode(self) -> Result<PatternElement, DecodeError> {
        let bits = self.0;
        if !self.is_dependent_opcode() {
            if bits & 0b11 != 0 {
                return Err(DecodeError {
                    bits,
                    reason: "Type I/II config bits must be 00",
                });
            }
            let payload = (bits >> 2) & 0b11;
            if bits & 0b01_0000 == 0 {
                Ok(PatternElement::Exact(Nucleotide::from_code2(payload)))
            } else {
                Ok(PatternElement::Conditional(MatchCondition::from_code2(
                    payload,
                )))
            }
        } else {
            if bits & 0b00_0100 != 0 {
                return Err(DecodeError {
                    bits,
                    reason: "Type III fourth bit must be 0",
                });
            }
            let func = DependentFn::from_code2((bits >> 3) & 0b11);
            let config = ConfigSelect::from_code2(bits & 0b11);
            if config != ConfigSelect::for_function(func) {
                return Err(DecodeError {
                    bits,
                    reason: "config bits do not match the function's source tap",
                });
            }
            Ok(PatternElement::Dependent(func))
        }
    }

    /// Bit-level matching semantics: does `reference` match this
    /// instruction given the two previous reference elements?
    ///
    /// This follows the hardware datapath literally — multiplexer first
    /// (configuration bits select the compare-LUT's fourth input), then the
    /// comparison function of Fig. 5(b) — and is property-tested equal to
    /// the golden [`PatternElement::matches`].
    #[inline]
    pub fn matches(
        self,
        reference: Nucleotide,
        prev1: Option<Nucleotide>,
        prev2: Option<Nucleotide>,
    ) -> bool {
        let x = self.config().select(self.q(3), prev1, prev2);
        compare_function(self.q(0), self.q(1), self.q(2), x, reference)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:06b}", self.0)
    }
}

/// The comparison function programmed into the compare-LUT (Fig. 5(b)):
/// inputs are the three leading instruction bits, the multiplexer output
/// `x`, and the 2-bit reference element.
///
/// This is the semantic reference for the LUT truth table generated in
/// `fabp-fpga`; both are tested against the golden model.
#[inline]
pub fn compare_function(q0: bool, q1: bool, q2: bool, x: bool, reference: Nucleotide) -> bool {
    if !q0 {
        let hi = u8::from(q2);
        let lo = u8::from(x);
        let code = (hi << 1) | lo;
        if !q1 {
            // Type I: exact match of the 2-bit code.
            reference.code2() == code
        } else {
            // Type II: conditional match.
            MatchCondition::from_code2(code).matches(reference)
        }
    } else {
        // Type III: dependent function on (s = x, reference).
        DependentFn::from_code2((u8::from(q1) << 1) | u8::from(q2)).eval(x, reference)
    }
}

#[cfg(test)]
// Binary literal groups mirror the 6-bit instruction's field
// boundaries (type | match | spare | config), not byte nibbles.
#[allow(clippy::unusual_byte_groupings)]
mod tests {
    use super::*;
    use fabp_bio::alphabet::AminoAcid;
    use fabp_bio::backtranslate::back_translate;

    /// Every instruction the encoder can produce.
    fn all_valid_instructions() -> Vec<Instruction> {
        let mut v = Vec::new();
        for n in Nucleotide::ALL {
            v.push(Instruction::encode(PatternElement::Exact(n)));
        }
        for c in MatchCondition::ALL {
            v.push(Instruction::encode(PatternElement::Conditional(c)));
        }
        for f in DependentFn::ALL {
            v.push(Instruction::encode(PatternElement::Dependent(f)));
        }
        v
    }

    #[test]
    fn paper_worked_example_bit_patterns() {
        // §III-B: Met = AUG -> {00A00, 00U00, 00G00} with A=00, U=11, G=10.
        assert_eq!(
            Instruction::encode(PatternElement::Exact(Nucleotide::A)).bits(),
            0b00_00_00
        );
        assert_eq!(
            Instruction::encode(PatternElement::Exact(Nucleotide::U)).bits(),
            0b00_11_00
        );
        // Phe third element U/C -> {010000}.
        assert_eq!(
            Instruction::encode(PatternElement::Conditional(MatchCondition::PyrimidineUc)).bits(),
            0b01_00_00
        );
        // Arg third element -> {110001}: F:10, config 01.
        assert_eq!(
            Instruction::encode(PatternElement::Dependent(DependentFn::Arg)).bits(),
            0b1_10_0_01
        );
        // Stop third element -> {100010}: F:00, config 10.
        assert_eq!(
            Instruction::encode(PatternElement::Dependent(DependentFn::Stop)).bits(),
            0b1_00_0_10
        );
        // Stop second element A/G -> {010100}.
        assert_eq!(
            Instruction::encode(PatternElement::Conditional(MatchCondition::PurineAg)).bits(),
            0b01_01_00
        );
    }

    #[test]
    fn encode_decode_round_trip() {
        for instr in all_valid_instructions() {
            let element = instr.decode().expect("encoder output must decode");
            assert_eq!(Instruction::encode(element), instr);
        }
    }

    #[test]
    fn decode_rejects_malformed_patterns() {
        // Type I with config bits set.
        assert!(Instruction::from_bits(0b00_00_01).decode().is_err());
        // Type III with the fourth bit set.
        assert!(Instruction::from_bits(0b1_00_1_10).decode().is_err());
        // Type III Stop with the wrong config.
        assert!(Instruction::from_bits(0b1_00_0_00).decode().is_err());
    }

    #[test]
    fn q_bit_numbering_is_first_to_last() {
        let instr = Instruction::from_bits(0b10_0001);
        assert!(instr.q(0));
        assert!(!instr.q(1));
        assert!(instr.q(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn q_bit_out_of_range_panics() {
        let _ = Instruction::from_bits(0).q(6);
    }

    #[test]
    fn bitlevel_matches_equals_golden_model_exhaustively() {
        // All valid instructions × all references × all context
        // combinations (including missing context).
        let contexts: Vec<Option<Nucleotide>> = std::iter::once(None)
            .chain(Nucleotide::ALL.into_iter().map(Some))
            .collect();
        for instr in all_valid_instructions() {
            let element = instr.decode().unwrap();
            for reference in Nucleotide::ALL {
                for &prev1 in &contexts {
                    for &prev2 in &contexts {
                        assert_eq!(
                            instr.matches(reference, prev1, prev2),
                            element.matches(reference, prev1, prev2),
                            "instr {instr} ({element}) vs {reference} ctx {prev1:?},{prev2:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn config_select_for_functions_matches_source_taps() {
        assert_eq!(
            ConfigSelect::for_function(DependentFn::Stop),
            ConfigSelect::RefPrev1Msb
        );
        assert_eq!(
            ConfigSelect::for_function(DependentFn::Leu),
            ConfigSelect::RefPrev2Msb
        );
        assert_eq!(
            ConfigSelect::for_function(DependentFn::Arg),
            ConfigSelect::RefPrev2Lsb
        );
        assert_eq!(
            ConfigSelect::for_function(DependentFn::Any),
            ConfigSelect::QueryBit
        );
    }

    #[test]
    fn whole_codon_instruction_streams_match_paper() {
        // §III-B encodes Arg as {010100, 000000?...} — the paper prints
        // {010100, 00000, 110001}: (A/C)=01 01 00, G=00 10 00, F:10=110001.
        let arg = back_translate(AminoAcid::Arg);
        let bits: Vec<u8> = arg
            .0
            .iter()
            .map(|&e| Instruction::encode(e).bits())
            .collect();
        assert_eq!(bits, vec![0b01_11_00, 0b00_10_00, 0b1_10_0_01]);
        // (A/C) condition code is 11 per Fig. 5(b)'s legend.
        let stop = back_translate(AminoAcid::Stop);
        let bits: Vec<u8> = stop
            .0
            .iter()
            .map(|&e| Instruction::encode(e).bits())
            .collect();
        assert_eq!(bits, vec![0b00_11_00, 0b01_01_00, 0b1_00_0_10]);
    }

    #[test]
    fn match_bits_are_the_top_four() {
        let instr = Instruction::from_bits(0b1_10_0_01);
        assert_eq!(instr.match_bits(), 0b1100);
        assert_eq!(instr.config(), ConfigSelect::RefPrev2Lsb);
    }
}
