//! Dense bit-packing of the 6-bit instruction stream.
//!
//! The encoded query is "stored in the FPGA main memory (DRAM)" before
//! being loaded into distributed memory (§III-B/C). In DRAM and over the
//! host interconnect the instructions are packed back-to-back, 6 bits
//! each; this module implements that wire format with exact round-trip
//! guarantees.

use crate::encoder::EncodedQuery;
use crate::instruction::{DecodeError, Instruction};
use fabp_bio::backtranslate::BackTranslatedQuery;

/// A densely packed instruction stream: 6 bits per instruction,
/// little-endian within and across 64-bit words (instruction 0 occupies
/// bits `0..6` of word 0).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct PackedQuery {
    words: Vec<u64>,
    len: usize,
}

impl PackedQuery {
    /// Bits per packed instruction.
    pub const BITS_PER_INSTRUCTION: usize = 6;

    /// Packs an encoded query.
    pub fn from_query(query: &EncodedQuery) -> PackedQuery {
        let mut packed = PackedQuery {
            words: vec![0u64; (query.len() * Self::BITS_PER_INSTRUCTION).div_ceil(64)],
            len: query.len(),
        };
        for (i, instr) in query.instructions().iter().enumerate() {
            packed.write(i, instr.bits());
        }
        packed
    }

    /// Reassembles a packed stream from raw transport words — what the
    /// host does with a DMA buffer received from the wire, and the
    /// corruption-injection surface for `fabp-lint`'s packed-stream
    /// rules. **No validation is performed**: word counts, trailing
    /// bits and instruction validity are exactly what the lint audits.
    pub fn from_raw_parts(words: Vec<u64>, len: usize) -> PackedQuery {
        PackedQuery { words, len }
    }

    fn write(&mut self, index: usize, bits: u8) {
        let bit_pos = index * Self::BITS_PER_INSTRUCTION;
        let word = bit_pos / 64;
        let offset = bit_pos % 64;
        self.words[word] |= u64::from(bits) << offset;
        if offset > 64 - Self::BITS_PER_INSTRUCTION {
            // Straddles a word boundary: the high bits spill into the next
            // word.
            self.words[word + 1] |= u64::from(bits) >> (64 - offset);
        }
    }

    /// Number of packed instructions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no instructions are packed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Packed size in bytes (what travels over PCIe).
    pub fn size_bytes(&self) -> usize {
        (self.len * Self::BITS_PER_INSTRUCTION).div_ceil(8)
    }

    /// Borrow the underlying words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The raw 6 bits of instruction `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn bits_at(&self, index: usize) -> u8 {
        assert!(index < self.len, "instruction index {index} out of range");
        let bit_pos = index * Self::BITS_PER_INSTRUCTION;
        let word = bit_pos / 64;
        let offset = bit_pos % 64;
        let mut bits = (self.words[word] >> offset) as u8;
        if offset > 64 - Self::BITS_PER_INSTRUCTION {
            bits |= (self.words[word + 1] << (64 - offset)) as u8;
        }
        bits & 0b11_1111
    }

    /// Unpacks into an [`EncodedQuery`], validating every instruction.
    ///
    /// # Errors
    ///
    /// Returns the first [`DecodeError`] encountered — corrupted streams
    /// do not silently produce wrong queries.
    pub fn unpack(&self) -> Result<EncodedQuery, DecodeError> {
        let mut elements = Vec::with_capacity(self.len);
        for i in 0..self.len {
            elements.push(Instruction::from_bits(self.bits_at(i)).decode()?);
        }
        Ok(EncodedQuery::from_back_translated(
            &BackTranslatedQuery::from_elements(elements),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::generate::random_protein;
    use fabp_bio::seq::ProteinSeq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_various_lengths() {
        let mut rng = StdRng::seed_from_u64(0xB17);
        for aa in [1usize, 2, 10, 11, 32, 64, 100, 250] {
            let protein = random_protein(aa, &mut rng);
            let query = EncodedQuery::from_protein(&protein);
            let packed = PackedQuery::from_query(&query);
            assert_eq!(packed.len(), query.len());
            assert_eq!(packed.unpack().unwrap(), query, "{aa} aa");
        }
    }

    #[test]
    fn bit_layout_is_lsb_first() {
        let protein: ProteinSeq = "M".parse().unwrap(); // AUG: 000000 001100 001000
        let query = EncodedQuery::from_protein(&protein);
        let packed = PackedQuery::from_query(&query);
        // Instruction 0 = 0b000000 at bits 0..6, instruction 1 = 0b001100
        // at bits 6..12, instruction 2 = 0b001000 at 12..18.
        assert_eq!(packed.words()[0] & 0x3F, 0b000000);
        assert_eq!((packed.words()[0] >> 6) & 0x3F, 0b001100);
        assert_eq!((packed.words()[0] >> 12) & 0x3F, 0b001000);
    }

    #[test]
    fn word_boundary_straddle() {
        // 11 instructions × 6 bits = 66 bits: the 11th instruction (bits
        // 60..66) straddles words 0 and 1.
        let mut rng = StdRng::seed_from_u64(0xB18);
        let protein = random_protein(4, &mut rng); // 12 instructions
        let query = EncodedQuery::from_protein(&protein);
        let packed = PackedQuery::from_query(&query);
        assert!(packed.words().len() >= 2);
        for (i, instr) in query.instructions().iter().enumerate() {
            assert_eq!(packed.bits_at(i), instr.bits(), "instruction {i}");
        }
    }

    #[test]
    fn size_bytes_is_six_bits_per_instruction() {
        let protein: ProteinSeq = "MFSR".parse().unwrap(); // 12 instr = 72 bits
        let packed = PackedQuery::from_query(&EncodedQuery::from_protein(&protein));
        assert_eq!(packed.size_bytes(), 9);
    }

    #[test]
    fn corrupted_stream_fails_to_unpack() {
        let protein: ProteinSeq = "MF".parse().unwrap();
        let query = EncodedQuery::from_protein(&protein);
        let mut packed = PackedQuery::from_query(&query);
        // Set a Type I instruction's config bits — an invalid pattern.
        packed.words[0] |= 0b11;
        assert!(packed.unpack().is_err());
    }

    #[test]
    fn empty_query_packs_empty() {
        let query = EncodedQuery::from_exact_rna(&fabp_bio::seq::RnaSeq::new());
        let packed = PackedQuery::from_query(&query);
        assert!(packed.is_empty());
        assert_eq!(packed.size_bytes(), 0);
        assert!(packed.unpack().unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bits_at_bounds() {
        let query = EncodedQuery::from_protein(&"M".parse().unwrap());
        let packed = PackedQuery::from_query(&query);
        let _ = packed.bits_at(3);
    }
}
