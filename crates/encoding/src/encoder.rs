//! Whole-query encoding: protein → stream of 6-bit instructions.
//!
//! "FabP first creates the back-translated sequence. Then, it encodes that
//! sequence and stores it in the FPGA main memory" (§III-B). The encoded
//! query is what the accelerator keeps in distributed memory (flip-flops)
//! while the reference streams past it.

use crate::instruction::Instruction;
use fabp_bio::alphabet::{AminoAcid, Nucleotide};
use fabp_bio::backtranslate::{serine_secondary_pattern, BackTranslatedQuery, BackTranslationMode};
use fabp_bio::seq::{ProteinSeq, RnaSeq};
use std::fmt;

/// An encoded FabP query: one 6-bit instruction per back-translated
/// element (`L_q = 3 ×` protein length).
///
/// # Examples
///
/// ```
/// use fabp_encoding::encoder::EncodedQuery;
/// use fabp_bio::seq::ProteinSeq;
///
/// let protein: ProteinSeq = "MFSR*".parse()?;
/// let query = EncodedQuery::from_protein(&protein);
/// assert_eq!(query.len(), 15);
/// # Ok::<(), fabp_bio::alphabet::ParseSymbolError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedQuery {
    instructions: Vec<Instruction>,
}

impl EncodedQuery {
    /// Encodes a protein query with the paper's back-translation patterns.
    pub fn from_protein(protein: &ProteinSeq) -> EncodedQuery {
        EncodedQuery::from_back_translated(&BackTranslatedQuery::from_protein(protein))
    }

    /// Encodes an already back-translated query.
    pub fn from_back_translated(query: &BackTranslatedQuery) -> EncodedQuery {
        EncodedQuery {
            instructions: query
                .elements()
                .iter()
                .map(|&e| Instruction::encode(e))
                .collect(),
        }
    }

    /// Encodes an exact-match RNA query (every instruction Type I).
    pub fn from_exact_rna(rna: &RnaSeq) -> EncodedQuery {
        EncodedQuery::from_back_translated(&BackTranslatedQuery::from_exact_rna(rna))
    }

    /// Number of instructions (`L_q`).
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// `true` when the query holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Borrow the instruction stream.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Decodes back into a [`BackTranslatedQuery`] (exact inverse of the
    /// encoding).
    ///
    /// # Panics
    ///
    /// Panics if any instruction is malformed — impossible for queries
    /// built by this type's constructors.
    pub fn decode(&self) -> BackTranslatedQuery {
        BackTranslatedQuery::from_elements(
            self.instructions
                .iter()
                .map(|i| {
                    i.decode()
                        .expect("constructors only store valid instructions")
                })
                .collect(),
        )
    }

    /// Bit-level alignment score of the query against one reference
    /// window: the popcount of element-wise matches (the value FabP's
    /// Pop-Counter produces for an alignment instance).
    ///
    /// # Panics
    ///
    /// Panics if `window.len() < self.len()`.
    pub fn score_window(&self, window: &[Nucleotide]) -> usize {
        assert!(
            window.len() >= self.len(),
            "window ({}) shorter than query ({})",
            window.len(),
            self.len()
        );
        self.instructions
            .iter()
            .enumerate()
            .filter(|&(i, instr)| {
                let prev1 = i.checked_sub(1).map(|j| window[j]);
                let prev2 = i.checked_sub(2).map(|j| window[j]);
                instr.matches(window[i], prev1, prev2)
            })
            .count()
    }

    /// Scores every alignment position of the reference
    /// (`L_r − L_q + 1` instances).
    pub fn score_all_positions(&self, reference: &[Nucleotide]) -> Vec<usize> {
        if reference.len() < self.len() || self.is_empty() {
            return Vec::new();
        }
        (0..=reference.len() - self.len())
            .map(|k| self.score_window(&reference[k..]))
            .collect()
    }

    /// Size of the encoded query in bits (6 per instruction) — what the
    /// hardware must hold in flip-flops.
    pub fn size_bits(&self) -> usize {
        self.instructions.len() * 6
    }
}

impl EncodedQuery {
    /// Disassembles the instruction stream into a human-readable listing
    /// (one instruction per line: index, raw bits, opcode class, operand,
    /// pattern notation) — the `objdump` of FabP queries.
    ///
    /// # Examples
    ///
    /// ```
    /// use fabp_encoding::encoder::EncodedQuery;
    /// let q = EncodedQuery::from_protein(&"M".parse()?);
    /// let listing = q.disassemble();
    /// assert!(listing.contains("EXACT"));
    /// # Ok::<(), fabp_bio::alphabet::ParseSymbolError>(())
    /// ```
    pub fn disassemble(&self) -> String {
        use fabp_bio::backtranslate::PatternElement;
        use std::fmt::Write as _;

        let mut out = String::new();
        for (i, instr) in self.instructions.iter().enumerate() {
            let element = instr
                .decode()
                .expect("constructors only store valid instructions");
            let (class, operand) = match element {
                PatternElement::Exact(n) => ("EXACT", n.to_string()),
                PatternElement::Conditional(c) => ("COND ", c.to_string()),
                PatternElement::Dependent(f) => ("DEP  ", f.to_string()),
            };
            writeln!(
                out,
                "{i:>4}  {instr}  {class} {operand:<4} ; codon pos {} -> {element}",
                i % 3
            )
            .expect("writing to String cannot fail");
        }
        out
    }
}

impl fmt::Display for EncodedQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for instr in &self.instructions {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{instr}")?;
            first = false;
        }
        Ok(())
    }
}

/// The set of encoded queries needed to search one protein under a given
/// Serine representation mode.
///
/// [`BackTranslationMode::Paper`] yields one query;
/// [`BackTranslationMode::ExtendedSer`] yields `2^k` queries for a protein
/// with `k` serines **capped** by enumerating each Ser independently would
/// explode, so instead the extended mode emits one *additional* query per
/// serine position, replacing that position's pattern with `AG(U/C)` — a
/// one-mismatch-tolerant approximation documented in `DESIGN.md`.
#[derive(Debug, Clone)]
pub struct QuerySet {
    /// The primary (paper-scheme) query.
    pub primary: EncodedQuery,
    /// Extra queries covering Ser `AGU`/`AGC` codons, one per Ser position.
    pub secondary: Vec<EncodedQuery>,
}

impl QuerySet {
    /// Builds the query set for `protein` under `mode`.
    pub fn build(protein: &ProteinSeq, mode: BackTranslationMode) -> QuerySet {
        let primary = EncodedQuery::from_protein(protein);
        let secondary = match mode {
            BackTranslationMode::Paper => Vec::new(),
            BackTranslationMode::ExtendedSer => {
                let base = BackTranslatedQuery::from_protein(protein);
                protein
                    .iter()
                    .enumerate()
                    .filter(|&(_, &aa)| aa == AminoAcid::Ser)
                    .map(|(pos, _)| {
                        let mut elements = base.elements().to_vec();
                        let alt = serine_secondary_pattern();
                        elements[pos * 3..pos * 3 + 3].copy_from_slice(&alt.0);
                        EncodedQuery::from_back_translated(&BackTranslatedQuery::from_elements(
                            elements,
                        ))
                    })
                    .collect()
            }
        };
        QuerySet { primary, secondary }
    }

    /// Total number of encoded queries.
    pub fn num_queries(&self) -> usize {
        1 + self.secondary.len()
    }

    /// Best score at each reference position across all queries in the set.
    pub fn best_scores(&self, reference: &[Nucleotide]) -> Vec<usize> {
        let mut best = self.primary.score_all_positions(reference);
        for query in &self.secondary {
            for (b, s) in best.iter_mut().zip(query.score_all_positions(reference)) {
                *b = (*b).max(s);
            }
        }
        best
    }
}

#[cfg(test)]
// Binary literal groups mirror the 6-bit instruction's field
// boundaries (type | match | spare | config), not byte nibbles.
#[allow(clippy::unusual_byte_groupings)]
mod tests {
    use super::*;
    use fabp_bio::backtranslate::BackTranslatedQuery;

    #[test]
    fn paper_example_encoding_stream() {
        // §III-B full worked example, with the Ser/Arg-first-element errata
        // corrected per Fig. 5(b)'s legend (see DESIGN.md):
        // AUG UU(U/C) UCD (A/C)G(F:10) U(A/G)(F:00).
        let protein: ProteinSeq = "MFSR*".parse().unwrap();
        let query = EncodedQuery::from_protein(&protein);
        let bits: Vec<u8> = query.instructions().iter().map(|i| i.bits()).collect();
        assert_eq!(
            bits,
            vec![
                0b00_00_00,  // A
                0b00_11_00,  // U
                0b00_10_00,  // G
                0b00_11_00,  // U
                0b00_11_00,  // U
                0b01_00_00,  // U/C
                0b00_11_00,  // U
                0b00_01_00,  // C
                0b1_11_0_00, // D
                0b01_11_00,  // A/C
                0b00_10_00,  // G
                0b1_10_0_01, // F:10
                0b00_11_00,  // U
                0b01_01_00,  // A/G
                0b1_00_0_10, // F:00
            ]
        );
    }

    #[test]
    fn disassembly_lists_every_instruction() {
        let protein: ProteinSeq = "MFSR*".parse().unwrap();
        let query = EncodedQuery::from_protein(&protein);
        let listing = query.disassemble();
        assert_eq!(listing.lines().count(), 15);
        assert!(listing.contains("EXACT"));
        assert!(listing.contains("COND"));
        assert!(listing.contains("DEP"));
        assert!(listing.contains("F:10"), "Arg function visible: {listing}");
    }

    #[test]
    fn decode_inverts_encode() {
        let protein: ProteinSeq = "MFSRWKLYVAChidnpqgte*".to_uppercase().parse().unwrap();
        let bt = BackTranslatedQuery::from_protein(&protein);
        let query = EncodedQuery::from_back_translated(&bt);
        assert_eq!(query.decode(), bt);
    }

    #[test]
    fn score_matches_golden_model() {
        let protein: ProteinSeq = "MFLSR*".parse().unwrap();
        let bt = BackTranslatedQuery::from_protein(&protein);
        let query = EncodedQuery::from_protein(&protein);
        let reference: RnaSeq = "GAUGUUCUUGUCACGAUAAGGCAUGUUUAGUCGAUGA".parse().unwrap();
        assert_eq!(
            query.score_all_positions(reference.as_slice()),
            bt.score_all_positions(reference.as_slice())
        );
    }

    #[test]
    fn exact_rna_query_is_hamming_scorer() {
        let rna: RnaSeq = "ACGUA".parse().unwrap();
        let query = EncodedQuery::from_exact_rna(&rna);
        let reference: RnaSeq = "ACGUACGU".parse().unwrap();
        let scores = query.score_all_positions(reference.as_slice());
        assert_eq!(scores[0], 5);
        assert!(scores[1] < 5);
    }

    #[test]
    fn size_bits_is_six_per_element() {
        let protein: ProteinSeq = "MF".parse().unwrap();
        assert_eq!(EncodedQuery::from_protein(&protein).size_bits(), 36);
    }

    #[test]
    fn query_set_paper_mode_has_no_secondaries() {
        let protein: ProteinSeq = "MSS".parse().unwrap();
        let set = QuerySet::build(&protein, BackTranslationMode::Paper);
        assert_eq!(set.num_queries(), 1);
    }

    #[test]
    fn query_set_extended_adds_one_per_serine() {
        let protein: ProteinSeq = "MSSF".parse().unwrap();
        let set = QuerySet::build(&protein, BackTranslationMode::ExtendedSer);
        assert_eq!(set.num_queries(), 3);
    }

    #[test]
    fn extended_mode_recovers_agy_serine_codons() {
        use fabp_bio::generate::coding_rna_for;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let protein: ProteinSeq = "MSF".parse().unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        // Find a coding RNA that uses AGU/AGC for the serine.
        let coding = loop {
            let rna = coding_rna_for(&protein, &mut rng);
            if rna.as_slice()[3] == Nucleotide::A {
                break rna;
            }
            // Re-roll; AGU/AGC are 2 of 6 serine codons.
            let _: u8 = rng.gen();
        };
        let paper = QuerySet::build(&protein, BackTranslationMode::Paper);
        let extended = QuerySet::build(&protein, BackTranslationMode::ExtendedSer);
        let paper_best = paper.best_scores(coding.as_slice());
        let ext_best = extended.best_scores(coding.as_slice());
        assert!(paper_best[0] < 9, "paper mode must miss AGY serine");
        assert_eq!(ext_best[0], 9, "extended mode must recover it");
    }

    #[test]
    fn empty_query_scores_nothing() {
        let query = EncodedQuery::from_exact_rna(&RnaSeq::new());
        assert!(query.is_empty());
        let reference: RnaSeq = "ACGU".parse().unwrap();
        assert!(query.score_all_positions(reference.as_slice()).is_empty());
    }
}
