//! `bench_perf` — the hot-path performance regression harness.
//!
//! Times the workspace's five hot paths on pinned (seeded) workloads and
//! emits `BENCH_perf.json`:
//!
//! * `bitparallel` — the fused tiled bit-sliced scan vs the retained
//!   two-pass oracle (`BitParallelEngine::search_two_pass`);
//! * `software` — the fused-table scalar scan;
//! * `batch` — work-stealing multi-query batch, parallel vs serial,
//!   plus the reference-sliced scheduler at 1/2/4 workers
//!   (`batch_sliced*`) with its critical-path speedup derived from
//!   per-worker CPU busy time;
//! * `multiquery` — the 4-lane SIMD bit-sliced scan
//!   (`fused_multiquery4`) vs four independent fused scans;
//! * `streaming` — chunked feed through the reusable carry buffer;
//! * `engine` — the cycle-accurate simulator's event-driven fast-forward
//!   path vs the exact per-beat model.
//!
//! Before any timing, the harness cross-checks that the fused scan, the
//! two-pass oracle and the scalar engine produce **bit-identical hit
//! sets** on the measured workload — a perf number for a wrong answer is
//! worse than no number.
//!
//! ```text
//! cargo run --release -p fabp-bench --bin bench_perf -- \
//!     [--quick] [--out BENCH_perf.json] [--best-of N] \
//!     [--min-speedup ID:FLOOR]... \
//!     [--baseline BENCH_perf.json --check [--tolerance 0.10]]
//! ```
//!
//! With `--baseline` + `--check`, every timed entry of the current run is
//! compared against the same id in the baseline file: times may not
//! regress by more than `--tolerance` (default 10 %), and derived
//! speedups may not drop by more than the same fraction.
//! `--min-speedup id:value` (repeatable) enforces an *absolute* floor
//! on a speedup entry — it fails even if the committed baseline itself
//! has regressed — and *removes* that entry from the relative `--check`
//! (the floored sliced critical-path ratios swing far beyond ±10 %
//! run-to-run from worker scheduling noise, so a relative gate on them
//! is pure flake; the floor is the honest gate). CI runs `--quick
//! --check` against the committed `BENCH_perf.json` on every push plus
//! floors on the sliced-batch and multi-query lane speedups (the
//! `perf-smoke` job).

use fabp_bench::{time_best_of, BenchWorkload};
use fabp_bio::seq::PackedSeq;
use fabp_core::aligner::{FabpAligner, Threshold};
use fabp_core::batch::{search_all, search_all_prebuilt_with_stats};
use fabp_core::bitparallel::{BitParallelEngine, MultiQueryEngine};
use fabp_core::slice_plan::SliceOptions;
use fabp_core::software::SoftwareEngine;
use fabp_core::streaming::StreamingAligner;
use fabp_encoding::encoder::EncodedQuery;
use fabp_encoding::packing::axi_beats;
use fabp_fpga::engine::{EngineConfig, FabpEngine};
use fabp_telemetry::Registry;

/// One measured (or derived) benchmark result.
struct Entry {
    id: String,
    /// `"time"` (ns_per_op, lower is better) or `"speedup"` (ratio,
    /// higher is better).
    kind: &'static str,
    value: f64,
    note: String,
}

impl Entry {
    fn time(id: &str, seconds: f64, note: String) -> Entry {
        Entry {
            id: id.to_string(),
            kind: "time",
            value: seconds * 1e9,
            note,
        }
    }

    fn speedup(id: &str, baseline_s: f64, fast_s: f64, note: &str) -> Entry {
        Entry {
            id: id.to_string(),
            kind: "speedup",
            value: if fast_s > 0.0 {
                baseline_s / fast_s
            } else {
                0.0
            },
            note: note.to_string(),
        }
    }
}

/// Pinned workload shapes. `full` mirrors the acceptance criterion
/// (10 Mb reference, 34-aa ≈ 102-element query); `quick` is the CI smoke
/// variant of every benchmark, small enough for a debug-cached runner.
struct Shape {
    tag: &'static str,
    scan_bases: usize,
    engine_bases: usize,
    stream_chunk: usize,
    batch_queries: usize,
    batch_bases: usize,
    best_of: usize,
}

const QUICK: Shape = Shape {
    tag: "quick",
    scan_bases: 1_000_000,
    engine_bases: 131_072,
    stream_chunk: 65_536,
    batch_queries: 8,
    batch_bases: 100_000,
    best_of: 3,
};

const FULL: Shape = Shape {
    tag: "full",
    scan_bases: 10_000_000,
    engine_bases: 1_048_576,
    stream_chunk: 65_536,
    batch_queries: 16,
    batch_bases: 300_000,
    best_of: 3,
};

const QUERY_AA: usize = 34; // ~102 encoded elements
const SEED: u64 = 0xFAB9_0004;

fn run_shape(shape: &Shape, best_of_override: Option<usize>) -> Vec<Entry> {
    let best_of = best_of_override.unwrap_or(shape.best_of);
    let tag = shape.tag;
    let mut entries = Vec::new();

    // ---- scan benchmarks: fused bitparallel vs two-pass vs scalar ----
    let w = BenchWorkload::generate(QUERY_AA, shape.scan_bases, SEED);
    let query = EncodedQuery::from_protein(&w.query);
    let threshold = Threshold::Fraction(0.8).resolve(query.len());
    let registry = Registry::new();
    let bp = BitParallelEngine::with_registry(&query, &registry)
        .expect("pinned query is bit-parallel capable");
    let sw = SoftwareEngine::with_registry(&query, &registry);
    let reference = w.reference.as_slice();

    // Correctness gate: all three scan paths must agree bit-for-bit on
    // the measured workload before any of them is timed.
    let fused_hits = bp.search(reference, threshold);
    assert_eq!(
        fused_hits,
        bp.search_two_pass(reference, threshold),
        "{tag}: fused scan diverged from the two-pass oracle"
    );
    assert_eq!(
        fused_hits,
        sw.search(reference, threshold),
        "{tag}: fused scan diverged from the scalar engine"
    );
    assert!(
        fused_hits.iter().any(|h| h.position == w.planted_at),
        "{tag}: planted hit missing"
    );

    let (_, t_two_pass) = time_best_of(best_of, || bp.search_two_pass(reference, threshold));
    let (_, t_fused) = time_best_of(best_of, || bp.search(reference, threshold));
    let (_, t_scalar) = time_best_of(best_of, || sw.search(reference, threshold));
    let per_base = |s: f64| format!("{:.3} ns/base", s * 1e9 / shape.scan_bases as f64);
    entries.push(Entry::time(
        &format!("bitparallel_two_pass_{tag}"),
        t_two_pass,
        format!("{} bases, {}", shape.scan_bases, per_base(t_two_pass)),
    ));
    entries.push(Entry::time(
        &format!("bitparallel_fused_{tag}"),
        t_fused,
        format!("{} bases, {}", shape.scan_bases, per_base(t_fused)),
    ));
    entries.push(Entry::time(
        &format!("software_scan_{tag}"),
        t_scalar,
        format!("{} bases, {}", shape.scan_bases, per_base(t_scalar)),
    ));
    entries.push(Entry::speedup(
        &format!("fused_vs_two_pass_{tag}"),
        t_two_pass,
        t_fused,
        "fused tiled scan over the retained two-pass baseline",
    ));

    // ---- streaming: chunked feed through the reusable carry buffer ----
    let (stream_hits, t_stream) = time_best_of(best_of, || {
        let mut scanner = StreamingAligner::new(&query, threshold);
        let mut hits = Vec::new();
        for chunk in reference.chunks(shape.stream_chunk) {
            hits.extend(scanner.feed(chunk));
        }
        hits.extend(scanner.finish());
        hits
    });
    assert_eq!(
        stream_hits.len(),
        fused_hits.len(),
        "{tag}: streaming hit count diverged"
    );
    entries.push(Entry::time(
        &format!("streaming_feed_{tag}"),
        t_stream,
        format!(
            "{} bases in {}-base chunks",
            shape.scan_bases, shape.stream_chunk
        ),
    ));

    // ---- batch: work-stealing parallel vs serial ----
    let bw = BenchWorkload::generate(20, shape.batch_bases, SEED ^ 1);
    let batch_queries: Vec<_> = (0..shape.batch_queries)
        .map(|i| BenchWorkload::generate(20, 64, SEED ^ (2 + i as u64)).query)
        .collect();
    let (_, t_serial) = time_best_of(best_of, || {
        search_all(&batch_queries, &bw.reference, Threshold::Fraction(0.8), 1).expect("batch runs")
    });
    let (_, t_parallel) = time_best_of(best_of, || {
        search_all(&batch_queries, &bw.reference, Threshold::Fraction(0.8), 4).expect("batch runs")
    });
    entries.push(Entry::time(
        &format!("batch_serial_{tag}"),
        t_serial,
        format!(
            "{} queries × {} bases",
            shape.batch_queries, shape.batch_bases
        ),
    ));
    entries.push(Entry::time(
        &format!("batch_parallel4_{tag}"),
        t_parallel,
        format!(
            "{} queries × {} bases, 4 workers stealing",
            shape.batch_queries, shape.batch_bases
        ),
    ));
    entries.push(Entry::speedup(
        &format!("batch_parallel4_vs_serial_{tag}"),
        t_serial,
        t_parallel,
        "work-stealing 4-worker batch over the serial loop",
    ));

    // ---- sliced batch: (query, slice) stealing + SIMD lane groups ----
    let batch_aligners: Vec<FabpAligner> = batch_queries
        .iter()
        .map(|q| {
            FabpAligner::builder()
                .protein_query(q)
                .threshold(Threshold::Fraction(0.8))
                .build()
                .expect("pinned batch query builds")
        })
        .collect();
    // Correctness gate: the sliced 4-worker schedule must be bit-identical
    // to each query's own two-pass oracle before it is timed.
    let (sliced_check, _) =
        search_all_prebuilt_with_stats(&batch_aligners, &bw.reference, 4, SliceOptions::default())
            .expect("sliced batch runs");
    for (a, outcome) in batch_aligners.iter().zip(&sliced_check) {
        let oracle = BitParallelEngine::new(a.query())
            .expect("pinned batch queries are bit-parallel eligible")
            .search_two_pass(bw.reference.as_slice(), a.threshold());
        assert_eq!(
            outcome.hits, oracle,
            "{tag}: sliced batch diverged from the two-pass oracle"
        );
    }
    let time_sliced = |workers: usize| {
        time_best_of(best_of, || {
            search_all_prebuilt_with_stats(
                &batch_aligners,
                &bw.reference,
                workers,
                SliceOptions::default(),
            )
            .expect("sliced batch runs")
        })
    };
    let (_, t_sliced1) = time_sliced(1);
    let ((_, stats2), t_sliced2) = time_sliced(2);
    let ((_, stats4), t_sliced4) = time_sliced(4);
    let shape_note = format!(
        "{} queries x {} bases",
        shape.batch_queries, shape.batch_bases
    );
    entries.push(Entry::time(
        &format!("batch_sliced1_{tag}"),
        t_sliced1,
        format!("{shape_note}, 1 worker (serial loop)"),
    ));
    entries.push(Entry::time(
        &format!("batch_sliced2_{tag}"),
        t_sliced2,
        format!("{shape_note}, 2 workers stealing (query, slice) pairs"),
    ));
    entries.push(Entry::time(
        &format!("batch_sliced4_{tag}"),
        t_sliced4,
        format!("{shape_note}, 4 workers stealing (query, slice) pairs"),
    ));
    entries.push(Entry::speedup(
        &format!("batch_sliced2_vs_serial_{tag}"),
        t_sliced1,
        stats2.critical_path_ns() as f64 / 1e9,
        "serial per-query loop wall over the 2-worker critical path (busiest worker's CPU-ns)",
    ));
    let critical_path_s = stats4.critical_path_ns() as f64 / 1e9;
    entries.push(Entry::speedup(
        &format!("batch_sliced4_vs_serial_{tag}"),
        t_sliced1,
        critical_path_s,
        &format!(
            "serial per-query loop wall over the 4-worker critical path (busiest worker's \
             CPU-ns; wall-clock scaling additionally needs >= 4 hardware cores); combines \
             lane-group bit-parallel engines with slice-level parallelism; \
             {} items, {} lane groups at {:.0} pct occupancy",
            stats4.items, stats4.lane_groups, stats4.lane_occupancy_pct
        ),
    ));

    // ---- multi-query SIMD lanes: 4 queries, one decoded column stream --
    let lane_proteins: Vec<_> = std::iter::once(w.query.clone())
        .chain((0..3).map(|i| BenchWorkload::generate(QUERY_AA, 256, SEED ^ (0x20 + i)).query))
        .collect();
    let lane_queries: Vec<EncodedQuery> = lane_proteins
        .iter()
        .map(EncodedQuery::from_protein)
        .collect();
    let lane_engines: Vec<BitParallelEngine> = lane_queries
        .iter()
        .map(|q| BitParallelEngine::new(q).expect("pinned lane queries are bit-parallel capable"))
        .collect();
    let lane_thresholds: Vec<u32> = lane_queries
        .iter()
        .map(|q| Threshold::Fraction(0.8).resolve(q.len()))
        .collect();
    let lane_refs: Vec<&EncodedQuery> = lane_queries.iter().collect();
    let multi = MultiQueryEngine::new(&lane_refs).expect("4 pinned queries fit the lane engine");
    // Correctness gate: every lane equals its own two-pass oracle.
    let multi_hits = multi.search(reference, &lane_thresholds);
    for (lane, engine) in lane_engines.iter().enumerate() {
        assert_eq!(
            multi_hits[lane],
            engine.search_two_pass(reference, lane_thresholds[lane]),
            "{tag}: multi-query lane {lane} diverged from the two-pass oracle"
        );
    }
    let (_, t_lanes4) = time_best_of(best_of, || multi.search(reference, &lane_thresholds));
    let (_, t_four_scans) = time_best_of(best_of, || {
        lane_engines
            .iter()
            .zip(&lane_thresholds)
            .map(|(engine, &t)| engine.search(reference, t).len())
            .sum::<usize>()
    });
    entries.push(Entry::time(
        &format!("fused_multiquery4_{tag}"),
        t_lanes4,
        format!(
            "4 queries x {} bases in one pass; {:.3} ns/base/query",
            shape.scan_bases,
            t_lanes4 * 1e9 / (4.0 * shape.scan_bases as f64)
        ),
    ));
    entries.push(Entry::speedup(
        &format!("fused_multiquery4_vs_fused_{tag}"),
        t_four_scans,
        t_lanes4,
        "4 independent fused scans over one 4-lane multi-query pass",
    ));

    // ---- engine sim: event-driven fast-forward vs exact per-beat ----
    let ew = BenchWorkload::generate(QUERY_AA, shape.engine_bases, SEED ^ 7);
    let equery = EncodedQuery::from_protein(&ew.query);
    let ethreshold = Threshold::Fraction(0.8).resolve(equery.len());
    let engine = FabpEngine::new(equery, EngineConfig::kintex7(ethreshold))
        .expect("pinned workload fits the device");
    let packed = PackedSeq::from_rna(&ew.reference);
    let beats = axi_beats(&packed);
    let quiet = Registry::disabled();
    let fast_run = engine.run_beats(&beats, &quiet);
    let exact_run = engine.run_beats_exact(&beats, &quiet);
    assert_eq!(
        fast_run.hits, exact_run.hits,
        "{tag}: fast-forward hits diverged"
    );
    assert_eq!(
        fast_run.stats, exact_run.stats,
        "{tag}: fast-forward CycleReport diverged"
    );
    let (_, t_exact) = time_best_of(best_of, || engine.run_beats_exact(&beats, &quiet));
    let (_, t_fast) = time_best_of(best_of, || engine.run_beats(&beats, &quiet));
    entries.push(Entry::time(
        &format!("engine_exact_{tag}"),
        t_exact,
        format!("{} bases per-beat", shape.engine_bases),
    ));
    entries.push(Entry::time(
        &format!("engine_fast_forward_{tag}"),
        t_fast,
        format!("{} bases event-driven", shape.engine_bases),
    ));
    entries.push(Entry::speedup(
        &format!("engine_fast_forward_vs_exact_{tag}"),
        t_exact,
        t_fast,
        "event-driven fast-forward over the exact per-beat model",
    ));

    entries
}

fn emit_json(mode: &str, entries: &[Entry]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"fabp-bench-perf/1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"query_aa\": {QUERY_AA},\n"));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let field = match e.kind {
            "time" => format!("\"ns_per_op\": {:.1}", e.value),
            _ => format!("\"speedup\": {:.3}", e.value),
        };
        let comma = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"kind\": \"{}\", {field}, \"note\": \"{}\"}}{comma}\n",
            e.id, e.kind, e.note
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts a quoted string field from a single-entry JSON line.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

/// Extracts a numeric field from a single-entry JSON line.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..]
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .map(|e| e + start)
        .unwrap_or(line.len());
    line[start..end].parse().ok()
}

/// Parses the one-entry-per-line `entries` array: (id, kind, value).
fn parse_entries(text: &str) -> Vec<(String, String, f64)> {
    text.lines()
        .filter_map(|line| {
            let id = field_str(line, "id")?;
            let kind = field_str(line, "kind")?;
            let value = match kind {
                "time" => field_num(line, "ns_per_op")?,
                "speedup" => field_num(line, "speedup")?,
                _ => return None,
            };
            Some((id.to_string(), kind.to_string(), value))
        })
        .collect()
}

/// Compares current entries against a baseline file. Returns the number
/// of regressions (each is reported on stderr).
///
/// Entries named in `floor_gated` are skipped: they carry an absolute
/// `--min-speedup` floor instead. The floored entries are the sliced
/// critical-path ratios, which swing well beyond any sane relative
/// tolerance run-to-run (worker scheduling and CPU-clock sampling
/// noise on the small `--quick` shapes), so a relative gate on them is
/// pure flake — the absolute floor is the honest gate.
fn check_against_baseline(
    entries: &[Entry],
    baseline_text: &str,
    tolerance: f64,
    floor_gated: &[(String, f64)],
) -> usize {
    let baseline = parse_entries(baseline_text);
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for e in entries {
        if floor_gated.iter().any(|(id, _)| *id == e.id) {
            eprintln!(
                "bench_perf: note: `{}` gated by --min-speedup floor, relative check skipped",
                e.id
            );
            continue;
        }
        let Some((_, _, base)) = baseline
            .iter()
            .find(|(id, kind, _)| *id == e.id && *kind == e.kind)
        else {
            eprintln!(
                "bench_perf: note: `{}` not in baseline (new benchmark)",
                e.id
            );
            continue;
        };
        compared += 1;
        match e.kind {
            "time" => {
                let limit = base * (1.0 + tolerance);
                if e.value > limit {
                    regressions += 1;
                    eprintln!(
                        "bench_perf: REGRESSION `{}`: {:.0} ns/op vs baseline {:.0} ns/op \
                         (+{:.1} %, limit +{:.0} %)",
                        e.id,
                        e.value,
                        base,
                        (e.value / base - 1.0) * 100.0,
                        tolerance * 100.0
                    );
                } else {
                    eprintln!(
                        "bench_perf: ok `{}`: {:.0} ns/op (baseline {:.0}, {:+.1} %)",
                        e.id,
                        e.value,
                        base,
                        (e.value / base - 1.0) * 100.0
                    );
                }
            }
            _ => {
                let limit = base * (1.0 - tolerance);
                if e.value < limit {
                    regressions += 1;
                    eprintln!(
                        "bench_perf: REGRESSION `{}`: speedup {:.2}× vs baseline {:.2}× \
                         (allowed ≥ {:.2}×)",
                        e.id, e.value, base, limit
                    );
                } else {
                    eprintln!(
                        "bench_perf: ok `{}`: speedup {:.2}× (baseline {:.2}×)",
                        e.id, e.value, base
                    );
                }
            }
        }
    }
    assert!(compared > 0, "baseline shares no entry ids with this run");
    regressions
}

fn main() {
    let mut out_path = "BENCH_perf.json".to_string();
    let mut quick = false;
    let mut check = false;
    let mut baseline_path: Option<String> = None;
    let mut tolerance = 0.10f64;
    let mut best_of: Option<usize> = None;
    let mut min_speedups: Vec<(String, f64)> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = it.next().expect("missing value for --out"),
            "--quick" => quick = true,
            "--check" => check = true,
            "--baseline" => baseline_path = Some(it.next().expect("missing value for --baseline")),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .expect("missing value for --tolerance")
                    .parse()
                    .expect("--tolerance takes a fraction, e.g. 0.10")
            }
            "--best-of" => {
                best_of = Some(
                    it.next()
                        .expect("missing value for --best-of")
                        .parse()
                        .expect("--best-of takes a positive integer"),
                )
            }
            "--min-speedup" => {
                let spec = it.next().expect("missing value for --min-speedup");
                let (id, floor) = spec
                    .split_once(':')
                    .expect("--min-speedup takes id:value, e.g. batch_sliced4_vs_serial_quick:2.5");
                min_speedups.push((
                    id.to_string(),
                    floor.parse().expect("--min-speedup floor is a number"),
                ));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_perf [--quick] [--out BENCH_perf.json] [--best-of N] \
                     [--min-speedup ID:FLOOR]... \
                     [--baseline FILE --check [--tolerance 0.10]]"
                );
                std::process::exit(2);
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let mut entries = run_shape(&QUICK, best_of);
    let mode = if quick {
        "quick"
    } else {
        entries.extend(run_shape(&FULL, best_of));
        "full"
    };

    for e in &entries {
        match e.kind {
            "time" => eprintln!(
                "bench_perf: {:<34} {:>14.0} ns/op  ({})",
                e.id, e.value, e.note
            ),
            _ => eprintln!(
                "bench_perf: {:<34} {:>13.2}×     ({})",
                e.id, e.value, e.note
            ),
        }
    }

    let json = emit_json(mode, &entries);
    std::fs::write(&out_path, &json).expect("write benchmark snapshot");
    eprintln!("bench_perf: snapshot written to {out_path}");

    // Absolute speedup floors (`--min-speedup id:value`, repeatable) —
    // unlike `--check`, these hold even when the committed baseline
    // itself regresses.
    let mut floor_failures = 0usize;
    for (id, floor) in &min_speedups {
        match entries.iter().find(|e| e.id == *id) {
            Some(e) if e.value >= *floor => {
                eprintln!(
                    "bench_perf: floor ok `{id}`: {:.2}x >= {floor:.2}x",
                    e.value
                );
            }
            Some(e) => {
                floor_failures += 1;
                eprintln!(
                    "bench_perf: FLOOR VIOLATION `{id}`: {:.2}x < required {floor:.2}x",
                    e.value
                );
            }
            None => {
                floor_failures += 1;
                eprintln!("bench_perf: FLOOR VIOLATION `{id}`: no such entry in this run");
            }
        }
    }
    if floor_failures > 0 {
        eprintln!("bench_perf: {floor_failures} speedup floor(s) violated");
        std::process::exit(1);
    }

    if check {
        let path = baseline_path.expect("--check requires --baseline FILE");
        let baseline_text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let regressions =
            check_against_baseline(&entries, &baseline_text, tolerance, &min_speedups);
        if regressions > 0 {
            eprintln!(
                "bench_perf: {regressions} regression(s) beyond ±{:.0} % tolerance",
                tolerance * 100.0
            );
            std::process::exit(1);
        }
        eprintln!(
            "bench_perf: no regressions beyond ±{:.0} %",
            tolerance * 100.0
        );
    }
}
