//! `bench_serve` — closed-loop load generator for the serving layer.
//!
//! Drives `fabp_serve::FabpServer` with a pinned synthetic multi-tenant
//! workload and emits `BENCH_serve.json` with two entry classes:
//!
//! * **time** entries (wall-clock: sustained queries/second as
//!   `ns_per_query`, p50/p99 latency) — machine-dependent, gated in CI
//!   with a loose tolerance;
//! * **rate** entries (shed rate under a deadline burst, backpressure
//!   reject rate under an admission flood, query/reference cache hit
//!   rates) — **deterministic by construction** (manual clock, fixed
//!   submission order), gated exactly.
//!
//! Before any timing, the harness cross-checks the transparency
//! invariant on the measured workload: every served hit list must be
//! bit-identical to a sequential single-query `FabpAligner` run.
//!
//! ```text
//! cargo run --release -p fabp-bench --bin bench_serve -- \
//!     [--quick] [--out BENCH_serve.json] \
//!     [--min-speedup ID:FLOOR]... \
//!     [--baseline BENCH_serve.json --check [--tolerance 0.50]]
//! ```
//!
//! The persistent-index entries (`index_build`, `index_cold_load`,
//! `index_warm_reload`, `index_warm_vs_cold`, `index_seeded_recall`)
//! cover the on-disk packed-shard format: cold loads CRC-verify every
//! shard frame, warm re-loads come from the resident store, and recall
//! is measured against planted ground truth at BLAST-default seeding
//! (w=3, T=11) with a hard-asserted 0.99 floor.

use fabp_bio::generate::{coding_rna_for_paper_patterns, random_protein, random_rna};
use fabp_bio::seq::{ProteinSeq, RnaSeq};
use fabp_core::aligner::{Engine, FabpAligner, Threshold};
use fabp_core::index::{
    search_index, IndexBuildOptions, PrefilterMode, ReferenceIndex, SeedParams,
};
use fabp_serve::{
    BatchPolicy, FabpError, FabpServer, IndexStore, Response, ServeBackend, ServeConfig,
};
use fabp_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 0xFAB9_0005;

/// One measured (or derived) benchmark result.
struct Entry {
    id: String,
    /// `"time"` (ns, lower is better) or `"rate"` (fraction/ratio,
    /// higher is better; deterministic entries are equal across runs).
    kind: &'static str,
    value: f64,
    note: String,
}

impl Entry {
    fn time(id: &str, nanos: f64, note: String) -> Entry {
        Entry {
            id: id.to_string(),
            kind: "time",
            value: nanos,
            note,
        }
    }

    fn rate(id: &str, value: f64, note: String) -> Entry {
        Entry {
            id: id.to_string(),
            kind: "rate",
            value,
            note,
        }
    }

    /// Machine-relative ratio (higher is better). Gated only by
    /// `--min-speedup` absolute floors, never by the relative check —
    /// load-time ratios swing too much run-to-run for a tolerance gate.
    fn speedup(id: &str, value: f64, note: String) -> Entry {
        Entry {
            id: id.to_string(),
            kind: "speedup",
            value,
            note,
        }
    }
}

/// Pinned workload shape.
struct Shape {
    tag: &'static str,
    /// Distinct proteins in the query stream.
    unique_queries: usize,
    /// Times the stream is replayed (repeats exercise the caches).
    repeats: usize,
    /// Resident reference size, bases.
    reference_bases: usize,
    query_aa: usize,
    tenants: usize,
    threads: usize,
}

const QUICK: Shape = Shape {
    tag: "quick",
    unique_queries: 16,
    repeats: 4,
    reference_bases: 100_000,
    query_aa: 12,
    tenants: 3,
    threads: 4,
};

const FULL: Shape = Shape {
    tag: "full",
    unique_queries: 64,
    repeats: 4,
    reference_bases: 1_000_000,
    query_aa: 16,
    tenants: 4,
    threads: 4,
};

/// Synthetic planted workload: every query hits the reference.
fn workload(shape: &Shape) -> (RnaSeq, Vec<ProteinSeq>) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let queries: Vec<ProteinSeq> = (0..shape.unique_queries)
        .map(|_| random_protein(shape.query_aa, &mut rng))
        .collect();
    let mut bases = random_rna(shape.reference_bases, &mut rng).into_inner();
    let stride = shape.reference_bases / shape.unique_queries;
    for (i, protein) in queries.iter().enumerate() {
        let coding = coding_rna_for_paper_patterns(protein, &mut rng);
        let at = i * stride;
        if at + coding.len() <= bases.len() {
            bases.splice(at..at + coding.len(), coding.iter().copied());
        }
    }
    (RnaSeq::from(bases), queries)
}

fn config(shape: &Shape) -> ServeConfig {
    ServeConfig {
        threshold: Threshold::Fraction(0.9),
        queue_capacity: 4 * shape.unique_queries * shape.repeats,
        policy: BatchPolicy {
            max_batch: 32,
            slo_us: 100_000,
            ..BatchPolicy::default()
        },
        backend: ServeBackend::Software {
            threads: shape.threads,
        },
        query_cache: 2 * shape.unique_queries,
        reference_cache: 4,
        default_deadline_us: None,
        max_query_aa: 128,
        prefilter: PrefilterMode::Off,
    }
}

/// Persistent-index lifecycle on the pinned workload: build + write the
/// packed shards, then time a cold (full CRC-verified read) load against
/// a warm re-load of the resident copy through [`IndexStore`]. Both
/// loads take the best of [`LOAD_REPS`] repetitions (evicting between
/// cold reps) — a single sub-millisecond disk read swings several-fold
/// with page-cache state, and the minimum is the stable, comparable
/// number for the committed baseline.
const LOAD_REPS: usize = 5;

fn index_persistence(shape: &Shape, entries: &mut Vec<Entry>) {
    let (reference, _) = workload(shape);
    let tag = shape.tag;
    let options = IndexBuildOptions {
        overlap: 3 * 128, // covers the config()'s max_query_aa
        target_shard_bases: (shape.reference_bases / 8).max(4_096),
    };
    let started = std::time::Instant::now();
    let index = ReferenceIndex::build_from_rna(&reference, options).expect("index builds");
    let build_ns = started.elapsed().as_nanos() as f64;
    let path = std::env::temp_dir().join(format!("bench_serve_{tag}.fabpidx"));
    index.write_to(&path).expect("index writes");
    assert!(index.shards().len() > 1, "{tag}: exercise multi-shard");

    let mut store = IndexStore::new();
    let mut cold = store.load(&path, false).expect("cold load");
    let mut warm = store.load(&path, false).expect("warm load");
    assert!(cold.cold && !warm.cold, "{tag}: store cold/warm split");
    assert_eq!(cold.index.fingerprint(), index.fingerprint());
    for _ in 1..LOAD_REPS {
        store.evict(&path);
        let c = store.load(&path, false).expect("cold load rep");
        let w = store.load(&path, false).expect("warm load rep");
        assert!(c.cold && !w.cold, "{tag}: store cold/warm split");
        if c.load_us < cold.load_us {
            cold = c;
        }
        if w.load_us < warm.load_us {
            warm = w;
        }
    }
    std::fs::remove_file(&path).ok();

    entries.push(Entry::time(
        &format!("index_build_{tag}"),
        build_ns,
        format!(
            "pack {} bases into {} shard(s), overlap {}",
            index.total_bases(),
            index.shards().len(),
            index.overlap()
        ),
    ));
    entries.push(Entry::time(
        &format!("index_cold_load_{tag}"),
        cold.load_us as f64 * 1e3,
        "disk read + CRC verification of every shard frame (best of 5)".to_string(),
    ));
    entries.push(Entry::time(
        &format!("index_warm_reload_{tag}"),
        // warm re-loads are sub-microsecond; clamp to the 1 us tick so
        // the relative baseline check never divides by zero
        (warm.load_us.max(1)) as f64 * 1e3,
        "resident re-load from the index store (no disk, no CRC; best of 5)".to_string(),
    ));
    entries.push(Entry::speedup(
        &format!("index_warm_vs_cold_{tag}"),
        cold.load_us as f64 / (warm.load_us as f64).max(1.0),
        "cold CRC-verified load over warm resident re-load".to_string(),
    ));
}

/// Seeded-prefilter recall against planted ground truth at BLAST-default
/// seeding (w=3, T=11). Deterministic: fixed seed, substitution-only
/// mutations, both scans exact. Recall is measured over the plants the
/// *exhaustive* scan recovers, so the entry isolates what the prefilter
/// loses — the committed floor is 0.99 and the run hard-asserts it.
fn index_recall(shape: &Shape, entries: &mut Vec<Entry>) {
    use fabp_bio::generate::{PlantedDatabase, PlantedDatabaseConfig};
    use fabp_bio::mutate::{IndelModel, SubstitutionModel};

    let tag = shape.tag;
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x1D3C);
    let db = PlantedDatabase::generate(
        &PlantedDatabaseConfig {
            reference_len: shape.reference_bases,
            num_queries: shape.unique_queries,
            query_len: shape.query_aa,
            substitutions: SubstitutionModel::new(0.02),
            indels: IndelModel::none(),
            paper_codons_only: false,
        },
        &mut rng,
    );
    let index = ReferenceIndex::build_from_rna(
        &db.reference,
        IndexBuildOptions {
            overlap: 3 * 128,
            target_shard_bases: (shape.reference_bases / 8).max(4_096),
        },
    )
    .expect("index builds");
    let threshold = Threshold::Fraction(0.9);
    let params = SeedParams::default(); // BLAST defaults: w=3, T=11
    let (off, _) = search_index(
        &index,
        &db.queries,
        threshold,
        PrefilterMode::Off,
        params,
        shape.threads,
    )
    .expect("exhaustive scan");
    let (seeded, stats) = search_index(
        &index,
        &db.queries,
        threshold,
        PrefilterMode::Seeded,
        params,
        shape.threads,
    )
    .expect("seeded scan");
    for (q, hits) in seeded.iter().enumerate() {
        for hit in hits {
            assert!(
                off[q].contains(hit),
                "{tag}: seeded hit {hit:?} absent from the full scan"
            );
        }
    }
    let mut findable = 0usize;
    let mut found = 0usize;
    for region in &db.regions {
        if off[region.query_index]
            .iter()
            .any(|h| h.position == region.position)
        {
            findable += 1;
            if seeded[region.query_index]
                .iter()
                .any(|h| h.position == region.position)
            {
                found += 1;
            }
        }
    }
    assert!(findable > 0, "{tag}: planted workload must be findable");
    let recall = found as f64 / findable as f64;
    fabp_core::index::record_recall(recall);
    assert!(
        recall >= 0.99,
        "{tag}: seeded recall {recall:.4} ({found}/{findable}) below the 0.99 floor"
    );
    entries.push(Entry::rate(
        &format!("index_seeded_recall_{tag}"),
        recall,
        format!(
            "{found}/{findable} full-scan-findable plants recovered at w=3 T=11, \
             2 % substitutions; scanned fraction {:.4}",
            stats.scanned_fraction()
        ),
    ));
}

/// Sustained closed-loop throughput + latency over the repeated stream.
fn sustained(shape: &Shape, entries: &mut Vec<Entry>) {
    let (reference, queries) = workload(shape);
    let registry = Registry::disabled();
    let mut server =
        FabpServer::new(reference.clone(), config(shape), &registry).expect("server builds");

    let started = std::time::Instant::now();
    let mut responses: Vec<Response> = Vec::new();
    for _ in 0..shape.repeats {
        for (i, protein) in queries.iter().enumerate() {
            let tenant = format!("tenant-{}", i % shape.tenants);
            loop {
                match server.submit(&tenant, protein) {
                    Ok(_) => break,
                    Err(FabpError::Overloaded { .. }) => responses.extend(server.pump()),
                    Err(e) => panic!("pinned workload rejected: {e}"),
                }
            }
        }
    }
    responses.extend(server.run_to_completion());
    let wall = started.elapsed();

    // Transparency gate: a perf number for a wrong answer is worse than
    // no number. Every response must match the sequential oracle.
    let total = shape.unique_queries * shape.repeats;
    assert_eq!(responses.len(), total, "{}: lost responses", shape.tag);
    let mut oracle: Vec<Vec<fabp_core::hits::Hit>> = Vec::new();
    for protein in &queries {
        let aligner = FabpAligner::builder()
            .protein_query(protein)
            .threshold(Threshold::Fraction(0.9))
            .engine(Engine::Software { threads: 1 })
            .build()
            .expect("pinned query builds");
        oracle.push(aligner.search(&reference).hits);
    }
    for response in &responses {
        let expected = &oracle[(response.id as usize) % shape.unique_queries];
        let hits = response
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: request {} failed: {e}", shape.tag, response.id));
        assert_eq!(hits, expected, "{}: batching changed hits", shape.tag);
        assert!(!hits.is_empty(), "{}: planted query must hit", shape.tag);
    }

    let mut latencies: Vec<u64> = responses.iter().map(|r| r.latency_us).collect();
    latencies.sort_unstable();
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p).round() as usize];
    let stats = server.stats();
    let tag = shape.tag;
    entries.push(Entry::time(
        &format!("serve_ns_per_query_{tag}"),
        wall.as_nanos() as f64 / total as f64,
        format!(
            "{total} queries ({} unique × {}) closed-loop, {:.0} q/s",
            shape.unique_queries,
            shape.repeats,
            total as f64 / wall.as_secs_f64().max(1e-9)
        ),
    ));
    entries.push(Entry::time(
        &format!("serve_p50_latency_{tag}"),
        pct(0.50) as f64 * 1e3,
        "median submit-to-response latency".to_string(),
    ));
    entries.push(Entry::time(
        &format!("serve_p99_latency_{tag}"),
        pct(0.99) as f64 * 1e3,
        "tail submit-to-response latency".to_string(),
    ));
    // Deterministic: each unique query misses once, then hits R-1 times
    // regardless of batch boundaries.
    entries.push(Entry::rate(
        &format!("serve_query_cache_hit_rate_{tag}"),
        stats.query_cache.hit_rate(),
        format!(
            "expected exactly {:.3} = (repeats-1)/repeats",
            (shape.repeats - 1) as f64 / shape.repeats as f64
        ),
    ));
    let expected_rate = (shape.repeats - 1) as f64 / shape.repeats as f64;
    assert!(
        (stats.query_cache.hit_rate() - expected_rate).abs() < 1e-9,
        "{tag}: cache hit rate {} != {expected_rate}",
        stats.query_cache.hit_rate()
    );
}

/// Deterministic deadline burst on a manual clock: half the stream
/// expires while queued, half survives → shed rate exactly 0.5.
fn shed_burst(shape: &Shape, entries: &mut Vec<Entry>) {
    let (reference, queries) = workload(shape);
    let registry = Registry::disabled();
    let mut server =
        FabpServer::with_manual_clock(reference, config(shape), &registry).expect("server builds");
    let n = queries.len();
    for protein in &queries {
        server
            .submit_with_deadline("doomed", protein, Some(500))
            .expect("capacity fits the burst");
    }
    server.advance_clock_us(10_000); // every deadline expires while queued
    for protein in &queries {
        server
            .submit_with_deadline("live", protein, None)
            .expect("capacity fits the burst");
    }
    let responses = server.run_to_completion();
    assert_eq!(responses.len(), 2 * n);
    let shed = responses
        .iter()
        .filter(|r| matches!(r.result, Err(FabpError::DeadlineExceeded { .. })))
        .count();
    let served = responses.iter().filter(|r| r.result.is_ok()).count();
    assert_eq!((shed, served), (n, n), "{}: shed split", shape.tag);
    entries.push(Entry::rate(
        &format!("serve_shed_rate_{}", shape.tag),
        shed as f64 / (2 * n) as f64,
        "deterministic deadline burst: half the stream expires queued".to_string(),
    ));
}

/// Deterministic admission flood: capacity C, open-loop submit C + C/2
/// without pumping → exactly C/2 typed Overloaded rejections.
fn backpressure_flood(shape: &Shape, entries: &mut Vec<Entry>) {
    let (reference, queries) = workload(shape);
    let registry = Registry::disabled();
    let capacity = queries.len();
    let flood = capacity + capacity / 2;
    let mut cfg = config(shape);
    cfg.queue_capacity = capacity;
    let mut server = FabpServer::new(reference, cfg, &registry).expect("server builds");
    let mut rejected = 0usize;
    for i in 0..flood {
        match server.submit("flood", &queries[i % queries.len()]) {
            Ok(_) => {}
            Err(FabpError::Overloaded { .. }) => rejected += 1,
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    assert_eq!(rejected, flood - capacity, "{}: reject count", shape.tag);
    let responses = server.run_to_completion();
    assert_eq!(responses.len(), capacity);
    entries.push(Entry::rate(
        &format!("serve_reject_rate_{}", shape.tag),
        rejected as f64 / flood as f64,
        "deterministic open-loop flood at 1.5× queue capacity".to_string(),
    ));
}

/// Modelled fleet scaling sweep: 1 → 16 nodes at R = min(2, nodes),
/// healthy and with one node killed. Throughput comes from the analytic
/// kernel model over the live routing table, so every entry is
/// deterministic and gated exactly like the other rates.
fn fleet_sweep(entries: &mut Vec<Entry>) {
    use fabp_core::fleet::FpgaFleet;
    use fabp_encoding::encoder::EncodedQuery;
    use fabp_fpga::engine::EngineConfig;
    use fabp_resilience::health::FailureDetector;

    let mut rng = StdRng::seed_from_u64(SEED ^ 0xF1EE7);
    let protein = random_protein(12, &mut rng);
    let query = EncodedQuery::from_protein(&protein);
    let config = EngineConfig::kintex7(query.len() as u32);
    const TOTAL_BASES: u64 = 1_000_000;
    let mut qps_single = 0.0;
    for nodes in [1usize, 2, 4, 8, 16] {
        let replication = 2.min(nodes);
        let fleet = FpgaFleet::homogeneous(&query, &config, nodes, replication, TOTAL_BASES)
            .expect("fleet builds");
        let qps = fleet.timing().queries_per_second;
        if nodes == 1 {
            qps_single = qps;
        }
        entries.push(Entry::rate(
            &format!("fleet_model_qps_{nodes}node"),
            qps,
            format!(
                "modelled fleet throughput, R={replication}, healthy \
                 ({:.2}x vs 1 node)",
                qps / qps_single.max(f64::MIN_POSITIVE)
            ),
        ));
        if nodes > 1 {
            let registry = Registry::disabled();
            let mut detector = FailureDetector::with_defaults(nodes, &registry);
            detector.record_kill(0);
            let degraded = fleet
                .fleet_timing(&detector)
                .expect("replicas cover the dead node")
                .queries_per_second;
            assert!(
                degraded <= qps,
                "a dead node cannot speed the fleet up: {degraded} vs {qps}"
            );
            entries.push(Entry::rate(
                &format!("fleet_model_qps_{nodes}node_killed"),
                degraded,
                "one node killed: a survivor absorbs the orphan shard via its replica".to_string(),
            ));
        }
    }
}

/// Chaos availability: rolling single-node kills (4 nodes, R = 2) under
/// a live served stream on the manual clock. Bit-identity against the
/// sequential oracle is a hard gate; the measured availability is
/// committed as a deterministic rate entry (replication means no
/// request may fail, so anything below 1.0 is a regression).
fn fleet_chaos_availability(shape: &Shape, entries: &mut Vec<Entry>) {
    const NODES: usize = 4;
    let (reference, queries) = workload(shape);
    let registry = Registry::disabled();
    let mut cfg = config(shape);
    cfg.backend = ServeBackend::Fleet {
        nodes: NODES,
        replication: 2,
        fault_spec: None,
    };
    let mut server = FabpServer::with_manual_clock(reference.clone(), cfg, &registry)
        .expect("fleet server builds");

    let mut oracle: Vec<Vec<fabp_core::hits::Hit>> = Vec::new();
    for protein in &queries {
        let aligner = FabpAligner::builder()
            .protein_query(protein)
            .threshold(Threshold::Fraction(0.9))
            .engine(Engine::Software { threads: 1 })
            .build()
            .expect("pinned query builds");
        oracle.push(aligner.search(&reference).hits);
    }

    let mut total = 0usize;
    let mut ok = 0usize;
    for victim in 0..NODES {
        server.kill_node(victim);
        for (i, protein) in queries.iter().enumerate() {
            let tenant = format!("tenant-{}", i % shape.tenants);
            server.submit(&tenant, protein).expect("queue has room");
        }
        server.advance_clock_us(1_000);
        for response in server.run_to_completion() {
            total += 1;
            if let Ok(hits) = &response.result {
                ok += 1;
                let expected = &oracle[(response.id as usize) % queries.len()];
                assert_eq!(
                    hits, expected,
                    "chaos changed hits for request {}",
                    response.id
                );
            }
        }
        server.revive_node(victim);
    }
    let availability = ok as f64 / total.max(1) as f64;
    assert!(
        (availability - 1.0).abs() < 1e-12,
        "R=2 rolling kills must not fail a request: {ok}/{total}"
    );
    entries.push(Entry::rate(
        &format!("fleet_availability_rolling_kills_{}", shape.tag),
        availability,
        format!("{total} requests served across {NODES} rolling single-node kills, R=2"),
    ));
}

/// Tracing overhead as the serving layer sees it: the disabled-context
/// record every instrumented call site pays when no trace is attached
/// to the request. The hard ≤ 2 ns budget is gated in bench_telemetry;
/// the serve snapshot carries the number so both benches stay in parity.
fn trace_overhead(entries: &mut Vec<Entry>) {
    use fabp_telemetry::{TraceContext, TraceEvent};
    const OPS: u64 = 4_000_000;
    let registry = Registry::new();
    let flight = registry.flight_recorder();
    let off = TraceContext::none();
    let started = std::time::Instant::now();
    for i in 0..OPS {
        std::hint::black_box(&flight).record(TraceEvent::new(off, "bench", i as f64, 1.0));
    }
    let disabled = started.elapsed().as_nanos() as f64 / OPS as f64;
    let ctx = TraceContext::mint(SEED, 1);
    let started = std::time::Instant::now();
    for i in 0..OPS {
        std::hint::black_box(&flight).record(TraceEvent::new(ctx, "bench", i as f64, 1.0));
    }
    let enabled = started.elapsed().as_nanos() as f64 / OPS as f64;
    entries.push(Entry::time(
        "serve_trace_disabled_ns_per_record",
        disabled,
        "flight-recorder record under a disabled context (budget <= 2 ns/op)".to_string(),
    ));
    entries.push(Entry::time(
        "serve_trace_enabled_ns_per_record",
        enabled,
        "flight-recorder record with a live trace attached".to_string(),
    ));
}

fn emit_json(mode: &str, entries: &[Entry]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"fabp-bench-serve/1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let field = match e.kind {
            "time" => format!("\"ns_per_op\": {:.1}", e.value),
            "speedup" => format!("\"speedup\": {:.3}", e.value),
            _ => format!("\"rate\": {:.6}", e.value),
        };
        let comma = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"kind\": \"{}\", {field}, \"note\": \"{}\"}}{comma}\n",
            e.id, e.kind, e.note
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..]
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .map(|e| e + start)
        .unwrap_or(line.len());
    line[start..end].parse().ok()
}

fn parse_entries(text: &str) -> Vec<(String, String, f64)> {
    text.lines()
        .filter_map(|line| {
            let id = field_str(line, "id")?;
            let kind = field_str(line, "kind")?;
            let value = match kind {
                "time" => field_num(line, "ns_per_op")?,
                "rate" => field_num(line, "rate")?,
                "speedup" => field_num(line, "speedup")?,
                _ => return None,
            };
            Some((id.to_string(), kind.to_string(), value))
        })
        .collect()
}

/// `time` entries may not regress beyond `tolerance`; `rate` entries may
/// not drop below `baseline × (1 − rate_slack)` where the slack is tight
/// (rates are deterministic). `speedup` entries never enter the relative
/// check — they gate only through `--min-speedup` absolute floors, the
/// repeatable form for ratios that swing on loaded runners.
fn check_against_baseline(entries: &[Entry], baseline_text: &str, tolerance: f64) -> usize {
    const RATE_SLACK: f64 = 1e-6;
    let baseline = parse_entries(baseline_text);
    let mut regressions = 0usize;
    let mut compared = 0usize;
    for e in entries {
        if e.kind == "speedup" {
            eprintln!(
                "bench_serve: note: `{}` gates via --min-speedup floors only",
                e.id
            );
            continue;
        }
        let Some((_, _, base)) = baseline
            .iter()
            .find(|(id, kind, _)| *id == e.id && *kind == e.kind)
        else {
            eprintln!("bench_serve: note: `{}` not in baseline (new entry)", e.id);
            continue;
        };
        compared += 1;
        match e.kind {
            "time" => {
                let limit = base * (1.0 + tolerance);
                if e.value > limit {
                    regressions += 1;
                    eprintln!(
                        "bench_serve: REGRESSION `{}`: {:.0} ns vs baseline {:.0} ns \
                         (+{:.1} %, limit +{:.0} %)",
                        e.id,
                        e.value,
                        base,
                        (e.value / base - 1.0) * 100.0,
                        tolerance * 100.0
                    );
                } else {
                    eprintln!(
                        "bench_serve: ok `{}`: {:.0} ns (baseline {:.0}, {:+.1} %)",
                        e.id,
                        e.value,
                        base,
                        (e.value / base - 1.0) * 100.0
                    );
                }
            }
            _ => {
                let limit = base * (1.0 - RATE_SLACK);
                if e.value < limit {
                    regressions += 1;
                    eprintln!(
                        "bench_serve: REGRESSION `{}`: rate {:.6} vs baseline {:.6}",
                        e.id, e.value, base
                    );
                } else {
                    eprintln!(
                        "bench_serve: ok `{}`: rate {:.6} (baseline {:.6})",
                        e.id, e.value, base
                    );
                }
            }
        }
    }
    assert!(compared > 0, "baseline shares no entry ids with this run");
    regressions
}

fn main() {
    let mut out_path = "BENCH_serve.json".to_string();
    let mut quick = false;
    let mut check = false;
    let mut baseline_path: Option<String> = None;
    let mut tolerance = 0.50f64;
    let mut min_speedups: Vec<(String, f64)> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = it.next().expect("missing value for --out"),
            "--quick" => quick = true,
            "--check" => check = true,
            "--baseline" => baseline_path = Some(it.next().expect("missing value for --baseline")),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .expect("missing value for --tolerance")
                    .parse()
                    .expect("--tolerance takes a fraction, e.g. 0.50")
            }
            "--min-speedup" => {
                let spec = it.next().expect("missing value for --min-speedup");
                let (id, floor) = spec
                    .split_once(':')
                    .expect("--min-speedup takes id:value, e.g. index_warm_vs_cold_quick:2.0");
                min_speedups.push((
                    id.to_string(),
                    floor.parse().expect("--min-speedup floor is a number"),
                ));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_serve [--quick] [--out BENCH_serve.json] \
                     [--min-speedup ID:FLOOR]... \
                     [--baseline FILE --check [--tolerance 0.50]]"
                );
                std::process::exit(2);
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let mut entries = Vec::new();
    sustained(&QUICK, &mut entries);
    shed_burst(&QUICK, &mut entries);
    backpressure_flood(&QUICK, &mut entries);
    fleet_chaos_availability(&QUICK, &mut entries);
    index_persistence(&QUICK, &mut entries);
    index_recall(&QUICK, &mut entries);
    let mode = if quick {
        "quick"
    } else {
        sustained(&FULL, &mut entries);
        shed_burst(&FULL, &mut entries);
        backpressure_flood(&FULL, &mut entries);
        index_persistence(&FULL, &mut entries);
        index_recall(&FULL, &mut entries);
        "full"
    };
    fleet_sweep(&mut entries);
    trace_overhead(&mut entries);

    for e in &entries {
        match e.kind {
            "time" => eprintln!(
                "bench_serve: {:<34} {:>14.0} ns   ({})",
                e.id, e.value, e.note
            ),
            "speedup" => eprintln!(
                "bench_serve: {:<34} {:>13.2}x      ({})",
                e.id, e.value, e.note
            ),
            _ => eprintln!(
                "bench_serve: {:<34} {:>14.6}      ({})",
                e.id, e.value, e.note
            ),
        }
    }

    let json = emit_json(mode, &entries);
    std::fs::write(&out_path, &json).expect("write benchmark snapshot");
    eprintln!("bench_serve: snapshot written to {out_path}");

    // Absolute speedup floors: repeatable on loaded runners, and they
    // hold even when the committed baseline itself regresses.
    let mut floor_failures = 0usize;
    for (id, floor) in &min_speedups {
        match entries.iter().find(|e| e.id == *id) {
            Some(e) if e.value >= *floor => {
                eprintln!(
                    "bench_serve: floor ok `{id}`: {:.2}x >= {floor:.2}x",
                    e.value
                );
            }
            Some(e) => {
                floor_failures += 1;
                eprintln!(
                    "bench_serve: FLOOR VIOLATION `{id}`: {:.2}x < required {floor:.2}x",
                    e.value
                );
            }
            None => {
                floor_failures += 1;
                eprintln!("bench_serve: FLOOR VIOLATION `{id}`: no such entry in this run");
            }
        }
    }
    if floor_failures > 0 {
        eprintln!("bench_serve: {floor_failures} floor violation(s)");
        std::process::exit(1);
    }

    if check {
        let path = baseline_path.expect("--check requires --baseline FILE");
        let baseline_text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let regressions = check_against_baseline(&entries, &baseline_text, tolerance);
        if regressions > 0 {
            eprintln!("bench_serve: {regressions} regression(s) beyond tolerance");
            std::process::exit(1);
        }
        eprintln!(
            "bench_serve: no regressions (time ±{:.0} %, rates exact)",
            tolerance * 100.0
        );
    }
}
