//! Regenerates every table and figure of the paper's evaluation (§IV).
//!
//! ```text
//! cargo run --release -p fabp-bench --bin figures -- all
//! cargo run --release -p fabp-bench --bin figures -- fig6a --ref-mbases 8
//! ```
//!
//! Experiment ids follow DESIGN.md §4:
//! * `fig6a`  — E1: speedup vs query length (CPU-1t, CPU-12t, GPU, FabP)
//! * `fig6b`  — E2: energy efficiency, same sweep
//! * `table1` — E3: resource utilisation + achieved DRAM bandwidth
//! * `accuracy` — E4: indel statistics and recall vs SW/TBLASTN
//! * `crossover` — E5: bandwidth-bound vs resource-bound sweep
//! * `ablation` — E6: Pop-Counter LUT-level optimisation area
//! * `channels` — E8: multi-channel scaling
//!
//! CPU baselines are **measured** on this machine (single-thread, then
//! scaled per `CpuScaling`) over a `--ref-mbases`-Mbase reference and
//! linearly extrapolated to the paper's 1 Gbase; GPU and FabP come from
//! the calibrated models (see DESIGN.md substitutions).

use fabp_baselines::sw::{sw_nucleotide, GapPenalties, NucScoring};
use fabp_baselines::tblastn::{tblastn_search, TblastnConfig};
use fabp_bench::{fmt_seconds, rng, time_best_of, BenchWorkload};
use fabp_bio::generate::{coding_rna_for, random_rna};
use fabp_bio::mutate::IndelModel;
use fabp_bio::seq::{PackedSeq, RnaSeq};
use fabp_core::aligner::{Engine, FabpAligner, Threshold};
use fabp_encoding::encoder::EncodedQuery;
use fabp_fpga::device::FpgaDevice;
use fabp_fpga::engine::{EngineConfig, FabpEngine};
use fabp_fpga::popcount::{popcounter_cost, PopStyle};
use fabp_fpga::resources::{crossover_query_len, plan, ArchParams};
use fabp_platforms::energy::{normalize, PlatformPoint};
use fabp_platforms::models::{scale_to_reference, CpuScaling, GpuModel};
use fabp_platforms::power;
use fabp_platforms::workload::Workload;

#[derive(Debug, Clone)]
struct Options {
    /// Reference megabases for measured CPU runs and simulated FabP runs.
    ref_mbases: f64,
    /// Queries for the accuracy experiment.
    queries: usize,
    /// RNG seed.
    seed: u64,
    /// Write the run's telemetry as Prometheus text here.
    metrics_out: Option<String>,
    /// Write the run's span ring as a Chrome trace here.
    trace_out: Option<String>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            ref_mbases: 4.0,
            queries: 2_000,
            seed: 0xFAB,
            metrics_out: None,
            trace_out: None,
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut commands: Vec<String> = Vec::new();
    let mut options = Options::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--ref-mbases" => {
                options.ref_mbases = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--ref-mbases needs a number");
            }
            "--queries" => {
                options.queries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--queries needs a number");
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--metrics-out" => {
                options.metrics_out = Some(args.next().expect("--metrics-out needs a path"));
            }
            "--trace-out" => {
                options.trace_out = Some(args.next().expect("--trace-out needs a path"));
            }
            other => commands.push(other.to_string()),
        }
    }
    if commands.is_empty() {
        commands.push("all".to_string());
    }

    if cfg!(debug_assertions) {
        eprintln!("WARNING: debug build; CPU measurements will be badly inflated.");
        eprintln!("         Use: cargo run --release -p fabp-bench --bin figures -- ...\n");
    }

    for command in &commands {
        match command.as_str() {
            "fig6a" => fig6(&options, false),
            "fig6b" => fig6(&options, true),
            "fig6" => fig6_full(&options),
            "table1" => table1(&options),
            "accuracy" => accuracy(&options),
            "crossover" => crossover(),
            "ablation" => ablation(),
            "channels" => channels(&options),
            "wb" => wb_backpressure(&options),
            "verilog" => emit_verilog_artifacts(),
            "faults" => fault_coverage(&options),
            "timing" => timing_closure(),
            "buffers" => buffer_ablation(),
            "all" => {
                fig6_full(&options);
                table1(&options);
                accuracy(&options);
                crossover();
                ablation();
                channels(&options);
                wb_backpressure(&options);
                fault_coverage(&options);
                timing_closure();
                buffer_ablation();
            }
            other => {
                eprintln!("unknown experiment {other:?}");
                eprintln!(
                    "available: fig6a fig6b table1 accuracy crossover ablation channels wb verilog faults timing buffers all"
                );
                std::process::exit(2);
            }
        }
    }

    // Export the telemetry the experiments produced (engine counters,
    // AXI stall attribution, host-stage spans, …).
    let snapshot = fabp_telemetry::Registry::global().snapshot();
    if let Some(path) = &options.metrics_out {
        std::fs::write(path, snapshot.to_prometheus()).expect("write --metrics-out");
        eprintln!("telemetry metrics written to {path}");
    }
    if let Some(path) = &options.trace_out {
        std::fs::write(path, snapshot.to_chrome_trace()).expect("write --trace-out");
        eprintln!("telemetry trace written to {path}");
    }
}

fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

/// Computes the four platform points for one query length at paper scale,
/// plus the measured CPU implementation factor vs NCBI (see
/// `fabp_platforms::calibration`).
fn platform_points(length_aa: usize, options: &Options) -> (Vec<PlatformPoint>, f64) {
    let measured_bases = (options.ref_mbases * 1e6) as usize;
    let workload = BenchWorkload::generate(length_aa, measured_bases, options.seed);
    let paper = Workload::paper_scale(length_aa);

    // CPU single thread: measured TBLASTN, extrapolated to 1 Gbase.
    let (_, cpu1_measured) = time_best_of(1, || {
        tblastn_search(
            &workload.query,
            &workload.reference,
            &TblastnConfig::default(),
        )
    });
    let cpu1 = scale_to_reference(cpu1_measured, measured_bases as u64, paper.reference_bases);
    // CPU 12 threads: parallel-efficiency scaling of the measurement.
    let cpu12 = CpuScaling::twelve_threads().apply(cpu1);

    // GPU: calibrated brute-force model.
    let gpu = GpuModel::default().seconds(&paper);

    // FabP: plan the architecture and model the kernel at paper scale,
    // plus host overheads (negligible; included to match the paper's
    // end-to-end definition).
    let query = EncodedQuery::from_protein(&workload.query);
    let high_threshold = (query.len() as u32).saturating_sub(2);
    let engine = FabpEngine::new(query.clone(), EngineConfig::kintex7(high_threshold))
        .expect("paper query lengths fit the Kintex-7");
    let kernel = engine.model_kernel_seconds(paper.packed_reference_bytes());
    let fabp = fabp_core::host::end_to_end(
        &fabp_core::host::HostConfig::default(),
        query.len(),
        1_000,
        kernel,
    )
    .total();

    let factor =
        fabp_platforms::calibration::implementation_factor(measured_bases as u64, cpu1_measured);
    (
        vec![
            PlatformPoint::new("TBLASTN-1", cpu1, power::CPU_SINGLE_THREAD_W),
            PlatformPoint::new("TBLASTN-12", cpu12, power::CPU_TWELVE_THREAD_W),
            PlatformPoint::new("GPU", gpu, power::GPU_W),
            PlatformPoint::new("FabP", fabp, power::FPGA_W),
        ],
        factor,
    )
}

fn fig6_full(options: &Options) {
    fig6(options, false);
    fig6(options, true);
}

fn fig6(options: &Options, energy: bool) {
    if energy {
        header("Fig. 6(b) — energy efficiency normalised to 1-thread TBLASTN (E2)");
    } else {
        header("Fig. 6(a) — speedup normalised to 1-thread TBLASTN (E1)");
    }
    println!(
        "reference: 1 Gbase (CPU measured on {} Mbase and scaled)",
        options.ref_mbases
    );
    println!(
        "\n{:>9} {:>12} {:>12} {:>12} {:>12}",
        "query aa", "TBLASTN-1", "TBLASTN-12", "GPU", "FabP"
    );

    let mut fabp_vs_gpu = Vec::new();
    let mut fabp_vs_cpu12 = Vec::new();
    let mut fabp_vs_cpu12_energy = Vec::new();
    let mut fabp_vs_gpu_energy = Vec::new();

    let mut factors = Vec::new();
    for &length in &Workload::PAPER_QUERY_SWEEP {
        let (points, factor) = platform_points(length, options);
        factors.push(factor);
        let rows = normalize(&points);
        let col = |i: usize| if energy { rows[i].2 } else { rows[i].1 };
        println!(
            "{:>9} {:>11.1}x {:>11.1}x {:>11.1}x {:>11.1}x",
            length,
            col(0),
            col(1),
            col(2),
            col(3)
        );
        fabp_vs_gpu.push(points[2].seconds / points[3].seconds);
        fabp_vs_cpu12.push(points[1].seconds / points[3].seconds);
        fabp_vs_gpu_energy.push(points[2].joules() / points[3].joules());
        fabp_vs_cpu12_energy.push(points[1].joules() / points[3].joules());
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!("\nHeadline ratios (this run vs paper):");
    if energy {
        println!(
            "  FabP vs GPU energy efficiency: {:.1}x   (paper: 23.2x)",
            mean(&fabp_vs_gpu_energy)
        );
        let raw = mean(&fabp_vs_cpu12_energy);
        let factor = mean(&factors);
        println!("  FabP vs 12-thread CPU energy efficiency: {raw:.1}x   (paper: 266.8x)");
        println!(
            "    normalised by the measured-vs-NCBI implementation factor ({factor:.1}x): {:.1}x",
            fabp_platforms::calibration::normalize_cpu_ratio(raw, factor)
        );
    } else {
        println!(
            "  FabP vs GPU speedup: {:.3}x   (paper: 1.081x, i.e. 8.1% faster)",
            mean(&fabp_vs_gpu)
        );
        let raw = mean(&fabp_vs_cpu12);
        let factor = mean(&factors);
        println!("  FabP vs 12-thread CPU speedup: {raw:.1}x   (paper: 24.8x)");
        println!(
            "    normalised by the measured-vs-NCBI implementation factor ({factor:.1}x): {:.1}x",
            fabp_platforms::calibration::normalize_cpu_ratio(raw, factor)
        );
    }
}

fn table1(options: &Options) {
    header("Table I — FabP resource utilisation on the Kintex-7 (E3)");
    let device = FpgaDevice::kintex7();
    let params = ArchParams::default();
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>12}",
        "Config", "LUT", "FF", "BRAM", "DSP", "DRAM BW"
    );
    println!(
        "{:<12} {:>8} {:>8} {:>7}Mb {:>8} {:>12}",
        "Available",
        format!("{}k", device.luts / 1000),
        format!("{}k", device.ffs / 1000),
        device.bram_bits / 1_000_000,
        device.dsps,
        "12.8 GB/s"
    );

    // Simulate a reference large enough for steady-state bandwidth.
    let sim_bases = ((options.ref_mbases * 1e6) as usize).clamp(512 * 1024, 2_000_000);
    for (label, aa, paper_row) in [
        ("FabP-50", 50usize, "58% 16% 19% 31% 12.2 GB/s"),
        ("FabP-250", 250usize, "98% 40% 15% 68% 3.4 GB/s"),
    ] {
        let elements = aa * 3;
        let p = plan(&device, elements, 1, &params).expect("fits");
        let workload = BenchWorkload::generate(aa, sim_bases, options.seed);
        let query = EncodedQuery::from_protein(&workload.query);
        let high_threshold = (query.len() as u32).saturating_sub(2);
        let engine = FabpEngine::new(query, EngineConfig::kintex7(high_threshold)).expect("fits");
        let run = engine.run(&PackedSeq::from_rna(&workload.reference));
        println!(
            "{:<12} {:>7.0}% {:>7.0}% {:>7.0}% {:>7.0}% {:>9.2} GB/s   (paper: {})",
            label,
            p.utilization.lut * 100.0,
            p.utilization.ff * 100.0,
            p.utilization.bram * 100.0,
            p.utilization.dsp * 100.0,
            run.stats.achieved_bandwidth / 1e9,
            paper_row,
        );
        println!(
            "{:<12} segments={} ({}), {} LUTs, {} FFs, {} DSPs",
            "", p.segments, p.bottleneck, p.resources.luts, p.resources.ffs, p.resources.dsps
        );
    }
}

fn accuracy(options: &Options) {
    header("§IV-A accuracy — indel statistics and recall (E4)");
    let query_aa = 50usize;
    let mut rng = rng(options.seed ^ 0xACC);
    let indel_model = IndelModel::empirical();
    let threshold = Threshold::Fraction(0.9);

    let mut affected = 0usize;
    let mut fabp_found = 0usize;
    let mut fabp_found_clean = 0usize;
    let mut fabp_found_affected = 0usize;
    let mut sw_found = 0usize;
    let mut clean = 0usize;

    for _ in 0..options.queries {
        let query = fabp_bio::generate::random_protein(query_aa, &mut rng);
        let coding = coding_rna_for(&query, &mut rng);
        let (mutated, summary) = indel_model.mutate_rna(&coding, &mut rng);
        let has_indel = summary.involved_indels();

        // Plant the (possibly indel-shifted) region between flanks.
        let flank_len = 120usize;
        let mut bases = random_rna(flank_len, &mut rng).into_inner();
        bases.extend(mutated.iter().copied());
        bases.extend(random_rna(flank_len, &mut rng).into_inner());
        let reference = RnaSeq::from(bases);

        // FabP (substitution-only).
        let aligner = FabpAligner::builder()
            .protein_query(&query)
            .threshold(threshold)
            .engine(Engine::Software { threads: 1 })
            .build()
            .expect("non-empty query");
        let fabp_hit = !aligner.search(&reference).hits.is_empty();

        // Smith–Waterman nucleotide ground truth against the original
        // coding sequence (indel-tolerant).
        let sw = sw_nucleotide(
            coding.as_slice(),
            reference.as_slice(),
            NucScoring::default(),
            GapPenalties::default(),
            false,
        );
        let sw_hit = sw.score >= (coding.len() as i32 * 2) * 85 / 100;

        affected += usize::from(has_indel);
        clean += usize::from(!has_indel);
        fabp_found += usize::from(fabp_hit);
        if has_indel {
            fabp_found_affected += usize::from(fabp_hit);
        } else {
            fabp_found_clean += usize::from(fabp_hit);
        }
        sw_found += usize::from(sw_hit);
    }

    let n = options.queries as f64;
    let pct = |x: usize, d: f64| 100.0 * x as f64 / d.max(1.0);
    println!(
        "queries: {} × {query_aa} aa; empirical indel model (mean 0.09/kb)",
        options.queries
    );
    println!(
        "queries involving indels: {} ({:.2}%)   (paper sample: 2 of 10,000 ≈ 0.02%;",
        affected,
        pct(affected, n)
    );
    println!("  see EXPERIMENTS.md on the rate difference)");
    println!("FabP recall (threshold 90%): {:.2}%", pct(fabp_found, n));
    println!(
        "  on indel-free queries:     {:.2}% ({} / {})",
        pct(fabp_found_clean, clean as f64),
        fabp_found_clean,
        clean
    );
    println!(
        "  on indel-affected queries: {:.2}% ({} / {})",
        pct(fabp_found_affected, affected as f64),
        fabp_found_affected,
        affected
    );
    println!(
        "Smith–Waterman recall (indel-tolerant ground truth): {:.2}%",
        pct(sw_found, n)
    );
    println!(
        "accuracy drop from skipping indels: {:.3}% of queries",
        pct(sw_found.saturating_sub(fabp_found), n)
    );
}

fn crossover() {
    header("§IV-B crossover — bandwidth-bound vs resource-bound (E5)");
    let device = FpgaDevice::kintex7();
    let params = ArchParams::default();
    println!(
        "{:>9} {:>10} {:>9} {:>8} {:>10} {:>18}",
        "query aa", "elements", "segments", "LUT %", "BW GB/s", "bottleneck"
    );
    for aa in (10..=250).step_by(20) {
        let elements = aa * 3;
        match plan(&device, elements, 1, &params) {
            Ok(p) => {
                let bw = (12.8 / p.segments as f64).min(12.8 * 20.0 / 21.0);
                println!(
                    "{:>9} {:>10} {:>9} {:>7.0}% {:>10.2} {:>18}",
                    aa,
                    elements,
                    p.segments,
                    p.utilization.lut * 100.0,
                    bw,
                    p.bottleneck.to_string()
                );
            }
            Err(e) => println!("{aa:>9} {elements:>10}  does not fit: {e}"),
        }
    }
    let cross = crossover_query_len(&device, &params);
    println!(
        "\nlargest unsegmented query: {} elements = {} aa   (paper: ~70 aa)",
        cross,
        cross / 3
    );
}

fn ablation() {
    header("§III-D ablation — Pop-Counter area, hand-crafted vs tree-adder (E6)");
    println!(
        "{:>8} {:>14} {:>14} {:>12}",
        "width", "Pop36-style", "tree-adder", "reduction"
    );
    for width in [36usize, 150, 300, 450, 600, 750] {
        let hc = popcounter_cost(width, PopStyle::HandCrafted);
        let tree = popcounter_cost(width, PopStyle::TreeAdder);
        println!(
            "{:>8} {:>9} LUTs {:>9} LUTs {:>11.0}%",
            width,
            hc.luts,
            tree.luts,
            100.0 * (1.0 - hc.luts as f64 / tree.luts as f64)
        );
    }
    println!("(paper: 20% area reduction at the full-counter level)");
}

fn channels(options: &Options) {
    header("§III-C multi-channel scaling (E8)");
    // A Virtex-class part with four channels so short queries can exploit
    // extra bandwidth ("FabP is able to utilize multiple channels as long
    // as the FPGA has enough resources").
    let mut device = FpgaDevice::virtex7();
    device.mem_channels = 4;
    let workload = Workload::paper_scale(50);
    println!("query: 50 aa, reference: 1 Gbase, device: {}", device.name);
    println!("{:>9} {:>14} {:>14}", "channels", "kernel time", "speedup");
    let mut base = None;
    for ch in 1..=4usize {
        let bench = BenchWorkload::generate(50, 65_536, options.seed);
        let query = EncodedQuery::from_protein(&bench.query);
        let high_threshold = (query.len() as u32).saturating_sub(2);
        let mut config = EngineConfig::kintex7(high_threshold);
        config.device = device.clone();
        config.channels = ch;
        match FabpEngine::new(query, config) {
            Ok(engine) => {
                let t = engine.model_kernel_seconds(workload.packed_reference_bytes());
                let base_t = *base.get_or_insert(t);
                println!("{:>9} {:>14} {:>13.2}x", ch, fmt_seconds(t), base_t / t);
            }
            Err(e) => println!("{ch:>9}  does not fit: {e}"),
        }
    }
}

fn wb_backpressure(options: &Options) {
    header("Write-back buffer back-pressure vs threshold (E9)");
    println!(
        "The WB buffer retires a limited number of hit positions per cycle\n\
         (\"The WB buffer writes back all aligned positions\", §III-C); low\n\
         thresholds flood it and stall the pipeline.\n"
    );
    let workload = BenchWorkload::generate(20, 128 * 1024, options.seed ^ 0xB0);
    let query = EncodedQuery::from_protein(&workload.query);
    let qlen = query.len() as u32;
    let packed = PackedSeq::from_rna(&workload.reference);
    println!(
        "{:>11} {:>10} {:>14} {:>12} {:>12}",
        "threshold", "hits", "wb stalls", "cycles", "BW GB/s"
    );
    for fraction in [1.0f64, 0.9, 0.8, 0.7, 0.6, 0.5, 0.25, 0.0] {
        let threshold = (qlen as f64 * fraction) as u32;
        let engine =
            FabpEngine::new(query.clone(), EngineConfig::kintex7(threshold)).expect("fits");
        let run = engine.run(&packed);
        println!(
            "{:>10.0}% {:>10} {:>14} {:>12} {:>12.2}",
            fraction * 100.0,
            run.hits.len(),
            run.stats.wb_stall_cycles,
            run.stats.cycles,
            run.stats.achieved_bandwidth / 1e9
        );
    }
}

fn emit_verilog_artifacts() {
    header("Structural Verilog emission (comparator + Pop36)");
    let dir = std::path::Path::new("artifacts");
    std::fs::create_dir_all(dir).expect("create artifacts dir");

    let (netlist, _) = fabp_fpga::comparator::build_comparator_netlist();
    let v = fabp_fpga::verilog::emit_verilog(&netlist, "fabp_comparator");
    let path = dir.join("fabp_comparator.v");
    std::fs::write(&path, &v).expect("write comparator verilog");
    println!(
        "{}: written ({} LUT6)",
        path.display(),
        netlist.resources().luts
    );

    for (name, style) in [
        (
            "pop36_handcrafted",
            fabp_fpga::popcount::PopStyle::HandCrafted,
        ),
        ("pop36_tree", fabp_fpga::popcount::PopStyle::TreeAdder),
    ] {
        let pc = fabp_fpga::popcount::PopCounter::build(36, style);
        let v = fabp_fpga::verilog::emit_verilog(pc.netlist(), name);
        let path = dir.join(format!("{name}.v"));
        std::fs::write(&path, &v).expect("write popcounter verilog");
        println!("{}: written ({} LUT6)", path.display(), pc.resources().luts);
    }
}

fn fault_coverage(options: &Options) {
    header("Stuck-at fault coverage of the datapath netlists (self-test)");
    use fabp_fpga::fault::{enumerate_faults, simulate_faults};
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(options.seed ^ 0xFA);

    println!(
        "{:<22} {:>8} {:>10} {:>10}",
        "module", "faults", "vectors", "coverage"
    );
    // Comparator: exhaustive vectors.
    let (netlist, _) = fabp_fpga::comparator::build_comparator_netlist();
    let faults = enumerate_faults(&netlist);
    let vectors: Vec<Vec<bool>> = (0u32..(1 << 11))
        .map(|v| (0..11).map(|b| (v >> b) & 1 == 1).collect())
        .collect();
    let report = simulate_faults(&netlist, &faults, &vectors, 1);
    println!(
        "{:<22} {:>8} {:>10} {:>9.1}%",
        "comparator (2 LUTs)",
        faults.len(),
        vectors.len(),
        report.coverage() * 100.0
    );

    // Pop36 variants: random vectors.
    for (name, style) in [
        (
            "pop36 hand-crafted",
            fabp_fpga::popcount::PopStyle::HandCrafted,
        ),
        ("pop36 tree-adder", fabp_fpga::popcount::PopStyle::TreeAdder),
    ] {
        let pc = fabp_fpga::popcount::PopCounter::build(36, style);
        let faults = enumerate_faults(pc.netlist());
        let vectors: Vec<Vec<bool>> = (0..128)
            .map(|_| (0..36).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        let report = simulate_faults(pc.netlist(), &faults, &vectors, 1);
        println!(
            "{:<22} {:>8} {:>10} {:>9.1}%",
            name,
            faults.len(),
            vectors.len(),
            report.coverage() * 100.0
        );
    }
}

fn timing_closure() {
    header("Static timing analysis — why the Pop-Counter is pipelined");
    use fabp_fpga::pipeline::PipelinedPopCounter;
    use fabp_fpga::popcount::{PopCounter, PopStyle};
    use fabp_fpga::sta::{analyze, DelayModel};

    let delays = DelayModel::default();
    let (cmp, _) = fabp_fpga::comparator::build_comparator_netlist();
    let r = analyze(&cmp, &delays);
    println!(
        "{:<28} {:>10} {:>12} {:>10}",
        "module", "levels", "crit. path", "fmax"
    );
    println!(
        "{:<28} {:>10} {:>9.2} ns {:>7.0} MHz",
        "comparator (2 LUTs)",
        r.levels,
        r.critical_path_ns,
        r.fmax_hz / 1e6
    );
    for width in [150usize, 450, 750] {
        let flat = analyze(
            PopCounter::build(width, PopStyle::HandCrafted).netlist(),
            &delays,
        );
        let staged = analyze(
            PipelinedPopCounter::build(width, PopStyle::HandCrafted).netlist(),
            &delays,
        );
        println!(
            "{:<28} {:>10} {:>9.2} ns {:>7.0} MHz   {}",
            format!("pop{width} flat"),
            flat.levels,
            flat.critical_path_ns,
            flat.fmax_hz / 1e6,
            if flat.meets(200.0e6) {
                "meets 200 MHz"
            } else {
                "FAILS 200 MHz"
            }
        );
        println!(
            "{:<28} {:>10} {:>9.2} ns {:>7.0} MHz   {}",
            format!("pop{width} pipelined"),
            staged.levels,
            staged.critical_path_ns,
            staged.fmax_hz / 1e6,
            if staged.meets(200.0e6) {
                "meets 200 MHz"
            } else {
                "FAILS 200 MHz"
            }
        );
    }
}

fn buffer_ablation() {
    header("FF vs BRAM buffer ablation (§IV-B design choice, E13)");
    println!(
        "\"FabP uses distributed memory resources (FFs) ... rather than using\n\
         the BRAMs to avoid the routing congestion ... and reduce the power\n\
         consumption\" — modelled cost of the alternative:\n"
    );
    use fabp_fpga::power_model::PowerModel;
    use fabp_fpga::resources::design_cost;
    let model = PowerModel::default();
    println!(
        "{:>9} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "query aa", "buffers", "LUTs", "FFs", "BRAM Mb", "power"
    );
    for aa in [50usize, 150, 250] {
        for (label, bram) in [("FF", false), ("BRAM", true)] {
            let params = ArchParams {
                buffers_in_bram: bram,
                ..ArchParams::default()
            };
            // Use the FF plan's segmentation for a like-for-like row.
            let p = plan(&FpgaDevice::kintex7(), aa * 3, 1, &ArchParams::default()).expect("fits");
            let cost = design_cost(aa * 3, p.segments, 1, &params);
            println!(
                "{:>9} {:>10} {:>12} {:>12} {:>10.1} {:>8.1} W",
                aa,
                label,
                cost.luts,
                cost.ffs,
                cost.bram_bits as f64 / 1e6,
                model.power(cost, 200.0e6).total()
            );
        }
    }
}
