//! `bench_telemetry` — perf-trajectory snapshot driven by the telemetry
//! registry.
//!
//! Runs a fixed synthetic workload (seeded, so byte-identical across
//! machines) through the cycle-accurate engine and the software matcher,
//! then derives a compact JSON summary — engine throughput and stall
//! fractions — straight from the telemetry counters the run published.
//! Future PRs diff `BENCH_telemetry.json` to spot perf (or counter
//! accounting) regressions.
//!
//! ```text
//! cargo run -p fabp-bench --bin bench_telemetry [--out BENCH_telemetry.json]
//! ```

use fabp_bio::generate::{PlantedDatabase, PlantedDatabaseConfig};
use fabp_bio::seq::PackedSeq;
use fabp_core::aligner::Threshold;
use fabp_core::software::SoftwareEngine;
use fabp_encoding::encoder::EncodedQuery;
use fabp_fpga::engine::{EngineConfig, FabpEngine};
use fabp_resilience::{FaultSchedule, ResilienceLevel, ResilientRunner};
use fabp_telemetry::Registry;
use std::time::Instant;

/// Fixed workload: deterministic planted database so the counter totals
/// (and therefore the JSON) are stable across runs and machines.
const SEED: u64 = 0xFAB9;
const REFERENCE_LEN: usize = 200_000;
const NUM_QUERIES: usize = 4;
const QUERY_LEN: usize = 40;

fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0.0".to_string()
    } else {
        format!("{v:.6}")
    }
}

fn counter(registry: &Registry, name: &str) -> u64 {
    registry.snapshot().counter_total(name)
}

fn main() {
    let mut out_path = "BENCH_telemetry.json".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = it.next().expect("missing value for --out"),
            "--help" | "-h" => {
                eprintln!("usage: bench_telemetry [--out BENCH_telemetry.json]");
                std::process::exit(2);
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    // A scoped registry keeps this run's counters isolated from the
    // global one (nothing else runs in this process, but isolation makes
    // the derivation auditable).
    let registry = Registry::new();

    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(SEED);
    let db = PlantedDatabase::generate(
        &PlantedDatabaseConfig {
            reference_len: REFERENCE_LEN,
            num_queries: NUM_QUERIES,
            query_len: QUERY_LEN,
            paper_codons_only: true,
            ..PlantedDatabaseConfig::default()
        },
        &mut rng,
    );
    let packed = PackedSeq::from_rna(&db.reference);

    // --- Cycle-accurate engine, fixed Kintex-7 device model. -------------
    let mut cycle_hits = 0usize;
    let mut modelled_kernel_seconds = 0.0f64;
    let wall_start = Instant::now();
    for protein in &db.queries {
        let query = EncodedQuery::from_protein(protein);
        let threshold = Threshold::Fraction(0.9).resolve(query.len());
        let engine = FabpEngine::new(query, EngineConfig::kintex7(threshold))
            .expect("fixed workload fits the device");
        let run = engine.run_with_registry(&packed, &registry);
        cycle_hits += run.hits.len();
        modelled_kernel_seconds += run.stats.kernel_seconds;
    }
    let cycle_wall_seconds = wall_start.elapsed().as_secs_f64();

    let cycles = counter(&registry, "fabp_engine_cycles_total");
    let beats = counter(&registry, "fabp_engine_beats_total");
    let stall = counter(&registry, "fabp_engine_stall_cycles_total");
    let wb_stall = counter(&registry, "fabp_engine_wb_stall_cycles_total");
    let busy = counter(&registry, "fabp_engine_busy_cycles_total");
    let bytes_read = counter(&registry, "fabp_axi_bytes_read_total");
    let axi_stall = counter(&registry, "fabp_axi_stall_cycles_total");

    let stall_fraction = if cycles > 0 {
        stall as f64 / cycles as f64
    } else {
        0.0
    };
    let wb_stall_fraction = if cycles > 0 {
        wb_stall as f64 / cycles as f64
    } else {
        0.0
    };
    let busy_fraction = if cycles > 0 {
        (busy.min(cycles)) as f64 / cycles as f64
    } else {
        0.0
    };
    // Modelled device throughput: nucleotides scanned per modelled second.
    let total_bases = (REFERENCE_LEN * NUM_QUERIES) as f64;
    let modelled_bases_per_second = if modelled_kernel_seconds > 0.0 {
        total_bases / modelled_kernel_seconds
    } else {
        0.0
    };
    let modelled_bandwidth = if modelled_kernel_seconds > 0.0 {
        bytes_read as f64 / modelled_kernel_seconds
    } else {
        0.0
    };

    // --- Resilience overhead: protected vs unprotected cycle counts. ------
    // Fault-free run with full detection active (CRC framing + periodic
    // configuration scrubbing + stream watchdog): the cycle delta is the
    // throughput cost a deployment pays for the protection. Target < 2 %.
    let (resilience_overhead_cycles, resilience_protected_cycles, resilience_overhead_fraction) = {
        let query = EncodedQuery::from_protein(&db.queries[0]);
        let threshold = Threshold::Fraction(0.9).resolve(query.len());
        let engine = FabpEngine::new(query, EngineConfig::kintex7(threshold))
            .expect("fixed workload fits the device");
        // Tile the reference 8× so the run spans the default scrub
        // interval — the measured overhead then includes real periodic
        // readback pauses instead of a run too short to scrub.
        let tiled = {
            let mut bases = Vec::with_capacity(REFERENCE_LEN * 8);
            for _ in 0..8 {
                bases.extend_from_slice(db.reference.as_slice());
            }
            PackedSeq::from_rna(&fabp_bio::seq::RnaSeq::from(bases))
        };
        let plain = engine.run(&tiled).stats.cycles;
        let protected =
            ResilientRunner::new(&engine, ResilienceLevel::Recover, FaultSchedule::new())
                .run(&tiled, &registry)
                .expect("fault-free protected run cannot fail")
                .run
                .stats
                .cycles;
        let overhead = protected.saturating_sub(plain);
        let fraction = if plain > 0 {
            overhead as f64 / plain as f64
        } else {
            0.0
        };
        (overhead, protected, fraction)
    };

    // --- Software reference point on the same workload. -------------------
    let sw_start = Instant::now();
    let mut software_hits = 0usize;
    for protein in &db.queries {
        let query = EncodedQuery::from_protein(protein);
        let threshold = Threshold::Fraction(0.9).resolve(query.len());
        let engine = SoftwareEngine::with_registry(&query, &registry);
        software_hits += engine.search(db.reference.as_slice(), threshold).len();
    }
    let software_wall_seconds = sw_start.elapsed().as_secs_f64();
    let software_bases_per_second = if software_wall_seconds > 0.0 {
        total_bases / software_wall_seconds
    } else {
        0.0
    };

    let json = format!(
        "{{\n  \"schema\": \"fabp-bench-telemetry/1\",\n  \"workload\": {{\n    \"seed\": {SEED},\n    \"reference_len\": {REFERENCE_LEN},\n    \"num_queries\": {NUM_QUERIES},\n    \"query_len\": {QUERY_LEN}\n  }},\n  \"cycle_engine\": {{\n    \"hits\": {cycle_hits},\n    \"cycles_total\": {cycles},\n    \"beats_total\": {beats},\n    \"stall_cycles_total\": {stall},\n    \"wb_stall_cycles_total\": {wb_stall},\n    \"busy_cycles_total\": {busy},\n    \"axi_bytes_read_total\": {bytes_read},\n    \"axi_stall_cycles_total\": {axi_stall},\n    \"stall_fraction\": {},\n    \"wb_stall_fraction\": {},\n    \"busy_fraction\": {},\n    \"modelled_kernel_seconds\": {},\n    \"modelled_bases_per_second\": {},\n    \"modelled_bandwidth_bytes_per_second\": {},\n    \"sim_wall_seconds\": {}\n  }},\n  \"resilience\": {{\n    \"protected_cycles\": {resilience_protected_cycles},\n    \"detection_overhead_cycles\": {resilience_overhead_cycles},\n    \"detection_overhead_fraction\": {},\n    \"target_fraction\": 0.02\n  }},\n  \"software_engine\": {{\n    \"hits\": {software_hits},\n    \"wall_seconds\": {},\n    \"bases_per_second\": {}\n  }}\n}}\n",
        fmt_f64(stall_fraction),
        fmt_f64(wb_stall_fraction),
        fmt_f64(busy_fraction),
        fmt_f64(modelled_kernel_seconds),
        fmt_f64(modelled_bases_per_second),
        fmt_f64(modelled_bandwidth),
        fmt_f64(cycle_wall_seconds),
        fmt_f64(resilience_overhead_fraction),
        fmt_f64(software_wall_seconds),
        fmt_f64(software_bases_per_second),
    );
    std::fs::write(&out_path, &json).expect("write benchmark snapshot");
    eprintln!(
        "bench_telemetry: {cycle_hits} cycle hits / {software_hits} software hits; \
         stall fraction {stall_fraction:.4}; resilience overhead {:.3}% (target < 2%); \
         snapshot written to {out_path}",
        resilience_overhead_fraction * 100.0
    );
}
