//! `bench_telemetry` — perf-trajectory snapshot driven by the telemetry
//! registry.
//!
//! Runs a fixed synthetic workload (seeded, so byte-identical across
//! machines) through the cycle-accurate engine and the software matcher,
//! then derives a compact JSON summary — engine throughput and stall
//! fractions — straight from the telemetry counters the run published.
//! Future PRs diff `BENCH_telemetry.json` to spot perf (or counter
//! accounting) regressions.
//!
//! The snapshot also carries the tracing hot-path costs: the disabled
//! path (a live recorder handed a disabled context — what every traced
//! call site pays when tracing is off) is held to a hard ≤ 2 ns/op
//! budget in optimized builds.
//!
//! ```text
//! cargo run --release -p fabp-bench --bin bench_telemetry -- \
//!     [--out BENCH_telemetry.json] \
//!     [--baseline BENCH_telemetry.json --check [--tolerance 0.10]]
//! ```
//!
//! `--check` gates deterministic counters exactly against the baseline
//! and ns/op measurements at `baseline × (1 + tolerance)`.

use fabp_bio::generate::{PlantedDatabase, PlantedDatabaseConfig};
use fabp_bio::seq::PackedSeq;
use fabp_core::aligner::Threshold;
use fabp_core::software::SoftwareEngine;
use fabp_encoding::encoder::EncodedQuery;
use fabp_fpga::engine::{EngineConfig, FabpEngine};
use fabp_resilience::{FaultSchedule, ResilienceLevel, ResilientRunner};
use fabp_telemetry::{Registry, TraceContext, TraceEvent, FLIGHT_RECORDER_CAPACITY};
use std::time::Instant;

/// Fixed workload: deterministic planted database so the counter totals
/// (and therefore the JSON) are stable across runs and machines.
const SEED: u64 = 0xFAB9;
const REFERENCE_LEN: usize = 200_000;
const NUM_QUERIES: usize = 4;
const QUERY_LEN: usize = 40;

fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0.0".to_string()
    } else {
        format!("{v:.6}")
    }
}

fn counter(registry: &Registry, name: &str) -> u64 {
    registry.snapshot().counter_total(name)
}

/// Per-op cost of the flight-recorder hot path, disabled and enabled.
/// The disabled path is the budget that matters: every traced call site
/// pays it unconditionally when tracing is off.
fn trace_overhead_ns() -> (f64, f64) {
    const OPS: u64 = 4_000_000;
    let registry = Registry::new();
    let flight = registry.flight_recorder();
    let off = TraceContext::none();
    let started = Instant::now();
    for i in 0..OPS {
        std::hint::black_box(&flight).record(TraceEvent::new(off, "bench", i as f64, 1.0));
    }
    let disabled_ns = started.elapsed().as_nanos() as f64 / OPS as f64;
    let ctx = TraceContext::mint(SEED, 1);
    let started = Instant::now();
    for i in 0..OPS {
        std::hint::black_box(&flight).record(TraceEvent::new(ctx, "bench", i as f64, 1.0));
    }
    let enabled_ns = started.elapsed().as_nanos() as f64 / OPS as f64;
    (disabled_ns, enabled_ns)
}

/// Numeric `"key": value` pairs of a snapshot, in document order.
fn numeric_fields(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some((key, value)) = line.split_once("\": ") else {
            continue;
        };
        let key = key.trim_start_matches('"');
        let value = value.trim_end_matches(',');
        if let Ok(v) = value.parse::<f64>() {
            out.push((key.to_string(), v));
        }
    }
    out
}

/// Counters derived from the pinned workload are deterministic: they
/// must match the baseline exactly. Timing fields are machine-dependent
/// and gated at `baseline × (1 + tolerance)` (ns/op, lower is better).
const EXACT_FIELDS: &[&str] = &[
    "hits",
    "cycles_total",
    "beats_total",
    "stall_cycles_total",
    "wb_stall_cycles_total",
    "busy_cycles_total",
    "axi_bytes_read_total",
    "axi_stall_cycles_total",
    "protected_cycles",
    "detection_overhead_cycles",
];
/// Timing fields with an absolute floor on the regression limit:
/// sub-ns measurements jitter across runners, so the gate is
/// `max(baseline × (1 + tolerance), floor)` — the floor is the hard
/// product budget (2 ns disabled, 10× that for the enabled seqlock
/// write), below which noise never fails a build.
const TIMING_FIELDS: &[(&str, f64)] = &[
    ("disabled_ns_per_op", TRACE_BUDGET_NS),
    ("enabled_ns_per_op", 10.0 * TRACE_BUDGET_NS),
];

/// Hard budget for the disabled tracing path, nanoseconds per record.
const TRACE_BUDGET_NS: f64 = 2.0;

fn check_against_baseline(current: &str, baseline: &str, tolerance: f64) -> usize {
    let cur = numeric_fields(current);
    let base = numeric_fields(baseline);
    let mut regressions = 0usize;
    let mut compared = 0usize;
    // Duplicate keys ("hits" appears per engine) are matched by ordinal.
    let nth = |fields: &[(String, f64)], key: &str, n: usize| -> Option<f64> {
        fields
            .iter()
            .filter(|(k, _)| k == key)
            .nth(n)
            .map(|(_, v)| *v)
    };
    for key in EXACT_FIELDS {
        for n in 0.. {
            let Some(c) = nth(&cur, key, n) else { break };
            let Some(b) = nth(&base, key, n) else {
                eprintln!("bench_telemetry: note: `{key}`[{n}] not in baseline (new field)");
                break;
            };
            compared += 1;
            if c != b {
                regressions += 1;
                eprintln!("bench_telemetry: REGRESSION `{key}`[{n}]: {c} vs baseline {b} (exact)");
            }
        }
    }
    for (key, floor) in TIMING_FIELDS {
        let Some(c) = nth(&cur, key, 0) else { continue };
        let Some(b) = nth(&base, key, 0) else {
            eprintln!("bench_telemetry: note: `{key}` not in baseline (new field)");
            continue;
        };
        compared += 1;
        let limit = (b * (1.0 + tolerance)).max(*floor);
        if c > limit {
            regressions += 1;
            eprintln!(
                "bench_telemetry: REGRESSION `{key}`: {c:.3} ns/op vs baseline {b:.3} \
                 (+{:.1} %, limit +{:.0} %)",
                (c / b - 1.0) * 100.0,
                tolerance * 100.0
            );
        } else {
            eprintln!(
                "bench_telemetry: ok `{key}`: {c:.3} ns/op (baseline {b:.3}, {:+.1} %)",
                (c / b - 1.0) * 100.0
            );
        }
    }
    assert!(compared > 0, "baseline shares no fields with this run");
    regressions
}

fn main() {
    let mut out_path = "BENCH_telemetry.json".to_string();
    let mut check = false;
    let mut baseline_path: Option<String> = None;
    let mut tolerance = 0.10f64;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = it.next().expect("missing value for --out"),
            "--check" => check = true,
            "--baseline" => baseline_path = Some(it.next().expect("missing value for --baseline")),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .expect("missing value for --tolerance")
                    .parse()
                    .expect("--tolerance takes a fraction, e.g. 0.10")
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_telemetry [--out BENCH_telemetry.json] \
                     [--baseline FILE --check [--tolerance 0.10]]"
                );
                std::process::exit(2);
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    // A scoped registry keeps this run's counters isolated from the
    // global one (nothing else runs in this process, but isolation makes
    // the derivation auditable).
    let registry = Registry::new();

    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(SEED);
    let db = PlantedDatabase::generate(
        &PlantedDatabaseConfig {
            reference_len: REFERENCE_LEN,
            num_queries: NUM_QUERIES,
            query_len: QUERY_LEN,
            paper_codons_only: true,
            ..PlantedDatabaseConfig::default()
        },
        &mut rng,
    );
    let packed = PackedSeq::from_rna(&db.reference);

    // --- Cycle-accurate engine, fixed Kintex-7 device model. -------------
    let mut cycle_hits = 0usize;
    let mut modelled_kernel_seconds = 0.0f64;
    let wall_start = Instant::now();
    for protein in &db.queries {
        let query = EncodedQuery::from_protein(protein);
        let threshold = Threshold::Fraction(0.9).resolve(query.len());
        let engine = FabpEngine::new(query, EngineConfig::kintex7(threshold))
            .expect("fixed workload fits the device");
        let run = engine.run_with_registry(&packed, &registry);
        cycle_hits += run.hits.len();
        modelled_kernel_seconds += run.stats.kernel_seconds;
    }
    let cycle_wall_seconds = wall_start.elapsed().as_secs_f64();

    let cycles = counter(&registry, "fabp_engine_cycles_total");
    let beats = counter(&registry, "fabp_engine_beats_total");
    let stall = counter(&registry, "fabp_engine_stall_cycles_total");
    let wb_stall = counter(&registry, "fabp_engine_wb_stall_cycles_total");
    let busy = counter(&registry, "fabp_engine_busy_cycles_total");
    let bytes_read = counter(&registry, "fabp_axi_bytes_read_total");
    let axi_stall = counter(&registry, "fabp_axi_stall_cycles_total");

    let stall_fraction = if cycles > 0 {
        stall as f64 / cycles as f64
    } else {
        0.0
    };
    let wb_stall_fraction = if cycles > 0 {
        wb_stall as f64 / cycles as f64
    } else {
        0.0
    };
    let busy_fraction = if cycles > 0 {
        (busy.min(cycles)) as f64 / cycles as f64
    } else {
        0.0
    };
    // Modelled device throughput: nucleotides scanned per modelled second.
    let total_bases = (REFERENCE_LEN * NUM_QUERIES) as f64;
    let modelled_bases_per_second = if modelled_kernel_seconds > 0.0 {
        total_bases / modelled_kernel_seconds
    } else {
        0.0
    };
    let modelled_bandwidth = if modelled_kernel_seconds > 0.0 {
        bytes_read as f64 / modelled_kernel_seconds
    } else {
        0.0
    };

    // --- Resilience overhead: protected vs unprotected cycle counts. ------
    // Fault-free run with full detection active (CRC framing + periodic
    // configuration scrubbing + stream watchdog): the cycle delta is the
    // throughput cost a deployment pays for the protection. Target < 2 %.
    let (resilience_overhead_cycles, resilience_protected_cycles, resilience_overhead_fraction) = {
        let query = EncodedQuery::from_protein(&db.queries[0]);
        let threshold = Threshold::Fraction(0.9).resolve(query.len());
        let engine = FabpEngine::new(query, EngineConfig::kintex7(threshold))
            .expect("fixed workload fits the device");
        // Tile the reference 8× so the run spans the default scrub
        // interval — the measured overhead then includes real periodic
        // readback pauses instead of a run too short to scrub.
        let tiled = {
            let mut bases = Vec::with_capacity(REFERENCE_LEN * 8);
            for _ in 0..8 {
                bases.extend_from_slice(db.reference.as_slice());
            }
            PackedSeq::from_rna(&fabp_bio::seq::RnaSeq::from(bases))
        };
        let plain = engine.run(&tiled).stats.cycles;
        let protected =
            ResilientRunner::new(&engine, ResilienceLevel::Recover, FaultSchedule::new())
                .run(&tiled, &registry)
                .expect("fault-free protected run cannot fail")
                .run
                .stats
                .cycles;
        let overhead = protected.saturating_sub(plain);
        let fraction = if plain > 0 {
            overhead as f64 / plain as f64
        } else {
            0.0
        };
        (overhead, protected, fraction)
    };

    // --- Software reference point on the same workload. -------------------
    let sw_start = Instant::now();
    let mut software_hits = 0usize;
    for protein in &db.queries {
        let query = EncodedQuery::from_protein(protein);
        let threshold = Threshold::Fraction(0.9).resolve(query.len());
        let engine = SoftwareEngine::with_registry(&query, &registry);
        software_hits += engine.search(db.reference.as_slice(), threshold).len();
    }
    let software_wall_seconds = sw_start.elapsed().as_secs_f64();
    let software_bases_per_second = if software_wall_seconds > 0.0 {
        total_bases / software_wall_seconds
    } else {
        0.0
    };

    // --- Tracing hot-path overhead, disabled and enabled. -----------------
    let (trace_disabled_ns, trace_enabled_ns) = trace_overhead_ns();
    // The ≤ 2 ns budget is a statement about the optimized hot path;
    // debug builds pay bounds checks and unoptimized atomics, so the
    // hard gate applies to release builds only.
    if !cfg!(debug_assertions) {
        assert!(
            trace_disabled_ns <= TRACE_BUDGET_NS,
            "disabled-trace path costs {trace_disabled_ns:.3} ns/op, \
             over the {TRACE_BUDGET_NS} ns budget"
        );
    }

    let json = format!(
        "{{\n  \"schema\": \"fabp-bench-telemetry/1\",\n  \"workload\": {{\n    \"seed\": {SEED},\n    \"reference_len\": {REFERENCE_LEN},\n    \"num_queries\": {NUM_QUERIES},\n    \"query_len\": {QUERY_LEN}\n  }},\n  \"cycle_engine\": {{\n    \"hits\": {cycle_hits},\n    \"cycles_total\": {cycles},\n    \"beats_total\": {beats},\n    \"stall_cycles_total\": {stall},\n    \"wb_stall_cycles_total\": {wb_stall},\n    \"busy_cycles_total\": {busy},\n    \"axi_bytes_read_total\": {bytes_read},\n    \"axi_stall_cycles_total\": {axi_stall},\n    \"stall_fraction\": {},\n    \"wb_stall_fraction\": {},\n    \"busy_fraction\": {},\n    \"modelled_kernel_seconds\": {},\n    \"modelled_bases_per_second\": {},\n    \"modelled_bandwidth_bytes_per_second\": {},\n    \"sim_wall_seconds\": {}\n  }},\n  \"resilience\": {{\n    \"protected_cycles\": {resilience_protected_cycles},\n    \"detection_overhead_cycles\": {resilience_overhead_cycles},\n    \"detection_overhead_fraction\": {},\n    \"target_fraction\": 0.02\n  }},\n  \"trace\": {{\n    \"disabled_ns_per_op\": {},\n    \"enabled_ns_per_op\": {},\n    \"budget_ns_per_op\": {},\n    \"flight_recorder_capacity\": {FLIGHT_RECORDER_CAPACITY}\n  }},\n  \"software_engine\": {{\n    \"hits\": {software_hits},\n    \"wall_seconds\": {},\n    \"bases_per_second\": {}\n  }}\n}}\n",
        fmt_f64(stall_fraction),
        fmt_f64(wb_stall_fraction),
        fmt_f64(busy_fraction),
        fmt_f64(modelled_kernel_seconds),
        fmt_f64(modelled_bases_per_second),
        fmt_f64(modelled_bandwidth),
        fmt_f64(cycle_wall_seconds),
        fmt_f64(resilience_overhead_fraction),
        fmt_f64(trace_disabled_ns),
        fmt_f64(trace_enabled_ns),
        fmt_f64(TRACE_BUDGET_NS),
        fmt_f64(software_wall_seconds),
        fmt_f64(software_bases_per_second),
    );
    std::fs::write(&out_path, &json).expect("write benchmark snapshot");
    eprintln!(
        "bench_telemetry: {cycle_hits} cycle hits / {software_hits} software hits; \
         stall fraction {stall_fraction:.4}; resilience overhead {:.3}% (target < 2%); \
         trace record {trace_disabled_ns:.3} ns/op disabled / {trace_enabled_ns:.3} ns/op \
         enabled (budget {TRACE_BUDGET_NS} ns); snapshot written to {out_path}",
        resilience_overhead_fraction * 100.0
    );

    if check {
        let path = baseline_path.expect("--check requires --baseline FILE");
        let baseline_text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let regressions = check_against_baseline(&json, &baseline_text, tolerance);
        if regressions > 0 {
            eprintln!("bench_telemetry: {regressions} regression(s) beyond tolerance");
            std::process::exit(1);
        }
        eprintln!(
            "bench_telemetry: no regressions (counters exact, timings ±{:.0} % with budget floor)",
            tolerance * 100.0
        );
    }
}
