//! # fabp-bench — benchmark harness for the FabP reproduction
//!
//! * the `figures` binary regenerates every table and figure of the
//!   paper's evaluation (run `cargo run --release -p fabp-bench --bin
//!   figures -- all`); experiment ids map to `DESIGN.md` §4;
//! * `benches/` holds Criterion micro-benchmarks for the engines and
//!   baselines.
//!
//! This library crate carries the pieces shared by both: deterministic
//! workload construction and wall-clock measurement helpers.

use fabp_bio::generate::{coding_rna_for, random_protein, random_rna};
use fabp_bio::seq::{ProteinSeq, RnaSeq};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Deterministic RNG for a named experiment and seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A generated evaluation workload: one query and a reference with the
/// query's coding sequence planted mid-way (so every platform has a real
/// hit to find, like the NCBI-sampled queries of §IV).
#[derive(Debug, Clone)]
pub struct BenchWorkload {
    /// The protein query.
    pub query: ProteinSeq,
    /// The reference (random background + one planted coding region).
    pub reference: RnaSeq,
    /// Planted position in bases.
    pub planted_at: usize,
}

impl BenchWorkload {
    /// Builds a workload with a `query_aa`-residue query and a
    /// `reference_bases`-base reference.
    pub fn generate(query_aa: usize, reference_bases: usize, seed: u64) -> BenchWorkload {
        let mut rng = rng(seed);
        let query = random_protein(query_aa, &mut rng);
        let coding = coding_rna_for(&query, &mut rng);
        let mut bases = random_rna(reference_bases, &mut rng).into_inner();
        let planted_at = (reference_bases / 2).min(reference_bases - coding.len());
        bases.splice(
            planted_at..planted_at + coding.len(),
            coding.iter().copied(),
        );
        BenchWorkload {
            query,
            reference: RnaSeq::from(bases),
            planted_at,
        }
    }
}

/// Runs `f` once, returning its result and the wall-clock seconds.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed().as_secs_f64())
}

/// Runs `f` `n` times, returning the last result and the *minimum*
/// per-run seconds (the usual robust wall-clock estimator).
pub fn time_best_of<R>(n: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    assert!(n > 0);
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..n {
        let (r, t) = time_once(&mut f);
        best = best.min(t);
        last = Some(r);
    }
    (last.expect("n > 0"), best)
}

/// Formats seconds with an adaptive unit.
pub fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.2} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let a = BenchWorkload::generate(20, 5_000, 7);
        let b = BenchWorkload::generate(20, 5_000, 7);
        assert_eq!(a.query, b.query);
        assert_eq!(a.reference, b.reference);
        assert_eq!(a.planted_at, b.planted_at);
    }

    #[test]
    fn workload_plants_the_coding_sequence() {
        let w = BenchWorkload::generate(15, 2_000, 8);
        let translated = fabp_bio::translate::translate_slice(
            &w.reference.as_slice()[w.planted_at..w.planted_at + 45],
        );
        assert_eq!(translated, w.query);
    }

    #[test]
    fn timing_helpers_run() {
        let (value, t) = time_once(|| 2 + 2);
        assert_eq!(value, 4);
        assert!(t >= 0.0);
        let (value, t) = time_best_of(3, || 6 * 7);
        assert_eq!(value, 42);
        assert!(t >= 0.0);
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_seconds(2.5), "2.50 s");
        assert_eq!(fmt_seconds(0.0025), "2.50 ms");
        assert_eq!(fmt_seconds(2.5e-6), "2.50 µs");
    }
}
