//! Criterion companion to experiment E6: Pop-Counter construction and
//! gate-level evaluation cost for the two microarchitectures.
//!
//! (The *area* comparison itself is printed by `figures -- ablation`;
//! build time here is a proxy for netlist size, and the eval benchmarks
//! track the gate-level simulator's speed.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fabp_fpga::popcount::{PopCounter, PopStyle};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("popcounter_build");
    group.sample_size(10);
    for width in [36usize, 150, 750] {
        for (name, style) in [
            ("handcrafted", PopStyle::HandCrafted),
            ("tree", PopStyle::TreeAdder),
        ] {
            group.bench_with_input(BenchmarkId::new(name, width), &width, |b, &w| {
                b.iter(|| PopCounter::build(w, style))
            });
        }
    }
    group.finish();
}

fn bench_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("popcounter_eval");
    group.sample_size(20);
    for width in [36usize, 150] {
        let bits: Vec<bool> = (0..width).map(|i| i % 3 == 0).collect();
        for (name, style) in [
            ("handcrafted", PopStyle::HandCrafted),
            ("tree", PopStyle::TreeAdder),
        ] {
            let mut pc = PopCounter::build(width, style);
            group.bench_with_input(BenchmarkId::new(name, width), &bits, |b, bits| {
                b.iter(|| pc.count(bits))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_eval);
criterion_main!(benches);
