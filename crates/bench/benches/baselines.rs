//! Baseline algorithm micro-benchmarks: Smith–Waterman kernels and the
//! TBLASTN pipeline stages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fabp_baselines::kmer::WordIndex;
use fabp_baselines::sw::{sw_banded_score, sw_protein, GapPenalties};
use fabp_bio::blosum::blosum62;
use fabp_bio::generate::random_protein;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_smith_waterman(c: &mut Criterion) {
    let mut group = c.benchmark_group("smith_waterman");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(0xBA5E);
    for &n in &[64usize, 128, 256] {
        let a = random_protein(n, &mut rng);
        let b = random_protein(n, &mut rng);
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::new("full", n), &n, |bencher, _| {
            bencher.iter(|| sw_protein(a.as_slice(), b.as_slice(), GapPenalties::default(), false))
        });
        group.bench_with_input(BenchmarkId::new("banded16", n), &n, |bencher, _| {
            bencher.iter(|| {
                sw_banded_score(
                    a.as_slice(),
                    b.as_slice(),
                    blosum62,
                    GapPenalties::default(),
                    0,
                    16,
                )
            })
        });
    }
    group.finish();
}

fn bench_word_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("word_index_build");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(0x1DE);
    for &n in &[50usize, 250] {
        let query = random_protein(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("t11", n), &query, |b, q| {
            b.iter(|| WordIndex::build(q.as_slice(), 3, 11))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_smith_waterman, bench_word_index);
criterion_main!(benches);
