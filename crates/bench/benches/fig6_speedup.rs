//! Criterion companion to experiment E1 (Fig. 6(a)): wall-clock of the
//! three software-executable platforms on a scaled-down workload.
//!
//! The `figures` binary extrapolates these to paper scale; this bench
//! tracks regressions in the underlying kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fabp_baselines::gpu::brute_force_search;
use fabp_baselines::tblastn::{tblastn_search, tblastn_search_parallel, TblastnConfig};
use fabp_bench::BenchWorkload;
use fabp_bio::backtranslate::BackTranslatedQuery;
use fabp_core::software::SoftwareEngine;
use fabp_encoding::encoder::EncodedQuery;

const REF_BASES: usize = 1 << 20; // 1 Mbase

fn bench_platforms(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_platforms");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(REF_BASES as u64));

    for &length in &[50usize, 250] {
        let workload = BenchWorkload::generate(length, REF_BASES, 0xF16);
        let config = TblastnConfig::default();

        group.bench_with_input(BenchmarkId::new("tblastn_1t", length), &workload, |b, w| {
            b.iter(|| tblastn_search(&w.query, &w.reference, &config))
        });
        group.bench_with_input(BenchmarkId::new("tblastn_mt", length), &workload, |b, w| {
            b.iter(|| tblastn_search_parallel(&w.query, &w.reference, &config, 12))
        });

        let bt = BackTranslatedQuery::from_protein(&workload.query);
        let threshold = (bt.len() as u32 * 9).div_ceil(10);
        group.bench_with_input(
            BenchmarkId::new("gpu_bruteforce", length),
            &workload,
            |b, w| b.iter(|| brute_force_search(&bt, &w.reference, threshold, 12)),
        );

        let engine = SoftwareEngine::new(&EncodedQuery::from_protein(&workload.query));
        group.bench_with_input(
            BenchmarkId::new("fabp_software", length),
            &workload,
            |b, w| b.iter(|| engine.search(w.reference.as_slice(), threshold)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_platforms);
criterion_main!(benches);
