//! Cycle-level engine throughput (bit-exact datapath simulation) for short
//! and long queries — the simulator behind experiments E1/E3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fabp_bench::BenchWorkload;
use fabp_bio::seq::PackedSeq;
use fabp_encoding::encoder::EncodedQuery;
use fabp_fpga::engine::{EngineConfig, FabpEngine};

const REF_BASES: usize = 64 * 1024;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle_engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(REF_BASES as u64));

    for &length in &[50usize, 250] {
        let workload = BenchWorkload::generate(length, REF_BASES, 0xE6);
        let query = EncodedQuery::from_protein(&workload.query);
        let threshold = (query.len() as u32 * 9).div_ceil(10);
        let engine = FabpEngine::new(query, EngineConfig::kintex7(threshold)).unwrap();
        let packed = PackedSeq::from_rna(&workload.reference);
        group.bench_with_input(
            BenchmarkId::new("kintex7", length),
            &packed,
            |b, reference| b.iter(|| engine.run(reference)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
