//! Gate-level model micro-benchmarks: netlist simulation speed of the
//! comparator cell, the full alignment instance, and the streaming
//! software scanner it is verified against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fabp_bench::BenchWorkload;
use fabp_bio::backtranslate::BackTranslatedQuery;
use fabp_core::bitparallel::BitParallelEngine;
use fabp_core::software::SoftwareEngine;
use fabp_core::streaming::StreamingAligner;
use fabp_encoding::encoder::EncodedQuery;
use fabp_encoding::fused::FusedScorer;
use fabp_fpga::comparator::ComparatorCell;
use fabp_fpga::instance::AlignmentInstance;

fn bench_comparator_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("comparator_paths");
    let workload = BenchWorkload::generate(25, 4_096, 0x6A7E);
    let query = EncodedQuery::from_protein(&workload.query);
    let bt = BackTranslatedQuery::from_protein(&workload.query);
    let bases = workload.reference.as_slice();
    let windows = bases.len() - query.len() + 1;
    group.throughput(Throughput::Elements((windows * query.len()) as u64));

    let cell = ComparatorCell::new();
    group.bench_function("lut_cell", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for k in 0..windows {
                total += cell.score_window(query.instructions(), &bases[k..]);
            }
            total
        })
    });

    let fused = FusedScorer::build(&bt);
    group.bench_function("fused_tables", |b| {
        b.iter(|| {
            let mut total = 0u32;
            for k in 0..windows {
                total += fused.score_window(&bases[k..]);
            }
            total
        })
    });

    let mut instance = AlignmentInstance::build(&query, 40);
    group.bench_function("gate_level_instance", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            // The netlist is ~100x slower; sample every 64th window.
            for k in (0..windows).step_by(64) {
                let (_, hit) = instance.eval(&bases[k..]);
                hits += usize::from(hit);
            }
            hits
        })
    });
    group.finish();
}

fn bench_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_scanner");
    group.sample_size(20);
    let workload = BenchWorkload::generate(30, 1 << 18, 0x57E);
    let query = EncodedQuery::from_protein(&workload.query);
    let threshold = (query.len() as u32 * 9).div_ceil(10);
    group.throughput(Throughput::Bytes((workload.reference.len() / 4) as u64));
    for chunk in [4_096usize, 65_536] {
        group.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, &chunk| {
            b.iter(|| {
                let mut scanner = StreamingAligner::new(&query, threshold);
                let mut hits = 0usize;
                for piece in workload.reference.as_slice().chunks(chunk) {
                    hits += scanner.feed(piece).len();
                }
                hits
            })
        });
    }
    group.finish();
}

fn bench_engine_shootout(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_shootout");
    group.sample_size(15);
    let workload = BenchWorkload::generate(50, 1 << 19, 0x5007);
    let query = EncodedQuery::from_protein(&workload.query);
    let threshold = (query.len() as u32 * 9).div_ceil(10);
    let bases = workload.reference.as_slice();
    group.throughput(Throughput::Elements(bases.len() as u64));

    let scalar = SoftwareEngine::new(&query);
    group.bench_function("scalar_early_exit", |b| {
        b.iter(|| scalar.search(bases, threshold))
    });
    let parallel = BitParallelEngine::new(&query).unwrap();
    group.bench_function("bit_parallel", |b| {
        b.iter(|| parallel.search(bases, threshold))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_comparator_paths,
    bench_streaming,
    bench_engine_shootout
);
criterion_main!(benches);
