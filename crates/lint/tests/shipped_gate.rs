//! The CI gate, as a test: every shipped module and stream must be
//! warn-clean, and the linter's independent logic-depth traversal must
//! agree with `sta::analyze` on every shipped module (the issue's
//! acceptance criterion).

use fabp_fpga::sta::{self, DelayModel};
use fabp_lint::{
    check_all, record_reports, render_json_reports, shipped_modules, LintConfig, RuleId, Severity,
};

#[test]
fn all_shipped_artifacts_pass_deny_warn() {
    for report in check_all(&LintConfig::default()) {
        assert!(
            report.passes(Severity::Warn),
            "{} fails --deny warn:\n{}",
            report.module,
            report.render_text()
        );
    }
}

#[test]
fn lint_depth_agrees_with_sta_on_every_shipped_module() {
    let config = LintConfig::default();
    for module in shipped_modules() {
        let netlist = module.build();
        let report = fabp_lint::check_module(module.name, &netlist, &config);
        // The cross-check ran (clean netlist) and found no mismatch.
        assert!(
            report.findings_for(RuleId::StaMismatch).is_empty(),
            "{}:\n{}",
            module.name,
            report.render_text()
        );
        let sta_levels = report
            .stats
            .sta_levels
            .unwrap_or_else(|| panic!("{}: cross-check did not run", module.name));
        assert_eq!(
            report.stats.logic_depth, sta_levels,
            "{}: lint depth vs sta levels",
            module.name
        );
        // And against a *fresh* STA run, independent of the report.
        let timing = sta::analyze(&netlist, &DelayModel::default());
        assert_eq!(
            timing.max_levels, report.stats.logic_depth,
            "{}",
            module.name
        );
    }
}

#[test]
fn full_run_json_summary_is_clean() {
    let reports = check_all(&LintConfig::default());
    let json = render_json_reports(&reports);
    assert!(json.contains("\"fabp_lint\":{\"schema\":1}"));
    assert!(json.contains("\"errors\":0"));
    assert!(json.contains("\"warnings\":0"));
    assert!(json.contains("\"clean\":true"));
    // Every shipped module appears by name.
    for module in shipped_modules() {
        assert!(
            json.contains(&format!("\"module\":\"{}\"", module.name)),
            "{} missing from JSON",
            module.name
        );
    }
}

#[test]
fn telemetry_counters_count_findings() {
    let registry = fabp_telemetry::Registry::new();
    let reports = check_all(&LintConfig::default());
    record_reports(&registry, &reports);
    let snapshot = registry.snapshot();
    let prom = snapshot.to_prometheus();
    assert!(
        prom.contains("fabp_lint_modules_total"),
        "missing module counter:\n{prom}"
    );
    let total_findings: usize = reports.iter().map(|r| r.findings.len()).sum();
    if total_findings > 0 {
        assert!(prom.contains("fabp_lint_findings_total"), "{prom}");
    }
}

#[test]
fn shipped_modules_have_sane_stats() {
    // Spot checks pinning the paper's structural claims through the
    // lint stats: the comparator is 2 LUTs / 2 levels; the pipelined
    // 750-bit Pop-Counter never exceeds 2 LUT levels between registers.
    let config = LintConfig::default();
    let by_name = |name: &str| {
        let module = fabp_lint::find_module(name).expect(name);
        fabp_lint::check_module(name, &module.build(), &config)
    };
    let cmp = by_name("comparator-cell");
    assert_eq!(cmp.stats.luts, 2);
    assert_eq!(cmp.stats.logic_depth, 2);

    let pipe = by_name("pop750-pipelined");
    assert!(pipe.stats.ffs > 0);
    assert!(
        pipe.stats.logic_depth <= 2,
        "pipelined depth {}",
        pipe.stats.logic_depth
    );

    let flat = by_name("pop750-handcrafted");
    assert!(flat.stats.logic_depth > pipe.stats.logic_depth);
}
