//! Property-based mutation testing: whatever structural mutilation we
//! apply to a clean netlist — cutting a wire, looping an edge back,
//! blanking a LUT, disconnecting a register — the linter must produce
//! at least one Error-level finding. This is the linter's own test
//! oracle: a mutation the DRC misses is a hole in the rule set.

use fabp_fpga::netlist::{Netlist, NodeId, NodeKind};
use fabp_fpga::pipeline::PipelinedPopCounter;
use fabp_fpga::popcount::{PopCounter, PopStyle};
use fabp_fpga::primitives::Lut6;
use fabp_lint::{check_netlist, LintConfig, Severity};
use proptest::prelude::*;

/// The mutation corpus donor: wide enough to have carries, LUT trees
/// and (for the pipelined variant) registers.
fn donor(pipelined: bool) -> Netlist {
    if pipelined {
        PipelinedPopCounter::build(50, PopStyle::HandCrafted)
            .netlist()
            .clone()
    } else {
        PopCounter::build(50, PopStyle::HandCrafted)
            .netlist()
            .clone()
    }
}

fn luts(n: &Netlist) -> Vec<NodeId> {
    n.node_ids()
        .filter(|&id| matches!(n.node_kind(id), NodeKind::Lut(..)))
        .collect()
}

fn regs(n: &Netlist) -> Vec<NodeId> {
    n.node_ids()
        .filter(|&id| matches!(n.node_kind(id), NodeKind::Reg { .. }))
        .collect()
}

fn has_error(n: &Netlist) -> bool {
    let report = check_netlist("mutated", n, &LintConfig::default());
    report
        .findings
        .iter()
        .any(|f| f.severity == Severity::Error)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cutting any LUT pin (rewiring it to the dangling sentinel) is
    /// always an Error.
    #[test]
    fn cut_wire_always_errors(
        pipelined in any::<bool>(),
        lut_pick in 0usize..1000,
        pin in 0usize..6,
    ) {
        let mut n = donor(pipelined);
        let luts = luts(&n);
        let lut = luts[lut_pick % luts.len()];
        n.rewire_lut_pin(lut, pin, NodeId::DANGLING);
        prop_assert!(has_error(&n));
    }

    /// Rewiring any LUT pin onto the LUT itself is always an Error
    /// (a one-node combinational cycle).
    #[test]
    fn self_loop_always_errors(
        pipelined in any::<bool>(),
        lut_pick in 0usize..1000,
        pin in 0usize..6,
    ) {
        let mut n = donor(pipelined);
        let luts = luts(&n);
        let lut = luts[lut_pick % luts.len()];
        n.rewire_lut_pin(lut, pin, lut);
        prop_assert!(has_error(&n));
    }

    /// Rewiring a LUT pin *forward* to any strictly later LUT closes a
    /// backward edge in the topological order. The result is an Error
    /// whenever the rewire creates a cycle; when it merely re-routes
    /// (the later node does not feed back), the netlist must still
    /// never silently pass with a broken STA cross-check.
    #[test]
    fn forward_rewire_never_panics_and_loops_error(
        pipelined in any::<bool>(),
        lut_pick in 0usize..1000,
        target_pick in 0usize..1000,
        pin in 0usize..6,
    ) {
        let mut n = donor(pipelined);
        let luts = luts(&n);
        let lut = luts[lut_pick % luts.len()];
        // Pick a target at or after the mutated LUT in creation order.
        let later: Vec<NodeId> = luts.iter().copied().filter(|&l| l >= lut).collect();
        let target = later[target_pick % later.len()];
        n.rewire_lut_pin(lut, pin, target);
        // The linter must terminate and classify; self/forward loops
        // are Errors, pure re-routes may be clean or warn.
        let report = check_netlist("rewired", &n, &LintConfig::default());
        if target == lut {
            prop_assert!(report.findings.iter().any(|f| f.severity == Severity::Error));
        }
        // Regardless of outcome the traversal terminated (no hang, no
        // panic) — reaching this line is the property.
        prop_assert!(report.stats.nodes > 0);
    }

    /// Blanking any LUT's truth table (all-0 or all-1 INIT) is always
    /// an Error.
    #[test]
    fn blank_lut_always_errors(
        pipelined in any::<bool>(),
        lut_pick in 0usize..1000,
        ones in any::<bool>(),
    ) {
        let mut n = donor(pipelined);
        let luts = luts(&n);
        let lut = luts[lut_pick % luts.len()];
        n.set_lut_table(lut, Lut6::from_init(if ones { u64::MAX } else { 0 }));
        prop_assert!(has_error(&n));
    }

    /// Disconnecting any register is always an Error.
    #[test]
    fn disconnect_reg_always_errors(reg_pick in 0usize..1000) {
        let mut n = donor(true);
        let regs = regs(&n);
        let reg = regs[reg_pick % regs.len()];
        n.disconnect_reg(reg);
        prop_assert!(has_error(&n));
    }
}
