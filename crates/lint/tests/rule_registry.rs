//! Registry integrity for the shared FABP rule namespace.
//!
//! Three invariants, checked mechanically so a new rule cannot land
//! half-wired: (1) every `RuleId` has a unique code and name, (2) every
//! code is documented in `docs/LINTING.md` or `docs/VERIFICATION.md`,
//! and (3) every rule is *emitted* — by a real checker trigger where
//! one exists in this crate, or by direct `Finding` construction for
//! the rules whose real triggers live elsewhere (the FABP-V family is
//! produced by live engine runs in `fabp-verify`'s `rule_coverage`
//! tests; FABP-N004/N013 and FABP-S001/S002 fire only on internally
//! inconsistent builds that a correct implementation cannot produce).

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;

use fabp_bio::seq::ProteinSeq;
use fabp_encoding::bitstream::PackedQuery;
use fabp_encoding::encoder::EncodedQuery;
use fabp_fpga::netlist::{Netlist, NodeId};
use fabp_fpga::primitives::Lut6;
use fabp_lint::{check_netlist, check_packed, Finding, LintConfig, Report, RuleId, Severity};

#[test]
fn rule_codes_and_names_are_unique_and_well_formed() {
    let mut codes = HashSet::new();
    let mut names = HashSet::new();
    for rule in RuleId::ALL {
        let code = rule.code();
        let name = rule.name();
        assert!(codes.insert(code), "duplicate rule code {code}");
        assert!(names.insert(name), "duplicate rule name {name}");
        assert!(
            code.starts_with("FABP-N") || code.starts_with("FABP-S") || code.starts_with("FABP-V"),
            "unexpected code family: {code}"
        );
        assert!(
            name.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
            "rule name not kebab-case: {name}"
        );
        // Display is the stable `CODE[name]` grep target used in logs.
        assert_eq!(rule.to_string(), format!("{code}[{name}]"));
    }
    assert_eq!(codes.len(), RuleId::ALL.len());
}

#[test]
fn every_rule_code_is_documented() {
    let docs_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../docs");
    let linting = std::fs::read_to_string(docs_dir.join("LINTING.md")).expect("docs/LINTING.md");
    let verification =
        std::fs::read_to_string(docs_dir.join("VERIFICATION.md")).expect("docs/VERIFICATION.md");
    for rule in RuleId::ALL {
        let code = rule.code();
        assert!(
            linting.contains(code) || verification.contains(code),
            "{code} ({}) is documented in neither docs/LINTING.md nor docs/VERIFICATION.md",
            rule.name()
        );
    }
}

/// A finding's rendered line must carry its code so `grep FABP-` over
/// CI logs finds every diagnostic.
#[test]
fn rendered_findings_carry_their_codes() {
    for rule in RuleId::ALL {
        let mut report = Report::new("registry");
        report
            .findings
            .push(Finding::new(rule, Some(0), "registry smoke finding"));
        let text = report.render_text();
        assert!(text.contains(rule.code()), "{text}");
        assert!(text.contains(rule.name()), "{text}");
        let json = report.to_json();
        assert!(json.contains(rule.code()), "{json}");
    }
}

/// Runs every real in-crate trigger and returns the set of rules that
/// fired, keyed by rule.
fn emitted_by_real_triggers() -> HashMap<RuleId, usize> {
    let cfg = LintConfig::default();
    let mut reports: Vec<Report> = Vec::new();

    // FABP-N001: a LUT pin wired back to itself.
    {
        let mut n = Netlist::new();
        let a = n.input();
        let l = n.lut_fn(&[a], |addr| addr & 1 == 1);
        n.mark_output("o", l);
        n.rewire_lut_pin(l, 0, l);
        reports.push(check_netlist("n001", &n, &cfg));
    }
    // FABP-N002: a live pin cut to a nonexistent node.
    {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let l = n.lut_fn(&[a, b], |addr| addr & 0b11 == 0b11);
        n.mark_output("o", l);
        n.rewire_lut_pin(l, 1, NodeId::DANGLING);
        reports.push(check_netlist("n002", &n, &cfg));
    }
    // FABP-N003: a state register never connected to a D input.
    {
        let mut n = Netlist::new();
        let q = n.reg_dangling();
        n.mark_output("q", q);
        reports.push(check_netlist("n003", &n, &cfg));
    }
    // FABP-N005: an identically-zero truth table (config-cell wipe).
    {
        let mut n = Netlist::new();
        let a = n.input();
        let l = n.lut_fn(&[a], |addr| addr & 1 == 1);
        n.mark_output("o", l);
        n.set_lut_table(l, Lut6::from_init(0));
        reports.push(check_netlist("n005", &n, &cfg));
    }
    // FABP-N006: OR(a, 1) — constant after projecting const pins.
    {
        let mut n = Netlist::new();
        let a = n.input();
        let one = n.constant(true);
        let zero = n.constant(false);
        let or = n.lut(
            Lut6::from_fn(|addr| addr & 0b11 != 0),
            [a, one, zero, zero, zero, zero],
        );
        n.mark_output("o", or);
        reports.push(check_netlist("n006", &n, &cfg));
    }
    // FABP-N007: a wired live pin the table ignores.
    {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let zero = n.constant(false);
        let l = n.lut(
            Lut6::from_fn(|addr| addr & 1 == 1),
            [a, b, zero, zero, zero, zero],
        );
        n.mark_output("o", l);
        reports.push(check_netlist("n007", &n, &cfg));
    }
    // FABP-N008 + N009 + N010: dead LUT (whose tie-off constant dies
    // with it) and an input outside every output cone.
    {
        let mut n = Netlist::new();
        let a = n.input();
        let _unused = n.input();
        let live = n.lut_fn(&[a], |addr| addr & 1 == 1);
        let _dead = n.lut_fn(&[a], |addr| addr & 1 == 0);
        n.mark_output("o", live);
        reports.push(check_netlist("n008-n010", &n, &cfg));
    }
    // FABP-N011: register fed by a constant.
    {
        let mut n = Netlist::new();
        let one = n.constant(true);
        let r = n.reg(one);
        n.mark_output("q", r);
        reports.push(check_netlist("n011", &n, &cfg));
    }
    // FABP-N012: fan-out beyond a deliberately tight limit.
    {
        let mut n = Netlist::new();
        let a = n.input();
        for i in 0..4 {
            let l = n.lut_fn(&[a], move |addr| (addr & 1 == 1) ^ (i % 2 == 0));
            n.mark_output(format!("o{i}"), l);
        }
        let tight = LintConfig {
            fanout_warn_limit: 2,
            ..LintConfig::default()
        };
        reports.push(check_netlist("n012", &n, &tight));
    }
    // FABP-S005: a Type I instruction with config bits set decodes to
    // nothing valid.
    {
        let query = EncodedQuery::from_protein(&"M".parse::<ProteinSeq>().expect("protein"));
        let packed = PackedQuery::from_query(&query);
        let mut words = packed.words().to_vec();
        words[0] |= 0b01;
        reports.push(check_packed(
            "s005",
            &PackedQuery::from_raw_parts(words, packed.len()),
        ));
    }
    // FABP-S004: stray bits after the last packed element.
    {
        let query = EncodedQuery::from_protein(&"MF".parse::<ProteinSeq>().expect("protein"));
        let packed = PackedQuery::from_query(&query);
        let mut words = packed.words().to_vec();
        words[0] |= 1u64 << 40;
        reports.push(check_packed(
            "s004",
            &PackedQuery::from_raw_parts(words, packed.len()),
        ));
    }
    // FABP-S003: word count inconsistent with the element length.
    {
        let query = EncodedQuery::from_protein(&"MF".parse::<ProteinSeq>().expect("protein"));
        let packed = PackedQuery::from_query(&query);
        let mut words = packed.words().to_vec();
        words.push(0);
        reports.push(check_packed(
            "s003",
            &PackedQuery::from_raw_parts(words, packed.len()),
        ));
    }

    let mut emitted = HashMap::new();
    for report in &reports {
        for finding in &report.findings {
            *emitted.entry(finding.rule).or_insert(0) += 1;
        }
    }
    emitted
}

/// Rules whose real triggers cannot be produced from this crate's
/// public API against a correct implementation. Each entry records
/// where the live emission (or the impossibility argument) lives.
fn externally_emitted() -> HashMap<RuleId, &'static str> {
    HashMap::from([
        (
            RuleId::MultiDriver,
            "requires corrupted register bookkeeping; netlist API prevents it",
        ),
        (
            RuleId::StaMismatch,
            "requires the depth DP and sta::analyze to disagree; both are correct",
        ),
        (
            RuleId::InstrRoundTrip,
            "requires a broken encoder; checked clean by check_instruction_set",
        ),
        (
            RuleId::ConfigTable,
            "requires a non-bijective code table; checked clean by check_instruction_set",
        ),
        (
            RuleId::EquivCounterexample,
            "live emission: fabp-verify tests/rule_coverage.rs::v001",
        ),
        (
            RuleId::ConeCounterexample,
            "live emission: fabp-verify tests/rule_coverage.rs::v002",
        ),
        (
            RuleId::EquivUnverified,
            "live emission: fabp-verify tests/rule_coverage.rs::v003",
        ),
        (
            RuleId::XResetStuck,
            "live emission: fabp-verify tests/rule_coverage.rs::v004_v005",
        ),
        (
            RuleId::XReachesOutput,
            "live emission: fabp-verify tests/rule_coverage.rs::v004_v005",
        ),
        (
            RuleId::ConfigShadowedWrite,
            "live emission: fabp-verify tests/rule_coverage.rs::v006_v007_v008",
        ),
        (
            RuleId::ConfigReadUnwritten,
            "live emission: fabp-verify tests/rule_coverage.rs::v006_v007_v008",
        ),
        (
            RuleId::ConfigScrubGap,
            "live emission: fabp-verify tests/rule_coverage.rs::v006_v007_v008",
        ),
    ])
}

#[test]
fn every_rule_is_emitted_or_accounted_for() {
    let emitted = emitted_by_real_triggers();
    let external = externally_emitted();
    for rule in RuleId::ALL {
        let fired = emitted.contains_key(&rule);
        let accounted = external.contains_key(&rule);
        assert!(
            fired || accounted,
            "{} is neither emitted by a trigger here nor registered as externally emitted",
            rule
        );
        assert!(
            !(fired && accounted),
            "{} fired locally but is registered as external-only; move it to the trigger list",
            rule
        );
    }
    assert!(
        emitted.len() >= 13,
        "expected at least 13 locally-triggered rules, got {}",
        emitted.len()
    );
}

#[test]
fn triggered_findings_use_their_default_severity() {
    // Rebuild one representative trigger per severity tier and check
    // the emitted severity matches the registry's default table.
    let cfg = LintConfig::default();

    let mut n = Netlist::new();
    let q = n.reg_dangling();
    n.mark_output("q", q);
    let report = check_netlist("err", &n, &cfg);
    let f = report.findings_for(RuleId::RegDangling);
    assert_eq!(f[0].severity, RuleId::RegDangling.default_severity());
    assert_eq!(f[0].severity, Severity::Error);

    let mut n = Netlist::new();
    let a = n.input();
    let b = n.input();
    let zero = n.constant(false);
    let l = n.lut(
        Lut6::from_fn(|addr| addr & 1 == 1),
        [a, b, zero, zero, zero, zero],
    );
    n.mark_output("o", l);
    let report = check_netlist("warn", &n, &cfg);
    let f = report.findings_for(RuleId::LutIgnoredInput);
    assert_eq!(f[0].severity, RuleId::LutIgnoredInput.default_severity());
    assert_eq!(f[0].severity, Severity::Warn);

    let mut n = Netlist::new();
    let one = n.constant(true);
    let r = n.reg(one);
    n.mark_output("q", r);
    let report = check_netlist("info", &n, &cfg);
    let f = report.findings_for(RuleId::RegConstDriver);
    assert_eq!(f[0].severity, RuleId::RegConstDriver.default_severity());
    assert_eq!(f[0].severity, Severity::Info);
}
