//! Seeded-defect acceptance tests (the issue's hard criterion): inject
//! one known defect into a known-clean shipped module and demand that
//! the linter reports **exactly** the expected rule-id Error — in the
//! findings, the text rendering, and the machine JSON.

use fabp_fpga::netlist::{Netlist, NodeId, NodeKind};
use fabp_fpga::primitives::Lut6;
use fabp_lint::{check_netlist, render_json_reports, LintConfig, Report, RuleId, Severity};

/// A clean donor module for defect injection: the 36-bit hand-crafted
/// Pop-Counter (LUTs, carries, constants — every node kind but FFs).
fn donor() -> Netlist {
    fabp_fpga::popcount::PopCounter::build(36, fabp_fpga::popcount::PopStyle::HandCrafted)
        .netlist()
        .clone()
}

/// A clean donor with registers: the pipelined 72-bit counter.
fn donor_with_regs() -> Netlist {
    fabp_fpga::pipeline::PipelinedPopCounter::build(72, fabp_fpga::popcount::PopStyle::HandCrafted)
        .netlist()
        .clone()
}

fn first_lut(n: &Netlist) -> NodeId {
    n.node_ids()
        .find(|&id| matches!(n.node_kind(id), NodeKind::Lut(..)))
        .expect("donor has LUTs")
}

fn first_reg(n: &Netlist) -> NodeId {
    n.node_ids()
        .find(|&id| matches!(n.node_kind(id), NodeKind::Reg { .. }))
        .expect("donor has registers")
}

/// Asserts the defect report carries exactly one Error, with the
/// expected rule, and that both renderers agree.
fn assert_single_error(report: &Report, rule: RuleId, node: NodeId) {
    let errors: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .collect();
    assert_eq!(
        errors.len(),
        1,
        "expected exactly one Error:\n{}",
        report.render_text()
    );
    assert_eq!(errors[0].rule, rule);
    assert_eq!(errors[0].node, Some(node.index()));

    // Text rendering names the rule id and node.
    let text = report.render_text();
    let tag = format!("error[{}] {} @n{}", rule.code(), rule.name(), node.index());
    assert!(text.contains(&tag), "missing {tag:?} in:\n{text}");

    // JSON rendering carries the same rule id at error severity.
    let json = render_json_reports(std::slice::from_ref(report));
    let expect = format!(
        "{{\"rule\":\"{}\",\"name\":\"{}\",\"severity\":\"error\",\"node\":{}",
        rule.code(),
        rule.name(),
        node.index()
    );
    assert!(json.contains(&expect), "missing {expect} in:\n{json}");
    assert!(json.contains("\"clean\":false"));
}

#[test]
fn donors_start_clean() {
    let cfg = LintConfig::default();
    for (name, n) in [("pop36", donor()), ("pipe72", donor_with_regs())] {
        let report = check_netlist(name, &n, &cfg);
        assert!(
            report.passes(Severity::Warn),
            "{name} is not warn-clean:\n{}",
            report.render_text()
        );
    }
}

#[test]
fn seeded_comb_loop_reports_fabp_n001() {
    let mut n = donor();
    let lut = first_lut(&n);
    // Wire the LUT's first pin back to its own output: a one-node
    // combinational cycle.
    n.rewire_lut_pin(lut, 0, lut);
    let report = check_netlist("seeded-loop", &n, &LintConfig::default());
    assert_single_error(&report, RuleId::CombLoop, lut);
    // The cross-check must not have run on a corrupt netlist.
    assert!(report.stats.sta_levels.is_none());
}

#[test]
fn seeded_dangling_register_reports_fabp_n003() {
    let mut n = donor_with_regs();
    let reg = first_reg(&n);
    n.disconnect_reg(reg);
    let report = check_netlist("seeded-dangling", &n, &LintConfig::default());
    assert_single_error(&report, RuleId::RegDangling, reg);
}

#[test]
fn seeded_constant_lut_reports_fabp_n005() {
    let mut n = donor();
    let lut = first_lut(&n);
    // Blank the truth table — the SEU that zeroes a LUT's config cells.
    n.set_lut_table(lut, Lut6::from_init(0));
    let report = check_netlist("seeded-const", &n, &LintConfig::default());
    assert_single_error(&report, RuleId::LutConst, lut);
}

#[test]
fn seeded_cut_wire_reports_fabp_n002() {
    let mut n = donor();
    let lut = first_lut(&n);
    n.rewire_lut_pin(lut, 2, NodeId::DANGLING);
    let report = check_netlist("seeded-cut", &n, &LintConfig::default());
    assert_single_error(&report, RuleId::FloatingPin, lut);
}

#[test]
fn seeded_defects_fail_the_default_gate() {
    let mut n = donor();
    let lut = first_lut(&n);
    n.rewire_lut_pin(lut, 0, lut);
    let report = check_netlist("gate", &n, &LintConfig::default());
    assert!(!report.passes(Severity::Error));
    assert!(!report.passes(Severity::Warn));
    assert_eq!(report.max_severity(), Some(Severity::Error));
}
