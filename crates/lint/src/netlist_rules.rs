//! Netlist rules: the hardware-DRC half of `fabp-lint`.
//!
//! [`check_netlist`] runs every structural analysis over a
//! [`Netlist`] and returns one [`Report`]:
//!
//! * **connectivity** — floating pins (`FABP-N002`), dangling register
//!   inputs (`FABP-N003`), register bookkeeping double-drives
//!   (`FABP-N004`);
//! * **combinational loops** — Tarjan SCC over the LUT/carry graph with
//!   registers as cut points (`FABP-N001`);
//! * **LUT content** — identically-constant truth tables (`FABP-N005`),
//!   cones that fold once constant pins are projected (`FABP-N006`),
//!   live pins with no influence (`FABP-N007`);
//! * **liveness** — logic outside every output cone (`FABP-N008`..`N010`),
//!   registers fed by constants (`FABP-N011`);
//! * **structure reports** — fan-out above a limit (`FABP-N012`) and an
//!   independent logic-depth traversal cross-checked against
//!   [`fabp_fpga::sta::analyze`] (`FABP-N013`).
//!
//! The pass must survive *structurally corrupt* netlists (that is its
//! job), so it only uses the panic-free introspection API
//! ([`Netlist::try_node_kind`], forward-only pin walks) and runs the STA
//! cross-check only when no Error-level defect was found — `sta::analyze`
//! itself assumes a well-formed netlist.

use crate::report::{Finding, ModuleStats, Report, RuleId, Severity};
use crate::LintConfig;
use fabp_fpga::netlist::{Netlist, NodeId, NodeKind};
use fabp_fpga::primitives::Lut6;
use fabp_fpga::sta::{self, DelayModel};

/// Runs every netlist rule over `netlist` and returns the report for
/// `module`.
pub fn check_netlist(module: &str, netlist: &Netlist, config: &LintConfig) -> Report {
    let mut report = Report::new(module);
    collect_stats(netlist, &mut report.stats);
    check_connectivity(netlist, &mut report.findings);
    check_register_table(netlist, &mut report.findings);
    check_comb_loops(netlist, &mut report.findings);
    check_lut_contents(netlist, &mut report.findings);
    check_liveness(netlist, &mut report.findings);
    check_fanout(netlist, config, &mut report);
    report.stats.logic_depth = logic_depth(netlist);
    if config.sta_cross_check && report.max_severity() < Some(Severity::Error) {
        // `sta::analyze` assumes a structurally sound netlist; skip the
        // cross-check when an Error already proves it is not.
        let timing = sta::analyze(netlist, &DelayModel::default());
        report.stats.sta_levels = Some(timing.max_levels);
        if timing.max_levels != report.stats.logic_depth {
            report.findings.push(Finding::new(
                RuleId::StaMismatch,
                None,
                format!(
                    "lint logic depth {} disagrees with sta::analyze max level count {}",
                    report.stats.logic_depth, timing.max_levels
                ),
            ));
        }
    }
    report
}

/// Fills the structural counters of [`ModuleStats`].
fn collect_stats(netlist: &Netlist, stats: &mut ModuleStats) {
    stats.nodes = netlist.node_count();
    for id in netlist.node_ids() {
        match netlist.node_kind(id) {
            NodeKind::Lut(..) => stats.luts += 1,
            NodeKind::Reg { .. } => stats.ffs += 1,
            NodeKind::Carry { .. } => stats.carries += 1,
            NodeKind::Input | NodeKind::Const(_) => {}
        }
    }
}

/// `true` when `pin` names an existing node of `netlist`.
fn pin_exists(netlist: &Netlist, pin: NodeId) -> bool {
    pin.index() < netlist.node_count()
}

/// Floating pins and dangling registers: every pin must reference an
/// existing node; a register's D pin left at [`NodeId::DANGLING`] is the
/// dedicated `reg-dangling` defect, any other out-of-range reference is a
/// cut wire.
fn check_connectivity(netlist: &Netlist, findings: &mut Vec<Finding>) {
    for id in netlist.node_ids() {
        match netlist.node_kind(id) {
            NodeKind::Input | NodeKind::Const(_) => {}
            NodeKind::Reg { d } => {
                if d.is_dangling() {
                    findings.push(Finding::new(
                        RuleId::RegDangling,
                        Some(id.index()),
                        "register created with reg_dangling() was never connect_reg()'d",
                    ));
                } else if !pin_exists(netlist, d) {
                    findings.push(Finding::new(
                        RuleId::FloatingPin,
                        Some(id.index()),
                        format!("register D pin references nonexistent node n{}", d.index()),
                    ));
                }
            }
            NodeKind::Lut(_, pins) => {
                for (k, pin) in pins.iter().enumerate() {
                    if !pin_exists(netlist, *pin) {
                        findings.push(Finding::new(
                            RuleId::FloatingPin,
                            Some(id.index()),
                            format!("LUT pin I{k} references nonexistent node (cut wire)"),
                        ));
                    }
                }
            }
            NodeKind::Carry { a, b, cin } => {
                for (name, pin) in [("a", a), ("b", b), ("cin", cin)] {
                    if !pin_exists(netlist, pin) {
                        findings.push(Finding::new(
                            RuleId::FloatingPin,
                            Some(id.index()),
                            format!("carry pin {name} references nonexistent node (cut wire)"),
                        ));
                    }
                }
            }
        }
    }
    for (name, id) in netlist.named_outputs() {
        if !pin_exists(netlist, id) {
            findings.push(Finding::new(
                RuleId::FloatingPin,
                None,
                format!(
                    "output {name:?} references nonexistent node n{}",
                    id.index()
                ),
            ));
        }
    }
}

/// Every net has exactly one driver by construction in this IR, so the
/// classic multi-driver DRC reduces to the flip-flop bookkeeping
/// invariant: the register state table must list every register node
/// exactly once and nothing else. A duplicated entry would clock one
/// net from two state slots — a double drive.
fn check_register_table(netlist: &Netlist, findings: &mut Vec<Finding>) {
    let table = netlist.register_state_nodes();
    let mut seen = vec![false; netlist.node_count()];
    for id in &table {
        if !pin_exists(netlist, *id) {
            findings.push(Finding::new(
                RuleId::MultiDriver,
                None,
                format!("register state table entry n{} does not exist", id.index()),
            ));
            continue;
        }
        if !matches!(netlist.node_kind(*id), NodeKind::Reg { .. }) {
            findings.push(Finding::new(
                RuleId::MultiDriver,
                Some(id.index()),
                "register state table entry is not a register node",
            ));
            continue;
        }
        if seen[id.index()] {
            findings.push(Finding::new(
                RuleId::MultiDriver,
                Some(id.index()),
                "register node is driven by two state table slots",
            ));
        }
        seen[id.index()] = true;
    }
    for id in netlist.node_ids() {
        if matches!(netlist.node_kind(id), NodeKind::Reg { .. }) && !seen[id.index()] {
            findings.push(Finding::new(
                RuleId::MultiDriver,
                Some(id.index()),
                "register node has no state table entry (undriven Q)",
            ));
        }
    }
}

/// Combinational loop detection: iterative Tarjan SCC over the graph
/// whose vertices are LUT/carry nodes and whose edges follow pins —
/// registers, inputs and constants are cut points and never appear.
/// Any SCC of size > 1, or a node feeding its own pin, is a loop.
fn check_comb_loops(netlist: &Netlist, findings: &mut Vec<Finding>) {
    let n = netlist.node_count();
    // Adjacency: comb edges u -> v for each combinational pin u of v.
    let mut succ: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut is_comb = vec![false; n];
    for id in netlist.node_ids() {
        let comb = matches!(
            netlist.node_kind(id),
            NodeKind::Lut(..) | NodeKind::Carry { .. }
        );
        is_comb[id.index()] = comb;
        if !comb {
            continue;
        }
        for pin in netlist.fanin(id) {
            if pin_exists(netlist, pin)
                && matches!(
                    netlist.try_node_kind(pin),
                    Some(NodeKind::Lut(..) | NodeKind::Carry { .. })
                )
            {
                succ[pin.index()].push(id.index() as u32);
            }
        }
    }

    // Iterative Tarjan. Netlists reach thousands of nodes; recursion
    // would not survive a pathological chain.
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    // Explicit DFS frames: (node, next successor position).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for start in 0..n {
        if !is_comb[start] || index[start] != UNVISITED {
            continue;
        }
        frames.push((start as u32, 0));
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start as u32);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let v_us = v as usize;
            if *pos < succ[v_us].len() {
                let w = succ[v_us][*pos] as usize;
                *pos += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w as u32);
                    on_stack[w] = true;
                    frames.push((w as u32, 0));
                } else if on_stack[w] {
                    lowlink[v_us] = lowlink[v_us].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    let p = parent as usize;
                    lowlink[p] = lowlink[p].min(lowlink[v_us]);
                }
                if lowlink[v_us] == index[v_us] {
                    // Root of an SCC: pop it off the Tarjan stack.
                    let mut component = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w as usize] = false;
                        component.push(w as usize);
                        if w as usize == v_us {
                            break;
                        }
                    }
                    let self_loop = component.len() == 1 && succ[v_us].contains(&(v_us as u32));
                    if component.len() > 1 || self_loop {
                        component.sort_unstable();
                        let list = component
                            .iter()
                            .map(|i| format!("n{i}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        findings.push(Finding::new(
                            RuleId::CombLoop,
                            Some(component[0]),
                            format!(
                                "combinational cycle through {} node(s): {list}",
                                component.len()
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// LUT content rules, reimplemented independently of
/// `Netlist::lut_folded` so the linter cross-checks the builder rather
/// than trusting it: identically-constant truth tables, cones that fold
/// under constant-pin projection, and live pins with no influence.
fn check_lut_contents(netlist: &Netlist, findings: &mut Vec<Finding>) {
    for id in netlist.node_ids() {
        let NodeKind::Lut(lut, pins) = netlist.node_kind(id) else {
            continue;
        };
        if pins.iter().any(|p| !pin_exists(netlist, *p)) {
            continue; // already a floating-pin Error; content is moot
        }
        if lut.init() == 0 || lut.init() == u64::MAX {
            findings.push(Finding::new(
                RuleId::LutConst,
                Some(id.index()),
                format!(
                    "LUT truth table is identically {} (INIT {:#018x})",
                    u8::from(lut.init() != 0),
                    lut.init()
                ),
            ));
            continue;
        }
        // Project constant pins: fixed address bits and free positions.
        let mut fixed_bits = 0u8;
        let mut free: Vec<usize> = Vec::new();
        for (bit, pin) in pins.iter().enumerate() {
            match netlist.try_node_kind(*pin) {
                Some(NodeKind::Const(v)) => fixed_bits |= (u8::from(v)) << bit,
                _ => free.push(bit),
            }
        }
        if let Some(v) = projected_constant(lut, fixed_bits, &free) {
            findings.push(Finding::new(
                RuleId::LutFoldable,
                Some(id.index()),
                format!(
                    "LUT output is constant {} once its {} constant pin(s) are projected",
                    u8::from(v),
                    6 - free.len()
                ),
            ));
            continue;
        }
        for (k, &bit) in free.iter().enumerate() {
            if !pin_influences(lut, fixed_bits, &free, k) {
                findings.push(Finding::new(
                    RuleId::LutIgnoredInput,
                    Some(id.index()),
                    format!("live pin I{bit} cannot influence the LUT output"),
                ));
            }
        }
    }
}

/// The constant the LUT produces over all free-pin assignments, if any.
fn projected_constant(lut: Lut6, fixed_bits: u8, free: &[usize]) -> Option<bool> {
    let mut value = None;
    for combo in 0u8..(1u8 << free.len()) {
        let out = lut.eval_addr(address(fixed_bits, free, combo));
        match value {
            None => value = Some(out),
            Some(v) if v != out => return None,
            Some(_) => {}
        }
    }
    value
}

/// Does free pin `k` ever change the output, over all assignments of the
/// other free pins?
fn pin_influences(lut: Lut6, fixed_bits: u8, free: &[usize], k: usize) -> bool {
    let others: Vec<usize> = free
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != k)
        .map(|(_, &b)| b)
        .collect();
    let pin_bit = free[k];
    for combo in 0u8..(1u8 << others.len()) {
        let base = address(fixed_bits, &others, combo);
        if lut.eval_addr(base) != lut.eval_addr(base | (1 << pin_bit)) {
            return true;
        }
    }
    false
}

/// Assembles a 6-bit LUT address from fixed bits plus a free-pin combo.
fn address(fixed_bits: u8, free: &[usize], combo: u8) -> u8 {
    let mut addr = fixed_bits;
    for (i, &bit) in free.iter().enumerate() {
        addr |= ((combo >> i) & 1) << bit;
    }
    addr
}

/// Liveness: walk the fan-in cones of every named output (crossing
/// registers through their D pins) and report what is never reached —
/// dead logic, unused inputs, unloaded constants — plus registers whose
/// D input is a constant (`reg-const-driver`).
fn check_liveness(netlist: &Netlist, findings: &mut Vec<Finding>) {
    // Register-const drivers are reported independently of liveness.
    for id in netlist.node_ids() {
        if let NodeKind::Reg { d } = netlist.node_kind(id) {
            if matches!(netlist.try_node_kind(d), Some(NodeKind::Const(_))) {
                findings.push(Finding::new(
                    RuleId::RegConstDriver,
                    Some(id.index()),
                    "register D input is a constant; the flip-flop is dead silicon",
                ));
            }
        }
    }

    let outputs = netlist.named_outputs();
    if outputs.is_empty() {
        // Nothing is observable; dead-logic reporting would flag the
        // whole netlist, which is noise for scratch netlists under
        // construction.
        return;
    }
    let mut reachable = vec![false; netlist.node_count()];
    let mut work: Vec<NodeId> = outputs
        .iter()
        .map(|(_, id)| *id)
        .filter(|id| pin_exists(netlist, *id))
        .collect();
    for id in &work {
        reachable[id.index()] = true;
    }
    while let Some(id) = work.pop() {
        for pin in netlist.fanin(id) {
            if pin_exists(netlist, pin) && !reachable[pin.index()] {
                reachable[pin.index()] = true;
                work.push(pin);
            }
        }
    }
    for id in netlist.node_ids() {
        if reachable[id.index()] {
            continue;
        }
        match netlist.node_kind(id) {
            NodeKind::Lut(..) | NodeKind::Carry { .. } | NodeKind::Reg { .. } => {
                findings.push(Finding::new(
                    RuleId::DeadNode,
                    Some(id.index()),
                    "node is outside every named output's fan-in cone",
                ));
            }
            NodeKind::Input => {
                findings.push(Finding::new(
                    RuleId::InputUnused,
                    Some(id.index()),
                    "input drives nothing reachable from a named output",
                ));
            }
            NodeKind::Const(_) => {
                findings.push(Finding::new(
                    RuleId::DeadConst,
                    Some(id.index()),
                    "constant driver has no reachable loads",
                ));
            }
        }
    }
}

/// Fan-out report: records the maximum fan-out of any non-constant net
/// and flags nets above the configured warning limit. Constants are
/// exempt — a tied-off rail legitimately fans out everywhere and costs
/// no routing.
fn check_fanout(netlist: &Netlist, config: &LintConfig, report: &mut Report) {
    let counts = netlist.fanout_counts();
    for id in netlist.node_ids() {
        if matches!(netlist.node_kind(id), NodeKind::Const(_)) {
            continue;
        }
        let fanout = counts[id.index()];
        report.stats.max_fanout = report.stats.max_fanout.max(fanout);
        if fanout > config.fanout_warn_limit {
            report.findings.push(Finding::new(
                RuleId::HighFanout,
                Some(id.index()),
                format!(
                    "net fans out to {fanout} pins (limit {})",
                    config.fanout_warn_limit
                ),
            ));
        }
    }
}

/// Independent logic-depth traversal: LUT levels from any startpoint
/// (input, constant or register Q) to any endpoint (register D pin or
/// named output). Carries propagate the level without adding one, and
/// registers restart at level 0 — exactly the level accounting of
/// `sta::analyze`, recomputed here from scratch so the two can be
/// compared. Only forward pin references are followed, so the traversal
/// terminates even on netlists with injected loops.
fn logic_depth(netlist: &Netlist) -> usize {
    let n = netlist.node_count();
    let mut level = vec![0usize; n];
    for id in netlist.node_ids() {
        let idx = id.index();
        // Level of a pin, counting only structurally sound forward refs.
        let pin_level = |pin: NodeId| -> usize {
            if pin.index() < idx {
                level[pin.index()]
            } else {
                0
            }
        };
        level[idx] = match netlist.node_kind(id) {
            NodeKind::Input | NodeKind::Const(_) | NodeKind::Reg { .. } => 0,
            NodeKind::Lut(_, pins) => pins.iter().map(|p| pin_level(*p)).max().unwrap_or(0) + 1,
            NodeKind::Carry { a, b, cin } => {
                [a, b, cin].into_iter().map(pin_level).max().unwrap_or(0)
            }
        };
    }
    let mut depth = 0usize;
    for id in netlist.node_ids() {
        if let NodeKind::Reg { d } = netlist.node_kind(id) {
            if pin_exists(netlist, d) {
                depth = depth.max(level[d.index()]);
            }
        }
    }
    for (_, id) in netlist.named_outputs() {
        if pin_exists(netlist, id) {
            depth = depth.max(level[id.index()]);
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_fpga::primitives::Lut6;

    fn cfg() -> LintConfig {
        LintConfig::default()
    }

    /// A small clean netlist: two inputs, XOR, register, output.
    fn clean_netlist() -> Netlist {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let x = n.lut_fn(&[a, b], |addr| (addr & 1) ^ ((addr >> 1) & 1) == 1);
        let r = n.reg(x);
        n.mark_output("q", r);
        n
    }

    #[test]
    fn clean_netlist_is_clean() {
        let report = check_netlist("clean", &clean_netlist(), &cfg());
        assert!(report.findings.is_empty(), "{}", report.render_text());
        assert_eq!(report.stats.logic_depth, 1);
        assert_eq!(report.stats.sta_levels, Some(1));
        assert_eq!(report.stats.luts, 1);
        assert_eq!(report.stats.ffs, 1);
    }

    #[test]
    fn self_loop_is_a_comb_loop() {
        let mut n = clean_netlist();
        // Find the LUT and wire a pin back to itself.
        let lut = n
            .node_ids()
            .find(|&id| matches!(n.node_kind(id), NodeKind::Lut(..)))
            .unwrap();
        n.rewire_lut_pin(lut, 0, lut);
        let report = check_netlist("loop", &n, &cfg());
        let loops = report.findings_for(RuleId::CombLoop);
        assert_eq!(loops.len(), 1, "{}", report.render_text());
        assert_eq!(loops[0].node, Some(lut.index()));
    }

    #[test]
    fn two_node_cycle_is_one_scc_finding() {
        let mut n = Netlist::new();
        let a = n.input();
        let l1 = n.lut_fn(&[a], |addr| addr & 1 == 1);
        let l2 = n.lut_fn(&[l1], |addr| addr & 1 == 1);
        n.mark_output("o", l2);
        // Close the cycle l1 <-> l2.
        n.rewire_lut_pin(l1, 0, l2);
        let report = check_netlist("cycle2", &n, &cfg());
        let loops = report.findings_for(RuleId::CombLoop);
        assert_eq!(loops.len(), 1, "{}", report.render_text());
        assert!(
            loops[0].message.contains("2 node(s)"),
            "{}",
            loops[0].message
        );
    }

    #[test]
    fn register_breaks_the_cycle() {
        // q = reg(lut(q)) is sequential feedback, not a comb loop.
        let mut n = Netlist::new();
        let q = n.reg_dangling();
        let d = n.lut_fn(&[q], |addr| addr & 1 == 0);
        n.connect_reg(q, d);
        n.mark_output("q", q);
        let report = check_netlist("tff", &n, &cfg());
        assert!(report.findings_for(RuleId::CombLoop).is_empty());
        assert!(report.findings_for(RuleId::RegDangling).is_empty());
    }

    #[test]
    fn dangling_register_is_flagged() {
        let mut n = clean_netlist();
        let r = n
            .node_ids()
            .find(|&id| matches!(n.node_kind(id), NodeKind::Reg { .. }))
            .unwrap();
        n.disconnect_reg(r);
        let report = check_netlist("dangling", &n, &cfg());
        let found = report.findings_for(RuleId::RegDangling);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].node, Some(r.index()));
    }

    #[test]
    fn cut_wire_is_a_floating_pin() {
        let mut n = clean_netlist();
        let lut = n
            .node_ids()
            .find(|&id| matches!(n.node_kind(id), NodeKind::Lut(..)))
            .unwrap();
        n.rewire_lut_pin(lut, 1, NodeId::DANGLING);
        let report = check_netlist("cut", &n, &cfg());
        assert_eq!(report.findings_for(RuleId::FloatingPin).len(), 1);
    }

    #[test]
    fn blank_lut_is_constant() {
        let mut n = clean_netlist();
        let lut = n
            .node_ids()
            .find(|&id| matches!(n.node_kind(id), NodeKind::Lut(..)))
            .unwrap();
        n.set_lut_table(lut, Lut6::from_init(0));
        let report = check_netlist("blank", &n, &cfg());
        assert_eq!(report.findings_for(RuleId::LutConst).len(), 1);
    }

    #[test]
    fn projected_constant_cone_is_foldable() {
        let mut n = Netlist::new();
        let a = n.input();
        let one = n.constant(true);
        // OR(a, 1) is constant 1 but not an identically-constant table.
        let zero = n.constant(false);
        let or = n.lut(
            Lut6::from_fn(|addr| addr & 0b11 != 0),
            [a, one, zero, zero, zero, zero],
        );
        n.mark_output("o", or);
        let report = check_netlist("fold", &n, &cfg());
        assert_eq!(report.findings_for(RuleId::LutFoldable).len(), 1);
        // The input feeding a foldable cone still "influences" nothing,
        // but we only report the stronger foldable finding.
        assert!(report.findings_for(RuleId::LutIgnoredInput).is_empty());
    }

    #[test]
    fn ignored_live_pin_is_flagged() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let zero = n.constant(false);
        // Output depends on a only; b is wired but ignored.
        let lut = n.lut(
            Lut6::from_fn(|addr| addr & 1 == 1),
            [a, b, zero, zero, zero, zero],
        );
        n.mark_output("o", lut);
        let report = check_netlist("ignored", &n, &cfg());
        let found = report.findings_for(RuleId::LutIgnoredInput);
        assert_eq!(found.len(), 1, "{}", report.render_text());
        assert!(found[0].message.contains("I1"));
    }

    #[test]
    fn dead_logic_and_unused_inputs_warn() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input(); // never used
        let live = n.lut_fn(&[a], |addr| addr & 1 == 1);
        let _dead = n.lut_fn(&[a], |addr| addr & 1 == 0);
        n.mark_output("o", live);
        let _ = b;
        let report = check_netlist("dead", &n, &cfg());
        assert_eq!(report.findings_for(RuleId::DeadNode).len(), 1);
        assert_eq!(report.findings_for(RuleId::InputUnused).len(), 1);
        // lut_fn ties unused pins to a fresh constant each call; the dead
        // LUT's tie-off constant is dead too.
        assert!(!report.findings_for(RuleId::DeadConst).is_empty());
    }

    #[test]
    fn reg_const_driver_is_info() {
        let mut n = Netlist::new();
        let one = n.constant(true);
        let r = n.reg(one);
        n.mark_output("q", r);
        let report = check_netlist("regconst", &n, &cfg());
        assert_eq!(report.findings_for(RuleId::RegConstDriver).len(), 1);
        assert_eq!(report.max_severity(), Some(Severity::Info));
    }

    #[test]
    fn high_fanout_respects_config() {
        let mut n = Netlist::new();
        let a = n.input();
        let mut last = a;
        for i in 0..5 {
            last = n.lut_fn(&[a, last], |addr| addr.count_ones() % 2 == 1);
            n.mark_output(format!("o{i}"), last);
        }
        let tight = LintConfig {
            fanout_warn_limit: 3,
            ..LintConfig::default()
        };
        let report = check_netlist("fanout", &n, &tight);
        assert_eq!(report.findings_for(RuleId::HighFanout).len(), 1);
        assert!(report.stats.max_fanout > 3);
        let loose = check_netlist("fanout", &n, &cfg());
        assert!(loose.findings_for(RuleId::HighFanout).is_empty());
    }

    #[test]
    fn depth_matches_sta_on_carry_chains() {
        let mut n = Netlist::new();
        let a = n.inputs(8);
        let b = n.inputs(8);
        let sum = fabp_fpga::popcount::add_vectors(&mut n, &a, &b);
        for (i, &s) in sum.iter().enumerate() {
            n.mark_output(format!("s{i}"), s);
        }
        let report = check_netlist("adder", &n, &cfg());
        assert!(
            report.findings_for(RuleId::StaMismatch).is_empty(),
            "{}",
            report.render_text()
        );
        assert_eq!(report.stats.sta_levels, Some(report.stats.logic_depth));
    }

    #[test]
    fn sta_cross_check_skipped_on_corrupt_netlists() {
        let mut n = clean_netlist();
        let lut = n
            .node_ids()
            .find(|&id| matches!(n.node_kind(id), NodeKind::Lut(..)))
            .unwrap();
        n.rewire_lut_pin(lut, 0, NodeId::DANGLING);
        let report = check_netlist("corrupt", &n, &cfg());
        assert!(report.stats.sta_levels.is_none());
        assert!(!report.findings_for(RuleId::FloatingPin).is_empty());
    }
}
