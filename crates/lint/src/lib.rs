//! # fabp-lint — hardware DRC for the software model
//!
//! Static analysis over the two artifact families this repository
//! deploys: gate-level [`fabp_fpga::netlist::Netlist`]s and the 6-bit
//! FabP instruction streams of `fabp-encoding`. The design rules mirror
//! what an FPGA toolchain's DRC/synthesis warnings would catch on the
//! real Kintex-7 bitstream — combinational loops, floating nets,
//! never-connected registers, constant cones a synthesizer would sweep,
//! dead logic, pathological fan-out — plus stream-side validation of
//! the instruction format and packed DRAM images.
//!
//! Findings carry stable rule ids (`FABP-N001`..`N013`,
//! `FABP-S001`..`S005`; see `docs/LINTING.md`), a severity, and the
//! offending node, and render as human text or machine JSON. The
//! `fabp_lint` binary runs every shipped module generator through
//! [`check_all`] and gates CI with `--all-modules --deny warn`.
//!
//! The diagnostics model is shared with `fabp-verify`, which adds the
//! functional-equivalence rule family (`FABP-V001`..`V008`; see
//! `docs/VERIFICATION.md`) on top of this crate's [`RuleId`] registry.
//!
//! ```
//! use fabp_fpga::netlist::Netlist;
//!
//! let mut n = Netlist::new();
//! let a = n.input();
//! let inv = n.lut_fn(&[a], |addr| addr & 1 == 0);
//! n.mark_output("y", inv);
//! let report = fabp_lint::check(&n);
//! assert!(report.findings.is_empty(), "{}", report.render_text());
//! assert_eq!(report.stats.logic_depth, 1);
//! ```

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod modules;
pub mod netlist_rules;
pub mod report;
pub mod stream_rules;

pub use modules::{find_module, shipped_modules, shipped_streams, ShippedModule};
pub use netlist_rules::check_netlist;
pub use report::{
    record_reports, record_reports_as, render_json_reports, render_json_reports_as, Finding,
    ModuleStats, Report, RuleId, Severity,
};
pub use stream_rules::{check_instruction_set, check_packed};

use fabp_fpga::netlist::Netlist;

/// Tunable knobs of the netlist analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintConfig {
    /// Fan-out above which `high-fanout` (FABP-N012) warns. The default
    /// is generous: on 7-series fabric a net fanning out past ~64 loads
    /// needs replication to close 200 MHz.
    pub fanout_warn_limit: usize,
    /// Cross-check the linter's logic-depth traversal against
    /// [`fabp_fpga::sta::analyze`] (FABP-N013). Skipped automatically
    /// when Error-level structural defects are present.
    pub sta_cross_check: bool,
}

impl Default for LintConfig {
    fn default() -> LintConfig {
        LintConfig {
            fanout_warn_limit: 64,
            sta_cross_check: true,
        }
    }
}

/// Lints a netlist under the default configuration.
pub fn check(netlist: &Netlist) -> Report {
    check_netlist("netlist", netlist, &LintConfig::default())
}

/// Lints a named netlist under `config`.
pub fn check_module(name: &str, netlist: &Netlist, config: &LintConfig) -> Report {
    check_netlist(name, netlist, config)
}

/// Lints everything the repository ships: every module generator of
/// [`shipped_modules`], the instruction-format audit, and every packed
/// stream of [`shipped_streams`]. This is the corpus behind the
/// `fabp_lint --all-modules` CI gate.
pub fn check_all(config: &LintConfig) -> Vec<Report> {
    let mut reports: Vec<Report> = shipped_modules()
        .iter()
        .map(|m| check_netlist(m.name, &m.build(), config))
        .collect();
    reports.push(check_instruction_set());
    for (name, packed) in shipped_streams() {
        reports.push(check_packed(&name, &packed));
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_all_covers_modules_and_streams() {
        let reports = check_all(&LintConfig::default());
        // modules + instruction-set + packed streams
        assert_eq!(
            reports.len(),
            shipped_modules().len() + 1 + shipped_streams().len()
        );
        let names: Vec<&str> = reports.iter().map(|r| r.module.as_str()).collect();
        assert!(names.contains(&"instruction-set"));
        assert!(names.contains(&"pop750-pipelined"));
        assert!(names.contains(&"packed-mfsrw"));
    }
}
