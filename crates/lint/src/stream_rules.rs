//! Instruction-stream rules: the bitstream-validation half of
//! `fabp-lint`.
//!
//! Hardware DRC does not stop at the netlist: a FabP deployment also
//! ships a 6-bit instruction *stream* (§III-B) and its densely packed
//! DRAM image. [`check_instruction_set`] audits the instruction format
//! itself — every decodable pattern must re-encode to the same bits,
//! every encoder-producible element must survive the round trip, and the
//! `ConfigSelect` mux table must be a self-consistent bijection with the
//! taps the comparator hardware actually wires (`FABP-S001`/`S002`).
//! [`check_packed`] audits one packed stream: word-count bounds,
//! zeroed trailing bits, and per-instruction decodability
//! (`FABP-S003`..`S005`).

use crate::report::{Finding, Report, RuleId};
use fabp_bio::alphabet::Nucleotide;
use fabp_bio::backtranslate::{DependentFn, MatchCondition, PatternElement};
use fabp_encoding::bitstream::PackedQuery;
use fabp_encoding::instruction::{ConfigSelect, Instruction};

/// Every pattern element the encoder can produce (4 exact nucleotides,
/// 4 match conditions, 4 dependent functions — 12 in total).
pub fn encodable_elements() -> Vec<PatternElement> {
    let mut v = Vec::with_capacity(12);
    v.extend(Nucleotide::ALL.into_iter().map(PatternElement::Exact));
    v.extend(
        MatchCondition::ALL
            .into_iter()
            .map(PatternElement::Conditional),
    );
    v.extend(DependentFn::ALL.into_iter().map(PatternElement::Dependent));
    v
}

/// Audits the 6-bit instruction format and the `ConfigSelect` table.
///
/// The report's `stats.nodes` counts the 64 bit patterns examined.
pub fn check_instruction_set() -> Report {
    let mut report = Report::new("instruction-set");
    report.stats.nodes = 64;

    // Decode/encode closure: any pattern the decoder accepts must
    // re-encode to exactly the same bits, otherwise two different DRAM
    // images would program the same comparator.
    for bits in 0u8..64 {
        let instr = Instruction::from_bits(bits);
        if let Ok(element) = instr.decode() {
            let back = Instruction::encode(element);
            if back != instr {
                report.findings.push(Finding::new(
                    RuleId::InstrRoundTrip,
                    Some(bits as usize),
                    format!("pattern {instr} decodes to {element} but re-encodes as {back}"),
                ));
            }
        }
    }

    // Encoder coverage: all 12 producible elements must round-trip.
    for element in encodable_elements() {
        let instr = Instruction::encode(element);
        match instr.decode() {
            Ok(decoded) if decoded == element => {}
            Ok(decoded) => report.findings.push(Finding::new(
                RuleId::InstrRoundTrip,
                Some(instr.bits() as usize),
                format!("{element} encodes to {instr} which decodes to {decoded}"),
            )),
            Err(e) => report.findings.push(Finding::new(
                RuleId::InstrRoundTrip,
                Some(instr.bits() as usize),
                format!("{element} encodes to an undecodable pattern: {e}"),
            )),
        }
    }

    check_config_table(&mut report);
    report
}

/// The `ConfigSelect` table: 2-bit codes must be a bijection, every
/// dependent function must map to the mux tap its hardware source
/// requires, and the mux semantics must read the documented bit.
fn check_config_table(report: &mut Report) {
    // Code bijection.
    let mut seen = [false; 4];
    for cs in ConfigSelect::ALL {
        let code = cs.code2();
        if code > 0b11 {
            report.findings.push(Finding::new(
                RuleId::ConfigTable,
                Some(code as usize),
                format!("{cs:?} has a code outside 2 bits: {code:#04b}"),
            ));
            continue;
        }
        if seen[code as usize] {
            report.findings.push(Finding::new(
                RuleId::ConfigTable,
                Some(code as usize),
                format!("config code {code:#04b} is claimed by two selects"),
            ));
        }
        seen[code as usize] = true;
        if ConfigSelect::from_code2(code) != cs {
            report.findings.push(Finding::new(
                RuleId::ConfigTable,
                Some(code as usize),
                format!("from_code2(code2({cs:?})) is not the identity"),
            ));
        }
    }

    // Function-to-tap mapping: the select chosen for each dependent
    // function must read exactly the (distance, bit) its source tap
    // names — Stop taps Ref^{i-1}[1], Leu Ref^{i-2}[1], Arg Ref^{i-2}[0].
    for func in DependentFn::ALL {
        let cs = ConfigSelect::for_function(func);
        let expected = match func.source_tap() {
            None => ConfigSelect::QueryBit,
            Some((1, 1)) => ConfigSelect::RefPrev1Msb,
            Some((2, 0)) => ConfigSelect::RefPrev2Lsb,
            Some((2, 1)) => ConfigSelect::RefPrev2Msb,
            Some(other) => {
                report.findings.push(Finding::new(
                    RuleId::ConfigTable,
                    None,
                    format!("{func:?} taps {other:?}: no comparator mux input exists for it"),
                ));
                continue;
            }
        };
        if cs != expected {
            report.findings.push(Finding::new(
                RuleId::ConfigTable,
                Some(cs.code2() as usize),
                format!("{func:?} selects {cs:?} but its source tap requires {expected:?}"),
            ));
        }
    }

    // Mux semantics: each select must return the documented bit for
    // every context combination, and read 0 when the context is absent
    // (hardware shift registers reset to zero).
    let contexts: Vec<Option<Nucleotide>> = std::iter::once(None)
        .chain(Nucleotide::ALL.into_iter().map(Some))
        .collect();
    for &prev1 in &contexts {
        for &prev2 in &contexts {
            for q3 in [false, true] {
                let bit =
                    |n: Option<Nucleotide>, b: u8| n.is_some_and(|n| (n.code2() >> b) & 1 == 1);
                let cases = [
                    (ConfigSelect::QueryBit, q3),
                    (ConfigSelect::RefPrev1Msb, bit(prev1, 1)),
                    (ConfigSelect::RefPrev2Lsb, bit(prev2, 0)),
                    (ConfigSelect::RefPrev2Msb, bit(prev2, 1)),
                ];
                for (cs, expected) in cases {
                    if cs.select(q3, prev1, prev2) != expected {
                        report.findings.push(Finding::new(
                            RuleId::ConfigTable,
                            Some(cs.code2() as usize),
                            format!(
                                "{cs:?}.select(q3={q3}, prev1={prev1:?}, prev2={prev2:?}) \
                                 returned the wrong bit"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Audits one packed instruction stream under the name `stream`.
///
/// The report's `stats.nodes` counts the packed instructions; findings
/// carry the instruction index as their node id.
pub fn check_packed(stream: &str, packed: &PackedQuery) -> Report {
    let mut report = Report::new(stream);
    report.stats.nodes = packed.len();

    // Word-count bound: exactly ceil(len * 6 / 64) words, no more, no
    // fewer — an over-allocated image wastes DRAM bandwidth, an
    // under-allocated one reads out of bounds on the device.
    let used_bits = packed.len() * PackedQuery::BITS_PER_INSTRUCTION;
    let expected_words = used_bits.div_ceil(64);
    if packed.words().len() != expected_words {
        report.findings.push(Finding::new(
            RuleId::PackedBounds,
            None,
            format!(
                "{} instructions need {expected_words} word(s) but the stream holds {}",
                packed.len(),
                packed.words().len()
            ),
        ));
        return report; // bit-level checks would index out of bounds
    }

    // Trailing bits: everything beyond the last instruction must be
    // zero, or the device's tail-masking assumptions are violated.
    let mut trailing_set = false;
    for (w, &word) in packed.words().iter().enumerate() {
        let word_base = w * 64;
        let live = used_bits.saturating_sub(word_base).min(64);
        let mask = if live >= 64 {
            u64::MAX
        } else {
            (1u64 << live) - 1
        };
        if word & !mask != 0 {
            trailing_set = true;
        }
    }
    if trailing_set {
        report.findings.push(Finding::new(
            RuleId::PackedTrailing,
            None,
            format!("bits beyond instruction {} are not zero", packed.len()),
        ));
    }

    // Per-instruction decode, then the whole-stream round trip.
    let mut decodable = true;
    for i in 0..packed.len() {
        let instr = Instruction::from_bits(packed.bits_at(i));
        if let Err(e) = instr.decode() {
            decodable = false;
            report.findings.push(Finding::new(
                RuleId::PackedDecode,
                Some(i),
                format!("packed instruction does not decode: {e}"),
            ));
        }
    }
    if decodable {
        match packed.unpack() {
            Ok(query) => {
                if &PackedQuery::from_query(&query) != packed {
                    report.findings.push(Finding::new(
                        RuleId::PackedDecode,
                        None,
                        "unpack → repack does not reproduce the stream bit-for-bit",
                    ));
                }
            }
            Err(e) => report.findings.push(Finding::new(
                RuleId::PackedDecode,
                None,
                format!("stream-level unpack failed: {e}"),
            )),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::seq::ProteinSeq;
    use fabp_encoding::encoder::EncodedQuery;

    fn packed_for(protein: &str) -> PackedQuery {
        let protein: ProteinSeq = protein.parse().unwrap();
        PackedQuery::from_query(&EncodedQuery::from_protein(&protein))
    }

    #[test]
    fn instruction_set_is_clean() {
        let report = check_instruction_set();
        assert!(report.findings.is_empty(), "{}", report.render_text());
        assert_eq!(report.stats.nodes, 64);
    }

    #[test]
    fn twelve_elements_are_encodable() {
        assert_eq!(encodable_elements().len(), 12);
    }

    #[test]
    fn well_formed_streams_are_clean() {
        for protein in ["M", "MF", "MFSRW", "MAGICLYWHVRKNDE"] {
            let packed = packed_for(protein);
            let report = check_packed(protein, &packed);
            assert!(
                report.findings.is_empty(),
                "{protein}: {}",
                report.render_text()
            );
            assert_eq!(report.stats.nodes, packed.len());
        }
    }

    #[test]
    fn corrupt_instruction_is_a_decode_error() {
        // Setting a Type I instruction's config bits makes it invalid.
        let query = EncodedQuery::from_protein(&"M".parse::<ProteinSeq>().unwrap());
        let packed = PackedQuery::from_query(&query);
        let mut words = packed.words().to_vec();
        words[0] |= 0b01;
        let corrupted = PackedQuery::from_raw_parts(words, packed.len());
        let report = check_packed("corrupt", &corrupted);
        let found = report.findings_for(RuleId::PackedDecode);
        assert!(!found.is_empty(), "{}", report.render_text());
        assert_eq!(found[0].node, Some(0));
    }

    #[test]
    fn trailing_bits_are_flagged() {
        let query = EncodedQuery::from_protein(&"MF".parse::<ProteinSeq>().unwrap());
        let packed = PackedQuery::from_query(&query);
        // 6 instructions × 6 bits = 36 used bits; set bit 40.
        let mut words = packed.words().to_vec();
        words[0] |= 1u64 << 40;
        let corrupted = PackedQuery::from_raw_parts(words, packed.len());
        let report = check_packed("trailing", &corrupted);
        assert_eq!(report.findings_for(RuleId::PackedTrailing).len(), 1);
    }

    #[test]
    fn word_count_mismatch_is_bounds_error() {
        let query = EncodedQuery::from_protein(&"MF".parse::<ProteinSeq>().unwrap());
        let packed = PackedQuery::from_query(&query);
        let mut words = packed.words().to_vec();
        words.push(0); // over-allocated image
        let corrupted = PackedQuery::from_raw_parts(words, packed.len());
        let report = check_packed("bounds", &corrupted);
        assert_eq!(report.findings_for(RuleId::PackedBounds).len(), 1);
    }
}
