//! Registry of every shipped module generator — the corpus
//! `fabp_lint --all-modules` (and the CI gate) runs over.
//!
//! Each entry rebuilds a netlist the repository actually deploys: the
//! two-LUT comparator cell, flat and pipelined Pop-Counters in both
//! styles and at the paper's deployment widths (36/150/750, §III-D),
//! and full alignment instances including Type III dependent-function
//! queries. The packed-stream corpus mirrors the same queries at the
//! DRAM wire format.

use fabp_bio::seq::ProteinSeq;
use fabp_encoding::bitstream::PackedQuery;
use fabp_encoding::encoder::EncodedQuery;
use fabp_fpga::comparator::build_comparator_netlist;
use fabp_fpga::instance::AlignmentInstance;
use fabp_fpga::netlist::Netlist;
use fabp_fpga::pipeline::PipelinedPopCounter;
use fabp_fpga::popcount::{PopCounter, PopStyle};

/// One shipped netlist generator, identified by a stable name.
#[derive(Clone, Copy)]
pub struct ShippedModule {
    /// Stable module name (CLI `--module` argument, report header).
    pub name: &'static str,
    /// Rebuilds the module's netlist.
    builder: fn() -> Netlist,
}

impl ShippedModule {
    /// Rebuilds the netlist.
    pub fn build(&self) -> Netlist {
        (self.builder)()
    }
}

impl std::fmt::Debug for ShippedModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShippedModule")
            .field("name", &self.name)
            .finish()
    }
}

/// Parses a protein the registry itself ships; the sequences are
/// compile-time constants, so failure is a registry bug.
fn protein(aa: &str) -> ProteinSeq {
    aa.parse()
        .unwrap_or_else(|e| panic!("registry protein {aa:?} must parse: {e}"))
}

fn alignment_netlist(aa: &str, threshold: u32) -> Netlist {
    let query = EncodedQuery::from_protein(&protein(aa));
    AlignmentInstance::build(&query, threshold)
        .netlist()
        .clone()
}

/// Every shipped module generator, in deterministic order.
pub fn shipped_modules() -> Vec<ShippedModule> {
    vec![
        ShippedModule {
            name: "comparator-cell",
            builder: || build_comparator_netlist().0,
        },
        ShippedModule {
            name: "pop36-handcrafted",
            builder: || {
                PopCounter::build(36, PopStyle::HandCrafted)
                    .netlist()
                    .clone()
            },
        },
        ShippedModule {
            name: "pop150-handcrafted",
            builder: || {
                PopCounter::build(150, PopStyle::HandCrafted)
                    .netlist()
                    .clone()
            },
        },
        ShippedModule {
            name: "pop150-tree",
            builder: || {
                PopCounter::build(150, PopStyle::TreeAdder)
                    .netlist()
                    .clone()
            },
        },
        ShippedModule {
            name: "pop750-handcrafted",
            builder: || {
                PopCounter::build(750, PopStyle::HandCrafted)
                    .netlist()
                    .clone()
            },
        },
        ShippedModule {
            name: "pop750-pipelined",
            builder: || {
                PipelinedPopCounter::build(750, PopStyle::HandCrafted)
                    .netlist()
                    .clone()
            },
        },
        ShippedModule {
            name: "pop72-pipelined-tree",
            builder: || {
                PipelinedPopCounter::build(72, PopStyle::TreeAdder)
                    .netlist()
                    .clone()
            },
        },
        ShippedModule {
            // 5 aa = 15 elements; R (Arg) exercises a Type III
            // dependent-function comparator.
            name: "align-mfsrw-t10",
            builder: || alignment_netlist("MFSRW", 10),
        },
        ShippedModule {
            // 15 aa = 45 elements -> two Pop36 blocks; L (Leu) and R
            // (Arg) both use Type III taps.
            name: "align-15aa-t30",
            builder: || alignment_netlist("MAGICLYWHVRKNDE", 30),
        },
    ]
}

/// Looks a module up by name.
pub fn find_module(name: &str) -> Option<ShippedModule> {
    shipped_modules().into_iter().find(|m| m.name == name)
}

/// The packed instruction streams shipped alongside the netlists.
pub fn shipped_streams() -> Vec<(String, PackedQuery)> {
    ["M", "MFSRW", "MAGICLYWHVRKNDE"]
        .into_iter()
        .map(|aa| {
            let query = EncodedQuery::from_protein(&protein(aa));
            (
                format!("packed-{}", aa.to_lowercase()),
                PackedQuery::from_query(&query),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_names_are_unique() {
        let mut names: Vec<&str> = shipped_modules().iter().map(|m| m.name).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn every_module_builds() {
        for module in shipped_modules() {
            let netlist = module.build();
            assert!(netlist.node_count() > 0, "{} is empty", module.name);
        }
    }

    #[test]
    fn find_module_round_trips() {
        assert!(find_module("pop36-handcrafted").is_some());
        assert!(find_module("no-such-module").is_none());
    }

    #[test]
    fn streams_are_non_empty() {
        let streams = shipped_streams();
        assert_eq!(streams.len(), 3);
        for (name, packed) in streams {
            assert!(!packed.is_empty(), "{name}");
        }
    }
}
