//! Diagnostics model: rule ids, severities, findings, per-module reports,
//! and the human/machine renderers.
//!
//! Every finding carries a stable rule id (`FABP-Nxxx` for netlist rules,
//! `FABP-Sxxx` for instruction-stream rules), a severity, the module it
//! was found in and — where meaningful — the offending node id, so CI can
//! gate on severity and tooling can consume the JSON form without parsing
//! prose. The JSON schema is documented in `docs/LINTING.md` and covered
//! by unit tests.

use std::fmt;

/// How bad a finding is. Ordered: `Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Observation only; never fails a gate by default.
    Info,
    /// Suspicious structure a synthesizer would warn about.
    Warn,
    /// Structural defect: the netlist or stream is wrong.
    Error,
}

impl Severity {
    /// Lower-case label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parses a severity label (`info` / `warn` / `error`).
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warn" | "warning" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Stable identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// `FABP-N001`: combinational cycle through LUT/carry logic.
    CombLoop,
    /// `FABP-N002`: a pin references a nonexistent node (cut wire).
    FloatingPin,
    /// `FABP-N003`: `reg_dangling()` register never `connect_reg`'d.
    RegDangling,
    /// `FABP-N004`: register state bookkeeping names a net twice / wrongly.
    MultiDriver,
    /// `FABP-N005`: LUT truth table is identically constant.
    LutConst,
    /// `FABP-N006`: LUT output constant once constant pins are projected.
    LutFoldable,
    /// `FABP-N007`: live pin that cannot influence the LUT output.
    LutIgnoredInput,
    /// `FABP-N008`: LUT/carry/register outside every output's fan-in cone.
    DeadNode,
    /// `FABP-N009`: input pin driving nothing reachable.
    InputUnused,
    /// `FABP-N010`: constant driver with no loads.
    DeadConst,
    /// `FABP-N011`: register whose D input is a constant.
    RegConstDriver,
    /// `FABP-N012`: net fan-out above the configured limit.
    HighFanout,
    /// `FABP-N013`: lint logic depth disagrees with `sta::analyze`.
    StaMismatch,
    /// `FABP-S001`: instruction encode/decode round-trip violation.
    InstrRoundTrip,
    /// `FABP-S002`: `ConfigSelect` table malformed.
    ConfigTable,
    /// `FABP-S003`: packed stream word count inconsistent with length.
    PackedBounds,
    /// `FABP-S004`: nonzero bits after the end of a packed stream.
    PackedTrailing,
    /// `FABP-S005`: packed stream holds an undecodable instruction.
    PackedDecode,
    /// `FABP-V001`: symbolic simulation found an input vector on which
    /// the netlist output disagrees with the golden software oracle.
    EquivCounterexample,
    /// `FABP-V002`: exhaustive input-cone enumeration found a
    /// disagreement with the golden oracle inside one output cone.
    ConeCounterexample,
    /// `FABP-V003`: part of the netlist could not be exhaustively
    /// proven (cone wider than the bound, or structure too broken to
    /// simulate) — coverage gap, not a defect.
    EquivUnverified,
    /// `FABP-V004`: a register never reaches a defined (non-X) value
    /// within the analysis window from power-on.
    XResetStuck,
    /// `FABP-V005`: an X (unknown power-on state) reaches a named
    /// output at the end of the analysis window.
    XReachesOutput,
    /// `FABP-V006`: a config write is shadowed by a later write to the
    /// same LUT bank with no intervening read.
    ConfigShadowedWrite,
    /// `FABP-V007`: the instruction stream reads a LUT bank no write
    /// ever initialised.
    ConfigReadUnwritten,
    /// `FABP-V008`: a config live range exceeds the scrub interval
    /// without a covering scrub pass.
    ConfigScrubGap,
}

impl RuleId {
    /// All rules, in code order (documentation and coverage tests).
    pub const ALL: [RuleId; 26] = [
        RuleId::CombLoop,
        RuleId::FloatingPin,
        RuleId::RegDangling,
        RuleId::MultiDriver,
        RuleId::LutConst,
        RuleId::LutFoldable,
        RuleId::LutIgnoredInput,
        RuleId::DeadNode,
        RuleId::InputUnused,
        RuleId::DeadConst,
        RuleId::RegConstDriver,
        RuleId::HighFanout,
        RuleId::StaMismatch,
        RuleId::InstrRoundTrip,
        RuleId::ConfigTable,
        RuleId::PackedBounds,
        RuleId::PackedTrailing,
        RuleId::PackedDecode,
        RuleId::EquivCounterexample,
        RuleId::ConeCounterexample,
        RuleId::EquivUnverified,
        RuleId::XResetStuck,
        RuleId::XReachesOutput,
        RuleId::ConfigShadowedWrite,
        RuleId::ConfigReadUnwritten,
        RuleId::ConfigScrubGap,
    ];

    /// The stable machine-readable code (`FABP-N001` style).
    pub fn code(self) -> &'static str {
        match self {
            RuleId::CombLoop => "FABP-N001",
            RuleId::FloatingPin => "FABP-N002",
            RuleId::RegDangling => "FABP-N003",
            RuleId::MultiDriver => "FABP-N004",
            RuleId::LutConst => "FABP-N005",
            RuleId::LutFoldable => "FABP-N006",
            RuleId::LutIgnoredInput => "FABP-N007",
            RuleId::DeadNode => "FABP-N008",
            RuleId::InputUnused => "FABP-N009",
            RuleId::DeadConst => "FABP-N010",
            RuleId::RegConstDriver => "FABP-N011",
            RuleId::HighFanout => "FABP-N012",
            RuleId::StaMismatch => "FABP-N013",
            RuleId::InstrRoundTrip => "FABP-S001",
            RuleId::ConfigTable => "FABP-S002",
            RuleId::PackedBounds => "FABP-S003",
            RuleId::PackedTrailing => "FABP-S004",
            RuleId::PackedDecode => "FABP-S005",
            RuleId::EquivCounterexample => "FABP-V001",
            RuleId::ConeCounterexample => "FABP-V002",
            RuleId::EquivUnverified => "FABP-V003",
            RuleId::XResetStuck => "FABP-V004",
            RuleId::XReachesOutput => "FABP-V005",
            RuleId::ConfigShadowedWrite => "FABP-V006",
            RuleId::ConfigReadUnwritten => "FABP-V007",
            RuleId::ConfigScrubGap => "FABP-V008",
        }
    }

    /// Short human name (`comb-loop` style).
    pub fn name(self) -> &'static str {
        match self {
            RuleId::CombLoop => "comb-loop",
            RuleId::FloatingPin => "floating-pin",
            RuleId::RegDangling => "reg-dangling",
            RuleId::MultiDriver => "multi-driver",
            RuleId::LutConst => "lut-const",
            RuleId::LutFoldable => "lut-foldable",
            RuleId::LutIgnoredInput => "lut-ignored-input",
            RuleId::DeadNode => "dead-node",
            RuleId::InputUnused => "input-unused",
            RuleId::DeadConst => "dead-const",
            RuleId::RegConstDriver => "reg-const-driver",
            RuleId::HighFanout => "high-fanout",
            RuleId::StaMismatch => "sta-depth-mismatch",
            RuleId::InstrRoundTrip => "instr-round-trip",
            RuleId::ConfigTable => "config-table",
            RuleId::PackedBounds => "packed-bounds",
            RuleId::PackedTrailing => "packed-trailing-bits",
            RuleId::PackedDecode => "packed-decode",
            RuleId::EquivCounterexample => "equiv-counterexample",
            RuleId::ConeCounterexample => "cone-counterexample",
            RuleId::EquivUnverified => "equiv-unverified",
            RuleId::XResetStuck => "xprop-reset-stuck",
            RuleId::XReachesOutput => "xprop-x-output",
            RuleId::ConfigShadowedWrite => "config-shadowed-write",
            RuleId::ConfigReadUnwritten => "config-read-unwritten",
            RuleId::ConfigScrubGap => "config-scrub-gap",
        }
    }

    /// Default severity (the policy table of `docs/LINTING.md`).
    pub fn default_severity(self) -> Severity {
        match self {
            RuleId::CombLoop
            | RuleId::FloatingPin
            | RuleId::RegDangling
            | RuleId::MultiDriver
            | RuleId::LutConst
            | RuleId::StaMismatch
            | RuleId::InstrRoundTrip
            | RuleId::ConfigTable
            | RuleId::PackedBounds
            | RuleId::PackedDecode
            | RuleId::EquivCounterexample
            | RuleId::ConeCounterexample
            | RuleId::XResetStuck
            | RuleId::XReachesOutput
            | RuleId::ConfigReadUnwritten => Severity::Error,
            RuleId::LutFoldable
            | RuleId::LutIgnoredInput
            | RuleId::DeadNode
            | RuleId::InputUnused
            | RuleId::HighFanout
            | RuleId::PackedTrailing
            | RuleId::ConfigShadowedWrite
            | RuleId::ConfigScrubGap => Severity::Warn,
            RuleId::DeadConst | RuleId::RegConstDriver | RuleId::EquivUnverified => Severity::Info,
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.code(), self.name())
    }
}

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: RuleId,
    /// Severity (normally [`RuleId::default_severity`]).
    pub severity: Severity,
    /// The offending node id, when the finding is about one node.
    pub node: Option<usize>,
    /// Human explanation.
    pub message: String,
}

impl Finding {
    /// Builds a finding at the rule's default severity.
    pub fn new(rule: RuleId, node: Option<usize>, message: impl Into<String>) -> Finding {
        Finding {
            rule,
            severity: rule.default_severity(),
            node,
            message: message.into(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}",
            self.severity,
            self.rule.code(),
            self.rule.name()
        )?;
        if let Some(node) = self.node {
            write!(f, " @n{node}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Structural statistics of the analysed artifact (the fanout/logic-depth
/// report the issue asks for).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModuleStats {
    /// Total node count (netlist modules) or element count (streams).
    pub nodes: usize,
    /// LUT6 primitives.
    pub luts: usize,
    /// Flip-flops.
    pub ffs: usize,
    /// Carry-chain elements.
    pub carries: usize,
    /// Deepest LUT level from any startpoint to any endpoint, computed by
    /// the linter's own traversal (cross-checked against `sta::analyze`).
    pub logic_depth: usize,
    /// Highest fan-out of any non-constant net.
    pub max_fanout: usize,
    /// `sta::analyze` max level count, when the cross-check ran.
    pub sta_levels: Option<usize>,
}

/// The result of linting one module or stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Module (or stream) name.
    pub module: String,
    /// Structural statistics.
    pub stats: ModuleStats,
    /// All findings, in discovery order.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Creates an empty report for `module`.
    pub fn new(module: impl Into<String>) -> Report {
        Report {
            module: module.into(),
            stats: ModuleStats::default(),
            findings: Vec::new(),
        }
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// The worst severity present, if any finding exists.
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// `true` when no finding is at or above `deny`.
    pub fn passes(&self, deny: Severity) -> bool {
        self.findings.iter().all(|f| f.severity < deny)
    }

    /// Findings produced by `rule`.
    pub fn findings_for(&self, rule: RuleId) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.rule == rule).collect()
    }

    /// Human-readable rendering (one block per module).
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let verdict = match self.max_severity() {
            None => "clean".to_string(),
            Some(s) => format!(
                "{} error(s), {} warning(s), {} info(s); worst {s}",
                self.count(Severity::Error),
                self.count(Severity::Warn),
                self.count(Severity::Info),
            ),
        };
        let _ = write!(
            out,
            "== {}: {} nodes, {} LUTs, {} FFs, {} carries, depth {}, max fanout {}",
            self.module,
            self.stats.nodes,
            self.stats.luts,
            self.stats.ffs,
            self.stats.carries,
            self.stats.logic_depth,
            self.stats.max_fanout,
        );
        if let Some(levels) = self.stats.sta_levels {
            let _ = write!(out, ", sta levels {levels}");
        }
        let _ = writeln!(out, " — {verdict}");
        for finding in &self.findings {
            let _ = writeln!(out, "  {finding}");
        }
        out
    }

    /// JSON object for this report (schema in `docs/LINTING.md`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"module\":{},\"stats\":{{\"nodes\":{},\"luts\":{},\"ffs\":{},\"carries\":{},\"logic_depth\":{},\"max_fanout\":{},\"sta_levels\":{}}},\"findings\":[",
            json_string(&self.module),
            self.stats.nodes,
            self.stats.luts,
            self.stats.ffs,
            self.stats.carries,
            self.stats.logic_depth,
            self.stats.max_fanout,
            match self.stats.sta_levels {
                Some(l) => l.to_string(),
                None => "null".to_string(),
            },
        );
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":{},\"name\":{},\"severity\":{},\"node\":{},\"message\":{}}}",
                json_string(f.rule.code()),
                json_string(f.rule.name()),
                json_string(f.severity.label()),
                match f.node {
                    Some(n) => n.to_string(),
                    None => "null".to_string(),
                },
                json_string(&f.message),
            );
        }
        out.push_str("]}");
        out
    }
}

/// Renders a full multi-module lint run as one JSON document.
pub fn render_json_reports(reports: &[Report]) -> String {
    render_json_reports_as("fabp_lint", reports)
}

/// Renders a multi-module run as one JSON document whose top-level key
/// names the producing tool (`fabp_lint`, `fabp_verify`, ...). The rest
/// of the schema is shared; see `docs/LINTING.md`.
pub fn render_json_reports_as(tool: &str, reports: &[Report]) -> String {
    use std::fmt::Write as _;
    let errors: usize = reports.iter().map(|r| r.count(Severity::Error)).sum();
    let warnings: usize = reports.iter().map(|r| r.count(Severity::Warn)).sum();
    let infos: usize = reports.iter().map(|r| r.count(Severity::Info)).sum();
    let mut out = format!("{{{}:{{\"schema\":1}},\"modules\":[", json_string(tool));
    for (i, report) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&report.to_json());
    }
    let _ = write!(
        out,
        "],\"summary\":{{\"modules\":{},\"errors\":{errors},\"warnings\":{warnings},\"infos\":{infos},\"clean\":{}}}}}",
        reports.len(),
        errors == 0 && warnings == 0,
    );
    out
}

/// Publishes finding counters to a telemetry registry
/// (`fabp_lint_findings_total{severity,rule}`, `fabp_lint_modules_total`).
pub fn record_reports(registry: &fabp_telemetry::Registry, reports: &[Report]) {
    record_reports_as("fabp_lint", registry, reports)
}

/// [`record_reports`] with a caller-chosen metric prefix, so sibling
/// tools (`fabp_verify`) emit `<tool>_findings_total` counters through
/// the same code path.
pub fn record_reports_as(tool: &str, registry: &fabp_telemetry::Registry, reports: &[Report]) {
    if !registry.is_enabled() {
        return;
    }
    registry
        .counter(
            &format!("{tool}_modules_total"),
            "Modules analysed by the static-analysis gate",
        )
        .add(reports.len() as u64);
    for report in reports {
        for finding in &report.findings {
            registry
                .counter_with(
                    &format!("{tool}_findings_total"),
                    "Findings by severity and rule",
                    fabp_telemetry::labels(&[
                        ("severity", finding.severity.label()),
                        ("rule", finding.rule.name()),
                    ]),
                )
                .inc();
        }
    }
}

/// Escapes a string as a JSON string literal (quotes included).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::parse("warn"), Some(Severity::Warn));
        assert_eq!(Severity::parse("bogus"), None);
    }

    #[test]
    fn rule_codes_are_unique_and_stable() {
        let mut codes: Vec<&str> = RuleId::ALL.iter().map(|r| r.code()).collect();
        codes.sort_unstable();
        let before = codes.len();
        codes.dedup();
        assert_eq!(codes.len(), before, "duplicate rule codes");
        assert_eq!(RuleId::CombLoop.code(), "FABP-N001");
        assert_eq!(RuleId::PackedDecode.code(), "FABP-S005");
        assert_eq!(RuleId::EquivCounterexample.code(), "FABP-V001");
        assert_eq!(RuleId::ConfigScrubGap.code(), "FABP-V008");
    }

    #[test]
    fn json_tool_key_is_parameterised() {
        let r = Report::new("m");
        let json = render_json_reports_as("fabp_verify", &[r]);
        assert!(
            json.starts_with("{\"fabp_verify\":{\"schema\":1}"),
            "{json}"
        );
        let default = render_json_reports(&[Report::new("m")]);
        assert!(
            default.starts_with("{\"fabp_lint\":{\"schema\":1}"),
            "{default}"
        );
    }

    #[test]
    fn report_passes_respects_threshold() {
        let mut r = Report::new("m");
        r.findings
            .push(Finding::new(RuleId::DeadConst, Some(3), "x"));
        assert!(r.passes(Severity::Warn));
        r.findings
            .push(Finding::new(RuleId::LutFoldable, Some(4), "y"));
        assert!(!r.passes(Severity::Warn));
        assert!(r.passes(Severity::Error));
        assert_eq!(r.max_severity(), Some(Severity::Warn));
    }

    #[test]
    fn json_escapes_and_parses_shape() {
        let mut r = Report::new("weird \"name\"\n");
        r.findings
            .push(Finding::new(RuleId::CombLoop, None, "a\tb"));
        let json = render_json_reports(&[r]);
        assert!(json.contains("\\\"name\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"errors\":1"));
        assert!(json.contains("\"clean\":false"));
        // Balanced braces/brackets (cheap structural sanity).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn text_rendering_mentions_rule_and_node() {
        let mut r = Report::new("m");
        r.findings
            .push(Finding::new(RuleId::RegDangling, Some(7), "dangling"));
        let text = r.render_text();
        assert!(text.contains("error[FABP-N003] reg-dangling @n7"), "{text}");
    }
}
