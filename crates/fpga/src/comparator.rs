//! The FabP custom comparator: two LUT6s per query element (Fig. 5).
//!
//! One LUT implements the input multiplexer that selects, based on the
//! instruction's two configuration bits, the compare-LUT's fourth input:
//! the instruction's own fourth bit (Types I/II) or one bit of an earlier
//! reference element (Type III). The second LUT performs the comparison
//! proper: its inputs are the instruction's three leading bits, the
//! multiplexer output, and the 2-bit current reference element; its
//! truth table is Fig. 5(b).
//!
//! Two views are provided:
//!
//! * [`ComparatorCell`] — the two raw [`Lut6`] truth tables, evaluated
//!   directly (what the cycle-level engine uses in its inner loop);
//! * [`build_comparator_netlist`] — a structural [`Netlist`] of the same
//!   two LUTs, used for resource counting and gate-level verification.

use crate::netlist::{Netlist, NodeId};
use crate::primitives::Lut6;
use fabp_bio::alphabet::Nucleotide;
use fabp_encoding::instruction::{compare_function, ConfigSelect, Instruction};

/// Truth table of the multiplexer LUT.
///
/// Input pins (address bits): `I0 = Q[3]`, `I1 = Ref^{i-1}[1]`,
/// `I2 = Ref^{i-2}[0]`, `I3 = Ref^{i-2}[1]`, `I4 = Q[5]` (config LSB),
/// `I5 = Q[4]` (config MSB).
pub fn mux_lut() -> Lut6 {
    Lut6::from_fn(|addr| {
        let q3 = addr & 1 != 0;
        let prev1_msb = addr & 0b10 != 0;
        let prev2_lsb = addr & 0b100 != 0;
        let prev2_msb = addr & 0b1000 != 0;
        let cfg = (((addr >> 5) & 1) << 1) | ((addr >> 4) & 1); // (I5 << 1) | I4
        match ConfigSelect::from_code2(cfg) {
            ConfigSelect::QueryBit => q3,
            ConfigSelect::RefPrev1Msb => prev1_msb,
            ConfigSelect::RefPrev2Lsb => prev2_lsb,
            ConfigSelect::RefPrev2Msb => prev2_msb,
        }
    })
}

/// Truth table of the compare LUT (Fig. 5(b)).
///
/// Input pins (address bits): `I0 = Ref^i[0]` (LSB), `I1 = Ref^i[1]`
/// (MSB), `I2 = X` (multiplexer output), `I3 = Q[2]`, `I4 = Q[1]`,
/// `I5 = Q[0]`.
pub fn compare_lut() -> Lut6 {
    Lut6::from_fn(|addr| {
        let reference = Nucleotide::from_code2(((addr >> 1) & 1) << 1 | (addr & 1));
        let x = addr & 0b100 != 0;
        let q2 = addr & 0b1000 != 0;
        let q1 = addr & 0b1_0000 != 0;
        let q0 = addr & 0b10_0000 != 0;
        compare_function(q0, q1, q2, x, reference)
    })
}

/// The two-LUT comparator cell, evaluated directly on bit codes.
///
/// # Examples
///
/// ```
/// use fabp_fpga::comparator::ComparatorCell;
/// use fabp_encoding::instruction::Instruction;
/// use fabp_bio::backtranslate::PatternElement;
/// use fabp_bio::alphabet::Nucleotide;
///
/// let cell = ComparatorCell::new();
/// let instr = Instruction::encode(PatternElement::Exact(Nucleotide::G));
/// assert!(cell.matches(instr, Nucleotide::G, None, None));
/// assert!(!cell.matches(instr, Nucleotide::A, None, None));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComparatorCell {
    mux: Lut6,
    cmp: Lut6,
}

impl Default for ComparatorCell {
    fn default() -> ComparatorCell {
        ComparatorCell::new()
    }
}

impl ComparatorCell {
    /// Builds the cell with the generated truth tables.
    pub fn new() -> ComparatorCell {
        ComparatorCell {
            mux: mux_lut(),
            cmp: compare_lut(),
        }
    }

    /// Builds a cell from explicit truth tables — the configuration-upset
    /// injection surface: a single-event upset flips one bit of a LUT's
    /// INIT string, and this constructor lets a fault harness install the
    /// corrupted tables ([`crate::engine::EngineSession::set_cell`]).
    pub fn from_luts(mux: Lut6, cmp: Lut6) -> ComparatorCell {
        ComparatorCell { mux, cmp }
    }

    /// The multiplexer LUT.
    pub fn mux(self) -> Lut6 {
        self.mux
    }

    /// The compare LUT.
    pub fn cmp(self) -> Lut6 {
        self.cmp
    }

    /// Evaluates the cell: both LUT lookups, exactly as the hardware wires
    /// them. Missing earlier-reference context reads as zero (reset shift
    /// registers).
    #[inline]
    pub fn matches(
        self,
        instr: Instruction,
        reference: Nucleotide,
        prev1: Option<Nucleotide>,
        prev2: Option<Nucleotide>,
    ) -> bool {
        let bits = instr.bits();
        let p1 = prev1.map_or(0, Nucleotide::code2);
        let p2 = prev2.map_or(0, Nucleotide::code2);
        // Mux pins: I0=Q[3], I1=prev1 MSB, I2=prev2 LSB, I3=prev2 MSB,
        // I4=Q[5] (config LSB), I5=Q[4] (config MSB).
        let q3 = (bits >> 2) & 1;
        let cfg_msb = (bits >> 1) & 1; // Q[4]
        let cfg_lsb = bits & 1; // Q[5]
        let mux_addr = q3
            | (((p1 >> 1) & 1) << 1)
            | ((p2 & 1) << 2)
            | (((p2 >> 1) & 1) << 3)
            | (cfg_lsb << 4)
            | (cfg_msb << 5);
        let x = self.mux.eval_addr(mux_addr);
        let cmp_addr = (reference.code2() & 1)
            | (((reference.code2() >> 1) & 1) << 1)
            | ((x as u8) << 2)
            | (((bits >> 3) & 1) << 3)  // Q[2]
            | (((bits >> 4) & 1) << 4)  // Q[1]
            | (((bits >> 5) & 1) << 5); // Q[0]
        self.cmp.eval_addr(cmp_addr)
    }

    /// Scores a whole window: popcount of per-element matches — the value
    /// the hardware Pop-Counter accumulates for one alignment instance.
    ///
    /// # Panics
    ///
    /// Panics if `window.len() < instructions.len()`.
    pub fn score_window(self, instructions: &[Instruction], window: &[Nucleotide]) -> usize {
        assert!(
            window.len() >= instructions.len(),
            "window shorter than query"
        );
        instructions
            .iter()
            .enumerate()
            .filter(|&(i, &instr)| {
                let prev1 = i.checked_sub(1).map(|j| window[j]);
                let prev2 = i.checked_sub(2).map(|j| window[j]);
                self.matches(instr, window[i], prev1, prev2)
            })
            .count()
    }
}

/// Input nodes of a comparator netlist, in creation order.
#[derive(Debug, Clone, Copy)]
pub struct ComparatorPorts {
    /// `Q[0..6]` instruction bits.
    pub q: [NodeId; 6],
    /// Current reference element bits `[Ref^i[1], Ref^i[0]]` (MSB first).
    pub ref_cur: [NodeId; 2],
    /// `Ref^{i-1}[1]`.
    pub prev1_msb: NodeId,
    /// `[Ref^{i-2}[1], Ref^{i-2}[0]]` (MSB first).
    pub prev2: [NodeId; 2],
    /// The match output.
    pub out: NodeId,
}

/// Builds the two-LUT comparator as a structural netlist.
///
/// The returned netlist has exactly **two LUTs** — the paper's headline
/// optimization ("FabP uses only two Lookup Tables", §III-D) — with inputs
/// in the order of [`ComparatorPorts`].
pub fn build_comparator_netlist() -> (Netlist, ComparatorPorts) {
    let mut n = Netlist::new();
    let q: Vec<NodeId> = n.inputs(6);
    let ref_cur: Vec<NodeId> = n.inputs(2); // [msb, lsb]
    let prev1_msb = n.input();
    let prev2: Vec<NodeId> = n.inputs(2); // [msb, lsb]

    // Mux LUT pins: I0=Q[3], I1=prev1_msb, I2=prev2_lsb, I3=prev2_msb,
    // I4=Q[5], I5=Q[4].
    let x = n.lut(mux_lut(), [q[3], prev1_msb, prev2[1], prev2[0], q[5], q[4]]);
    // Compare LUT pins: I0=ref_lsb, I1=ref_msb, I2=X, I3=Q[2], I4=Q[1],
    // I5=Q[0].
    let out = n.lut(compare_lut(), [ref_cur[1], ref_cur[0], x, q[2], q[1], q[0]]);
    n.mark_output("match", out);

    let ports = ComparatorPorts {
        q: [q[0], q[1], q[2], q[3], q[4], q[5]],
        ref_cur: [ref_cur[0], ref_cur[1]],
        prev1_msb,
        prev2: [prev2[0], prev2[1]],
        out,
    };
    (n, ports)
}

/// Evaluates a comparator netlist for the given operands (test helper and
/// gate-level reference path).
pub fn eval_comparator_netlist(
    netlist: &mut Netlist,
    instr: Instruction,
    reference: Nucleotide,
    prev1: Option<Nucleotide>,
    prev2: Option<Nucleotide>,
) -> bool {
    let bits = instr.bits();
    let p1 = prev1.map_or(0, Nucleotide::code2);
    let p2 = prev2.map_or(0, Nucleotide::code2);
    let r = reference.code2();
    let inputs = [
        bits & 0b10_0000 != 0, // Q0
        bits & 0b01_0000 != 0, // Q1
        bits & 0b00_1000 != 0, // Q2
        bits & 0b00_0100 != 0, // Q3
        bits & 0b00_0010 != 0, // Q4
        bits & 0b00_0001 != 0, // Q5
        r & 0b10 != 0,         // ref msb
        r & 0b01 != 0,         // ref lsb
        p1 & 0b10 != 0,        // prev1 msb
        p2 & 0b10 != 0,        // prev2 msb
        p2 & 0b01 != 0,        // prev2 lsb
    ];
    netlist.eval(&inputs);
    netlist.output_value("match")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::backtranslate::{DependentFn, MatchCondition, PatternElement};

    fn all_valid_instructions() -> Vec<Instruction> {
        let mut v = Vec::new();
        for n in Nucleotide::ALL {
            v.push(Instruction::encode(PatternElement::Exact(n)));
        }
        for c in MatchCondition::ALL {
            v.push(Instruction::encode(PatternElement::Conditional(c)));
        }
        for f in DependentFn::ALL {
            v.push(Instruction::encode(PatternElement::Dependent(f)));
        }
        v
    }

    #[test]
    fn cell_matches_golden_model_exhaustively() {
        let cell = ComparatorCell::new();
        let contexts: Vec<Option<Nucleotide>> = std::iter::once(None)
            .chain(Nucleotide::ALL.into_iter().map(Some))
            .collect();
        for instr in all_valid_instructions() {
            let element = instr.decode().unwrap();
            for reference in Nucleotide::ALL {
                for &prev1 in &contexts {
                    for &prev2 in &contexts {
                        assert_eq!(
                            cell.matches(instr, reference, prev1, prev2),
                            element.matches(reference, prev1, prev2),
                            "{instr} vs {reference} ctx {prev1:?}/{prev2:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn netlist_uses_exactly_two_luts() {
        let (netlist, _) = build_comparator_netlist();
        let r = netlist.resources();
        assert_eq!(r.luts, 2, "paper §III-D: only two LUTs");
        assert_eq!(r.ffs, 0);
    }

    #[test]
    fn netlist_agrees_with_cell_exhaustively() {
        let (mut netlist, _) = build_comparator_netlist();
        let cell = ComparatorCell::new();
        for instr in all_valid_instructions() {
            for reference in Nucleotide::ALL {
                for prev1 in Nucleotide::ALL {
                    for prev2 in Nucleotide::ALL {
                        assert_eq!(
                            eval_comparator_netlist(
                                &mut netlist,
                                instr,
                                reference,
                                Some(prev1),
                                Some(prev2)
                            ),
                            cell.matches(instr, reference, Some(prev1), Some(prev2)),
                            "{instr} vs {reference} after {prev2}{prev1}"
                        );
                    }
                }
            }
        }
    }

    /// Reproduces Fig. 5(b)'s printed truth-table columns bit for bit.
    #[test]
    fn fig5b_truth_table_columns() {
        use Nucleotide::{A, C, G, U};
        let cell = ComparatorCell::new();
        let refs = [A, C, G, U];

        // Exact matching columns: 00-Q-Ref.
        let exact_cases: [(Nucleotide, [bool; 4]); 4] = [
            (A, [true, false, false, false]),
            (C, [false, true, false, false]),
            (G, [false, false, true, false]),
            (U, [false, false, false, true]),
        ];
        for (q, expected) in exact_cases {
            let instr = Instruction::encode(PatternElement::Exact(q));
            for (r, e) in refs.iter().zip(expected) {
                assert_eq!(cell.matches(instr, *r, None, None), e, "00-{q}-{r}");
            }
        }

        // Conditional matching columns: 01-Cnd-Ref.
        let cond_cases: [(MatchCondition, [bool; 4]); 4] = [
            (MatchCondition::PyrimidineUc, [false, true, false, true]),
            (MatchCondition::PurineAg, [true, false, true, false]),
            (MatchCondition::NotG, [true, true, false, true]),
            (MatchCondition::AOrC, [true, true, false, false]),
        ];
        for (cond, expected) in cond_cases {
            let instr = Instruction::encode(PatternElement::Conditional(cond));
            for (r, e) in refs.iter().zip(expected) {
                assert_eq!(cell.matches(instr, *r, None, None), e, "01-{cond}-{r}");
            }
        }

        // Dependent matching columns: 1-F-S-Ref. Drive S through the real
        // mux inputs: Stop taps prev1 MSB, Leu/Arg tap prev2.
        // S values are produced with prev elements whose tapped bit is 0/1.
        struct DepCase {
            f: DependentFn,
            s0: [bool; 4],
            s1: [bool; 4],
        }
        let dep_cases = [
            DepCase {
                f: DependentFn::Stop,
                s0: [true, false, true, false],
                s1: [true, false, false, false],
            },
            DepCase {
                f: DependentFn::Leu,
                s0: [true, true, true, true],
                s1: [true, false, true, false],
            },
            DepCase {
                f: DependentFn::Arg,
                s0: [true, false, true, false],
                s1: [true, true, true, true],
            },
            DepCase {
                f: DependentFn::Any,
                s0: [true, true, true, true],
                s1: [true, true, true, true],
            },
        ];
        for case in dep_cases {
            let instr = Instruction::encode(PatternElement::Dependent(case.f));
            let (offset, bit) = case.f.source_tap().unwrap_or((1, 1));
            for (s, expected) in [(false, case.s0), (true, case.s1)] {
                // Pick a source element whose tapped bit equals s.
                let src = Nucleotide::ALL
                    .into_iter()
                    .find(|n| (n.code2() >> bit) & 1 == u8::from(s))
                    .unwrap();
                let (prev1, prev2) = if offset == 1 {
                    (Some(src), Some(Nucleotide::A))
                } else {
                    (Some(Nucleotide::A), Some(src))
                };
                for (r, e) in refs.iter().zip(expected) {
                    // `Any` ignores S entirely; exercised for completeness.
                    assert_eq!(
                        cell.matches(instr, *r, prev1, prev2),
                        e,
                        "1-{:02b}-{}-{r}",
                        case.f.code2(),
                        u8::from(s)
                    );
                }
            }
        }
    }

    #[test]
    fn fig5b_highlighted_uc_column() {
        // "the first four rows of the third column" — 01-U/C against all
        // four reference elements: 0, 1, 0, 1 (A, C, G, U order).
        let cell = ComparatorCell::new();
        let instr = Instruction::encode(PatternElement::Conditional(MatchCondition::PyrimidineUc));
        let outs: Vec<bool> = Nucleotide::ALL
            .iter()
            .map(|&r| cell.matches(instr, r, None, None))
            .collect();
        assert_eq!(outs, vec![false, true, false, true]);
    }

    #[test]
    fn score_window_equals_encoder_score() {
        use fabp_bio::seq::{ProteinSeq, RnaSeq};
        use fabp_encoding::encoder::EncodedQuery;

        let protein: ProteinSeq = "MFLSR*W".parse().unwrap();
        let query = EncodedQuery::from_protein(&protein);
        let cell = ComparatorCell::new();
        let reference: RnaSeq = "AUGUUCUUGUCACGAUAAUGGCAUGUU".parse().unwrap();
        for k in 0..=reference.len() - query.len() {
            let window = &reference.as_slice()[k..];
            assert_eq!(
                cell.score_window(query.instructions(), window),
                query.score_window(window),
                "position {k}"
            );
        }
    }
}
