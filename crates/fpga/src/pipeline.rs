//! Pipelined Pop-Counter: the register-staged variant the accelerator
//! actually deploys ("the pipelined Pop-Counter", §III-D).
//!
//! Every reduction level is followed by a register stage — including
//! pass-through values, which must be registered too so all paths reach
//! the output with equal latency (pipeline balancing). One new 36-bit
//! match vector can be accepted *every cycle*; results emerge `latency`
//! cycles later.

use crate::netlist::{Netlist, NodeId, ResourceCount};
use crate::popcount::{add_vectors, pop6_group, PopStyle};

/// A pipelined pop-counter netlist with its cycle-level driver.
#[derive(Debug, Clone)]
pub struct PipelinedPopCounter {
    netlist: Netlist,
    outputs: Vec<NodeId>,
    width: usize,
    latency: usize,
}

impl PipelinedPopCounter {
    /// Builds a pipelined counter of `width` bits in the given style.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn build(width: usize, style: PopStyle) -> PipelinedPopCounter {
        assert!(width > 0, "pop-counter width must be positive");
        let mut n = Netlist::new();
        let inputs = n.inputs(width);
        let (outputs, latency) = match style {
            PopStyle::HandCrafted => build_handcrafted_pipelined(&mut n, &inputs),
            PopStyle::TreeAdder => {
                let leaves: Vec<Vec<NodeId>> = inputs.iter().map(|&b| vec![b]).collect();
                reduce_pipelined(&mut n, leaves)
            }
        };
        for (i, &o) in outputs.iter().enumerate() {
            n.mark_output(format!("sum{i}"), o);
        }
        let _ = inputs; // creation order defines the eval() input layout
        PipelinedPopCounter {
            netlist: n,
            outputs,
            width,
            latency,
        }
    }

    /// Input width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Pipeline latency in cycles.
    pub fn latency(&self) -> usize {
        self.latency
    }

    /// Resource footprint (the register stages appear as FFs).
    pub fn resources(&self) -> ResourceCount {
        self.netlist.resources()
    }

    /// Borrow the netlist (e.g. for Verilog emission).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Resets all pipeline registers.
    pub fn reset(&mut self) {
        self.netlist.reset();
    }

    /// Advances one cycle with the given input vector and returns the sum
    /// currently at the output — valid for the input fed `latency` cycles
    /// ago (garbage during fill after a reset).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.width()`.
    pub fn cycle(&mut self, bits: &[bool]) -> u32 {
        assert_eq!(bits.len(), self.width, "input width mismatch");
        self.netlist.eval(bits);
        let out = self
            .outputs
            .iter()
            .enumerate()
            .map(|(i, &o)| u32::from(self.netlist.value(o)) << i)
            .sum();
        self.netlist.clock();
        out
    }

    /// One-shot count: holds `bits` for `latency + 1` cycles and returns
    /// the settled sum.
    pub fn count_blocking(&mut self, bits: &[bool]) -> u32 {
        let mut out = 0;
        for _ in 0..=self.latency {
            out = self.cycle(bits);
        }
        out
    }
}

/// Registers one bit of a pipeline stage. Constant bits pass through
/// unregistered: a constant is stable at every cycle, so a flip-flop
/// behind it is dead silicon (and a `reg-const-driver` lint finding) —
/// synthesis sweeps such registers away.
fn reg_or_const(n: &mut Netlist, bit: NodeId) -> NodeId {
    if n.const_value(bit).is_some() {
        bit
    } else {
        n.reg(bit)
    }
}

/// Registers every bit of every value — one balanced pipeline stage.
fn register_stage(n: &mut Netlist, values: Vec<Vec<NodeId>>) -> Vec<Vec<NodeId>> {
    values
        .into_iter()
        .map(|bits| bits.into_iter().map(|b| reg_or_const(n, b)).collect())
        .collect()
}

/// Pairwise adder-tree reduction with a register stage after every level.
/// Returns the final sum bits and the number of stages inserted.
fn reduce_pipelined(n: &mut Netlist, mut values: Vec<Vec<NodeId>>) -> (Vec<NodeId>, usize) {
    assert!(!values.is_empty());
    let mut latency = 0usize;
    while values.len() > 1 {
        let mut next = Vec::with_capacity(values.len().div_ceil(2));
        for pair in values.chunks(2) {
            match pair {
                [a, b] => next.push(add_vectors(n, a, b)),
                [a] => next.push(a.clone()),
                _ => unreachable!("chunks(2) yields 1 or 2 items"),
            }
        }
        values = register_stage(n, next);
        latency += 1;
    }
    (values.pop().expect("non-empty reduction"), latency)
}

/// Pop36 blocks with internal stage registers, then a pipelined tree.
fn build_handcrafted_pipelined(n: &mut Netlist, inputs: &[NodeId]) -> (Vec<NodeId>, usize) {
    let zero = n.constant(false);
    let mut block_sums: Vec<Vec<NodeId>> = Vec::new();
    for chunk in inputs.chunks(36) {
        let mut bits = [zero; 36];
        bits[..chunk.len()].copy_from_slice(chunk);

        // Stage 1: six shared-input groups, registered.
        let stage1: Vec<[NodeId; 3]> = bits
            .chunks(6)
            .map(|c| {
                let mut pins = [zero; 6];
                pins.copy_from_slice(c);
                let g = pop6_group(n, &pins);
                g.map(|b| reg_or_const(n, b))
            })
            .collect();

        // Stage 2: bit-order summation, registered.
        let stage2: Vec<[NodeId; 3]> = (0..3)
            .map(|j| {
                let pins: [NodeId; 6] = std::array::from_fn(|g| stage1[g][j]);
                let g = pop6_group(n, &pins);
                g.map(|b| reg_or_const(n, b))
            })
            .collect();

        // Stage 3: weighted recombination, registered.
        let p1_shifted: Vec<NodeId> = std::iter::once(zero)
            .chain(stage2[1].iter().copied())
            .collect();
        let p2_shifted: Vec<NodeId> = [zero, zero]
            .into_iter()
            .chain(stage2[2].iter().copied())
            .collect();
        let t = add_vectors(n, &p1_shifted, &p2_shifted);
        let total = add_vectors(n, stage2[0].as_ref(), &t);
        block_sums.push(total.into_iter().map(|b| reg_or_const(n, b)).collect());
    }

    let (out, tree_latency) = reduce_pipelined(n, block_sums);
    (out, 3 + tree_latency)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::popcount::PopCounter;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(width: usize, rng: &mut StdRng) -> Vec<bool> {
        (0..width).map(|_| rng.gen_bool(0.5)).collect()
    }

    #[test]
    fn blocking_count_matches_combinational() {
        let mut rng = StdRng::seed_from_u64(0x91);
        for width in [7usize, 36, 72, 150] {
            let mut pipelined = PipelinedPopCounter::build(width, PopStyle::HandCrafted);
            let mut flat = PopCounter::build(width, PopStyle::HandCrafted);
            for _ in 0..20 {
                let bits = random_bits(width, &mut rng);
                pipelined.reset();
                assert_eq!(
                    pipelined.count_blocking(&bits),
                    flat.count(&bits),
                    "width {width}"
                );
            }
        }
    }

    #[test]
    fn streaming_throughput_one_result_per_cycle() {
        // Feed a new vector every cycle; outputs must be the popcounts of
        // the inputs fed `latency` cycles earlier.
        let mut rng = StdRng::seed_from_u64(0x92);
        let width = 72usize;
        let mut pc = PipelinedPopCounter::build(width, PopStyle::HandCrafted);
        let latency = pc.latency();
        let stream: Vec<Vec<bool>> = (0..30).map(|_| random_bits(width, &mut rng)).collect();
        let mut outputs = Vec::new();
        for bits in &stream {
            outputs.push(pc.cycle(bits));
        }
        // Drain.
        let zeros = vec![false; width];
        for _ in 0..latency {
            outputs.push(pc.cycle(&zeros));
        }
        for (i, bits) in stream.iter().enumerate() {
            let expected = bits.iter().filter(|&&b| b).count() as u32;
            assert_eq!(outputs[i + latency], expected, "stream element {i}");
        }
    }

    #[test]
    fn tree_style_also_pipelines() {
        let mut rng = StdRng::seed_from_u64(0x93);
        let width = 50usize;
        let mut pc = PipelinedPopCounter::build(width, PopStyle::TreeAdder);
        assert!(pc.latency() >= 6, "log2(50) levels");
        let bits = random_bits(width, &mut rng);
        let expected = bits.iter().filter(|&&b| b).count() as u32;
        assert_eq!(pc.count_blocking(&bits), expected);
    }

    #[test]
    fn pipelining_adds_ffs_not_luts() {
        let width = 150usize;
        let flat = PopCounter::build(width, PopStyle::HandCrafted).resources();
        let pipelined = PipelinedPopCounter::build(width, PopStyle::HandCrafted).resources();
        assert_eq!(flat.ffs, 0);
        assert!(pipelined.ffs > 0);
        // Register insertion must not change the logic size materially.
        assert!(
            pipelined.luts <= flat.luts + 8,
            "pipelined {} vs flat {}",
            pipelined.luts,
            flat.luts
        );
    }

    #[test]
    fn latency_grows_with_width() {
        let small = PipelinedPopCounter::build(36, PopStyle::HandCrafted).latency();
        let large = PipelinedPopCounter::build(750, PopStyle::HandCrafted).latency();
        assert_eq!(small, 3, "one Pop36: three internal stages");
        assert!(large > small);
        // 750 bits = 21 Pop36 blocks -> ceil(log2(21)) = 5 tree levels.
        assert_eq!(large, 3 + 5);
    }

    #[test]
    fn engine_pipeline_depth_covers_popcounter_latency() {
        // The engine's default drain latency must cover the deepest
        // pop-counter it can deploy (750 elements) plus comparator and
        // threshold stages.
        let config = crate::engine::EngineConfig::kintex7(0);
        let deepest = PipelinedPopCounter::build(750, PopStyle::HandCrafted).latency();
        assert!(
            config.pipeline_depth as usize >= deepest + 2,
            "pipeline depth {} vs popcounter latency {}",
            config.pipeline_depth,
            deepest
        );
    }
}
