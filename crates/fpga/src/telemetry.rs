//! Telemetry flush points for the cycle-level engine.
//!
//! The engine simulation accumulates its own [`EngineStats`] per run;
//! this module publishes those counters to the global
//! [`fabp_telemetry::Registry`] so that CLI runs, benches and tests can
//! export them as Prometheus text / JSON / Chrome traces. Recording
//! happens **once per kernel run** (never inside the beat loop), so the
//! simulation's hot path is untouched.
//!
//! Metric catalogue (see `docs/OBSERVABILITY.md`):
//!
//! | name | type | unit |
//! |------|------|------|
//! | `fabp_engine_runs_total` | counter | kernel runs |
//! | `fabp_engine_beats_total` | counter | 512-bit AXI beats |
//! | `fabp_engine_cycles_total` | counter | device cycles |
//! | `fabp_engine_stall_cycles_total` | counter | cycles stalled on AXI |
//! | `fabp_engine_wb_stall_cycles_total` | counter | cycles stalled on WB |
//! | `fabp_engine_busy_cycles_total` | counter | compute cycles |
//! | `fabp_engine_instances_total` | counter | alignment instances |
//! | `fabp_hits_total{engine="cycle"}` | counter | reported hits |
//! | `fabp_engine_occupancy_percent` | histogram | busy/total per run |
//! | `fabp_axi_beats_total{channel}` | counter | beats per channel |
//! | `fabp_axi_bytes_read_total{channel}` | counter | bytes per channel |
//! | `fabp_axi_stall_cycles_total{channel}` | counter | stalls per channel |

use crate::axi::AxiStats;
use crate::engine::EngineStats;
use fabp_telemetry::{labels, Registry};

/// Publishes one kernel run's statistics to `registry`.
///
/// `per_channel` carries each AXI channel's own stats (index = channel
/// id); `hits` is the number of reported positions.
pub fn record_engine_run(
    registry: &Registry,
    stats: &EngineStats,
    per_channel: &[AxiStats],
    hits: usize,
) {
    if !registry.is_enabled() {
        return;
    }
    registry
        .counter("fabp_engine_runs_total", "Cycle-level kernel runs")
        .inc();
    registry
        .counter("fabp_engine_beats_total", "512-bit AXI beats consumed")
        .add(stats.beats);
    registry
        .counter("fabp_engine_cycles_total", "Device cycles simulated")
        .add(stats.cycles);
    registry
        .counter(
            "fabp_engine_stall_cycles_total",
            "Cycles stalled waiting on AXI data",
        )
        .add(stats.stall_cycles);
    registry
        .counter(
            "fabp_engine_wb_stall_cycles_total",
            "Cycles stalled draining the write-back buffer",
        )
        .add(stats.wb_stall_cycles);
    registry
        .counter("fabp_engine_busy_cycles_total", "Compute (segment) cycles")
        .add(stats.busy_cycles);
    registry
        .counter(
            "fabp_engine_instances_total",
            "Alignment instances evaluated",
        )
        .add(stats.instances_evaluated);
    registry
        .counter_with(
            "fabp_hits_total",
            "Hits emitted, by engine",
            labels(&[("engine", "cycle")]),
        )
        .add(hits as u64);
    // Pipeline occupancy: fraction of kernel cycles the instance arrays
    // were computing, in percent, one observation per run.
    if let Some(occupancy) = (stats.busy_cycles.min(stats.cycles) * 100).checked_div(stats.cycles) {
        registry
            .histogram(
                "fabp_engine_occupancy_percent",
                "Per-run pipeline occupancy (busy cycles / total cycles, %)",
            )
            .observe(occupancy);
    }
    for (ch, axi) in per_channel.iter().enumerate() {
        let ch = ch.to_string();
        registry
            .counter_with(
                "fabp_axi_beats_total",
                "AXI beats delivered, by memory channel",
                labels(&[("channel", &ch)]),
            )
            .add(axi.beats);
        registry
            .counter_with(
                "fabp_axi_bytes_read_total",
                "Bytes read from DRAM, by memory channel",
                labels(&[("channel", &ch)]),
            )
            .add(axi.bytes);
        registry
            .counter_with(
                "fabp_axi_stall_cycles_total",
                "Consumer stall cycles attributed to this memory channel",
                labels(&[("channel", &ch)]),
            )
            .add(axi.stall_cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_noop_on_disabled_registry() {
        let r = Registry::disabled();
        record_engine_run(&r, &EngineStats::default(), &[AxiStats::default()], 5);
        assert!(r.snapshot().metrics.is_empty());
    }

    #[test]
    fn record_publishes_per_channel_series() {
        let r = Registry::new();
        let stats = EngineStats {
            cycles: 100,
            beats: 10,
            bytes_read: 640,
            stall_cycles: 7,
            wb_stall_cycles: 1,
            busy_cycles: 80,
            instances_evaluated: 2560,
            kernel_seconds: 1e-6,
            achieved_bandwidth: 6.4e8,
        };
        let ch0 = AxiStats {
            beats: 6,
            bytes: 384,
            stall_cycles: 4,
        };
        let ch1 = AxiStats {
            beats: 4,
            bytes: 256,
            stall_cycles: 3,
        };
        record_engine_run(&r, &stats, &[ch0, ch1], 3);
        let snap = r.snapshot();
        assert_eq!(snap.counter_total("fabp_axi_bytes_read_total"), 640);
        assert_eq!(snap.counter_total("fabp_axi_stall_cycles_total"), 7);
        assert!(snap
            .find("fabp_axi_beats_total", &[("channel", "1")])
            .is_some());
        assert_eq!(snap.counter_total("fabp_hits_total"), 3);
        assert_eq!(snap.counter_total("fabp_engine_cycles_total"), 100);
        // Occupancy 80% lands in the log2 bucket for 80.
        let occ = snap.find("fabp_engine_occupancy_percent", &[]).unwrap();
        match &occ.value {
            fabp_telemetry::MetricValue::Histogram(h) => {
                assert_eq!(h.count, 1);
                assert_eq!(h.sum, 80);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
