//! FPGA device descriptors.
//!
//! Table I's "Available" row describes the paper's mid-range Kintex-7:
//! 326 k LUTs, 407 k FFs, 16 Mb BRAM, 840 DSPs, 12.8 GB/s of DRAM
//! bandwidth through one memory channel. Additional parts are provided for
//! sweeps ("an FPGA with more LUTs can outperform the GPU-based
//! implementation", §IV-B).

use crate::netlist::ResourceCount;
use std::fmt;

/// Static description of an FPGA part plus its board-level memory system.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaDevice {
    /// Human-readable part name.
    pub name: &'static str,
    /// Available 6-input LUTs.
    pub luts: usize,
    /// Available flip-flops.
    pub ffs: usize,
    /// Available block RAM in bits.
    pub bram_bits: usize,
    /// Available DSP slices.
    pub dsps: usize,
    /// Number of DRAM memory channels.
    pub mem_channels: usize,
    /// Peak bandwidth per memory channel in bytes/second.
    pub channel_bandwidth: f64,
    /// Kernel clock frequency in Hz.
    pub clock_hz: f64,
    /// Typical board power in watts while the kernel runs.
    pub power_w: f64,
}

impl FpgaDevice {
    /// The paper's mid-range Kintex-7 (Table I "Available" row).
    ///
    /// The 12.8 GB/s nominal bandwidth equals the paper's
    /// `BW = 512 bits × Freq` at 200 MHz.
    pub fn kintex7() -> FpgaDevice {
        FpgaDevice {
            name: "Kintex-7 (mid-range)",
            luts: 326_000,
            ffs: 407_000,
            bram_bits: 16_000_000,
            dsps: 840,
            mem_channels: 1,
            channel_bandwidth: 12.8e9,
            clock_hz: 200.0e6,
            power_w: 10.0,
        }
    }

    /// A smaller Artix-7-class part for down-scaling sweeps.
    pub fn artix7() -> FpgaDevice {
        FpgaDevice {
            name: "Artix-7 (low-end)",
            luts: 134_000,
            ffs: 269_000,
            bram_bits: 13_000_000,
            dsps: 740,
            mem_channels: 1,
            channel_bandwidth: 12.8e9,
            clock_hz: 200.0e6,
            power_w: 6.0,
        }
    }

    /// A larger Virtex-7-class part for the "more LUTs" projection of
    /// §IV-B.
    pub fn virtex7() -> FpgaDevice {
        FpgaDevice {
            name: "Virtex-7 (high-end)",
            luts: 1_221_600,
            ffs: 2_443_200,
            bram_bits: 68_000_000,
            dsps: 3_600,
            mem_channels: 2,
            channel_bandwidth: 12.8e9,
            clock_hz: 200.0e6,
            power_w: 25.0,
        }
    }

    /// Nominal memory bandwidth across all channels, bytes/second.
    pub fn total_bandwidth(&self) -> f64 {
        self.channel_bandwidth * self.mem_channels as f64
    }

    /// Available resources as a [`ResourceCount`].
    pub fn available(&self) -> ResourceCount {
        ResourceCount {
            luts: self.luts,
            ffs: self.ffs,
            dsps: self.dsps,
            bram_bits: self.bram_bits,
        }
    }

    /// Utilisation of `used` against this device, per resource class, as
    /// fractions in `[0, ∞)` (values above 1 mean the design does not fit).
    pub fn utilization(&self, used: ResourceCount) -> Utilization {
        Utilization {
            lut: used.luts as f64 / self.luts as f64,
            ff: used.ffs as f64 / self.ffs as f64,
            dsp: used.dsps as f64 / self.dsps as f64,
            bram: used.bram_bits as f64 / self.bram_bits as f64,
        }
    }

    /// `true` when `used` fits within the device, honouring a placement
    /// headroom factor (`1.0` = may fill the part completely).
    pub fn fits(&self, used: ResourceCount, headroom: f64) -> bool {
        let u = self.utilization(used);
        u.max_fraction() <= headroom
    }
}

impl fmt::Display for FpgaDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}k LUT, {}k FF, {} Mb BRAM, {} DSP, {:.1} GB/s × {}ch @ {:.0} MHz",
            self.name,
            self.luts / 1000,
            self.ffs / 1000,
            self.bram_bits / 1_000_000,
            self.dsps,
            self.channel_bandwidth / 1e9,
            self.mem_channels,
            self.clock_hz / 1e6
        )
    }
}

/// Per-class utilisation fractions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// LUT fraction.
    pub lut: f64,
    /// Flip-flop fraction.
    pub ff: f64,
    /// DSP fraction.
    pub dsp: f64,
    /// BRAM fraction.
    pub bram: f64,
}

impl Utilization {
    /// The binding (largest) utilisation fraction.
    pub fn max_fraction(&self) -> f64 {
        self.lut.max(self.ff).max(self.dsp).max(self.bram)
    }
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LUT {:.0}%, FF {:.0}%, BRAM {:.0}%, DSP {:.0}%",
            self.lut * 100.0,
            self.ff * 100.0,
            self.bram * 100.0,
            self.dsp * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kintex7_matches_table1_available_row() {
        let dev = FpgaDevice::kintex7();
        assert_eq!(dev.luts, 326_000);
        assert_eq!(dev.ffs, 407_000);
        assert_eq!(dev.bram_bits, 16_000_000);
        assert_eq!(dev.dsps, 840);
        assert!((dev.total_bandwidth() - 12.8e9).abs() < 1.0);
    }

    #[test]
    fn nominal_bandwidth_is_512_bits_times_freq() {
        // §III-C: BW = 512 × Freq.
        let dev = FpgaDevice::kintex7();
        let computed = 512.0 / 8.0 * dev.clock_hz;
        assert!((computed - dev.channel_bandwidth).abs() < 1.0);
    }

    #[test]
    fn utilization_and_fit() {
        let dev = FpgaDevice::kintex7();
        let half = ResourceCount {
            luts: 163_000,
            ffs: 100_000,
            dsps: 100,
            bram_bits: 1_000_000,
        };
        let u = dev.utilization(half);
        assert!((u.lut - 0.5).abs() < 1e-9);
        assert!(dev.fits(half, 1.0));
        let too_big = ResourceCount {
            luts: 400_000,
            ..ResourceCount::zero()
        };
        assert!(!dev.fits(too_big, 1.0));
        assert!((dev.utilization(too_big).max_fraction() - 400_000.0 / 326_000.0).abs() < 1e-9);
    }

    #[test]
    fn headroom_reduces_capacity() {
        let dev = FpgaDevice::kintex7();
        let at_90 = ResourceCount {
            luts: 293_400,
            ..ResourceCount::zero()
        };
        assert!(dev.fits(at_90, 0.95));
        assert!(!dev.fits(at_90, 0.85));
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = FpgaDevice::kintex7().to_string();
        assert!(s.contains("326k LUT"));
        assert!(s.contains("12.8 GB/s"));
    }

    #[test]
    fn device_family_ordering() {
        assert!(FpgaDevice::artix7().luts < FpgaDevice::kintex7().luts);
        assert!(FpgaDevice::kintex7().luts < FpgaDevice::virtex7().luts);
    }
}
