//! Activity-based FPGA power model.
//!
//! The energy results of Fig. 6(b) hinge on the FPGA board power while the
//! kernel runs. Rather than a single magic constant, this module derives
//! board power from the planned design's resource usage with per-primitive
//! dynamic-power coefficients (the αCV²f folded into per-LUT/FF/DSP watts
//! at the reference clock) plus static and DRAM-interface terms —
//! the structure of a Vivado power report. Coefficients are calibrated so
//! the paper's FabP-50 design lands at the ≈11.6 W that reproduces the
//! published energy ratios (see `fabp-platforms::power`).

use crate::netlist::ResourceCount;

/// Per-primitive power coefficients (at the reference clock, with the
/// datapath's typical toggle activity folded in).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Static (leakage) power of the part, watts.
    pub static_w: f64,
    /// DRAM controller + PHY power, watts (paid while streaming).
    pub dram_interface_w: f64,
    /// Dynamic power per active LUT, watts.
    pub per_lut_w: f64,
    /// Dynamic power per flip-flop, watts.
    pub per_ff_w: f64,
    /// Dynamic power per active DSP slice, watts.
    pub per_dsp_w: f64,
    /// Dynamic power per megabit of active BRAM, watts.
    pub per_bram_mbit_w: f64,
    /// Clock frequency the coefficients are calibrated at, Hz.
    pub reference_clock_hz: f64,
}

impl Default for PowerModel {
    /// Kintex-7-class coefficients at 200 MHz; calibrated so the FabP-50
    /// design totals ≈ 11.6 W.
    fn default() -> PowerModel {
        PowerModel {
            static_w: 0.8,
            dram_interface_w: 2.5,
            per_lut_w: 35e-6,
            per_ff_w: 10e-6,
            per_dsp_w: 1.0e-3,
            per_bram_mbit_w: 0.15,
            reference_clock_hz: 200.0e6,
        }
    }
}

/// Itemised power estimate.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerBreakdown {
    /// Static leakage.
    pub static_w: f64,
    /// LUT + FF + DSP dynamic power.
    pub logic_w: f64,
    /// BRAM dynamic power.
    pub bram_w: f64,
    /// DRAM controller/PHY.
    pub dram_w: f64,
}

impl PowerBreakdown {
    /// Total board power in watts.
    pub fn total(&self) -> f64 {
        self.static_w + self.logic_w + self.bram_w + self.dram_w
    }
}

impl PowerModel {
    /// Estimates board power for a design with the given resource usage at
    /// `clock_hz` (dynamic terms scale linearly with frequency).
    pub fn power(&self, resources: ResourceCount, clock_hz: f64) -> PowerBreakdown {
        let f_scale = clock_hz / self.reference_clock_hz;
        PowerBreakdown {
            static_w: self.static_w,
            logic_w: f_scale
                * (resources.luts as f64 * self.per_lut_w
                    + resources.ffs as f64 * self.per_ff_w
                    + resources.dsps as f64 * self.per_dsp_w),
            bram_w: f_scale * (resources.bram_bits as f64 / 1e6) * self.per_bram_mbit_w,
            dram_w: self.dram_interface_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::FpgaDevice;
    use crate::resources::{plan, ArchParams};

    #[test]
    fn fabp50_power_matches_calibration_target() {
        let p = plan(&FpgaDevice::kintex7(), 150, 1, &ArchParams::default()).unwrap();
        let power = PowerModel::default().power(p.resources, 200.0e6);
        let total = power.total();
        assert!(
            (total - 11.6).abs() < 1.5,
            "FabP-50 power {total:.1} W (target ≈ 11.6 W; breakdown {power:?})"
        );
    }

    #[test]
    fn longer_queries_draw_more_power() {
        let model = PowerModel::default();
        let params = ArchParams::default();
        let device = FpgaDevice::kintex7();
        let p50 = plan(&device, 150, 1, &params).unwrap();
        let p250 = plan(&device, 750, 1, &params).unwrap();
        let w50 = model.power(p50.resources, 200.0e6).total();
        let w250 = model.power(p250.resources, 200.0e6).total();
        assert!(w250 > w50, "{w250} vs {w50}");
        assert!(w250 < 2.0 * w50, "same order of magnitude");
    }

    #[test]
    fn dynamic_power_scales_with_frequency() {
        let model = PowerModel::default();
        let r = ResourceCount {
            luts: 100_000,
            ffs: 50_000,
            dsps: 100,
            bram_bits: 1_000_000,
        };
        let slow = model.power(r, 100.0e6);
        let fast = model.power(r, 200.0e6);
        assert!((fast.logic_w / slow.logic_w - 2.0).abs() < 1e-9);
        assert_eq!(
            fast.static_w, slow.static_w,
            "leakage is frequency-independent"
        );
        assert_eq!(fast.dram_w, slow.dram_w);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let b = PowerBreakdown {
            static_w: 1.0,
            logic_w: 2.0,
            bram_w: 3.0,
            dram_w: 4.0,
        };
        assert_eq!(b.total(), 10.0);
    }

    #[test]
    fn empty_design_draws_only_static_and_dram() {
        let power = PowerModel::default().power(ResourceCount::zero(), 200.0e6);
        assert_eq!(power.logic_w, 0.0);
        assert_eq!(power.bram_w, 0.0);
        assert!((power.total() - 3.3).abs() < 1e-9);
    }
}
