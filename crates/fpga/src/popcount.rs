//! Population counters: the hand-crafted `Pop36` of Fig. 4 and the naive
//! tree-adder baseline it is compared against.
//!
//! "The main building block of the implemented Pop-Counter is Pop36 that
//! produces a 6-bit output of summing up a given 36-bit input. The first
//! stage of Pop36 is made up of six groups of three-LUTs that share six
//! inputs. This stage outputs the 3-bit resultants which are summed up
//! together in the subsequent stage according to their bit order"
//! (§III-D). The paper reports a 20 % area reduction over "the simple HDL
//! description of a tree-adder-style Pop-Counter"; both designs are built
//! here as gate-level netlists so the claim can be re-measured
//! (experiment E6).

use crate::netlist::{Netlist, NodeId, ResourceCount};
use crate::primitives::Lut6;

/// Which Pop-Counter microarchitecture to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PopStyle {
    /// Fig. 4: Pop36 blocks (six shared-input 3-LUT groups + bit-order
    /// summation) combined by a multi-bit adder tree.
    HandCrafted,
    /// The naive baseline: a binary adder tree straight from single bits,
    /// as a behavioural HDL `+` reduction would synthesize.
    TreeAdder,
}

/// Adds two unsigned little-endian bit vectors on the netlist, returning
/// the little-endian sum (wide enough to never overflow).
///
/// Builds a ripple-carry adder: one LUT per non-trivial sum bit plus free
/// carry-chain elements (CARRY4 silicon), with constant-zero operand bits
/// folded away.
pub fn add_vectors(n: &mut Netlist, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let max_sum = (1u128 << a.len()) - 1 + (1u128 << b.len()) - 1;
    let out_width = (128 - max_sum.leading_zeros()) as usize;
    if out_width == 0 {
        return vec![n.constant(false)];
    }

    // Ripple-carry (cost: one LUT per non-trivial sum bit, carry chain
    // free), with constant folding so shifted operands do not pay for
    // their zero bits — mirroring what a synthesizer does.
    let zero = n.constant(false);
    let width = a.len().max(b.len());
    let mut carry = zero;
    let mut out = Vec::with_capacity(out_width);
    for i in 0..width {
        let ai = a.get(i).copied().unwrap_or(zero);
        let bi = b.get(i).copied().unwrap_or(zero);
        let consts = (n.const_value(ai), n.const_value(bi), n.const_value(carry));
        match consts {
            (Some(va), Some(vb), Some(vc)) => {
                out.push(n.constant(va ^ vb ^ vc));
                carry = n.constant((va & vb) | (vc & (va ^ vb)));
            }
            // One live operand, everything else zero: pass it through.
            (Some(false), _, Some(false)) => out.push(bi),
            (_, Some(false), Some(false)) => out.push(ai),
            // Only the carry is live: it becomes the sum bit and the
            // chain ends.
            (Some(false), Some(false), _) => {
                out.push(carry);
                carry = n.constant(false);
            }
            _ => {
                let s = n.lut_fn(&[ai, bi, carry], |addr| addr.count_ones() % 2 == 1);
                out.push(s);
                carry = n.carry(ai, bi, carry);
            }
        }
    }
    if out.len() < out_width {
        out.push(carry);
    }
    out.truncate(out_width);
    out
}

/// Builds one shared-input group of Fig. 4's first stage: three LUT6s over
/// the same six inputs, producing the 3-bit popcount of those inputs.
///
/// Groups whose output bits cannot vary — e.g. the all-constant padding
/// groups of a Pop36 tail block, or the weight-4 bit of a group with at
/// most three live inputs — are constant-folded instead of burning a
/// LUT, matching what synthesis does to tied-off cones (lint rule
/// `lut-foldable` polices the residue).
pub fn pop6_group(n: &mut Netlist, inputs: &[NodeId; 6]) -> [NodeId; 3] {
    [0u8, 1, 2].map(|bit| {
        n.lut_folded(
            Lut6::from_fn(move |addr| (addr.count_ones() >> bit) & 1 == 1),
            *inputs,
        )
    })
}

/// A built pop-counter: netlist plus its port lists.
#[derive(Debug, Clone)]
pub struct PopCounter {
    netlist: Netlist,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    width: usize,
}

impl PopCounter {
    /// Builds a pop-counter summing `width` input bits in the given style.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn build(width: usize, style: PopStyle) -> PopCounter {
        assert!(width > 0, "pop-counter width must be positive");
        let mut n = Netlist::new();
        let inputs = n.inputs(width);
        let outputs = match style {
            PopStyle::HandCrafted => build_handcrafted(&mut n, &inputs),
            PopStyle::TreeAdder => build_tree(&mut n, &inputs),
        };
        for (i, &o) in outputs.iter().enumerate() {
            n.mark_output(format!("sum{i}"), o);
        }
        PopCounter {
            netlist: n,
            inputs,
            outputs,
            width,
        }
    }

    /// Number of input bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Width of the sum output in bits.
    pub fn output_width(&self) -> usize {
        self.outputs.len()
    }

    /// Resource footprint of the netlist.
    pub fn resources(&self) -> ResourceCount {
        self.netlist.resources()
    }

    /// Evaluates the counter combinationally.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.width()`.
    pub fn count(&mut self, bits: &[bool]) -> u32 {
        assert_eq!(bits.len(), self.width, "input width mismatch");
        self.netlist.eval(bits);
        self.outputs
            .iter()
            .enumerate()
            .map(|(i, &o)| u32::from(self.netlist.value(o)) << i)
            .sum()
    }

    /// Borrow the underlying netlist (resource inspection, custom drives).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Input node ids, LSB-first creation order.
    pub fn input_ids(&self) -> &[NodeId] {
        &self.inputs
    }
}

/// Fig. 4 structure: Pop36 blocks (pad the tail with constants) followed by
/// a binary adder tree over their 6-bit outputs.
fn build_handcrafted(n: &mut Netlist, inputs: &[NodeId]) -> Vec<NodeId> {
    let zero = n.constant(false);
    let mut block_sums: Vec<Vec<NodeId>> = Vec::new();
    for chunk in inputs.chunks(36) {
        let mut bits = [zero; 36];
        bits[..chunk.len()].copy_from_slice(chunk);
        block_sums.push(build_pop36(n, &bits));
    }
    reduce_adder_tree(n, block_sums)
}

/// One Pop36: stage 1 = six pop6 groups (18 LUTs); stage 2 = bit-order
/// summation of the six 3-bit counts (three pop6 groups, 9 LUTs); stage 3 =
/// weighted recombination `p0 + 2·p1 + 4·p2` (adders).
fn build_pop36(n: &mut Netlist, bits: &[NodeId; 36]) -> Vec<NodeId> {
    // Stage 1: six groups of three LUTs sharing six inputs.
    let groups: Vec<[NodeId; 3]> = bits
        .chunks(6)
        .map(|chunk| {
            let mut pins = [bits[0]; 6];
            pins.copy_from_slice(chunk);
            pop6_group(n, &pins)
        })
        .collect();

    // Stage 2: sum by bit order — popcount of the six weight-2^j bits.
    let stage2: Vec<[NodeId; 3]> = (0..3)
        .map(|j| {
            let pins: [NodeId; 6] = std::array::from_fn(|g| groups[g][j]);
            pop6_group(n, &pins)
        })
        .collect();

    // Stage 3: total = p0 + (p1 << 1) + (p2 << 2).
    let zero = n.constant(false);
    let p1_shifted: Vec<NodeId> = std::iter::once(zero)
        .chain(stage2[1].iter().copied())
        .collect();
    let p2_shifted: Vec<NodeId> = [zero, zero]
        .into_iter()
        .chain(stage2[2].iter().copied())
        .collect();
    let t = add_vectors(n, &p1_shifted, &p2_shifted);
    add_vectors(n, stage2[0].as_ref(), &t)
}

/// Naive behavioural-HDL structure: binary adder tree from single bits.
fn build_tree(n: &mut Netlist, inputs: &[NodeId]) -> Vec<NodeId> {
    let leaves: Vec<Vec<NodeId>> = inputs.iter().map(|&b| vec![b]).collect();
    reduce_adder_tree(n, leaves)
}

/// Pairwise adder-tree reduction of multi-bit values down to one sum.
fn reduce_adder_tree(n: &mut Netlist, mut values: Vec<Vec<NodeId>>) -> Vec<NodeId> {
    assert!(!values.is_empty());
    while values.len() > 1 {
        let mut next = Vec::with_capacity(values.len().div_ceil(2));
        let mut iter = values.chunks(2);
        for pair in &mut iter {
            match pair {
                [a, b] => next.push(add_vectors(n, a, b)),
                [a] => next.push(a.clone()),
                _ => unreachable!("chunks(2) yields 1 or 2 items"),
            }
        }
        values = next;
    }
    values.pop().expect("non-empty reduction")
}

/// Resource cost of a pop-counter without keeping the netlist around.
pub fn popcounter_cost(width: usize, style: PopStyle) -> ResourceCount {
    PopCounter::build(width, style).resources()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(width: usize, rng: &mut StdRng) -> Vec<bool> {
        (0..width).map(|_| rng.gen_bool(0.5)).collect()
    }

    #[test]
    fn pop36_counts_correctly_exhaustive_corners() {
        let mut pc = PopCounter::build(36, PopStyle::HandCrafted);
        // All-zeros, all-ones, single bit set at each position.
        assert_eq!(pc.count(&[false; 36]), 0);
        assert_eq!(pc.count(&[true; 36]), 36);
        for i in 0..36 {
            let mut bits = [false; 36];
            bits[i] = true;
            assert_eq!(pc.count(&bits), 1, "bit {i}");
        }
    }

    #[test]
    fn pop36_random_agreement_with_count_ones() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut pc = PopCounter::build(36, PopStyle::HandCrafted);
        for _ in 0..500 {
            let bits = random_bits(36, &mut rng);
            let expected = bits.iter().filter(|&&b| b).count() as u32;
            assert_eq!(pc.count(&bits), expected);
        }
    }

    #[test]
    fn both_styles_agree_across_widths() {
        let mut rng = StdRng::seed_from_u64(12);
        for width in [1usize, 2, 5, 6, 7, 35, 36, 37, 72, 100, 150] {
            let mut hc = PopCounter::build(width, PopStyle::HandCrafted);
            let mut tree = PopCounter::build(width, PopStyle::TreeAdder);
            for _ in 0..50 {
                let bits = random_bits(width, &mut rng);
                let expected = bits.iter().filter(|&&b| b).count() as u32;
                assert_eq!(hc.count(&bits), expected, "handcrafted width {width}");
                assert_eq!(tree.count(&bits), expected, "tree width {width}");
            }
        }
    }

    #[test]
    fn pop36_first_stage_is_six_groups_of_three_luts() {
        // Stage 1 alone: 18 LUTs. Build a bare Pop36 and check the total is
        // consistent with 18 (stage 1) + 9 (stage 2) + folded adders.
        let pc = PopCounter::build(36, PopStyle::HandCrafted);
        let r = pc.resources();
        assert!(r.luts >= 27, "Pop36 must contain stages 1+2 ({})", r.luts);
        assert!(r.luts <= 38, "Pop36 should stay compact ({})", r.luts);
    }

    #[test]
    fn handcrafted_is_smaller_than_tree_adder() {
        // Experiment E6 (paper: 20% area reduction at the full-counter
        // level). At the alignment-score widths used by FabP the
        // hand-crafted design must be strictly smaller.
        for width in [150usize, 300, 750] {
            let hc = popcounter_cost(width, PopStyle::HandCrafted);
            let tree = popcounter_cost(width, PopStyle::TreeAdder);
            assert!(
                hc.luts < tree.luts,
                "width {width}: handcrafted {} vs tree {}",
                hc.luts,
                tree.luts
            );
        }
    }

    #[test]
    fn output_width_covers_maximum_count() {
        let pc = PopCounter::build(36, PopStyle::HandCrafted);
        assert!(pc.output_width() >= 6);
        let pc = PopCounter::build(750, PopStyle::HandCrafted);
        assert!(pc.output_width() >= 10, "score is a 10-bit number (§IV-B)");
    }

    #[test]
    fn add_vectors_small_and_large_paths() {
        let mut rng = StdRng::seed_from_u64(13);
        for (la, lb) in [(1usize, 1usize), (2, 3), (3, 3), (4, 4), (6, 6), (5, 8)] {
            let mut n = Netlist::new();
            let a = n.inputs(la);
            let b = n.inputs(lb);
            let sum = add_vectors(&mut n, &a, &b);
            for o in &sum {
                n.mark_output(format!("s{}", o.index()), *o);
            }
            for _ in 0..30 {
                let va: u32 = rng.gen_range(0..(1u32 << la));
                let vb: u32 = rng.gen_range(0..(1u32 << lb));
                let mut inputs = Vec::new();
                for i in 0..la {
                    inputs.push((va >> i) & 1 == 1);
                }
                for i in 0..lb {
                    inputs.push((vb >> i) & 1 == 1);
                }
                n.eval(&inputs);
                let got: u32 = sum
                    .iter()
                    .enumerate()
                    .map(|(i, &o)| u32::from(n.value(o)) << i)
                    .sum();
                assert_eq!(got, va + vb, "{la}+{lb} bits: {va}+{vb}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let _ = PopCounter::build(0, PopStyle::HandCrafted);
    }

    #[test]
    fn width_one_passthrough() {
        let mut pc = PopCounter::build(1, PopStyle::TreeAdder);
        assert_eq!(pc.count(&[true]), 1);
        assert_eq!(pc.count(&[false]), 0);
    }
}
