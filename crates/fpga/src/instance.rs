//! A complete gate-level *alignment instance*: the Fig. 3 datapath from
//! reference window to thresholded hit, built entirely from LUT6/carry
//! primitives.
//!
//! One instance scores one alignment position: `L_q` two-LUT comparators,
//! the hand-crafted Pop-Counter reducing the `L_q` match bits, and a
//! threshold comparator on the score. The query instruction bits are
//! netlist *inputs* — on the device they live in distributed memory and
//! are loaded at run time (§III-C), not synthesized into the fabric — so
//! every comparator cone stays dynamic exactly like the real hardware.
//! (An earlier revision baked them in as constant drivers, which
//! constant-folds half of each comparator away and lit up `fabp-lint`'s
//! `lut-foldable` rule.) The cycle engine evaluates this datapath through
//! fused tables for speed; this module builds the *actual netlist* so it
//! can be resource-counted, Verilog-emitted, fault-simulated and verified
//! gate-by-gate against the golden model.

use crate::comparator::{compare_lut, mux_lut};
use crate::netlist::{Netlist, NodeId, ResourceCount};
use crate::popcount::{add_vectors, pop6_group};
use fabp_bio::alphabet::Nucleotide;
use fabp_encoding::encoder::EncodedQuery;
use fabp_encoding::instruction::Instruction;

/// A built alignment instance.
#[derive(Debug, Clone)]
pub struct AlignmentInstance {
    netlist: Netlist,
    instructions: Vec<Instruction>,
    query_len: usize,
    score_bits: Vec<NodeId>,
    hit: NodeId,
    threshold: u32,
}

impl AlignmentInstance {
    /// Builds the instance for an encoded query and a score threshold.
    ///
    /// The netlist's inputs are the reference window — 2 bits per element
    /// (`L_q` elements), MSB first per element — followed by the query
    /// instruction bits, 6 per element in `Q[0..6]` order (the
    /// distributed-memory word the device loads at run time).
    /// [`AlignmentInstance::eval`] drives both groups automatically.
    ///
    /// # Panics
    ///
    /// Panics if the query is empty.
    pub fn build(query: &EncodedQuery, threshold: u32) -> AlignmentInstance {
        assert!(!query.is_empty(), "query must be non-empty");
        let mut n = Netlist::new();
        let len = query.len();

        // Reference window inputs: element i = (msb, lsb).
        let ref_bits: Vec<[NodeId; 2]> = (0..len)
            .map(|_| {
                let msb = n.input();
                let lsb = n.input();
                [msb, lsb]
            })
            .collect();
        // Query instruction inputs: element i = Q[0..6].
        let q_bits: Vec<Vec<NodeId>> = (0..len).map(|_| n.inputs(6)).collect();
        let zero = n.constant(false);

        // Per-element comparator: the mux LUT fed by earlier reference
        // elements and the instruction's config bits, then the compare
        // LUT — two LUTs per element, exactly the paper's Fig. 5 cell.
        let mut match_bits = Vec::with_capacity(len);
        for i in 0..len {
            let q = &q_bits[i];
            let prev1_msb = if i >= 1 { ref_bits[i - 1][0] } else { zero };
            let prev2 = if i >= 2 {
                ref_bits[i - 2]
            } else {
                [zero, zero]
            };
            // Mux pins: I0=Q[3], I1=prev1_msb, I2=prev2_lsb, I3=prev2_msb,
            // I4=Q[5], I5=Q[4].
            let x = n.lut(mux_lut(), [q[3], prev1_msb, prev2[1], prev2[0], q[5], q[4]]);
            // Compare pins: I0=ref_lsb, I1=ref_msb, I2=X, I3=Q[2], I4=Q[1],
            // I5=Q[0].
            let m = n.lut(
                compare_lut(),
                [ref_bits[i][1], ref_bits[i][0], x, q[2], q[1], q[0]],
            );
            match_bits.push(m);
        }

        // Pop-Counter: Fig. 4 structure over the match bits.
        let score_bits = build_popcount(&mut n, &match_bits);

        // Threshold: score >= threshold via a ripple comparator on the
        // carry chain (hardware uses a DSP; gate-level model shown here).
        let hit = build_ge_const(&mut n, &score_bits, threshold);
        n.mark_output("hit", hit);
        for (i, &b) in score_bits.iter().enumerate() {
            n.mark_output(format!("score{i}"), b);
        }
        // Per-element match bits as named outputs: each comparator cone
        // has an 11-input support, small enough for `fabp-verify` to
        // exhaustively prove against `Instruction::matches`.
        for (i, &m) in match_bits.iter().enumerate() {
            n.mark_output(format!("match{i}"), m);
        }

        AlignmentInstance {
            netlist: n,
            instructions: query.instructions().to_vec(),
            query_len: len,
            score_bits,
            hit,
            threshold,
        }
    }

    /// Query length in elements.
    pub fn query_len(&self) -> usize {
        self.query_len
    }

    /// The configured threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Resource footprint of the full instance.
    pub fn resources(&self) -> ResourceCount {
        self.netlist.resources()
    }

    /// Borrow the netlist (Verilog emission, fault simulation).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Evaluates the instance on a reference window, returning
    /// `(score, hit)`.
    ///
    /// # Panics
    ///
    /// Panics if `window.len() < self.query_len()`.
    pub fn eval(&mut self, window: &[Nucleotide]) -> (u32, bool) {
        assert!(window.len() >= self.query_len, "window too short");
        let mut inputs: Vec<bool> = Vec::with_capacity(self.query_len * 8);
        // Reference window bits, then the query's distributed-memory word.
        for n in &window[..self.query_len] {
            let code = n.code2();
            inputs.push(code & 0b10 != 0);
            inputs.push(code & 0b01 != 0);
        }
        for instr in &self.instructions {
            let bits = instr.bits();
            for k in 0..6 {
                inputs.push((bits >> (5 - k)) & 1 == 1);
            }
        }
        self.netlist.eval(&inputs);
        let score = self
            .score_bits
            .iter()
            .enumerate()
            .map(|(i, &b)| u32::from(self.netlist.value(b)) << i)
            .sum();
        (score, self.netlist.value(self.hit))
    }
}

/// Hand-crafted pop-count over an arbitrary number of bits (pads the last
/// Pop36 with constants).
fn build_popcount(n: &mut Netlist, bits: &[NodeId]) -> Vec<NodeId> {
    let zero = n.constant(false);
    let mut sums: Vec<Vec<NodeId>> = Vec::new();
    for chunk in bits.chunks(36) {
        let mut padded = [zero; 36];
        padded[..chunk.len()].copy_from_slice(chunk);
        // Stage 1 + 2 + 3 per crate::popcount's Pop36.
        let stage1: Vec<[NodeId; 3]> = padded
            .chunks(6)
            .map(|c| {
                let mut pins = [zero; 6];
                pins.copy_from_slice(c);
                pop6_group(n, &pins)
            })
            .collect();
        let stage2: Vec<[NodeId; 3]> = (0..3)
            .map(|j| {
                let pins: [NodeId; 6] = std::array::from_fn(|g| stage1[g][j]);
                pop6_group(n, &pins)
            })
            .collect();
        let p1s: Vec<NodeId> = std::iter::once(zero)
            .chain(stage2[1].iter().copied())
            .collect();
        let p2s: Vec<NodeId> = [zero, zero]
            .into_iter()
            .chain(stage2[2].iter().copied())
            .collect();
        let t = add_vectors(n, &p1s, &p2s);
        sums.push(add_vectors(n, stage2[0].as_ref(), &t));
    }
    while sums.len() > 1 {
        let mut next = Vec::new();
        for pair in sums.chunks(2) {
            match pair {
                [a, b] => next.push(add_vectors(n, a, b)),
                [a] => next.push(a.clone()),
                _ => unreachable!(),
            }
        }
        sums = next;
    }
    sums.pop().expect("non-empty")
}

/// Builds `value >= constant` over little-endian bits using the carry
/// chain: compute `value - constant` and take the final (no-borrow) carry.
fn build_ge_const(n: &mut Netlist, bits: &[NodeId], constant: u32) -> NodeId {
    // If the constant has bits beyond the score width, value < constant
    // unconditionally — decided *before* building the chain, so no dead
    // carry cone is left behind (fabp-lint's `dead-node` rule found the
    // original build-then-discard version).
    let width = bits.len();
    if u64::from(constant) >> width.min(63) != 0 {
        return n.constant(false);
    }
    // value >= c  <=>  value + (!c) + 1 carries out of the top bit.
    let one = n.constant(true);
    let mut carry = one; // +1 of the two's complement
    for (i, &b) in bits.iter().enumerate() {
        let not_c_bit = n.constant((constant >> i) & 1 == 0);
        carry = n.carry(b, not_c_bit, carry);
    }
    carry
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabp_bio::generate::{random_protein, random_rna};
    use fabp_bio::seq::ProteinSeq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance_for(protein: &str, threshold: u32) -> AlignmentInstance {
        let protein: ProteinSeq = protein.parse().unwrap();
        AlignmentInstance::build(&EncodedQuery::from_protein(&protein), threshold)
    }

    #[test]
    fn gate_level_scores_match_golden_model() {
        let mut rng = StdRng::seed_from_u64(0xA11);
        let protein = random_protein(8, &mut rng);
        let query = EncodedQuery::from_protein(&protein);
        let mut instance = AlignmentInstance::build(&query, 12);
        let reference = random_rna(200, &mut rng);
        for k in 0..=reference.len() - query.len() {
            let window = &reference.as_slice()[k..];
            let golden = query.score_window(window) as u32;
            let (score, hit) = instance.eval(window);
            assert_eq!(score, golden, "position {k}");
            assert_eq!(hit, golden >= 12, "position {k}");
        }
    }

    #[test]
    fn resource_count_matches_component_sums() {
        use crate::popcount::{popcounter_cost, PopStyle};
        let instance = instance_for("MFSRW", 10); // 15 elements
        let r = instance.resources();
        // 15 comparators × 2 LUTs + the hand-crafted Pop-Counter at the
        // same width (padding cones constant-folded identically);
        // threshold rides the carry chain (0 LUTs).
        let pop = popcounter_cost(15, PopStyle::HandCrafted).luts;
        assert_eq!(r.luts, 15 * 2 + pop, "LUT budget: {}", r.luts);
        assert_eq!(r.ffs, 0, "combinational instance");
    }

    #[test]
    fn threshold_edge_cases() {
        let protein: ProteinSeq = "MF".parse().unwrap();
        let query = EncodedQuery::from_protein(&protein);
        // Perfect window AUGUUU scores 6.
        let window: Vec<Nucleotide> = "AUGUUU"
            .parse::<fabp_bio::seq::RnaSeq>()
            .unwrap()
            .into_inner();
        for (threshold, expect_hit) in [(0u32, true), (6, true), (7, false)] {
            let mut instance = AlignmentInstance::build(&query, threshold);
            let (score, hit) = instance.eval(&window);
            assert_eq!(score, 6);
            assert_eq!(hit, expect_hit, "threshold {threshold}");
        }
    }

    #[test]
    fn oversized_threshold_never_hits() {
        let mut instance = instance_for("MF", 63);
        let window: Vec<Nucleotide> = "AUGUUU"
            .parse::<fabp_bio::seq::RnaSeq>()
            .unwrap()
            .into_inner();
        let (_, hit) = instance.eval(&window);
        assert!(!hit);
    }

    #[test]
    fn instance_emits_verilog() {
        let instance = instance_for("MFS", 5);
        let v = crate::verilog::emit_verilog(instance.netlist(), "fabp_instance");
        assert!(v.contains("module fabp_instance"));
        assert!(v.contains("output hit;"));
        assert_eq!(v.matches("LUT6 #(").count(), instance.resources().luts);
    }

    #[test]
    fn long_query_uses_multiple_pop36_blocks() {
        let mut rng = StdRng::seed_from_u64(0xA12);
        let protein = random_protein(30, &mut rng); // 90 elements -> 3 Pop36
        let query = EncodedQuery::from_protein(&protein);
        let mut instance = AlignmentInstance::build(&query, 60);
        let r = instance.resources();
        let pop = crate::popcount::popcounter_cost(90, crate::popcount::PopStyle::HandCrafted).luts;
        assert_eq!(r.luts, 90 * 2 + pop, "three Pop36 blocks expected");
        // Still bit-exact.
        let reference = random_rna(120, &mut rng);
        let golden = query.score_window(reference.as_slice()) as u32;
        let (score, _) = instance.eval(reference.as_slice());
        assert_eq!(score, golden);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_query_panics() {
        let query = EncodedQuery::from_exact_rna(&fabp_bio::seq::RnaSeq::new());
        let _ = AlignmentInstance::build(&query, 0);
    }
}
