//! Stuck-at fault simulation for netlists.
//!
//! A deployed accelerator whose comparator LUT suffers a configuration
//! upset (SEU) or a stuck net silently corrupts alignment scores. This
//! module provides classic single-stuck-at fault simulation over the
//! gate-level netlists: enumerate faults, apply one, and measure which
//! test vectors detect it — the coverage argument for the self-test
//! vectors a production bitstream would ship with.

use crate::netlist::{Netlist, NodeId, NodeKind};

/// A single stuck-at fault site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// The node whose *output* is stuck.
    pub node: NodeId,
    /// The stuck value.
    pub stuck_at: bool,
}

impl Fault {
    /// Human-readable name (`n13/SA1` style).
    pub fn name(&self) -> String {
        format!("n{}/SA{}", self.node.index(), u8::from(self.stuck_at))
    }
}

/// Enumerates the single-stuck-at fault universe of a netlist: both
/// polarities at every LUT and register output (inputs and constants are
/// excluded — faults there are equivalent to faults at their driving
/// outputs or are environment errors).
pub fn enumerate_faults(netlist: &Netlist) -> Vec<Fault> {
    let mut faults = Vec::new();
    for node in netlist.node_ids() {
        match netlist.node_kind(node) {
            NodeKind::Lut(..) | NodeKind::Reg { .. } | NodeKind::Carry { .. } => {
                faults.push(Fault {
                    node,
                    stuck_at: false,
                });
                faults.push(Fault {
                    node,
                    stuck_at: true,
                });
            }
            NodeKind::Input | NodeKind::Const(_) => {}
        }
    }
    faults
}

/// An equivalence class of single-stuck-at faults: every member provokes
/// exactly the same faulty machine behaviour, so simulating the
/// representative covers them all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultClass {
    /// The simulated representative.
    pub representative: Fault,
    /// All faults in the class (always contains the representative).
    pub members: Vec<Fault>,
}

/// Collapses a fault universe into equivalence classes using the classic
/// fan-out-free-net rule, adapted to LUT netlists:
///
/// A fault `(A, stuck-at v)` on a net whose *only* load is pin `p` of a
/// downstream LUT `B` is equivalent to `(B, stuck-at w)` whenever `B`'s
/// truth table, restricted to `pin p = v` (plus any constant-driven
/// pins), collapses to the constant `w` — injecting either fault yields
/// the identical faulty machine as seen from every output. Chains are
/// followed transitively, so a buffer ladder collapses to its far end.
///
/// The rule is deliberately conservative:
/// * nets with fan-out ≥ 2 are never collapsed (the fault fans into
///   several cones and is not equivalent to any single downstream fault);
/// * nodes named as outputs are never collapsed *into* (they are directly
///   observable, so upstream faults remain distinguishable);
/// * only LUT loads participate — registers delay by a cycle and carry
///   elements never fold to a constant from one pin.
pub fn collapse_faults(netlist: &Netlist, faults: &[Fault]) -> Vec<FaultClass> {
    use std::collections::HashMap;

    // Single-load map: node -> (lut node, pin) when fan-out is exactly 1
    // and the load is a LUT pin.
    let mut loads: HashMap<NodeId, Vec<(NodeId, usize)>> = HashMap::new();
    for id in netlist.node_ids() {
        if let NodeKind::Lut(_, pins) = netlist.node_kind(id) {
            for (pin, src) in pins.iter().enumerate() {
                loads.entry(*src).or_default().push((id, pin));
            }
        } else {
            // Non-LUT loads (register D pins, carry operands) disqualify
            // the driver from collapsing; record them as opaque loads.
            for src in netlist.fanin(id) {
                loads.entry(src).or_default().push((id, usize::MAX));
            }
        }
    }
    let observable: std::collections::HashSet<NodeId> = netlist
        .named_outputs()
        .into_iter()
        .map(|(_, id)| id)
        .collect();

    // Map each fault to its canonical representative by following the
    // single-load chain while the restricted LUT stays constant.
    let canonical = |mut fault: Fault| -> Fault {
        loop {
            if observable.contains(&fault.node) {
                return fault;
            }
            let Some(node_loads) = loads.get(&fault.node) else {
                return fault;
            };
            let [(lut, pin)] = node_loads.as_slice() else {
                return fault;
            };
            if *pin == usize::MAX {
                return fault;
            }
            let NodeKind::Lut(table, pins) = netlist.node_kind(*lut) else {
                return fault;
            };
            match restricted_constant(netlist, table, pins, *pin, fault.stuck_at) {
                Some(w) => {
                    fault = Fault {
                        node: *lut,
                        stuck_at: w,
                    }
                }
                None => return fault,
            }
        }
    };

    let mut classes: Vec<FaultClass> = Vec::new();
    let mut index: HashMap<Fault, usize> = HashMap::new();
    for &fault in faults {
        let rep = canonical(fault);
        match index.get(&rep) {
            Some(&slot) => classes[slot].members.push(fault),
            None => {
                index.insert(rep, classes.len());
                classes.push(FaultClass {
                    representative: rep,
                    members: vec![fault],
                });
            }
        }
    }
    classes
}

/// The constant value `table` produces when `pins[pin]` is fixed to
/// `value` (and constant-driven pins keep their values), or `None` when
/// the output still depends on a free pin.
fn restricted_constant(
    netlist: &Netlist,
    table: crate::primitives::Lut6,
    pins: [NodeId; 6],
    pin: usize,
    value: bool,
) -> Option<bool> {
    let mut fixed_mask = 1u8 << pin;
    let mut fixed_bits = (value as u8) << pin;
    for (bit, p) in pins.iter().enumerate() {
        if bit == pin {
            continue;
        }
        if let Some(v) = netlist.try_node_kind(*p).and_then(|k| match k {
            NodeKind::Const(v) => Some(v),
            _ => None,
        }) {
            fixed_mask |= 1 << bit;
            fixed_bits |= (v as u8) << bit;
        }
    }
    let free: Vec<usize> = (0..6).filter(|b| fixed_mask & (1 << b) == 0).collect();
    let mut out = None;
    for combo in 0u8..(1 << free.len()) {
        let mut addr = fixed_bits;
        for (k, &bit) in free.iter().enumerate() {
            addr |= ((combo >> k) & 1) << bit;
        }
        let v = table.eval_addr(addr);
        match out {
            None => out = Some(v),
            Some(prev) if prev != v => return None,
            Some(_) => {}
        }
    }
    out
}

/// [`simulate_faults`] over a collapsed universe: each class's
/// representative is simulated once and the verdict is attributed to all
/// members, so the returned report covers the *full* universe while
/// paying for one simulation per class.
pub fn simulate_faults_collapsed(
    netlist: &Netlist,
    classes: &[FaultClass],
    vectors: &[Vec<bool>],
    cycles: usize,
) -> FaultReport {
    let reps: Vec<Fault> = classes.iter().map(|c| c.representative).collect();
    let rep_report = simulate_faults(netlist, &reps, vectors, cycles);
    let detected_reps: std::collections::HashSet<Fault> = rep_report.detected.into_iter().collect();
    let mut detected = Vec::new();
    let mut undetected = Vec::new();
    for class in classes {
        if detected_reps.contains(&class.representative) {
            detected.extend(class.members.iter().copied());
        } else {
            undetected.extend(class.members.iter().copied());
        }
    }
    FaultReport {
        detected,
        undetected,
    }
}

/// Builds a faulty copy of a netlist with one node's output stuck.
///
/// The stuck node becomes a constant driver, preserving node indices so
/// inputs and outputs keep their meaning.
pub fn inject_fault(netlist: &Netlist, fault: Fault) -> Netlist {
    let mut faulty = netlist.clone();
    faulty.override_node_const(fault.node, fault.stuck_at);
    faulty
}

/// Result of simulating a fault against a vector set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// Faults detected by at least one vector.
    pub detected: Vec<Fault>,
    /// Faults no vector distinguishes from the good machine.
    pub undetected: Vec<Fault>,
}

impl FaultReport {
    /// Fault coverage in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        let total = self.detected.len() + self.undetected.len();
        if total == 0 {
            1.0
        } else {
            self.detected.len() as f64 / total as f64
        }
    }
}

/// Simulates every fault in `faults` against `vectors` (each vector is a
/// full input assignment), comparing all named outputs of the good and
/// faulty machines combinationally.
///
/// Sequential circuits are compared over `cycles` clock cycles per vector
/// (inputs held); `cycles = 1` suits combinational netlists.
pub fn simulate_faults(
    netlist: &Netlist,
    faults: &[Fault],
    vectors: &[Vec<bool>],
    cycles: usize,
) -> FaultReport {
    let cycles = cycles.max(1);
    let outputs = netlist.named_outputs();

    // Reference responses of the good machine.
    let mut golden = Vec::with_capacity(vectors.len());
    let mut good = netlist.clone();
    for vector in vectors {
        good.reset();
        let mut responses = Vec::new();
        for _ in 0..cycles {
            good.eval(vector);
            responses.extend(outputs.iter().map(|(_, id)| good.value(*id)));
            good.clock();
        }
        golden.push(responses);
    }

    let mut detected = Vec::new();
    let mut undetected = Vec::new();
    'fault: for &fault in faults {
        let mut machine = inject_fault(netlist, fault);
        for (vector, expected) in vectors.iter().zip(&golden) {
            machine.reset();
            let mut responses = Vec::new();
            for _ in 0..cycles {
                machine.eval(vector);
                responses.extend(outputs.iter().map(|(_, id)| machine.value(*id)));
                machine.clock();
            }
            if &responses != expected {
                detected.push(fault);
                continue 'fault;
            }
        }
        undetected.push(fault);
    }

    FaultReport {
        detected,
        undetected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparator::build_comparator_netlist;
    use crate::popcount::{PopCounter, PopStyle};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fault_universe_covers_both_polarities() {
        let (netlist, _) = build_comparator_netlist();
        let faults = enumerate_faults(&netlist);
        // Two LUTs × two polarities.
        assert_eq!(faults.len(), 4);
        assert!(faults.iter().any(|f| f.name().ends_with("SA0")));
        assert!(faults.iter().any(|f| f.name().ends_with("SA1")));
    }

    #[test]
    fn exhaustive_vectors_detect_all_comparator_faults() {
        let (netlist, _) = build_comparator_netlist();
        let faults = enumerate_faults(&netlist);
        // Exhaustive 11-bit input space.
        let vectors: Vec<Vec<bool>> = (0u32..(1 << 11))
            .map(|v| (0..11).map(|b| (v >> b) & 1 == 1).collect())
            .collect();
        let report = simulate_faults(&netlist, &faults, &vectors, 1);
        assert_eq!(
            report.coverage(),
            1.0,
            "undetected: {:?}",
            report.undetected
        );
    }

    #[test]
    fn random_vectors_reach_high_coverage_on_pop36() {
        let pc = PopCounter::build(36, PopStyle::HandCrafted);
        let faults = enumerate_faults(pc.netlist());
        let mut rng = StdRng::seed_from_u64(0xFA17);
        let vectors: Vec<Vec<bool>> = (0..64)
            .map(|_| (0..36).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        let report = simulate_faults(pc.netlist(), &faults, &vectors, 1);
        assert!(
            report.coverage() > 0.95,
            "coverage {:.2}, undetected {:?}",
            report.coverage(),
            report.undetected.len()
        );
    }

    #[test]
    fn empty_vector_set_detects_nothing() {
        let (netlist, _) = build_comparator_netlist();
        let faults = enumerate_faults(&netlist);
        let report = simulate_faults(&netlist, &faults, &[], 1);
        assert!(report.detected.is_empty());
        assert_eq!(report.undetected.len(), faults.len());
        assert_eq!(report.coverage(), 0.0);
    }

    #[test]
    fn injected_fault_changes_behaviour() {
        let (netlist, _) = build_comparator_netlist();
        // Stick the output LUT at 1: everything "matches".
        let out_fault = enumerate_faults(&netlist)
            .into_iter()
            .rev()
            .find(|f| f.stuck_at)
            .unwrap();
        let mut faulty = inject_fault(&netlist, out_fault);
        let mut good = netlist.clone();
        let zeros = vec![false; 11];
        good.eval(&zeros);
        faulty.eval(&zeros);
        // Good machine: exact-match A against A -> matches (both zero);
        // comparing with a mismatching vector must differ somewhere.
        let mut differs = false;
        for v in 0..(1u32 << 11) {
            let vector: Vec<bool> = (0..11).map(|b| (v >> b) & 1 == 1).collect();
            good.eval(&vector);
            faulty.eval(&vector);
            if good.output_value("match") != faulty.output_value("match") {
                differs = true;
                break;
            }
        }
        assert!(differs, "SA1 at the output must be observable");
    }

    #[test]
    fn coverage_of_empty_universe_is_one() {
        let report = FaultReport {
            detected: vec![],
            undetected: vec![],
        };
        assert_eq!(report.coverage(), 1.0);
    }

    /// A buffer chain `in -> buf -> buf -> out` collapses: SA faults on
    /// interior fan-out-free nets are equivalent to faults at the chain's
    /// observable end.
    #[test]
    fn buffer_chain_collapses_to_output() {
        let mut n = crate::netlist::Netlist::new();
        let a = n.input();
        let b1 = n.lut_fn(&[a], |addr| addr & 1 == 1);
        let b2 = n.lut_fn(&[b1], |addr| addr & 1 == 1);
        n.mark_output("out", b2);
        let faults = enumerate_faults(&n);
        assert_eq!(faults.len(), 4); // two LUTs × two polarities
        let classes = collapse_faults(&n, &faults);
        // b1/SA0 ≡ b2/SA0 and b1/SA1 ≡ b2/SA1: two classes survive.
        assert_eq!(classes.len(), 2, "classes: {classes:?}");
        let total_members: usize = classes.iter().map(|c| c.members.len()).sum();
        assert_eq!(total_members, faults.len(), "every fault is classed");
        for class in &classes {
            assert_eq!(class.representative.node, b2, "collapse lands on out");
        }
    }

    /// Fan-out ≥ 2 must block collapsing.
    #[test]
    fn fanout_blocks_collapsing() {
        let mut n = crate::netlist::Netlist::new();
        let a = n.input();
        let src = n.lut_fn(&[a], |addr| addr & 1 == 1);
        let c1 = n.lut_fn(&[src], |addr| addr & 1 == 1);
        let c2 = n.lut_fn(&[src], |addr| addr & 1 == 0);
        n.mark_output("x", c1);
        n.mark_output("y", c2);
        let faults = enumerate_faults(&n);
        let classes = collapse_faults(&n, &faults);
        // src has two loads: its faults must stay their own classes.
        assert_eq!(classes.len(), faults.len());
    }

    /// Pinning test: collapsing never changes the per-fault verdict, so
    /// coverage and the exact detected/undetected sets are unchanged on
    /// the shipped netlists.
    #[test]
    fn collapsed_coverage_is_unchanged() {
        let mut rng = StdRng::seed_from_u64(0xC01A);
        for (netlist, width) in [
            (build_comparator_netlist().0, 11usize),
            (
                PopCounter::build(36, PopStyle::HandCrafted)
                    .netlist()
                    .clone(),
                36usize,
            ),
        ] {
            let faults = enumerate_faults(&netlist);
            let vectors: Vec<Vec<bool>> = (0..48)
                .map(|_| (0..width).map(|_| rng.gen_bool(0.5)).collect())
                .collect();
            let flat = simulate_faults(&netlist, &faults, &vectors, 1);
            let classes = collapse_faults(&netlist, &faults);
            let collapsed = simulate_faults_collapsed(&netlist, &classes, &vectors, 1);
            let to_set =
                |v: &[Fault]| -> std::collections::HashSet<Fault> { v.iter().copied().collect() };
            assert_eq!(to_set(&flat.detected), to_set(&collapsed.detected));
            assert_eq!(to_set(&flat.undetected), to_set(&collapsed.undetected));
            assert_eq!(flat.coverage(), collapsed.coverage());
            assert!(
                classes.len() <= faults.len(),
                "collapsing never grows the universe"
            );
        }
    }

    /// Collapsing pays: the hand-crafted Pop6 group has fan-out-free cones
    /// that fold to constants, halving the simulated universe (12 → 6 on the
    /// shipped netlist), and the alignment instance collapses a couple of
    /// buffer-like sites too. Every original fault must remain accounted for
    /// as a member of exactly one class.
    #[test]
    fn collapsing_reduces_fault_universe() {
        let pc = PopCounter::build(6, PopStyle::HandCrafted);
        let faults = enumerate_faults(pc.netlist());
        let classes = collapse_faults(pc.netlist(), &faults);
        let members: usize = classes.iter().map(|c| c.members.len()).sum();
        assert_eq!(members, faults.len());
        assert!(
            classes.len() < faults.len(),
            "expected at least one equivalence on pop6: {} vs {}",
            classes.len(),
            faults.len()
        );
    }
}
